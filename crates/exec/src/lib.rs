//! Physical execution layer of the simulated shared-nothing engine.
//!
//! This crate plays the role of Hyracks in the paper's architecture (Figure 2):
//! it takes a physical plan (scans with pushed-down predicates and a tree of
//! joins, each annotated with a join algorithm), executes it partition-by-
//! partition against the [`rdo_storage::Catalog`], and charges a deterministic
//! cost model for the distributed effects — re-partitioning (shuffle),
//! broadcast replication, materialization of intermediate results at
//! re-optimization points, secondary-index lookups and online statistics
//! collection.
//!
//! The operators implemented here mirror Section 3 of the paper:
//!
//! * **Hash join** — both inputs are re-partitioned on the join key (skipped for
//!   an input already partitioned on it), then joined with a per-partition
//!   dynamic hash join. With a join memory budget configured
//!   (`RDO_JOIN_BUDGET`), partitions whose build side exceeds the budget run
//!   as grace/hybrid hash joins through the spill store ([`grace`]).
//! * **Broadcast join** — the (small) build input is replicated to every
//!   partition of the probe input.
//! * **Indexed nested-loop join** — the build input is broadcast and used to
//!   probe a secondary index of a base dataset.
//! * **Sink / Reader** — materialize intermediate results into temporary tables
//!   (collecting online statistics) and read them back in later jobs.
//!
//! Internally the operator kernels are *columnar*: rows chunk into typed
//! [`rdo_common::Batch`]es of `RDO_BATCH_SIZE` rows (see
//! [`partition::batch_size`]), predicates evaluate column-at-a-time and
//! partition hashing runs over borrowed column slots. The row-level kernel
//! signatures are adapters over the batch kernels, and results are
//! batch-size invariant, so every executor stays bit-identical to the
//! row-at-a-time reference kernels (`*_rows`).

pub mod cost;
pub mod data;
pub mod executor;
pub mod expr;
pub mod grace;
pub mod partition;
pub mod plan;
pub mod post;
pub mod setup;
pub mod sink;

pub use cost::{CostModel, ExecutionMetrics};
pub use data::PartitionedData;
pub use executor::Executor;
pub use expr::{evaluate_all_batch, CmpOp, Predicate, PredicateExpr, UdfFn};
pub use grace::{GraceContext, GraceTally};
pub use partition::{
    batch_size, column_partition_hash, hash_join_batch, repartition_batch, scan_batch,
    JoinBuildTable, BATCH_SIZE_ENV, DEFAULT_BATCH_SIZE,
};
pub use plan::{JoinAlgorithm, PhysicalPlan};
pub use post::{AggregateExpr, AggregateFunc, PostProcess, SortKey};
pub use sink::{materialize, MaterializeOutcome};
