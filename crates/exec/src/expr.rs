//! Selection predicates, including the "complex" predicates (UDFs and
//! parameterized values) whose selectivity a static optimizer cannot estimate.
//!
//! Section 5.1 of the paper distinguishes three cases:
//!
//! 1. a single fixed-value predicate — estimable from the equi-height histogram;
//! 2. multiple fixed-value predicates — traditional optimizers multiply the
//!    individual selectivities (assuming independence), which is wrong under
//!    correlation;
//! 3. complex predicates (UDFs, parameterized values) — traditional optimizers
//!    fall back to the System-R default factors (1/10 for equality, 1/3 for
//!    inequalities).
//!
//! The dynamic approach instead *executes* such predicates first and measures
//! the result, so [`Predicate::evaluate`] is the ground truth while
//! [`Predicate::estimate_selectivity`] is what the static baselines see.

use rdo_common::{FieldRef, RdoError, Result, Schema, Tuple, Value};
use rdo_sketch::DatasetStats;
use std::fmt;
use std::sync::Arc;

/// Comparison operators supported in the WHERE clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    fn apply(&self, lhs: &Value, rhs: &Value) -> bool {
        match self {
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
        }
    }

    /// The System-R default selectivity factor used when nothing is known about
    /// the operand (Selinger et al., as cited by the paper).
    pub fn default_selectivity(&self) -> f64 {
        match self {
            CmpOp::Eq => 0.1,
            CmpOp::Ne => 0.9,
            _ => 1.0 / 3.0,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// A user-defined boolean function over one column value.
pub type UdfFn = Arc<dyn Fn(&Value) -> bool + Send + Sync>;

/// The expression forms a local predicate can take.
#[derive(Clone)]
pub enum PredicateExpr {
    /// `field op constant`
    Compare {
        /// Column being filtered.
        field: FieldRef,
        /// Comparison operator.
        op: CmpOp,
        /// Constant operand.
        value: Value,
    },
    /// `field BETWEEN lo AND hi` (inclusive).
    Between {
        /// Column being filtered.
        field: FieldRef,
        /// Lower bound (inclusive).
        lo: Value,
        /// Upper bound (inclusive).
        hi: Value,
    },
    /// `field IN (values...)`.
    InList {
        /// Column being filtered.
        field: FieldRef,
        /// Accepted values.
        values: Vec<Value>,
    },
    /// `udf(field)` — a black-box boolean UDF.
    Udf {
        /// Name used for display/explain output.
        name: String,
        /// Column the UDF reads.
        field: FieldRef,
        /// The function itself.
        func: UdfFn,
    },
}

impl fmt::Debug for PredicateExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PredicateExpr::Compare { field, op, value } => {
                write!(f, "{field} {op} {value}")
            }
            PredicateExpr::Between { field, lo, hi } => {
                write!(f, "{field} BETWEEN {lo} AND {hi}")
            }
            PredicateExpr::InList { field, values } => {
                write!(f, "{field} IN ({} values)", values.len())
            }
            PredicateExpr::Udf { name, field, .. } => write!(f, "{name}({field})"),
        }
    }
}

/// A local selection predicate on a single dataset.
#[derive(Debug, Clone)]
pub struct Predicate {
    /// The predicate expression.
    pub expr: PredicateExpr,
    /// True if the constant(s) are query parameters bound only at runtime, so a
    /// static optimizer must use default selectivities even for simple
    /// comparisons.
    pub parameterized: bool,
}

impl Predicate {
    /// A simple comparison with a fixed value.
    pub fn compare(field: FieldRef, op: CmpOp, value: impl Into<Value>) -> Self {
        Self {
            expr: PredicateExpr::Compare {
                field,
                op,
                value: value.into(),
            },
            parameterized: false,
        }
    }

    /// An inclusive range predicate with fixed bounds.
    pub fn between(field: FieldRef, lo: impl Into<Value>, hi: impl Into<Value>) -> Self {
        Self {
            expr: PredicateExpr::Between {
                field,
                lo: lo.into(),
                hi: hi.into(),
            },
            parameterized: false,
        }
    }

    /// An IN-list predicate with fixed values.
    pub fn in_list(field: FieldRef, values: Vec<Value>) -> Self {
        Self {
            expr: PredicateExpr::InList { field, values },
            parameterized: false,
        }
    }

    /// A black-box UDF predicate.
    pub fn udf(
        name: impl Into<String>,
        field: FieldRef,
        func: impl Fn(&Value) -> bool + Send + Sync + 'static,
    ) -> Self {
        Self {
            expr: PredicateExpr::Udf {
                name: name.into(),
                field,
                func: Arc::new(func),
            },
            parameterized: false,
        }
    }

    /// Marks the predicate as parameterized (value bound at runtime).
    pub fn parameterized(mut self) -> Self {
        self.parameterized = true;
        self
    }

    /// The dataset the predicate is local to.
    pub fn dataset(&self) -> &str {
        &self.field().dataset
    }

    /// The column the predicate reads.
    pub fn field(&self) -> &FieldRef {
        match &self.expr {
            PredicateExpr::Compare { field, .. }
            | PredicateExpr::Between { field, .. }
            | PredicateExpr::InList { field, .. }
            | PredicateExpr::Udf { field, .. } => field,
        }
    }

    /// True if the predicate is "complex" in the paper's sense: a UDF or a
    /// parameterized comparison, whose selectivity a static optimizer cannot
    /// derive from histograms.
    pub fn is_complex(&self) -> bool {
        self.parameterized || matches!(self.expr, PredicateExpr::Udf { .. })
    }

    /// Evaluates the predicate against one tuple.
    pub fn evaluate(&self, schema: &Schema, tuple: &Tuple) -> Result<bool> {
        let idx = schema.resolve(self.field())?;
        let value = tuple.value(idx);
        if value.is_null() {
            return Ok(false);
        }
        Ok(match &self.expr {
            PredicateExpr::Compare { op, value: rhs, .. } => op.apply(value, rhs),
            PredicateExpr::Between { lo, hi, .. } => value >= lo && value <= hi,
            PredicateExpr::InList { values, .. } => values.contains(value),
            PredicateExpr::Udf { func, .. } => func(value),
        })
    }

    /// Selectivity as seen by a *static* optimizer: histogram-based for simple
    /// fixed-value predicates, System-R default factors for complex ones.
    pub fn estimate_selectivity(&self, stats: Option<&DatasetStats>) -> f64 {
        if self.is_complex() {
            return self.default_selectivity();
        }
        let column = stats.and_then(|s| s.column(&self.field().field));
        match (&self.expr, column) {
            (PredicateExpr::Compare { op, value, .. }, Some(col)) => {
                let v = value.numeric_rank();
                match op {
                    CmpOp::Eq => col.equality_selectivity(v),
                    CmpOp::Ne => 1.0 - col.equality_selectivity(v),
                    CmpOp::Lt | CmpOp::Le => col.range_selectivity(f64::NEG_INFINITY, v),
                    CmpOp::Gt | CmpOp::Ge => col.range_selectivity(v, f64::INFINITY),
                }
            }
            (PredicateExpr::Between { lo, hi, .. }, Some(col)) => {
                col.range_selectivity(lo.numeric_rank(), hi.numeric_rank())
            }
            (PredicateExpr::InList { values, .. }, Some(col)) => values
                .iter()
                .map(|v| col.equality_selectivity(v.numeric_rank()))
                .sum::<f64>()
                .min(1.0),
            _ => self.default_selectivity(),
        }
    }

    /// The System-R default selectivity factor for this predicate shape.
    pub fn default_selectivity(&self) -> f64 {
        match &self.expr {
            PredicateExpr::Compare { op, .. } => op.default_selectivity(),
            PredicateExpr::Between { .. } => 0.25,
            PredicateExpr::InList { values, .. } => (0.1 * values.len() as f64).min(0.5),
            PredicateExpr::Udf { .. } => 0.1,
        }
    }

    /// Short human-readable form used by EXPLAIN output.
    pub fn describe(&self) -> String {
        let base = format!("{:?}", self.expr);
        if self.parameterized {
            format!("{base} [param]")
        } else {
            base
        }
    }
}

/// Evaluates a conjunction of predicates.
pub fn evaluate_all(predicates: &[Predicate], schema: &Schema, tuple: &Tuple) -> Result<bool> {
    for p in predicates {
        if !p.evaluate(schema, tuple)? {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Static selectivity of a conjunction assuming independence (what traditional
/// optimizers do; the paper highlights this as a source of error for correlated
/// predicates).
pub fn combined_selectivity(predicates: &[Predicate], stats: Option<&DatasetStats>) -> f64 {
    predicates
        .iter()
        .map(|p| p.estimate_selectivity(stats))
        .product()
}

/// Convenience error constructor used by operators when a predicate references
/// a column missing from the input schema.
pub fn unknown_field(field: &FieldRef) -> RdoError {
    RdoError::UnknownField(field.qualified())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdo_common::DataType;
    use rdo_sketch::DatasetStatsBuilder;

    fn schema() -> Schema {
        Schema::for_dataset(
            "part",
            &[
                ("p_partkey", DataType::Int64),
                ("p_size", DataType::Int64),
                ("p_brand", DataType::Utf8),
            ],
        )
    }

    fn tuple(key: i64, size: i64, brand: &str) -> Tuple {
        Tuple::new(vec![
            Value::Int64(key),
            Value::Int64(size),
            Value::from(brand),
        ])
    }

    fn stats(n: i64) -> DatasetStats {
        let mut b = DatasetStatsBuilder::all_columns(&schema());
        for i in 0..n {
            b.observe(&tuple(i, i % 50, &format!("Brand#{}", i % 5)));
        }
        b.build()
    }

    #[test]
    fn compare_evaluation() {
        let s = schema();
        let p = Predicate::compare(FieldRef::new("part", "p_size"), CmpOp::Lt, 10i64);
        assert!(p.evaluate(&s, &tuple(1, 5, "x")).unwrap());
        assert!(!p.evaluate(&s, &tuple(1, 15, "x")).unwrap());
    }

    #[test]
    fn between_and_inlist_evaluation() {
        let s = schema();
        let b = Predicate::between(FieldRef::new("part", "p_size"), 10i64, 20i64);
        assert!(b.evaluate(&s, &tuple(1, 10, "x")).unwrap());
        assert!(b.evaluate(&s, &tuple(1, 20, "x")).unwrap());
        assert!(!b.evaluate(&s, &tuple(1, 21, "x")).unwrap());

        let l = Predicate::in_list(
            FieldRef::new("part", "p_brand"),
            vec![Value::from("A"), Value::from("B")],
        );
        assert!(l.evaluate(&s, &tuple(1, 1, "A")).unwrap());
        assert!(!l.evaluate(&s, &tuple(1, 1, "C")).unwrap());
    }

    #[test]
    fn udf_evaluation_and_complexity() {
        let s = schema();
        let p = Predicate::udf("mysub", FieldRef::new("part", "p_brand"), |v| {
            v.as_str().map(|s| s.ends_with("#3")).unwrap_or(false)
        });
        assert!(p.is_complex());
        assert!(p.evaluate(&s, &tuple(1, 1, "Brand#3")).unwrap());
        assert!(!p.evaluate(&s, &tuple(1, 1, "Brand#4")).unwrap());
    }

    #[test]
    fn null_never_matches() {
        let s = schema();
        let p = Predicate::compare(FieldRef::new("part", "p_size"), CmpOp::Ne, 5i64);
        let t = Tuple::new(vec![Value::Int64(1), Value::Null, Value::from("x")]);
        assert!(!p.evaluate(&s, &t).unwrap());
    }

    #[test]
    fn unknown_column_errors() {
        let s = schema();
        let p = Predicate::compare(FieldRef::new("part", "missing"), CmpOp::Eq, 1i64);
        assert!(p.evaluate(&s, &tuple(1, 1, "x")).is_err());
    }

    #[test]
    fn parameterized_predicate_uses_defaults() {
        let st = stats(1000);
        let p =
            Predicate::compare(FieldRef::new("part", "p_size"), CmpOp::Eq, 3i64).parameterized();
        assert!(p.is_complex());
        assert_eq!(p.estimate_selectivity(Some(&st)), 0.1);
        // The same predicate un-parameterized uses the histogram (1/50 ≈ 0.02).
        let q = Predicate::compare(FieldRef::new("part", "p_size"), CmpOp::Eq, 3i64);
        let est = q.estimate_selectivity(Some(&st));
        assert!(est < 0.05, "histogram estimate {est} should be ~1/50");
    }

    #[test]
    fn udf_estimate_is_default_factor() {
        let st = stats(1000);
        let p = Predicate::udf("f", FieldRef::new("part", "p_brand"), |_| true);
        assert_eq!(p.estimate_selectivity(Some(&st)), 0.1);
    }

    #[test]
    fn range_estimate_uses_histogram() {
        let st = stats(10_000);
        let p = Predicate::compare(FieldRef::new("part", "p_size"), CmpOp::Lt, 25i64);
        let est = p.estimate_selectivity(Some(&st));
        assert!((est - 0.5).abs() < 0.1, "estimate {est} should be ~0.5");
    }

    #[test]
    fn missing_stats_fall_back_to_defaults() {
        let p = Predicate::compare(FieldRef::new("part", "p_size"), CmpOp::Gt, 25i64);
        assert!((p.estimate_selectivity(None) - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn conjunction_evaluation_and_independence_assumption() {
        let s = schema();
        let preds = vec![
            Predicate::compare(FieldRef::new("part", "p_size"), CmpOp::Lt, 10i64),
            Predicate::in_list(FieldRef::new("part", "p_brand"), vec![Value::from("A")]),
        ];
        assert!(evaluate_all(&preds, &s, &tuple(1, 5, "A")).unwrap());
        assert!(!evaluate_all(&preds, &s, &tuple(1, 5, "B")).unwrap());
        let st = stats(1000);
        let combined = combined_selectivity(&preds, Some(&st));
        let individual: f64 = preds
            .iter()
            .map(|p| p.estimate_selectivity(Some(&st)))
            .product();
        assert!((combined - individual).abs() < 1e-12);
    }

    #[test]
    fn describe_mentions_parameterization() {
        let p = Predicate::compare(FieldRef::new("d", "f"), CmpOp::Eq, 1i64).parameterized();
        assert!(p.describe().contains("[param]"));
        let u = Predicate::udf("myudf", FieldRef::new("d", "f"), |_| true);
        assert!(u.describe().contains("myudf"));
    }
}
