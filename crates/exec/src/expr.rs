//! Selection predicates, including the "complex" predicates (UDFs and
//! parameterized values) whose selectivity a static optimizer cannot estimate.
//!
//! Section 5.1 of the paper distinguishes three cases:
//!
//! 1. a single fixed-value predicate — estimable from the equi-height histogram;
//! 2. multiple fixed-value predicates — traditional optimizers multiply the
//!    individual selectivities (assuming independence), which is wrong under
//!    correlation;
//! 3. complex predicates (UDFs, parameterized values) — traditional optimizers
//!    fall back to the System-R default factors (1/10 for equality, 1/3 for
//!    inequalities).
//!
//! The dynamic approach instead *executes* such predicates first and measures
//! the result, so [`Predicate::evaluate`] is the ground truth while
//! [`Predicate::estimate_selectivity`] is what the static baselines see.

use rdo_common::{Batch, Column, FieldRef, NullBitmap, RdoError, Result, Schema, Tuple, Value};
use rdo_sketch::DatasetStats;
use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// Comparison operators supported in the WHERE clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    fn apply(&self, lhs: &Value, rhs: &Value) -> bool {
        match self {
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
        }
    }

    /// The System-R default selectivity factor used when nothing is known about
    /// the operand (Selinger et al., as cited by the paper).
    pub fn default_selectivity(&self) -> f64 {
        match self {
            CmpOp::Eq => 0.1,
            CmpOp::Ne => 0.9,
            _ => 1.0 / 3.0,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// A user-defined boolean function over one column value.
pub type UdfFn = Arc<dyn Fn(&Value) -> bool + Send + Sync>;

/// The expression forms a local predicate can take.
#[derive(Clone)]
pub enum PredicateExpr {
    /// `field op constant`
    Compare {
        /// Column being filtered.
        field: FieldRef,
        /// Comparison operator.
        op: CmpOp,
        /// Constant operand.
        value: Value,
    },
    /// `field BETWEEN lo AND hi` (inclusive).
    Between {
        /// Column being filtered.
        field: FieldRef,
        /// Lower bound (inclusive).
        lo: Value,
        /// Upper bound (inclusive).
        hi: Value,
    },
    /// `field IN (values...)`.
    InList {
        /// Column being filtered.
        field: FieldRef,
        /// Accepted values.
        values: Vec<Value>,
    },
    /// `udf(field)` — a black-box boolean UDF.
    Udf {
        /// Name used for display/explain output.
        name: String,
        /// Column the UDF reads.
        field: FieldRef,
        /// The function itself.
        func: UdfFn,
    },
}

impl fmt::Debug for PredicateExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PredicateExpr::Compare { field, op, value } => {
                write!(f, "{field} {op} {value}")
            }
            PredicateExpr::Between { field, lo, hi } => {
                write!(f, "{field} BETWEEN {lo} AND {hi}")
            }
            PredicateExpr::InList { field, values } => {
                write!(f, "{field} IN ({} values)", values.len())
            }
            PredicateExpr::Udf { name, field, .. } => write!(f, "{name}({field})"),
        }
    }
}

/// A local selection predicate on a single dataset.
#[derive(Debug, Clone)]
pub struct Predicate {
    /// The predicate expression.
    pub expr: PredicateExpr,
    /// True if the constant(s) are query parameters bound only at runtime, so a
    /// static optimizer must use default selectivities even for simple
    /// comparisons.
    pub parameterized: bool,
}

impl Predicate {
    /// A simple comparison with a fixed value.
    pub fn compare(field: FieldRef, op: CmpOp, value: impl Into<Value>) -> Self {
        Self {
            expr: PredicateExpr::Compare {
                field,
                op,
                value: value.into(),
            },
            parameterized: false,
        }
    }

    /// An inclusive range predicate with fixed bounds.
    pub fn between(field: FieldRef, lo: impl Into<Value>, hi: impl Into<Value>) -> Self {
        Self {
            expr: PredicateExpr::Between {
                field,
                lo: lo.into(),
                hi: hi.into(),
            },
            parameterized: false,
        }
    }

    /// An IN-list predicate with fixed values.
    pub fn in_list(field: FieldRef, values: Vec<Value>) -> Self {
        Self {
            expr: PredicateExpr::InList { field, values },
            parameterized: false,
        }
    }

    /// A black-box UDF predicate.
    pub fn udf(
        name: impl Into<String>,
        field: FieldRef,
        func: impl Fn(&Value) -> bool + Send + Sync + 'static,
    ) -> Self {
        Self {
            expr: PredicateExpr::Udf {
                name: name.into(),
                field,
                func: Arc::new(func),
            },
            parameterized: false,
        }
    }

    /// Marks the predicate as parameterized (value bound at runtime).
    pub fn parameterized(mut self) -> Self {
        self.parameterized = true;
        self
    }

    /// The dataset the predicate is local to.
    pub fn dataset(&self) -> &str {
        &self.field().dataset
    }

    /// The column the predicate reads.
    pub fn field(&self) -> &FieldRef {
        match &self.expr {
            PredicateExpr::Compare { field, .. }
            | PredicateExpr::Between { field, .. }
            | PredicateExpr::InList { field, .. }
            | PredicateExpr::Udf { field, .. } => field,
        }
    }

    /// True if the predicate is "complex" in the paper's sense: a UDF or a
    /// parameterized comparison, whose selectivity a static optimizer cannot
    /// derive from histograms.
    pub fn is_complex(&self) -> bool {
        self.parameterized || matches!(self.expr, PredicateExpr::Udf { .. })
    }

    /// Evaluates the predicate against one tuple.
    pub fn evaluate(&self, schema: &Schema, tuple: &Tuple) -> Result<bool> {
        let idx = schema.resolve(self.field())?;
        let value = tuple.value(idx);
        if value.is_null() {
            return Ok(false);
        }
        Ok(self.matches_value(value))
    }

    /// The predicate's decision for a single *non-null* value (the shared
    /// core of the row path and the batch fallback path; NULL handling —
    /// always false — happens at the call sites).
    fn matches_value(&self, value: &Value) -> bool {
        match &self.expr {
            PredicateExpr::Compare { op, value: rhs, .. } => op.apply(value, rhs),
            PredicateExpr::Between { lo, hi, .. } => value >= lo && value <= hi,
            PredicateExpr::InList { values, .. } => values.contains(value),
            PredicateExpr::Udf { func, .. } => func(value),
        }
    }

    /// Evaluates the predicate against a whole [`Batch`] column-at-a-time,
    /// AND-ing the decision into `mask` (one slot per row; rows already
    /// false are left false, NULL slots become false).
    ///
    /// Typed columns with a compatible constant operand run a monomorphic
    /// fast loop over the raw payload slice (no `Value` materialization, no
    /// per-row schema resolution); everything else — [`Column::Mixed`]
    /// columns, UDFs, and cross-type comparisons whose semantics depend on
    /// [`Value`]'s variant order (e.g. a `Date` column against a `Float64`
    /// constant) — falls back to materializing each value and applying the
    /// row-path decision, so both paths agree bit-for-bit by construction.
    pub fn evaluate_batch(&self, schema: &Schema, batch: &Batch, mask: &mut [bool]) -> Result<()> {
        debug_assert_eq!(mask.len(), batch.num_rows());
        let idx = schema.resolve(self.field())?;
        let col = batch.column(idx);
        if self.eval_batch_fast(col, mask) {
            return Ok(());
        }
        for (i, m) in mask.iter_mut().enumerate() {
            if *m {
                let value = col.value(i);
                *m = !value.is_null() && self.matches_value(&value);
            }
        }
        Ok(())
    }

    /// Attempts the columnar fast path; returns false when this
    /// predicate/column pairing needs the row fallback.
    fn eval_batch_fast(&self, col: &Column, mask: &mut [bool]) -> bool {
        match col {
            Column::Int64 { values, validity } => self.eval_int_fast(values, validity, false, mask),
            Column::Date { values, validity } => self.eval_int_fast(values, validity, true, mask),
            Column::Float64 { values, validity } => self.eval_float_fast(values, validity, mask),
            Column::Utf8 {
                offsets,
                bytes,
                validity,
            } => self.eval_utf8_fast(offsets, bytes, validity, mask),
            Column::Bool { values, validity } => self.eval_bool_fast(values, validity, mask),
            Column::Mixed { .. } => false,
        }
    }

    /// Fast path over an `Int64` (or, with `is_date`, a `Date`) payload
    /// slice. A `Date` column refuses `Float64` operands — their relative
    /// order is the cross-type variant order, not numeric — and falls back.
    fn eval_int_fast(
        &self,
        values: &[i64],
        validity: &NullBitmap,
        is_date: bool,
        mask: &mut [bool],
    ) -> bool {
        let rhs_of = |v: &Value| match v {
            Value::Int64(b) | Value::Date(b) => Some(NumRhs::Int(*b)),
            Value::Float64(b) if !is_date => Some(NumRhs::Float(*b)),
            _ => None,
        };
        match &self.expr {
            PredicateExpr::Compare { op, value: rhs, .. } => {
                let Some(rhs) = rhs_of(rhs) else { return false };
                for (i, m) in mask.iter_mut().enumerate() {
                    *m = *m && validity.is_valid(i) && cmp_matches(*op, rhs.ord_i64(values[i]));
                }
                true
            }
            PredicateExpr::Between { lo, hi, .. } => {
                let (Some(lo), Some(hi)) = (rhs_of(lo), rhs_of(hi)) else {
                    return false;
                };
                for (i, m) in mask.iter_mut().enumerate() {
                    *m = *m
                        && validity.is_valid(i)
                        && lo.ord_i64(values[i]) != Ordering::Less
                        && hi.ord_i64(values[i]) != Ordering::Greater;
                }
                true
            }
            PredicateExpr::InList { values: list, .. } => {
                // Unlike Compare/Between, entries of a foreign variant can
                // simply be dropped: they can never be *equal* to an
                // integer/date slot.
                let entries: Vec<NumRhs> = list.iter().filter_map(rhs_of).collect();
                for (i, m) in mask.iter_mut().enumerate() {
                    *m = *m
                        && validity.is_valid(i)
                        && entries
                            .iter()
                            .any(|e| e.ord_i64(values[i]) == Ordering::Equal);
                }
                true
            }
            PredicateExpr::Udf { .. } => false,
        }
    }

    /// Fast path over a `Float64` payload slice. `Date` operands fall back
    /// (cross-type variant order); integers widen and compare through the
    /// same NaN-aware total order as [`Value`]'s `Ord`.
    fn eval_float_fast(&self, values: &[f64], validity: &NullBitmap, mask: &mut [bool]) -> bool {
        let rhs_of = |v: &Value| match v {
            Value::Int64(b) => Some(*b as f64),
            Value::Float64(b) => Some(*b),
            _ => None,
        };
        match &self.expr {
            PredicateExpr::Compare { op, value: rhs, .. } => {
                let Some(rhs) = rhs_of(rhs) else { return false };
                for (i, m) in mask.iter_mut().enumerate() {
                    *m = *m && validity.is_valid(i) && cmp_matches(*op, values[i].total_cmp(&rhs));
                }
                true
            }
            PredicateExpr::Between { lo, hi, .. } => {
                let (Some(lo), Some(hi)) = (rhs_of(lo), rhs_of(hi)) else {
                    return false;
                };
                for (i, m) in mask.iter_mut().enumerate() {
                    *m = *m
                        && validity.is_valid(i)
                        && values[i].total_cmp(&lo) != Ordering::Less
                        && values[i].total_cmp(&hi) != Ordering::Greater;
                }
                true
            }
            PredicateExpr::InList { values: list, .. } => {
                let entries: Vec<f64> = list.iter().filter_map(rhs_of).collect();
                for (i, m) in mask.iter_mut().enumerate() {
                    *m = *m
                        && validity.is_valid(i)
                        && entries
                            .iter()
                            .any(|e| values[i].total_cmp(e) == Ordering::Equal);
                }
                true
            }
            PredicateExpr::Udf { .. } => false,
        }
    }

    /// Fast path over a `Utf8` column: borrowed `&str` comparisons straight
    /// out of the contiguous byte buffer.
    fn eval_utf8_fast(
        &self,
        offsets: &[usize],
        bytes: &[u8],
        validity: &NullBitmap,
        mask: &mut [bool],
    ) -> bool {
        let str_at =
            |i: usize| std::str::from_utf8(&bytes[offsets[i]..offsets[i + 1]]).unwrap_or("");
        match &self.expr {
            PredicateExpr::Compare { op, value: rhs, .. } => {
                let Value::Utf8(rhs) = rhs else { return false };
                for (i, m) in mask.iter_mut().enumerate() {
                    *m =
                        *m && validity.is_valid(i) && cmp_matches(*op, str_at(i).cmp(rhs.as_str()));
                }
                true
            }
            PredicateExpr::Between { lo, hi, .. } => {
                let (Value::Utf8(lo), Value::Utf8(hi)) = (lo, hi) else {
                    return false;
                };
                for (i, m) in mask.iter_mut().enumerate() {
                    *m = *m
                        && validity.is_valid(i)
                        && str_at(i) >= lo.as_str()
                        && str_at(i) <= hi.as_str();
                }
                true
            }
            PredicateExpr::InList { values: list, .. } => {
                let entries: Vec<&str> = list.iter().filter_map(Value::as_str).collect();
                for (i, m) in mask.iter_mut().enumerate() {
                    *m = *m && validity.is_valid(i) && entries.contains(&str_at(i));
                }
                true
            }
            PredicateExpr::Udf { .. } => false,
        }
    }

    /// Fast path over a `Bool` payload slice.
    fn eval_bool_fast(&self, values: &[bool], validity: &NullBitmap, mask: &mut [bool]) -> bool {
        match &self.expr {
            PredicateExpr::Compare { op, value: rhs, .. } => {
                let Value::Bool(rhs) = rhs else { return false };
                for (i, m) in mask.iter_mut().enumerate() {
                    *m = *m && validity.is_valid(i) && cmp_matches(*op, values[i].cmp(rhs));
                }
                true
            }
            PredicateExpr::Between { lo, hi, .. } => {
                let (Value::Bool(lo), Value::Bool(hi)) = (lo, hi) else {
                    return false;
                };
                for (i, m) in mask.iter_mut().enumerate() {
                    *m = *m && validity.is_valid(i) && values[i] >= *lo && values[i] <= *hi;
                }
                true
            }
            PredicateExpr::InList { values: list, .. } => {
                let entries: Vec<bool> = list.iter().filter_map(Value::as_bool).collect();
                for (i, m) in mask.iter_mut().enumerate() {
                    *m = *m && validity.is_valid(i) && entries.contains(&values[i]);
                }
                true
            }
            PredicateExpr::Udf { .. } => false,
        }
    }

    /// Selectivity as seen by a *static* optimizer: histogram-based for simple
    /// fixed-value predicates, System-R default factors for complex ones.
    pub fn estimate_selectivity(&self, stats: Option<&DatasetStats>) -> f64 {
        if self.is_complex() {
            return self.default_selectivity();
        }
        let column = stats.and_then(|s| s.column(&self.field().field));
        match (&self.expr, column) {
            (PredicateExpr::Compare { op, value, .. }, Some(col)) => {
                let v = value.numeric_rank();
                match op {
                    CmpOp::Eq => col.equality_selectivity(v),
                    CmpOp::Ne => 1.0 - col.equality_selectivity(v),
                    CmpOp::Lt | CmpOp::Le => col.range_selectivity(f64::NEG_INFINITY, v),
                    CmpOp::Gt | CmpOp::Ge => col.range_selectivity(v, f64::INFINITY),
                }
            }
            (PredicateExpr::Between { lo, hi, .. }, Some(col)) => {
                col.range_selectivity(lo.numeric_rank(), hi.numeric_rank())
            }
            (PredicateExpr::InList { values, .. }, Some(col)) => values
                .iter()
                .map(|v| col.equality_selectivity(v.numeric_rank()))
                .sum::<f64>()
                .min(1.0),
            _ => self.default_selectivity(),
        }
    }

    /// The System-R default selectivity factor for this predicate shape.
    pub fn default_selectivity(&self) -> f64 {
        match &self.expr {
            PredicateExpr::Compare { op, .. } => op.default_selectivity(),
            PredicateExpr::Between { .. } => 0.25,
            PredicateExpr::InList { values, .. } => (0.1 * values.len() as f64).min(0.5),
            PredicateExpr::Udf { .. } => 0.1,
        }
    }

    /// Short human-readable form used by EXPLAIN output.
    pub fn describe(&self) -> String {
        let base = format!("{:?}", self.expr);
        if self.parameterized {
            format!("{base} [param]")
        } else {
            base
        }
    }
}

/// A numeric constant operand of a columnar fast loop: either an exact
/// integer or a float compared through the NaN-aware total order, mirroring
/// the corresponding [`Value`] `Ord` arms.
enum NumRhs {
    /// `Int64`/`Date` operand: exact integer comparison.
    Int(i64),
    /// `Float64` operand: the integer slot widens and total-order compares.
    Float(f64),
}

impl NumRhs {
    /// Ordering of an integer column slot relative to this operand.
    fn ord_i64(&self, v: i64) -> Ordering {
        match self {
            NumRhs::Int(b) => v.cmp(b),
            NumRhs::Float(b) => (v as f64).total_cmp(b),
        }
    }
}

/// Whether `ord` — the ordering of the column value relative to the constant
/// operand — satisfies `op`.
fn cmp_matches(op: CmpOp, ord: Ordering) -> bool {
    match op {
        CmpOp::Eq => ord == Ordering::Equal,
        CmpOp::Ne => ord != Ordering::Equal,
        CmpOp::Lt => ord == Ordering::Less,
        CmpOp::Le => ord != Ordering::Greater,
        CmpOp::Gt => ord == Ordering::Greater,
        CmpOp::Ge => ord != Ordering::Less,
    }
}

/// Evaluates a conjunction of predicates.
pub fn evaluate_all(predicates: &[Predicate], schema: &Schema, tuple: &Tuple) -> Result<bool> {
    for p in predicates {
        if !p.evaluate(schema, tuple)? {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Evaluates a conjunction of predicates over a whole [`Batch`], returning
/// the selection mask (one bool per row). The batch analogue of
/// [`evaluate_all`]: NULLs never match, and a predicate is only evaluated —
/// and its column reference only resolved — while at least one row is still
/// live, matching the row path's per-tuple short-circuit.
pub fn evaluate_all_batch(
    predicates: &[Predicate],
    schema: &Schema,
    batch: &Batch,
) -> Result<Vec<bool>> {
    let mut mask = vec![true; batch.num_rows()];
    for p in predicates {
        if !mask.iter().any(|&m| m) {
            break;
        }
        p.evaluate_batch(schema, batch, &mut mask)?;
    }
    Ok(mask)
}

/// Static selectivity of a conjunction assuming independence (what traditional
/// optimizers do; the paper highlights this as a source of error for correlated
/// predicates).
pub fn combined_selectivity(predicates: &[Predicate], stats: Option<&DatasetStats>) -> f64 {
    predicates
        .iter()
        .map(|p| p.estimate_selectivity(stats))
        .product()
}

/// Convenience error constructor used by operators when a predicate references
/// a column missing from the input schema.
pub fn unknown_field(field: &FieldRef) -> RdoError {
    RdoError::UnknownField(field.qualified())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdo_common::DataType;
    use rdo_sketch::DatasetStatsBuilder;

    fn schema() -> Schema {
        Schema::for_dataset(
            "part",
            &[
                ("p_partkey", DataType::Int64),
                ("p_size", DataType::Int64),
                ("p_brand", DataType::Utf8),
            ],
        )
    }

    fn tuple(key: i64, size: i64, brand: &str) -> Tuple {
        Tuple::new(vec![
            Value::Int64(key),
            Value::Int64(size),
            Value::from(brand),
        ])
    }

    fn stats(n: i64) -> DatasetStats {
        let mut b = DatasetStatsBuilder::all_columns(&schema());
        for i in 0..n {
            b.observe(&tuple(i, i % 50, &format!("Brand#{}", i % 5)));
        }
        b.build()
    }

    #[test]
    fn compare_evaluation() {
        let s = schema();
        let p = Predicate::compare(FieldRef::new("part", "p_size"), CmpOp::Lt, 10i64);
        assert!(p.evaluate(&s, &tuple(1, 5, "x")).unwrap());
        assert!(!p.evaluate(&s, &tuple(1, 15, "x")).unwrap());
    }

    #[test]
    fn between_and_inlist_evaluation() {
        let s = schema();
        let b = Predicate::between(FieldRef::new("part", "p_size"), 10i64, 20i64);
        assert!(b.evaluate(&s, &tuple(1, 10, "x")).unwrap());
        assert!(b.evaluate(&s, &tuple(1, 20, "x")).unwrap());
        assert!(!b.evaluate(&s, &tuple(1, 21, "x")).unwrap());

        let l = Predicate::in_list(
            FieldRef::new("part", "p_brand"),
            vec![Value::from("A"), Value::from("B")],
        );
        assert!(l.evaluate(&s, &tuple(1, 1, "A")).unwrap());
        assert!(!l.evaluate(&s, &tuple(1, 1, "C")).unwrap());
    }

    #[test]
    fn udf_evaluation_and_complexity() {
        let s = schema();
        let p = Predicate::udf("mysub", FieldRef::new("part", "p_brand"), |v| {
            v.as_str().map(|s| s.ends_with("#3")).unwrap_or(false)
        });
        assert!(p.is_complex());
        assert!(p.evaluate(&s, &tuple(1, 1, "Brand#3")).unwrap());
        assert!(!p.evaluate(&s, &tuple(1, 1, "Brand#4")).unwrap());
    }

    #[test]
    fn null_never_matches() {
        let s = schema();
        let p = Predicate::compare(FieldRef::new("part", "p_size"), CmpOp::Ne, 5i64);
        let t = Tuple::new(vec![Value::Int64(1), Value::Null, Value::from("x")]);
        assert!(!p.evaluate(&s, &t).unwrap());
    }

    #[test]
    fn unknown_column_errors() {
        let s = schema();
        let p = Predicate::compare(FieldRef::new("part", "missing"), CmpOp::Eq, 1i64);
        assert!(p.evaluate(&s, &tuple(1, 1, "x")).is_err());
    }

    #[test]
    fn parameterized_predicate_uses_defaults() {
        let st = stats(1000);
        let p =
            Predicate::compare(FieldRef::new("part", "p_size"), CmpOp::Eq, 3i64).parameterized();
        assert!(p.is_complex());
        assert_eq!(p.estimate_selectivity(Some(&st)), 0.1);
        // The same predicate un-parameterized uses the histogram (1/50 ≈ 0.02).
        let q = Predicate::compare(FieldRef::new("part", "p_size"), CmpOp::Eq, 3i64);
        let est = q.estimate_selectivity(Some(&st));
        assert!(est < 0.05, "histogram estimate {est} should be ~1/50");
    }

    #[test]
    fn udf_estimate_is_default_factor() {
        let st = stats(1000);
        let p = Predicate::udf("f", FieldRef::new("part", "p_brand"), |_| true);
        assert_eq!(p.estimate_selectivity(Some(&st)), 0.1);
    }

    #[test]
    fn range_estimate_uses_histogram() {
        let st = stats(10_000);
        let p = Predicate::compare(FieldRef::new("part", "p_size"), CmpOp::Lt, 25i64);
        let est = p.estimate_selectivity(Some(&st));
        assert!((est - 0.5).abs() < 0.1, "estimate {est} should be ~0.5");
    }

    #[test]
    fn missing_stats_fall_back_to_defaults() {
        let p = Predicate::compare(FieldRef::new("part", "p_size"), CmpOp::Gt, 25i64);
        assert!((p.estimate_selectivity(None) - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn conjunction_evaluation_and_independence_assumption() {
        let s = schema();
        let preds = vec![
            Predicate::compare(FieldRef::new("part", "p_size"), CmpOp::Lt, 10i64),
            Predicate::in_list(FieldRef::new("part", "p_brand"), vec![Value::from("A")]),
        ];
        assert!(evaluate_all(&preds, &s, &tuple(1, 5, "A")).unwrap());
        assert!(!evaluate_all(&preds, &s, &tuple(1, 5, "B")).unwrap());
        let st = stats(1000);
        let combined = combined_selectivity(&preds, Some(&st));
        let individual: f64 = preds
            .iter()
            .map(|p| p.estimate_selectivity(Some(&st)))
            .product();
        assert!((combined - individual).abs() < 1e-12);
    }

    #[test]
    fn describe_mentions_parameterization() {
        let p = Predicate::compare(FieldRef::new("d", "f"), CmpOp::Eq, 1i64).parameterized();
        assert!(p.describe().contains("[param]"));
        let u = Predicate::udf("myudf", FieldRef::new("d", "f"), |_| true);
        assert!(u.describe().contains("myudf"));
    }

    /// The contract of the columnar path: for every predicate shape and
    /// every column representation (typed fast path, Mixed fallback), the
    /// batch mask equals the per-row decisions bit-for-bit.
    #[test]
    fn batch_evaluation_matches_row_evaluation() {
        use rdo_common::Batch;
        let s = Schema::for_dataset(
            "t",
            &[
                ("i", DataType::Int64),
                ("f", DataType::Float64),
                ("s", DataType::Utf8),
                ("b", DataType::Bool),
                ("d", DataType::Date),
            ],
        );
        let rows = vec![
            Tuple::new(vec![
                Value::Int64(5),
                Value::Float64(1.5),
                Value::from("apple"),
                Value::Bool(true),
                Value::Date(100),
            ]),
            Tuple::new(vec![
                Value::Null,
                Value::Float64(f64::NAN),
                Value::Null,
                Value::Bool(false),
                Value::Null,
            ]),
            Tuple::new(vec![
                Value::Int64(-3),
                Value::Float64(-0.0),
                Value::from(""),
                Value::Null,
                Value::Date(50),
            ]),
            Tuple::new(vec![
                Value::Int64(7),
                Value::Null,
                Value::from("banana"),
                Value::Bool(true),
                Value::Date(100),
            ]),
        ];
        let field = |name: &str| FieldRef::new("t", name);
        let predicates = vec![
            // Typed fast paths of every shape.
            Predicate::compare(field("i"), CmpOp::Ge, 0i64),
            Predicate::compare(field("i"), CmpOp::Lt, 6.5f64),
            Predicate::between(field("i"), -5i64, 6i64),
            Predicate::in_list(field("i"), vec![Value::Int64(5), Value::from("x")]),
            Predicate::compare(field("f"), CmpOp::Ne, f64::NAN),
            Predicate::compare(field("f"), CmpOp::Gt, -1i64),
            Predicate::between(field("f"), -1.0f64, 2.0f64),
            Predicate::compare(field("s"), CmpOp::Ge, "a"),
            Predicate::between(field("s"), "a", "az"),
            Predicate::in_list(field("s"), vec![Value::from("apple"), Value::Int64(1)]),
            Predicate::compare(field("b"), CmpOp::Eq, true),
            Predicate::in_list(field("b"), vec![Value::Bool(true)]),
            Predicate::compare(field("d"), CmpOp::Le, 100i64),
            Predicate::between(field("d"), Value::Date(60), Value::Date(100)),
            Predicate::in_list(field("d"), vec![Value::Date(100), Value::Float64(100.0)]),
            // Cross-type pairings that must take the row fallback (the
            // relative order of Date and Float64 is the variant order).
            Predicate::compare(field("d"), CmpOp::Lt, 1e18f64),
            Predicate::compare(field("f"), CmpOp::Lt, Value::Date(0)),
            Predicate::compare(field("i"), CmpOp::Lt, "zzz"),
            // UDFs always take the fallback.
            Predicate::udf("starts_a", field("s"), |v| {
                v.as_str().map(|s| s.starts_with('a')).unwrap_or(false)
            }),
        ];
        let batch = Batch::from_rows(5, &rows);
        for p in &predicates {
            let mut mask = vec![true; rows.len()];
            p.evaluate_batch(&s, &batch, &mut mask).unwrap();
            for (i, row) in rows.iter().enumerate() {
                assert_eq!(
                    mask[i],
                    p.evaluate(&s, row).unwrap(),
                    "row {i} disagrees for {}",
                    p.describe()
                );
            }
        }
        // Conjunction, including the all-rows-dead short-circuit.
        let conj = vec![
            Predicate::compare(field("i"), CmpOp::Gt, 100i64),
            Predicate::compare(field("missing"), CmpOp::Eq, 1i64),
        ];
        let mask = evaluate_all_batch(&conj, &s, &batch).unwrap();
        assert!(
            mask.iter().all(|&m| !m),
            "no row survives, no resolve error"
        );
        // A heterogeneous column forces the Mixed fallback.
        let hs = Schema::for_dataset("h", &[("x", DataType::Int64)]);
        let hrows = vec![
            Tuple::new(vec![Value::Int64(1)]),
            Tuple::new(vec![Value::from("one")]),
        ];
        let hbatch = Batch::from_rows(1, &hrows);
        let p = Predicate::compare(FieldRef::new("h", "x"), CmpOp::Eq, 1i64);
        let mask = evaluate_all_batch(std::slice::from_ref(&p), &hs, &hbatch).unwrap();
        assert_eq!(mask[0], p.evaluate(&hs, &hrows[0]).unwrap());
        assert_eq!(mask[1], p.evaluate(&hs, &hrows[1]).unwrap());
    }
}
