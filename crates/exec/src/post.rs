//! Post-join operators: grouping/aggregation, ordering and limiting.
//!
//! The paper concentrates on multi-join queries and notes (Section 6.4) that
//! other operators present in a query — GROUP BY, ORDER BY, LIMIT in TPC-DS
//! Q17 — "are evaluated after all the joins and selections have been completed
//! and traditional optimization has been applied". This module provides exactly
//! that post-processing stage: a [`PostProcess`] description applied to the
//! final joined [`Relation`].

use crate::expr::unknown_field;
use rdo_common::{DataType, Field, FieldRef, Relation, Result, Schema, Tuple, Value};
use std::cmp::Ordering;
use std::collections::HashMap;
use std::fmt;

/// The aggregate functions supported in the SELECT list of a grouped query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggregateFunc {
    /// `COUNT(col)` / `COUNT(*)` — number of non-null inputs (or rows for `*`).
    Count,
    /// `SUM(col)`.
    Sum,
    /// `MIN(col)`.
    Min,
    /// `MAX(col)`.
    Max,
    /// `AVG(col)`.
    Avg,
}

impl AggregateFunc {
    /// Parses the SQL name of an aggregate function, case-insensitively.
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_uppercase().as_str() {
            "COUNT" => Some(AggregateFunc::Count),
            "SUM" => Some(AggregateFunc::Sum),
            "MIN" => Some(AggregateFunc::Min),
            "MAX" => Some(AggregateFunc::Max),
            "AVG" => Some(AggregateFunc::Avg),
            _ => None,
        }
    }

    /// The SQL name of the function.
    pub fn name(&self) -> &'static str {
        match self {
            AggregateFunc::Count => "COUNT",
            AggregateFunc::Sum => "SUM",
            AggregateFunc::Min => "MIN",
            AggregateFunc::Max => "MAX",
            AggregateFunc::Avg => "AVG",
        }
    }

    /// The output type of the aggregate given the input column type.
    pub fn output_type(&self, input: DataType) -> DataType {
        match self {
            AggregateFunc::Count => DataType::Int64,
            AggregateFunc::Avg => DataType::Float64,
            AggregateFunc::Sum => match input {
                DataType::Float64 => DataType::Float64,
                _ => DataType::Int64,
            },
            AggregateFunc::Min | AggregateFunc::Max => input,
        }
    }
}

impl fmt::Display for AggregateFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One aggregate expression of the SELECT list, e.g. `SUM(ss_quantity) AS qty`.
#[derive(Debug, Clone)]
pub struct AggregateExpr {
    /// The aggregate function.
    pub func: AggregateFunc,
    /// The input column. `None` means `COUNT(*)`.
    pub input: Option<FieldRef>,
    /// Output column name.
    pub alias: String,
}

impl AggregateExpr {
    /// Creates an aggregate over a column.
    pub fn new(func: AggregateFunc, input: FieldRef, alias: impl Into<String>) -> Self {
        Self {
            func,
            input: Some(input),
            alias: alias.into(),
        }
    }

    /// Creates a `COUNT(*)`.
    pub fn count_star(alias: impl Into<String>) -> Self {
        Self {
            func: AggregateFunc::Count,
            input: None,
            alias: alias.into(),
        }
    }

    /// Human-readable form, e.g. `SUM(store_sales.ss_quantity) AS qty`.
    pub fn describe(&self) -> String {
        match &self.input {
            Some(input) => format!("{}({}) AS {}", self.func, input, self.alias),
            None => format!("{}(*) AS {}", self.func, self.alias),
        }
    }
}

/// One ORDER BY key.
#[derive(Debug, Clone)]
pub struct SortKey {
    /// Column to sort on. Resolved against the post-aggregation schema first
    /// (so ordering by an aggregate alias works) and the input schema otherwise.
    pub field: FieldRef,
    /// True for ascending order (the default), false for `DESC`.
    pub ascending: bool,
}

impl SortKey {
    /// An ascending sort key.
    pub fn asc(field: FieldRef) -> Self {
        Self {
            field,
            ascending: true,
        }
    }

    /// A descending sort key.
    pub fn desc(field: FieldRef) -> Self {
        Self {
            field,
            ascending: false,
        }
    }
}

/// The post-join stage of a query: optional grouping/aggregation, ordering and
/// limit, applied to the final joined relation.
#[derive(Debug, Clone, Default)]
pub struct PostProcess {
    /// GROUP BY columns (empty means no grouping unless aggregates are present,
    /// in which case the whole input is a single group).
    pub group_by: Vec<FieldRef>,
    /// Aggregates of the SELECT list.
    pub aggregates: Vec<AggregateExpr>,
    /// ORDER BY keys, applied in order.
    pub order_by: Vec<SortKey>,
    /// LIMIT, applied last.
    pub limit: Option<usize>,
}

impl PostProcess {
    /// A post-process stage that does nothing.
    pub fn none() -> Self {
        Self::default()
    }

    /// True if no post-processing is required.
    pub fn is_empty(&self) -> bool {
        self.group_by.is_empty()
            && self.aggregates.is_empty()
            && self.order_by.is_empty()
            && self.limit.is_none()
    }

    /// True if the stage performs grouping or aggregation.
    pub fn has_aggregation(&self) -> bool {
        !self.group_by.is_empty() || !self.aggregates.is_empty()
    }

    /// Adds a GROUP BY column (builder style).
    pub fn group(mut self, field: FieldRef) -> Self {
        self.group_by.push(field);
        self
    }

    /// Adds an aggregate (builder style).
    pub fn aggregate(mut self, agg: AggregateExpr) -> Self {
        self.aggregates.push(agg);
        self
    }

    /// Adds an ORDER BY key (builder style).
    pub fn order(mut self, key: SortKey) -> Self {
        self.order_by.push(key);
        self
    }

    /// Sets the LIMIT (builder style).
    pub fn with_limit(mut self, limit: usize) -> Self {
        self.limit = Some(limit);
        self
    }

    /// Applies the stage to a relation: aggregation first, then ordering, then
    /// the limit — the order SQL semantics prescribes.
    pub fn apply(&self, input: Relation) -> Result<Relation> {
        let mut span = if self.is_empty() {
            None
        } else {
            let mut s = rdo_trace::span("exec.post");
            s.attr_u64("rows_in", input.len() as u64);
            Some(s)
        };
        let mut current = if self.has_aggregation() {
            aggregate(&input, &self.group_by, &self.aggregates)?
        } else {
            input
        };
        if !self.order_by.is_empty() {
            current = sort(current, &self.order_by)?;
        }
        if let Some(limit) = self.limit {
            current = truncate(current, limit);
        }
        if let Some(span) = &mut span {
            span.attr_u64("rows_out", current.len() as u64);
        }
        Ok(current)
    }

    /// Human-readable description used in EXPLAIN-style output.
    pub fn describe(&self) -> String {
        let mut parts = Vec::new();
        if !self.group_by.is_empty() {
            let cols: Vec<String> = self.group_by.iter().map(|f| f.qualified()).collect();
            parts.push(format!("group by [{}]", cols.join(", ")));
        }
        if !self.aggregates.is_empty() {
            let aggs: Vec<String> = self.aggregates.iter().map(|a| a.describe()).collect();
            parts.push(format!("aggregate [{}]", aggs.join(", ")));
        }
        if !self.order_by.is_empty() {
            let keys: Vec<String> = self
                .order_by
                .iter()
                .map(|k| {
                    format!(
                        "{} {}",
                        k.field.qualified(),
                        if k.ascending { "asc" } else { "desc" }
                    )
                })
                .collect();
            parts.push(format!("order by [{}]", keys.join(", ")));
        }
        if let Some(limit) = self.limit {
            parts.push(format!("limit {limit}"));
        }
        if parts.is_empty() {
            "no post-processing".to_string()
        } else {
            parts.join(" -> ")
        }
    }
}

/// Accumulator state for one aggregate in one group.
#[derive(Debug, Clone)]
enum Accumulator {
    Count(i64),
    Sum {
        int: i64,
        float: f64,
        saw_float: bool,
        any: bool,
    },
    Min(Option<Value>),
    Max(Option<Value>),
    Avg {
        sum: f64,
        count: i64,
    },
}

impl Accumulator {
    fn new(func: AggregateFunc) -> Self {
        match func {
            AggregateFunc::Count => Accumulator::Count(0),
            AggregateFunc::Sum => Accumulator::Sum {
                int: 0,
                float: 0.0,
                saw_float: false,
                any: false,
            },
            AggregateFunc::Min => Accumulator::Min(None),
            AggregateFunc::Max => Accumulator::Max(None),
            AggregateFunc::Avg => Accumulator::Avg { sum: 0.0, count: 0 },
        }
    }

    fn observe(&mut self, value: Option<&Value>) {
        match self {
            Accumulator::Count(n) => {
                // COUNT(*) (value == None) counts every row; COUNT(col) skips nulls.
                match value {
                    None => *n += 1,
                    Some(v) if !v.is_null() => *n += 1,
                    Some(_) => {}
                }
            }
            Accumulator::Sum {
                int,
                float,
                saw_float,
                any,
            } => {
                if let Some(v) = value {
                    match v {
                        Value::Int64(i) | Value::Date(i) => {
                            *int += i;
                            *float += *i as f64;
                            *any = true;
                        }
                        Value::Float64(f) => {
                            *float += f;
                            *saw_float = true;
                            *any = true;
                        }
                        _ => {}
                    }
                }
            }
            Accumulator::Min(current) => {
                if let Some(v) = value {
                    if !v.is_null() && current.as_ref().map(|c| v < c).unwrap_or(true) {
                        *current = Some(v.clone());
                    }
                }
            }
            Accumulator::Max(current) => {
                if let Some(v) = value {
                    if !v.is_null() && current.as_ref().map(|c| v > c).unwrap_or(true) {
                        *current = Some(v.clone());
                    }
                }
            }
            Accumulator::Avg { sum, count } => {
                if let Some(v) = value {
                    if let Some(f) = v.as_f64() {
                        *sum += f;
                        *count += 1;
                    }
                }
            }
        }
    }

    fn finish(self) -> Value {
        match self {
            Accumulator::Count(n) => Value::Int64(n),
            Accumulator::Sum {
                int,
                float,
                saw_float,
                any,
            } => {
                if !any {
                    Value::Null
                } else if saw_float {
                    Value::Float64(float)
                } else {
                    Value::Int64(int)
                }
            }
            Accumulator::Min(v) | Accumulator::Max(v) => v.unwrap_or(Value::Null),
            Accumulator::Avg { sum, count } => {
                if count == 0 {
                    Value::Null
                } else {
                    Value::Float64(sum / count as f64)
                }
            }
        }
    }
}

/// Hash aggregation of `input` on `group_by` with the given aggregates. With an
/// empty `group_by` the whole input is one group (and an empty input still
/// produces one row of aggregate defaults, matching SQL semantics).
fn aggregate(
    input: &Relation,
    group_by: &[FieldRef],
    aggregates: &[AggregateExpr],
) -> Result<Relation> {
    let schema = input.schema();
    let key_indexes = group_by
        .iter()
        .map(|f| schema.resolve(f))
        .collect::<Result<Vec<usize>>>()?;
    let agg_indexes = aggregates
        .iter()
        .map(|a| match &a.input {
            Some(field) => schema.resolve(field).map(Some),
            None => Ok(None),
        })
        .collect::<Result<Vec<Option<usize>>>>()?;

    // Output schema: the group-by columns (keeping their qualified names so
    // ORDER BY can still reference them) followed by one column per aggregate.
    let mut out_fields: Vec<Field> = key_indexes
        .iter()
        .map(|&i| schema.field(i).clone())
        .collect();
    for (agg, idx) in aggregates.iter().zip(&agg_indexes) {
        let input_type = idx
            .map(|i| schema.field(i).data_type)
            .unwrap_or(DataType::Int64);
        out_fields.push(Field::new(
            FieldRef::new("agg", agg.alias.clone()),
            agg.func.output_type(input_type),
        ));
    }
    let out_schema = Schema::new(out_fields);

    // Group rows, preserving first-seen group order for determinism.
    let mut groups: HashMap<Vec<Value>, Vec<Accumulator>> = HashMap::new();
    let mut order: Vec<Vec<Value>> = Vec::new();
    for row in input.rows() {
        let key: Vec<Value> = key_indexes.iter().map(|&i| row.value(i).clone()).collect();
        let accs = groups.entry(key.clone()).or_insert_with(|| {
            order.push(key);
            aggregates
                .iter()
                .map(|a| Accumulator::new(a.func))
                .collect()
        });
        for (acc, idx) in accs.iter_mut().zip(&agg_indexes) {
            acc.observe(idx.map(|i| row.value(i)));
        }
    }

    // SQL: an ungrouped aggregate over an empty input yields one row.
    if order.is_empty() && key_indexes.is_empty() && !aggregates.is_empty() {
        let row: Vec<Value> = aggregates
            .iter()
            .map(|a| Accumulator::new(a.func).finish())
            .collect();
        return Relation::new(out_schema, vec![Tuple::new(row)]);
    }

    let mut rows = Vec::with_capacity(order.len());
    for key in order {
        let accs = groups.remove(&key).expect("group recorded in order list");
        let mut values = key;
        values.extend(accs.into_iter().map(Accumulator::finish));
        rows.push(Tuple::new(values));
    }
    Relation::new(out_schema, rows)
}

/// Sorts a relation by the given keys (stable, so earlier keys dominate).
fn sort(input: Relation, keys: &[SortKey]) -> Result<Relation> {
    let schema = input.schema().clone();
    let resolved: Vec<(usize, bool)> = keys
        .iter()
        .map(|k| {
            schema
                .resolve(&k.field)
                .map(|i| (i, k.ascending))
                .map_err(|_| unknown_field(&k.field))
        })
        .collect::<Result<Vec<_>>>()?;
    let mut rows = input.into_rows();
    rows.sort_by(|a, b| {
        for &(idx, ascending) in &resolved {
            let ord = a.value(idx).cmp(b.value(idx));
            let ord = if ascending { ord } else { ord.reverse() };
            if ord != Ordering::Equal {
                return ord;
            }
        }
        Ordering::Equal
    });
    Relation::new(schema, rows)
}

/// Keeps only the first `limit` rows.
fn truncate(input: Relation, limit: usize) -> Relation {
    let schema = input.schema().clone();
    let mut rows = input.into_rows();
    rows.truncate(limit);
    Relation::new(schema, rows).expect("schema unchanged by truncation")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Relation {
        let schema = Schema::for_dataset(
            "sales",
            &[
                ("store", DataType::Utf8),
                ("qty", DataType::Int64),
                ("price", DataType::Float64),
            ],
        );
        let rows = vec![
            Tuple::new(vec![Value::from("a"), Value::Int64(2), Value::Float64(1.5)]),
            Tuple::new(vec![Value::from("b"), Value::Int64(5), Value::Float64(4.0)]),
            Tuple::new(vec![Value::from("a"), Value::Int64(3), Value::Float64(2.5)]),
            Tuple::new(vec![Value::from("b"), Value::Int64(1), Value::Float64(0.5)]),
            Tuple::new(vec![Value::from("a"), Value::Null, Value::Float64(9.0)]),
        ];
        Relation::new(schema, rows).unwrap()
    }

    fn field(name: &str) -> FieldRef {
        FieldRef::new("sales", name)
    }

    #[test]
    fn group_by_with_sum_count_avg() {
        let post = PostProcess::none()
            .group(field("store"))
            .aggregate(AggregateExpr::new(
                AggregateFunc::Sum,
                field("qty"),
                "total_qty",
            ))
            .aggregate(AggregateExpr::new(
                AggregateFunc::Count,
                field("qty"),
                "n_qty",
            ))
            .aggregate(AggregateExpr::count_star("n_rows"))
            .aggregate(AggregateExpr::new(
                AggregateFunc::Avg,
                field("price"),
                "avg_price",
            ))
            .order(SortKey::asc(FieldRef::new("sales", "store")));
        let out = post.apply(sample()).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out.schema().len(), 5);
        let a = out.rows()[0].values();
        assert_eq!(a[0], Value::from("a"));
        assert_eq!(a[1], Value::Int64(5)); // 2 + 3 (null skipped)
        assert_eq!(a[2], Value::Int64(2)); // COUNT(qty) skips the null
        assert_eq!(a[3], Value::Int64(3)); // COUNT(*) does not
        let avg = a[4].as_f64().unwrap();
        assert!((avg - (1.5 + 2.5 + 9.0) / 3.0).abs() < 1e-9);
        let b = out.rows()[1].values();
        assert_eq!(b[0], Value::from("b"));
        assert_eq!(b[1], Value::Int64(6));
    }

    #[test]
    fn min_max_and_float_sum() {
        let post = PostProcess::none()
            .group(field("store"))
            .aggregate(AggregateExpr::new(
                AggregateFunc::Min,
                field("price"),
                "min_p",
            ))
            .aggregate(AggregateExpr::new(
                AggregateFunc::Max,
                field("price"),
                "max_p",
            ))
            .aggregate(AggregateExpr::new(
                AggregateFunc::Sum,
                field("price"),
                "sum_p",
            ))
            .order(SortKey::asc(field("store")));
        let out = post.apply(sample()).unwrap();
        let a = out.rows()[0].values();
        assert_eq!(a[1], Value::Float64(1.5));
        assert_eq!(a[2], Value::Float64(9.0));
        assert_eq!(a[3], Value::Float64(13.0));
    }

    #[test]
    fn ungrouped_aggregate_over_empty_input_yields_one_row() {
        let empty = Relation::empty(sample().schema().clone());
        let post = PostProcess::none()
            .aggregate(AggregateExpr::count_star("n"))
            .aggregate(AggregateExpr::new(AggregateFunc::Sum, field("qty"), "s"));
        let out = post.apply(empty).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0].value(0), &Value::Int64(0));
        assert_eq!(out.rows()[0].value(1), &Value::Null);
    }

    #[test]
    fn grouped_aggregate_over_empty_input_yields_no_rows() {
        let empty = Relation::empty(sample().schema().clone());
        let post = PostProcess::none()
            .group(field("store"))
            .aggregate(AggregateExpr::count_star("n"));
        let out = post.apply(empty).unwrap();
        assert_eq!(out.len(), 0);
    }

    #[test]
    fn order_by_desc_and_limit() {
        let post = PostProcess::none()
            .order(SortKey::desc(field("qty")))
            .with_limit(2);
        let out = post.apply(sample()).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out.rows()[0].value(1), &Value::Int64(5));
        assert_eq!(out.rows()[1].value(1), &Value::Int64(3));
    }

    #[test]
    fn order_by_multiple_keys_is_stable_lexicographic() {
        let post = PostProcess::none()
            .order(SortKey::asc(field("store")))
            .order(SortKey::desc(field("qty")));
        let out = post.apply(sample()).unwrap();
        // Nulls sort first within "a" descending? Value ordering puts Null lowest,
        // so descending puts it last.
        let stores: Vec<&Value> = out.rows().iter().map(|r| r.value(0)).collect();
        assert_eq!(
            stores,
            vec![
                &Value::from("a"),
                &Value::from("a"),
                &Value::from("a"),
                &Value::from("b"),
                &Value::from("b")
            ]
        );
        assert_eq!(out.rows()[0].value(1), &Value::Int64(3));
        assert_eq!(out.rows()[1].value(1), &Value::Int64(2));
    }

    #[test]
    fn limit_larger_than_input_keeps_everything() {
        let post = PostProcess::none().with_limit(100);
        let out = post.apply(sample()).unwrap();
        assert_eq!(out.len(), 5);
    }

    #[test]
    fn empty_post_process_is_identity() {
        let post = PostProcess::none();
        assert!(post.is_empty());
        let input = sample();
        let out = post.apply(input.clone()).unwrap();
        assert_eq!(out, input);
    }

    #[test]
    fn ordering_by_aggregate_alias_works() {
        let post = PostProcess::none()
            .group(field("store"))
            .aggregate(AggregateExpr::new(
                AggregateFunc::Sum,
                field("qty"),
                "total",
            ))
            .order(SortKey::desc(FieldRef::new("agg", "total")));
        let out = post.apply(sample()).unwrap();
        assert_eq!(out.rows()[0].value(1), &Value::Int64(6)); // store b first
    }

    #[test]
    fn unknown_group_column_errors() {
        let post = PostProcess::none()
            .group(FieldRef::new("sales", "missing"))
            .aggregate(AggregateExpr::count_star("n"));
        assert!(post.apply(sample()).is_err());
        let post2 = PostProcess::none().order(SortKey::asc(FieldRef::new("sales", "missing")));
        assert!(post2.apply(sample()).is_err());
    }

    #[test]
    fn aggregate_func_parse_and_output_types() {
        assert_eq!(AggregateFunc::parse("sum"), Some(AggregateFunc::Sum));
        assert_eq!(AggregateFunc::parse("CoUnT"), Some(AggregateFunc::Count));
        assert_eq!(AggregateFunc::parse("median"), None);
        assert_eq!(
            AggregateFunc::Sum.output_type(DataType::Float64),
            DataType::Float64
        );
        assert_eq!(
            AggregateFunc::Sum.output_type(DataType::Int64),
            DataType::Int64
        );
        assert_eq!(
            AggregateFunc::Avg.output_type(DataType::Int64),
            DataType::Float64
        );
        assert_eq!(
            AggregateFunc::Min.output_type(DataType::Utf8),
            DataType::Utf8
        );
        assert_eq!(
            AggregateFunc::Count.output_type(DataType::Utf8),
            DataType::Int64
        );
    }

    #[test]
    fn describe_mentions_every_stage() {
        let post = PostProcess::none()
            .group(field("store"))
            .aggregate(AggregateExpr::new(
                AggregateFunc::Sum,
                field("qty"),
                "total",
            ))
            .order(SortKey::desc(FieldRef::new("agg", "total")))
            .with_limit(10);
        let d = post.describe();
        assert!(d.contains("group by"));
        assert!(d.contains("SUM"));
        assert!(d.contains("order by"));
        assert!(d.contains("limit 10"));
        assert_eq!(PostProcess::none().describe(), "no post-processing");
    }

    #[test]
    fn describe_aggregate_expr_forms() {
        let a = AggregateExpr::new(AggregateFunc::Max, field("qty"), "m");
        assert_eq!(a.describe(), "MAX(sales.qty) AS m");
        let c = AggregateExpr::count_star("n");
        assert_eq!(c.describe(), "COUNT(*) AS n");
    }
}
