//! The plan executor: runs a [`PhysicalPlan`] partition-by-partition against the
//! catalog, recording everything into [`ExecutionMetrics`].

use crate::cost::ExecutionMetrics;
use crate::data::PartitionedData;
use crate::expr::Predicate;
use crate::grace::{joined_partition, GraceContext, GraceTally};
use crate::partition::{indexed_join_partition, scan_batch, IndexJoinTally, ScanTally};
use crate::plan::{JoinAlgorithm, PhysicalPlan};
use crate::setup::{prepare_indexed_join, prepare_scan, resolve_keys};
use rdo_common::{FieldRef, RdoError, Relation, Result, Tuple};
use rdo_storage::{Catalog, SpillReadTally};

/// Executes physical plans against a catalog.
pub struct Executor<'a> {
    catalog: &'a Catalog,
}

impl<'a> Executor<'a> {
    /// Creates an executor over the given catalog.
    pub fn new(catalog: &'a Catalog) -> Self {
        Self { catalog }
    }

    /// Executes a plan, returning the partitioned output.
    pub fn execute(
        &self,
        plan: &PhysicalPlan,
        metrics: &mut ExecutionMetrics,
    ) -> Result<PartitionedData> {
        match plan {
            PhysicalPlan::Scan {
                dataset,
                table,
                predicates,
                projection,
            } => self.execute_scan(dataset, table, predicates, projection.as_deref(), metrics),
            PhysicalPlan::Join {
                left,
                right,
                keys,
                algorithm,
            } => self.execute_join(left, right, keys, *algorithm, metrics),
        }
    }

    /// Executes a plan and gathers the result on the coordinator.
    pub fn execute_to_relation(
        &self,
        plan: &PhysicalPlan,
        metrics: &mut ExecutionMetrics,
    ) -> Result<Relation> {
        let data = self.execute(plan, metrics)?;
        let relation = data.gather();
        metrics.result_rows += relation.len() as u64;
        Ok(relation)
    }

    fn execute_scan(
        &self,
        dataset: &str,
        table_name: &str,
        predicates: &[Predicate],
        projection: Option<&[FieldRef]>,
        metrics: &mut ExecutionMetrics,
    ) -> Result<PartitionedData> {
        let mut span = rdo_trace::span("exec.scan");
        span.attr_str("table", table_name);
        let table = self.catalog.table(table_name)?;
        let setup = prepare_scan(table, dataset, projection)?;

        // Stream each partition batch by batch through the columnar scan
        // kernel: columnar-backed tables hand over their stored batches with
        // no row conversion, memory-backed ones are chunked at the batch
        // size, spilled ones decode each page (columnar pages straight into
        // their column form). Kernel chunk-invariance makes results and
        // tallies identical whichever backing delivers the batches.
        let mut partitions: Vec<Vec<Tuple>> = Vec::with_capacity(table.num_partitions());
        let mut tally = ScanTally::default();
        let mut spill_read = SpillReadTally::default();
        for p in 0..table.num_partitions() {
            let mut out_rows: Vec<Tuple> = Vec::new();
            let page_tally = table.scan_batches(p, |batch| {
                let (out, partial) = scan_batch(
                    &setup.schema,
                    predicates,
                    setup.projection_indexes.as_deref(),
                    batch,
                )?;
                tally.add(&partial);
                out.extend_rows_into(&mut out_rows);
                Ok(true)
            })?;
            spill_read.add(&page_tally);
            partitions.push(out_rows);
        }
        metrics.spill_pages_read += spill_read.pages;
        metrics.spill_bytes_read += spill_read.bytes;
        metrics.spill_logical_bytes_read += spill_read.logical_bytes;

        if table.is_temporary() {
            metrics.rows_intermediate_read += tally.scanned_rows;
            metrics.bytes_intermediate_read += tally.scanned_bytes;
        } else {
            metrics.rows_scanned += tally.scanned_rows;
            metrics.bytes_scanned += tally.scanned_bytes;
        }
        metrics.output_rows += tally.kept;
        span.attr_u64("rows_in", tally.scanned_rows);
        span.attr_u64("rows_out", tally.kept);
        span.attr_u64("predicates", predicates.len() as u64);

        let mut data = PartitionedData::new(setup.out_schema, partitions, setup.partition_key);
        if predicates.is_empty() && projection.is_none() && !table.is_temporary() {
            data = data.with_base_table(table_name);
        }
        Ok(data)
    }

    fn execute_join(
        &self,
        left: &PhysicalPlan,
        right: &PhysicalPlan,
        keys: &[(FieldRef, FieldRef)],
        algorithm: JoinAlgorithm,
        metrics: &mut ExecutionMetrics,
    ) -> Result<PartitionedData> {
        if keys.is_empty() {
            return Err(RdoError::Execution("join without key pairs".to_string()));
        }
        let grace = GraceContext::from_catalog(self.catalog);
        match algorithm {
            JoinAlgorithm::Hash => {
                let left_data = self.execute(left, metrics)?;
                let right_data = self.execute(right, metrics)?;
                hash_join(left_data, right_data, keys, grace.as_ref(), metrics)
            }
            JoinAlgorithm::Broadcast => {
                let left_data = self.execute(left, metrics)?;
                let right_data = self.execute(right, metrics)?;
                broadcast_join(left_data, right_data, keys, grace.as_ref(), metrics)
            }
            JoinAlgorithm::IndexedNestedLoop => {
                let right_data = self.execute(right, metrics)?;
                self.indexed_nested_loop_join(left, right_data, keys, metrics)
            }
        }
    }

    /// Indexed nested-loop join (Section 3, "Indexed Nested Loop Join"): the
    /// right input is broadcast to every partition of the left input, which must
    /// be a base dataset with a secondary index on the join key; the broadcast
    /// rows probe the local index immediately, so the indexed table is never
    /// scanned.
    fn indexed_nested_loop_join(
        &self,
        left: &PhysicalPlan,
        right: PartitionedData,
        keys: &[(FieldRef, FieldRef)],
        metrics: &mut ExecutionMetrics,
    ) -> Result<PartitionedData> {
        let PhysicalPlan::Scan {
            dataset,
            table: table_name,
            predicates,
            projection,
        } = left
        else {
            return Err(RdoError::Execution(
                "indexed nested-loop join requires its indexed input to be a base-table scan"
                    .to_string(),
            ));
        };
        let mut span = rdo_trace::span("exec.join");
        span.attr_str("algo", "inl");
        let (first_left_key, _) = &keys[0];
        let table = self.catalog.table(table_name)?;
        let index = self
            .catalog
            .secondary_index(table_name, &first_left_key.field)
            .ok_or_else(|| {
                RdoError::Execution(format!(
                    "no secondary index on {table_name}.{} for indexed nested-loop join",
                    first_left_key.field
                ))
            })?;

        let setup =
            prepare_indexed_join(table, dataset, projection.as_deref(), right.schema(), keys)?;

        let broadcast_rows = right.all_rows();
        let partitions_count = table.num_partitions();
        metrics.rows_broadcast += broadcast_rows.len() as u64 * partitions_count as u64;
        metrics.bytes_broadcast += broadcast_rows
            .iter()
            .map(|r| r.approx_bytes() as u64)
            .sum::<u64>()
            * partitions_count as u64;

        let mut out_partitions: Vec<Vec<Tuple>> = Vec::with_capacity(partitions_count);
        let mut tally = IndexJoinTally::default();
        for p in 0..partitions_count {
            let (out, partial) = indexed_join_partition(
                &broadcast_rows,
                index,
                p,
                table.partition(p),
                &setup.left_schema,
                predicates,
                setup.projection_indexes.as_deref(),
                &setup.left_key_indexes,
                &setup.right_key_indexes,
                setup.first_right_key_index,
            )?;
            tally.add(&partial);
            out_partitions.push(out);
        }
        metrics.index_lookups += tally.index_lookups;
        metrics.index_fetched_rows += tally.index_fetched_rows;
        metrics.output_rows += tally.output_rows;
        span.attr_u64("rows_out", tally.output_rows);

        Ok(PartitionedData::new(
            setup.out_schema,
            out_partitions,
            setup.partition_key,
        ))
    }
}

/// Partitioned (re-shuffling) hash join on a conjunction of key pairs. With a
/// grace context, partitions whose build side exceeds the join budget go
/// through the spillable grace/hybrid path (bit-identical results).
pub fn hash_join(
    left: PartitionedData,
    right: PartitionedData,
    keys: &[(FieldRef, FieldRef)],
    grace: Option<&GraceContext>,
    metrics: &mut ExecutionMetrics,
) -> Result<PartitionedData> {
    let mut span = rdo_trace::span("exec.join");
    span.attr_str("algo", "hash");
    let (left_key_indexes, right_key_indexes) = resolve_keys(&left, &right, keys)?;
    let (first_left_key, first_right_key) = &keys[0];

    // Re-partition each side on its (first) join key unless it already is (the
    // paper's "in the event that one of the inputs is already partitioned on the
    // join key(s) re-partitioning is skipped and communication is saved").
    let left = if left.is_partitioned_on(&first_left_key.field) {
        left
    } else {
        let (data, moved_rows, moved_bytes) =
            left.repartition(left_key_indexes[0], &first_left_key.field);
        metrics.rows_shuffled += moved_rows;
        metrics.bytes_shuffled += moved_bytes;
        data
    };
    let right = if right.is_partitioned_on(&first_right_key.field) {
        right
    } else {
        let (data, moved_rows, moved_bytes) =
            right.repartition(right_key_indexes[0], &first_right_key.field);
        metrics.rows_shuffled += moved_rows;
        metrics.bytes_shuffled += moved_bytes;
        data
    };

    let out_schema = left.schema().join(right.schema());
    let num_partitions = left.num_partitions().max(right.num_partitions());
    let mut out_partitions: Vec<Vec<Tuple>> = Vec::with_capacity(num_partitions);
    let mut tally = GraceTally::default();
    let empty: Vec<Tuple> = Vec::new();
    for p in 0..num_partitions {
        let build_rows = right.partitions().get(p).unwrap_or(&empty);
        let probe_rows = left.partitions().get(p).unwrap_or(&empty);
        let (out, partial) = joined_partition(
            probe_rows,
            build_rows,
            &left_key_indexes,
            &right_key_indexes,
            grace,
        )?;
        tally.add(&partial);
        out_partitions.push(out);
    }
    span.attr_u64("rows_in", tally.join.build_rows + tally.join.probe_rows);
    span.attr_u64("rows_out", tally.join.output_rows);
    tally.record(metrics);

    let key_name = rdo_common::unqualified(&first_left_key.field).to_string();
    Ok(PartitionedData::new(
        out_schema,
        out_partitions,
        Some(key_name),
    ))
}

/// Broadcast join: the right input is replicated to every partition of the left
/// input and used as the build side. The join budget applies here too — an
/// over-budget replicated build side goes through the grace path per
/// partition.
pub fn broadcast_join(
    left: PartitionedData,
    right: PartitionedData,
    keys: &[(FieldRef, FieldRef)],
    grace: Option<&GraceContext>,
    metrics: &mut ExecutionMetrics,
) -> Result<PartitionedData> {
    let mut span = rdo_trace::span("exec.join");
    span.attr_str("algo", "broadcast");
    let (left_key_indexes, right_key_indexes) = resolve_keys(&left, &right, keys)?;

    let broadcast_rows = right.all_rows();
    let partitions_count = left.num_partitions();
    metrics.rows_broadcast += broadcast_rows.len() as u64 * partitions_count as u64;
    metrics.bytes_broadcast += broadcast_rows
        .iter()
        .map(|r| r.approx_bytes() as u64)
        .sum::<u64>()
        * partitions_count as u64;

    let out_schema = left.schema().join(right.schema());
    let mut out_partitions: Vec<Vec<Tuple>> = Vec::with_capacity(partitions_count);
    let mut tally = GraceTally::default();
    for probe_rows in left.partitions() {
        // Each partition builds its own copy of the broadcast hash table.
        let (out, partial) = joined_partition(
            probe_rows,
            &broadcast_rows,
            &left_key_indexes,
            &right_key_indexes,
            grace,
        )?;
        tally.add(&partial);
        out_partitions.push(out);
    }
    span.attr_u64("rows_in", tally.join.build_rows + tally.join.probe_rows);
    span.attr_u64("rows_out", tally.join.output_rows);
    tally.record(metrics);

    // The probe side never moved, so its partitioning is preserved.
    let partition_key = left.partition_key().map(|s| s.to_string());
    Ok(PartitionedData::new(
        out_schema,
        out_partitions,
        partition_key,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;
    use rdo_common::{DataType, Schema, Value};
    use rdo_storage::IngestOptions;

    /// Builds a small catalog with `orders(o_orderkey, o_custkey)` and
    /// `customer(c_custkey, c_name)`, plus a secondary index on
    /// `orders.o_custkey`.
    fn catalog() -> Catalog {
        let mut cat = Catalog::new(4);
        let orders_schema = Schema::for_dataset(
            "orders",
            &[
                ("o_orderkey", DataType::Int64),
                ("o_custkey", DataType::Int64),
            ],
        );
        let orders_rows = (0..200)
            .map(|i| Tuple::new(vec![Value::Int64(i), Value::Int64(i % 20)]))
            .collect();
        cat.ingest(
            "orders",
            Relation::new(orders_schema, orders_rows).unwrap(),
            IngestOptions::partitioned_on("o_orderkey").with_index("o_custkey"),
        )
        .unwrap();

        let cust_schema = Schema::for_dataset(
            "customer",
            &[("c_custkey", DataType::Int64), ("c_name", DataType::Utf8)],
        );
        let cust_rows = (0..20)
            .map(|i| Tuple::new(vec![Value::Int64(i), Value::Utf8(format!("cust{i}"))]))
            .collect();
        cat.ingest(
            "customer",
            Relation::new(cust_schema, cust_rows).unwrap(),
            IngestOptions::partitioned_on("c_custkey"),
        )
        .unwrap();
        cat
    }

    fn join_plan(algorithm: JoinAlgorithm) -> PhysicalPlan {
        PhysicalPlan::join(
            PhysicalPlan::scan("orders"),
            PhysicalPlan::scan("customer"),
            FieldRef::new("orders", "o_custkey"),
            FieldRef::new("customer", "c_custkey"),
            algorithm,
        )
    }

    #[test]
    fn scan_with_filter_and_projection() {
        let cat = catalog();
        let exec = Executor::new(&cat);
        let mut m = ExecutionMetrics::new();
        let plan = PhysicalPlan::scan("orders")
            .with_predicates(vec![Predicate::compare(
                FieldRef::new("orders", "o_custkey"),
                CmpOp::Eq,
                3i64,
            )])
            .with_projection(vec![FieldRef::new("orders", "o_orderkey")]);
        let rel = exec.execute_to_relation(&plan, &mut m).unwrap();
        assert_eq!(rel.len(), 10, "200 orders / 20 customers = 10 per customer");
        assert_eq!(rel.schema().len(), 1);
        assert_eq!(m.rows_scanned, 200);
        assert_eq!(m.output_rows, 10);
        assert_eq!(m.result_rows, 10);
    }

    #[test]
    fn all_join_algorithms_agree() {
        let cat = catalog();
        let exec = Executor::new(&cat);
        let mut results = Vec::new();
        for algorithm in [
            JoinAlgorithm::Hash,
            JoinAlgorithm::Broadcast,
            JoinAlgorithm::IndexedNestedLoop,
        ] {
            let mut m = ExecutionMetrics::new();
            let plan = join_plan(algorithm);
            let rel = exec.execute_to_relation(&plan, &mut m).unwrap();
            assert_eq!(rel.len(), 200, "every order matches exactly one customer");
            let mut rows = rel.into_rows();
            rows.sort();
            results.push(rows);
        }
        // Hash and broadcast produce (orders, customer) column order; INL as well.
        assert_eq!(results[0], results[1]);
        assert_eq!(results[1], results[2]);
    }

    #[test]
    fn hash_join_charges_shuffle_only_when_needed() {
        let cat = catalog();
        let exec = Executor::new(&cat);
        // orders is partitioned on o_orderkey; joining on o_custkey must shuffle
        // the orders side. customer is partitioned on c_custkey already.
        let mut m = ExecutionMetrics::new();
        exec.execute(&join_plan(JoinAlgorithm::Hash), &mut m)
            .unwrap();
        assert!(m.rows_shuffled > 0);
        assert!(
            m.rows_shuffled <= 200,
            "only the orders side should shuffle"
        );

        // Joining orders to customer on the orders primary key needs no shuffle
        // for the orders side.
        let plan = PhysicalPlan::join(
            PhysicalPlan::scan("orders"),
            PhysicalPlan::scan("customer"),
            FieldRef::new("orders", "o_orderkey"),
            FieldRef::new("customer", "c_custkey"),
            JoinAlgorithm::Hash,
        );
        let mut m2 = ExecutionMetrics::new();
        exec.execute(&plan, &mut m2).unwrap();
        assert!(
            m2.rows_shuffled <= 20,
            "only the small customer side may move"
        );
    }

    #[test]
    fn broadcast_join_charges_replication() {
        let cat = catalog();
        let exec = Executor::new(&cat);
        let mut m = ExecutionMetrics::new();
        exec.execute(&join_plan(JoinAlgorithm::Broadcast), &mut m)
            .unwrap();
        assert_eq!(
            m.rows_broadcast,
            20 * 4,
            "20 customers replicated to 4 partitions"
        );
        assert_eq!(m.rows_shuffled, 0);
    }

    #[test]
    fn inl_join_uses_index_not_scan() {
        let cat = catalog();
        let exec = Executor::new(&cat);
        let mut m = ExecutionMetrics::new();
        let rel = exec
            .execute_to_relation(&join_plan(JoinAlgorithm::IndexedNestedLoop), &mut m)
            .unwrap();
        assert_eq!(rel.len(), 200);
        // The orders table itself is never scanned.
        assert_eq!(
            m.rows_scanned, 20,
            "only the customer build side is scanned"
        );
        assert_eq!(m.index_lookups, 20 * 4);
        assert_eq!(m.index_fetched_rows, 200);
    }

    #[test]
    fn inl_join_requires_index() {
        let cat = catalog();
        let exec = Executor::new(&cat);
        // customer has no secondary index on c_custkey... actually it's the
        // partition key; swap sides so the indexed side is customer.c_name which
        // has no index.
        let plan = PhysicalPlan::join(
            PhysicalPlan::scan("customer"),
            PhysicalPlan::scan("orders"),
            FieldRef::new("customer", "c_name"),
            FieldRef::new("orders", "o_custkey"),
            JoinAlgorithm::IndexedNestedLoop,
        );
        let mut m = ExecutionMetrics::new();
        assert!(exec.execute(&plan, &mut m).is_err());
    }

    #[test]
    fn inl_join_requires_scan_input() {
        let cat = catalog();
        let exec = Executor::new(&cat);
        let inner = join_plan(JoinAlgorithm::Hash);
        let plan = PhysicalPlan::join(
            inner,
            PhysicalPlan::scan("customer"),
            FieldRef::new("orders", "o_custkey"),
            FieldRef::new("customer", "c_custkey"),
            JoinAlgorithm::IndexedNestedLoop,
        );
        let mut m = ExecutionMetrics::new();
        assert!(exec.execute(&plan, &mut m).is_err());
    }

    #[test]
    fn join_with_local_predicate_on_build_side() {
        let cat = catalog();
        let exec = Executor::new(&cat);
        let filtered_customer =
            PhysicalPlan::scan("customer").with_predicates(vec![Predicate::compare(
                FieldRef::new("customer", "c_custkey"),
                CmpOp::Lt,
                5i64,
            )]);
        let plan = PhysicalPlan::join(
            PhysicalPlan::scan("orders"),
            filtered_customer,
            FieldRef::new("orders", "o_custkey"),
            FieldRef::new("customer", "c_custkey"),
            JoinAlgorithm::Broadcast,
        );
        let mut m = ExecutionMetrics::new();
        let rel = exec.execute_to_relation(&plan, &mut m).unwrap();
        assert_eq!(rel.len(), 50, "5 customers × 10 orders each");
    }

    #[test]
    fn aliased_scan_joins() {
        let cat = catalog();
        let exec = Executor::new(&cat);
        let plan = PhysicalPlan::join(
            PhysicalPlan::scan("orders"),
            PhysicalPlan::scan_aliased("c2", "customer"),
            FieldRef::new("orders", "o_custkey"),
            FieldRef::new("c2", "c_custkey"),
            JoinAlgorithm::Hash,
        );
        let mut m = ExecutionMetrics::new();
        let rel = exec.execute_to_relation(&plan, &mut m).unwrap();
        assert_eq!(rel.len(), 200);
        assert!(rel.schema().fields().iter().any(|f| f.name.dataset == "c2"));
    }

    #[test]
    fn join_budget_runs_grace_join_with_identical_results() {
        let reference = {
            let cat = catalog();
            let exec = Executor::new(&cat);
            let mut m = ExecutionMetrics::new();
            let rel = exec
                .execute_to_relation(&join_plan(JoinAlgorithm::Hash), &mut m)
                .unwrap();
            (rel, m)
        };
        let mut cat = catalog();
        // A 1-byte join budget forces every partition's build side out of core.
        cat.configure_spill(
            rdo_storage::SpillConfig::default()
                .with_join_budget(1)
                .with_page_size(512),
        )
        .unwrap();
        let exec = Executor::new(&cat);
        for algorithm in [JoinAlgorithm::Hash, JoinAlgorithm::Broadcast] {
            let mut m = ExecutionMetrics::new();
            let rel = exec
                .execute_to_relation(&join_plan(algorithm), &mut m)
                .unwrap();
            assert!(
                m.grace_bytes_written > 0
                    && m.grace_pages_read > 0
                    && m.grace_partitions_spilled > 0,
                "{algorithm:?} must go out-of-core: {m:?}"
            );
            if algorithm == JoinAlgorithm::Hash {
                assert_eq!(rel, reference.0, "bit-identical to the in-memory join");
                assert_eq!(m.build_rows, reference.1.build_rows);
                assert_eq!(m.probe_rows, reference.1.probe_rows);
                assert_eq!(m.output_rows, reference.1.output_rows);
                assert_eq!(m.rows_shuffled, reference.1.rows_shuffled);
            }
        }
        // Every grace partition file was dropped with its join.
        let dir = cat.spill_dir().expect("join budget configured");
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0);
    }

    #[test]
    fn unknown_dataset_errors() {
        let cat = catalog();
        let exec = Executor::new(&cat);
        let mut m = ExecutionMetrics::new();
        assert!(exec
            .execute(&PhysicalPlan::scan("missing"), &mut m)
            .is_err());
    }
}
