//! The plan executor: runs a [`PhysicalPlan`] partition-by-partition against the
//! catalog, recording everything into [`ExecutionMetrics`].

use crate::cost::ExecutionMetrics;
use crate::data::PartitionedData;
use crate::expr::{evaluate_all, Predicate};
use crate::plan::{JoinAlgorithm, PhysicalPlan};
use rdo_common::{FieldRef, RdoError, Relation, Result, Tuple, Value};
use rdo_storage::Catalog;
use std::collections::HashMap;

/// Executes physical plans against a catalog.
pub struct Executor<'a> {
    catalog: &'a Catalog,
}

impl<'a> Executor<'a> {
    /// Creates an executor over the given catalog.
    pub fn new(catalog: &'a Catalog) -> Self {
        Self { catalog }
    }

    /// Executes a plan, returning the partitioned output.
    pub fn execute(
        &self,
        plan: &PhysicalPlan,
        metrics: &mut ExecutionMetrics,
    ) -> Result<PartitionedData> {
        match plan {
            PhysicalPlan::Scan {
                dataset,
                table,
                predicates,
                projection,
            } => self.execute_scan(dataset, table, predicates, projection.as_deref(), metrics),
            PhysicalPlan::Join {
                left,
                right,
                keys,
                algorithm,
            } => self.execute_join(left, right, keys, *algorithm, metrics),
        }
    }

    /// Executes a plan and gathers the result on the coordinator.
    pub fn execute_to_relation(
        &self,
        plan: &PhysicalPlan,
        metrics: &mut ExecutionMetrics,
    ) -> Result<Relation> {
        let data = self.execute(plan, metrics)?;
        let relation = data.gather();
        metrics.result_rows += relation.len() as u64;
        Ok(relation)
    }

    fn execute_scan(
        &self,
        dataset: &str,
        table_name: &str,
        predicates: &[Predicate],
        projection: Option<&[FieldRef]>,
        metrics: &mut ExecutionMetrics,
    ) -> Result<PartitionedData> {
        let table = self.catalog.table(table_name)?;
        let mut schema = table.schema().clone();
        if dataset != table_name {
            schema = schema.with_dataset(dataset);
        }

        let projection_indexes = match projection {
            Some(cols) => Some(
                cols.iter()
                    .map(|c| schema.resolve(c))
                    .collect::<Result<Vec<usize>>>()?,
            ),
            None => None,
        };
        let out_schema = match &projection_indexes {
            Some(idx) => schema.project(idx),
            None => schema.clone(),
        };

        let mut partitions: Vec<Vec<Tuple>> = Vec::with_capacity(table.num_partitions());
        let mut scanned_rows = 0u64;
        let mut scanned_bytes = 0u64;
        let mut kept = 0u64;
        for partition in table.partitions() {
            let mut out = Vec::new();
            for row in partition {
                scanned_rows += 1;
                scanned_bytes += row.approx_bytes() as u64;
                if evaluate_all(predicates, &schema, row)? {
                    let projected = match &projection_indexes {
                        Some(idx) => row.project(idx),
                        None => row.clone(),
                    };
                    out.push(projected);
                    kept += 1;
                }
            }
            partitions.push(out);
        }

        if table.is_temporary() {
            metrics.rows_intermediate_read += scanned_rows;
            metrics.bytes_intermediate_read += scanned_bytes;
        } else {
            metrics.rows_scanned += scanned_rows;
            metrics.bytes_scanned += scanned_bytes;
        }
        metrics.output_rows += kept;

        // Partitioning survives the scan if the partition-key column is still in
        // the output schema.
        let partition_key = table.partition_key().and_then(|key| {
            if out_schema.fields().iter().any(|f| f.name.field == key) {
                Some(key.to_string())
            } else {
                None
            }
        });

        let mut data = PartitionedData::new(out_schema, partitions, partition_key);
        if predicates.is_empty() && projection.is_none() && !table.is_temporary() {
            data = data.with_base_table(table_name);
        }
        Ok(data)
    }

    fn execute_join(
        &self,
        left: &PhysicalPlan,
        right: &PhysicalPlan,
        keys: &[(FieldRef, FieldRef)],
        algorithm: JoinAlgorithm,
        metrics: &mut ExecutionMetrics,
    ) -> Result<PartitionedData> {
        if keys.is_empty() {
            return Err(RdoError::Execution("join without key pairs".to_string()));
        }
        match algorithm {
            JoinAlgorithm::Hash => {
                let left_data = self.execute(left, metrics)?;
                let right_data = self.execute(right, metrics)?;
                hash_join(left_data, right_data, keys, metrics)
            }
            JoinAlgorithm::Broadcast => {
                let left_data = self.execute(left, metrics)?;
                let right_data = self.execute(right, metrics)?;
                broadcast_join(left_data, right_data, keys, metrics)
            }
            JoinAlgorithm::IndexedNestedLoop => {
                let right_data = self.execute(right, metrics)?;
                self.indexed_nested_loop_join(left, right_data, keys, metrics)
            }
        }
    }

    /// Indexed nested-loop join (Section 3, "Indexed Nested Loop Join"): the
    /// right input is broadcast to every partition of the left input, which must
    /// be a base dataset with a secondary index on the join key; the broadcast
    /// rows probe the local index immediately, so the indexed table is never
    /// scanned.
    fn indexed_nested_loop_join(
        &self,
        left: &PhysicalPlan,
        right: PartitionedData,
        keys: &[(FieldRef, FieldRef)],
        metrics: &mut ExecutionMetrics,
    ) -> Result<PartitionedData> {
        let PhysicalPlan::Scan {
            dataset,
            table: table_name,
            predicates,
            projection,
        } = left
        else {
            return Err(RdoError::Execution(
                "indexed nested-loop join requires its indexed input to be a base-table scan"
                    .to_string(),
            ));
        };
        let (first_left_key, first_right_key) = &keys[0];
        let table = self.catalog.table(table_name)?;
        let index = self
            .catalog
            .secondary_index(table_name, &first_left_key.field)
            .ok_or_else(|| {
                RdoError::Execution(format!(
                    "no secondary index on {table_name}.{} for indexed nested-loop join",
                    first_left_key.field
                ))
            })?;

        let mut left_schema = table.schema().clone();
        if dataset != table_name {
            left_schema = left_schema.with_dataset(dataset);
        }
        let projection_indexes = match projection {
            Some(cols) => Some(
                cols.iter()
                    .map(|c| left_schema.resolve(c))
                    .collect::<Result<Vec<usize>>>()?,
            ),
            None => None,
        };
        let left_out_schema = match &projection_indexes {
            Some(idx) => left_schema.project(idx),
            None => left_schema.clone(),
        };
        let out_schema = left_out_schema.join(right.schema());

        // Residual key pairs beyond the indexed one are checked after the index
        // probe (composite-key joins).
        let left_key_indexes: Vec<usize> = keys
            .iter()
            .map(|(l, _)| left_schema.resolve(l))
            .collect::<Result<Vec<usize>>>()?;
        let right_key_indexes: Vec<usize> = keys
            .iter()
            .map(|(_, r)| right.schema().resolve(r))
            .collect::<Result<Vec<usize>>>()?;
        let first_right_key_index = right.schema().resolve(first_right_key)?;

        let broadcast_rows = right.all_rows();
        let partitions_count = table.num_partitions();
        metrics.rows_broadcast += broadcast_rows.len() as u64 * partitions_count as u64;
        metrics.bytes_broadcast += broadcast_rows
            .iter()
            .map(|r| r.approx_bytes() as u64)
            .sum::<u64>()
            * partitions_count as u64;

        let mut out_partitions: Vec<Vec<Tuple>> = Vec::with_capacity(partitions_count);
        let mut output = 0u64;
        for p in 0..partitions_count {
            let mut out = Vec::new();
            for probe_row in &broadcast_rows {
                metrics.index_lookups += 1;
                let key = probe_row.value(first_right_key_index);
                for &offset in index.probe(p, key) {
                    metrics.index_fetched_rows += 1;
                    let base_row = &table.partition(p)[offset];
                    let all_keys_match = left_key_indexes
                        .iter()
                        .zip(&right_key_indexes)
                        .skip(1)
                        .all(|(&li, &ri)| base_row.value(li) == probe_row.value(ri));
                    if !all_keys_match {
                        continue;
                    }
                    if !evaluate_all(predicates, &left_schema, base_row)? {
                        continue;
                    }
                    let left_row = match &projection_indexes {
                        Some(idx) => base_row.project(idx),
                        None => base_row.clone(),
                    };
                    out.push(left_row.concat(probe_row));
                    output += 1;
                }
            }
            out_partitions.push(out);
        }
        metrics.output_rows += output;

        let partition_key = table.partition_key().and_then(|key| {
            if left_out_schema.fields().iter().any(|f| f.name.field == key) {
                Some(key.to_string())
            } else {
                None
            }
        });
        Ok(PartitionedData::new(out_schema, out_partitions, partition_key))
    }
}

fn resolve_keys(
    left: &PartitionedData,
    right: &PartitionedData,
    keys: &[(FieldRef, FieldRef)],
) -> Result<(Vec<usize>, Vec<usize>)> {
    let left_indexes = keys
        .iter()
        .map(|(l, _)| left.schema().resolve(l))
        .collect::<Result<Vec<usize>>>()?;
    let right_indexes = keys
        .iter()
        .map(|(_, r)| right.schema().resolve(r))
        .collect::<Result<Vec<usize>>>()?;
    Ok((left_indexes, right_indexes))
}

fn composite_key(row: &Tuple, indexes: &[usize]) -> Option<Vec<Value>> {
    let mut key = Vec::with_capacity(indexes.len());
    for &i in indexes {
        let v = row.value(i);
        if v.is_null() {
            return None;
        }
        key.push(v.clone());
    }
    Some(key)
}

/// Partitioned (re-shuffling) hash join on a conjunction of key pairs.
pub fn hash_join(
    left: PartitionedData,
    right: PartitionedData,
    keys: &[(FieldRef, FieldRef)],
    metrics: &mut ExecutionMetrics,
) -> Result<PartitionedData> {
    let (left_key_indexes, right_key_indexes) = resolve_keys(&left, &right, keys)?;
    let (first_left_key, first_right_key) = &keys[0];

    // Re-partition each side on its (first) join key unless it already is (the
    // paper's "in the event that one of the inputs is already partitioned on the
    // join key(s) re-partitioning is skipped and communication is saved").
    let left = if left.is_partitioned_on(&first_left_key.field) {
        left
    } else {
        let (data, moved_rows, moved_bytes) =
            left.repartition(left_key_indexes[0], &first_left_key.field);
        metrics.rows_shuffled += moved_rows;
        metrics.bytes_shuffled += moved_bytes;
        data
    };
    let right = if right.is_partitioned_on(&first_right_key.field) {
        right
    } else {
        let (data, moved_rows, moved_bytes) =
            right.repartition(right_key_indexes[0], &first_right_key.field);
        metrics.rows_shuffled += moved_rows;
        metrics.bytes_shuffled += moved_bytes;
        data
    };

    let out_schema = left.schema().join(right.schema());
    let num_partitions = left.num_partitions().max(right.num_partitions());
    let mut out_partitions: Vec<Vec<Tuple>> = Vec::with_capacity(num_partitions);
    let mut output = 0u64;
    for p in 0..num_partitions {
        let empty: Vec<Tuple> = Vec::new();
        let build_rows = right.partitions().get(p).unwrap_or(&empty);
        let probe_rows = left.partitions().get(p).unwrap_or(&empty);
        let mut table: HashMap<Vec<Value>, Vec<&Tuple>> = HashMap::with_capacity(build_rows.len());
        for row in build_rows {
            metrics.build_rows += 1;
            if let Some(key) = composite_key(row, &right_key_indexes) {
                table.entry(key).or_default().push(row);
            }
        }
        let mut out = Vec::new();
        for row in probe_rows {
            metrics.probe_rows += 1;
            let Some(key) = composite_key(row, &left_key_indexes) else {
                continue;
            };
            if let Some(matches) = table.get(&key) {
                for m in matches {
                    out.push(row.concat(m));
                    output += 1;
                }
            }
        }
        out_partitions.push(out);
    }
    metrics.output_rows += output;

    let key_name = first_left_key
        .field
        .rsplit('.')
        .next()
        .unwrap_or(&first_left_key.field)
        .to_string();
    Ok(PartitionedData::new(out_schema, out_partitions, Some(key_name)))
}

/// Broadcast join: the right input is replicated to every partition of the left
/// input and used as the build side.
pub fn broadcast_join(
    left: PartitionedData,
    right: PartitionedData,
    keys: &[(FieldRef, FieldRef)],
    metrics: &mut ExecutionMetrics,
) -> Result<PartitionedData> {
    let (left_key_indexes, right_key_indexes) = resolve_keys(&left, &right, keys)?;

    let broadcast_rows = right.all_rows();
    let partitions_count = left.num_partitions();
    metrics.rows_broadcast += broadcast_rows.len() as u64 * partitions_count as u64;
    metrics.bytes_broadcast += broadcast_rows
        .iter()
        .map(|r| r.approx_bytes() as u64)
        .sum::<u64>()
        * partitions_count as u64;

    let out_schema = left.schema().join(right.schema());
    let mut out_partitions: Vec<Vec<Tuple>> = Vec::with_capacity(partitions_count);
    let mut output = 0u64;
    for probe_rows in left.partitions() {
        // Each partition builds its own copy of the broadcast hash table.
        let mut table: HashMap<Vec<Value>, Vec<&Tuple>> =
            HashMap::with_capacity(broadcast_rows.len());
        for row in &broadcast_rows {
            metrics.build_rows += 1;
            if let Some(key) = composite_key(row, &right_key_indexes) {
                table.entry(key).or_default().push(row);
            }
        }
        let mut out = Vec::new();
        for row in probe_rows {
            metrics.probe_rows += 1;
            let Some(key) = composite_key(row, &left_key_indexes) else {
                continue;
            };
            if let Some(matches) = table.get(&key) {
                for m in matches {
                    out.push(row.concat(m));
                    output += 1;
                }
            }
        }
        out_partitions.push(out);
    }
    metrics.output_rows += output;

    // The probe side never moved, so its partitioning is preserved.
    let partition_key = left.partition_key().map(|s| s.to_string());
    Ok(PartitionedData::new(out_schema, out_partitions, partition_key))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;
    use rdo_common::{DataType, Schema};
    use rdo_storage::IngestOptions;

    /// Builds a small catalog with `orders(o_orderkey, o_custkey)` and
    /// `customer(c_custkey, c_name)`, plus a secondary index on
    /// `orders.o_custkey`.
    fn catalog() -> Catalog {
        let mut cat = Catalog::new(4);
        let orders_schema = Schema::for_dataset(
            "orders",
            &[("o_orderkey", DataType::Int64), ("o_custkey", DataType::Int64)],
        );
        let orders_rows = (0..200)
            .map(|i| Tuple::new(vec![Value::Int64(i), Value::Int64(i % 20)]))
            .collect();
        cat.ingest(
            "orders",
            Relation::new(orders_schema, orders_rows).unwrap(),
            IngestOptions::partitioned_on("o_orderkey").with_index("o_custkey"),
        )
        .unwrap();

        let cust_schema = Schema::for_dataset(
            "customer",
            &[("c_custkey", DataType::Int64), ("c_name", DataType::Utf8)],
        );
        let cust_rows = (0..20)
            .map(|i| Tuple::new(vec![Value::Int64(i), Value::Utf8(format!("cust{i}"))]))
            .collect();
        cat.ingest(
            "customer",
            Relation::new(cust_schema, cust_rows).unwrap(),
            IngestOptions::partitioned_on("c_custkey"),
        )
        .unwrap();
        cat
    }

    fn join_plan(algorithm: JoinAlgorithm) -> PhysicalPlan {
        PhysicalPlan::join(
            PhysicalPlan::scan("orders"),
            PhysicalPlan::scan("customer"),
            FieldRef::new("orders", "o_custkey"),
            FieldRef::new("customer", "c_custkey"),
            algorithm,
        )
    }

    #[test]
    fn scan_with_filter_and_projection() {
        let cat = catalog();
        let exec = Executor::new(&cat);
        let mut m = ExecutionMetrics::new();
        let plan = PhysicalPlan::scan("orders")
            .with_predicates(vec![Predicate::compare(
                FieldRef::new("orders", "o_custkey"),
                CmpOp::Eq,
                3i64,
            )])
            .with_projection(vec![FieldRef::new("orders", "o_orderkey")]);
        let rel = exec.execute_to_relation(&plan, &mut m).unwrap();
        assert_eq!(rel.len(), 10, "200 orders / 20 customers = 10 per customer");
        assert_eq!(rel.schema().len(), 1);
        assert_eq!(m.rows_scanned, 200);
        assert_eq!(m.output_rows, 10);
        assert_eq!(m.result_rows, 10);
    }

    #[test]
    fn all_join_algorithms_agree() {
        let cat = catalog();
        let exec = Executor::new(&cat);
        let mut results = Vec::new();
        for algorithm in [
            JoinAlgorithm::Hash,
            JoinAlgorithm::Broadcast,
            JoinAlgorithm::IndexedNestedLoop,
        ] {
            let mut m = ExecutionMetrics::new();
            let plan = join_plan(algorithm);
            let rel = exec.execute_to_relation(&plan, &mut m).unwrap();
            assert_eq!(rel.len(), 200, "every order matches exactly one customer");
            let mut rows = rel.into_rows();
            rows.sort();
            results.push(rows);
        }
        // Hash and broadcast produce (orders, customer) column order; INL as well.
        assert_eq!(results[0], results[1]);
        assert_eq!(results[1], results[2]);
    }

    #[test]
    fn hash_join_charges_shuffle_only_when_needed() {
        let cat = catalog();
        let exec = Executor::new(&cat);
        // orders is partitioned on o_orderkey; joining on o_custkey must shuffle
        // the orders side. customer is partitioned on c_custkey already.
        let mut m = ExecutionMetrics::new();
        exec.execute(&join_plan(JoinAlgorithm::Hash), &mut m).unwrap();
        assert!(m.rows_shuffled > 0);
        assert!(m.rows_shuffled <= 200, "only the orders side should shuffle");

        // Joining orders to customer on the orders primary key needs no shuffle
        // for the orders side.
        let plan = PhysicalPlan::join(
            PhysicalPlan::scan("orders"),
            PhysicalPlan::scan("customer"),
            FieldRef::new("orders", "o_orderkey"),
            FieldRef::new("customer", "c_custkey"),
            JoinAlgorithm::Hash,
        );
        let mut m2 = ExecutionMetrics::new();
        exec.execute(&plan, &mut m2).unwrap();
        assert!(m2.rows_shuffled <= 20, "only the small customer side may move");
    }

    #[test]
    fn broadcast_join_charges_replication() {
        let cat = catalog();
        let exec = Executor::new(&cat);
        let mut m = ExecutionMetrics::new();
        exec.execute(&join_plan(JoinAlgorithm::Broadcast), &mut m).unwrap();
        assert_eq!(m.rows_broadcast, 20 * 4, "20 customers replicated to 4 partitions");
        assert_eq!(m.rows_shuffled, 0);
    }

    #[test]
    fn inl_join_uses_index_not_scan() {
        let cat = catalog();
        let exec = Executor::new(&cat);
        let mut m = ExecutionMetrics::new();
        let rel = exec
            .execute_to_relation(&join_plan(JoinAlgorithm::IndexedNestedLoop), &mut m)
            .unwrap();
        assert_eq!(rel.len(), 200);
        // The orders table itself is never scanned.
        assert_eq!(m.rows_scanned, 20, "only the customer build side is scanned");
        assert_eq!(m.index_lookups, 20 * 4);
        assert_eq!(m.index_fetched_rows, 200);
    }

    #[test]
    fn inl_join_requires_index() {
        let cat = catalog();
        let exec = Executor::new(&cat);
        // customer has no secondary index on c_custkey... actually it's the
        // partition key; swap sides so the indexed side is customer.c_name which
        // has no index.
        let plan = PhysicalPlan::join(
            PhysicalPlan::scan("customer"),
            PhysicalPlan::scan("orders"),
            FieldRef::new("customer", "c_name"),
            FieldRef::new("orders", "o_custkey"),
            JoinAlgorithm::IndexedNestedLoop,
        );
        let mut m = ExecutionMetrics::new();
        assert!(exec.execute(&plan, &mut m).is_err());
    }

    #[test]
    fn inl_join_requires_scan_input() {
        let cat = catalog();
        let exec = Executor::new(&cat);
        let inner = join_plan(JoinAlgorithm::Hash);
        let plan = PhysicalPlan::join(
            inner,
            PhysicalPlan::scan("customer"),
            FieldRef::new("orders", "o_custkey"),
            FieldRef::new("customer", "c_custkey"),
            JoinAlgorithm::IndexedNestedLoop,
        );
        let mut m = ExecutionMetrics::new();
        assert!(exec.execute(&plan, &mut m).is_err());
    }

    #[test]
    fn join_with_local_predicate_on_build_side() {
        let cat = catalog();
        let exec = Executor::new(&cat);
        let filtered_customer = PhysicalPlan::scan("customer").with_predicates(vec![
            Predicate::compare(FieldRef::new("customer", "c_custkey"), CmpOp::Lt, 5i64),
        ]);
        let plan = PhysicalPlan::join(
            PhysicalPlan::scan("orders"),
            filtered_customer,
            FieldRef::new("orders", "o_custkey"),
            FieldRef::new("customer", "c_custkey"),
            JoinAlgorithm::Broadcast,
        );
        let mut m = ExecutionMetrics::new();
        let rel = exec.execute_to_relation(&plan, &mut m).unwrap();
        assert_eq!(rel.len(), 50, "5 customers × 10 orders each");
    }

    #[test]
    fn aliased_scan_joins() {
        let cat = catalog();
        let exec = Executor::new(&cat);
        let plan = PhysicalPlan::join(
            PhysicalPlan::scan("orders"),
            PhysicalPlan::scan_aliased("c2", "customer"),
            FieldRef::new("orders", "o_custkey"),
            FieldRef::new("c2", "c_custkey"),
            JoinAlgorithm::Hash,
        );
        let mut m = ExecutionMetrics::new();
        let rel = exec.execute_to_relation(&plan, &mut m).unwrap();
        assert_eq!(rel.len(), 200);
        assert!(rel
            .schema()
            .fields()
            .iter()
            .any(|f| f.name.dataset == "c2"));
    }

    #[test]
    fn unknown_dataset_errors() {
        let cat = catalog();
        let exec = Executor::new(&cat);
        let mut m = ExecutionMetrics::new();
        assert!(exec.execute(&PhysicalPlan::scan("missing"), &mut m).is_err());
    }
}
