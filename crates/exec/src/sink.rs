//! The Sink operator: materializes intermediate results at re-optimization
//! points and collects online statistics on them.
//!
//! In the paper's Figure 4, every phase of the decomposed query ends in a `Sink`
//! operator that writes the intermediate data to a temporary file while
//! gathering statistical sketches; later phases read it back through a `Reader`
//! operator. Here the temporary file is a temporary [`rdo_storage::Table`] and
//! the Reader is an ordinary scan of it (which the executor charges at
//! intermediate-read rates).

use crate::cost::ExecutionMetrics;
use crate::data::PartitionedData;
use rdo_common::Result;
use rdo_storage::Catalog;

/// What a materialization produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaterializeOutcome {
    /// Name of the temporary table created.
    pub table: String,
    /// Number of rows materialized.
    pub rows: u64,
    /// Approximate bytes written.
    pub bytes: u64,
    /// Number of individual values observed by online statistics collection
    /// (zero when statistics collection was disabled for this sink).
    pub stats_values: u64,
    /// True if the catalog's spill policy sent the table to the paged disk
    /// store instead of keeping it memory-resident.
    pub spilled: bool,
}

/// Materializes `data` into the catalog as temporary table `name`, hash-
/// partitioned on `partition_key`, collecting online statistics on
/// `tracked_columns` when `collect_stats` is true.
///
/// The paper disables online statistics for the final iteration ("the online
/// statistics framework is enabled in all the iterations except for the last
/// one"), which callers express through `collect_stats`.
///
/// This serial Sink observes the *gathered* relation row by row on the
/// coordinator. The dynamic driver does **not** call it — every driver path
/// goes through `rdo_parallel::sink::materialize`, which builds one sketch
/// per partition and merges the partials (slightly different, equally valid
/// GK summaries). Prefer the parallel Sink in new code so registered
/// statistics stay identical across all execution paths; this one remains the
/// single-threaded reference implementation.
/// Counts how many of `tracked_columns` actually exist in `schema` (matched
/// unqualified or fully qualified) — the per-row statistics work the Sink
/// charges to the cost model. Shared by the serial and parallel Sinks so their
/// `stats_values_observed` accounting can never diverge.
pub fn tracked_columns_present(schema: &rdo_common::Schema, tracked_columns: &[String]) -> u64 {
    tracked_columns
        .iter()
        .filter(|c| {
            let unqualified = rdo_common::unqualified(c);
            schema
                .fields()
                .iter()
                .any(|f| f.name.field == unqualified || f.name.qualified() == **c)
        })
        .count() as u64
}

pub fn materialize(
    catalog: &mut Catalog,
    name: &str,
    data: &PartitionedData,
    partition_key: Option<&str>,
    tracked_columns: &[String],
    collect_stats: bool,
    metrics: &mut ExecutionMetrics,
) -> Result<MaterializeOutcome> {
    let relation = data.gather();
    let rows = relation.len() as u64;
    let bytes = relation.approx_bytes() as u64;
    let stats_values = if collect_stats {
        tracked_columns_present(relation.schema(), tracked_columns) * rows
    } else {
        0
    };

    let stored = catalog.register_intermediate(
        name,
        relation,
        partition_key,
        tracked_columns,
        collect_stats,
    )?;

    metrics.rows_materialized += rows;
    metrics.bytes_materialized += bytes;
    metrics.stats_values_observed += stats_values;
    metrics.spill_pages_written += stored.pages_written;
    metrics.spill_bytes_written += stored.bytes_written;
    metrics.spill_logical_bytes_written += stored.logical_bytes_written;

    Ok(MaterializeOutcome {
        table: name.to_string(),
        rows,
        bytes,
        stats_values,
        spilled: stored.spilled,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Executor;
    use crate::plan::PhysicalPlan;
    use rdo_common::{DataType, Relation, Schema, Tuple, Value};
    use rdo_storage::IngestOptions;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new(4);
        let schema = Schema::for_dataset(
            "orders",
            &[
                ("o_orderkey", DataType::Int64),
                ("o_custkey", DataType::Int64),
            ],
        );
        let rows = (0..100)
            .map(|i| Tuple::new(vec![Value::Int64(i), Value::Int64(i % 10)]))
            .collect();
        cat.ingest(
            "orders",
            Relation::new(schema, rows).unwrap(),
            IngestOptions::partitioned_on("o_orderkey"),
        )
        .unwrap();
        cat
    }

    #[test]
    fn materialize_and_read_back() {
        let mut cat = catalog();
        let mut m = ExecutionMetrics::new();
        let data = {
            let exec = Executor::new(&cat);
            exec.execute(&PhysicalPlan::scan("orders"), &mut m).unwrap()
        };
        let outcome = materialize(
            &mut cat,
            "I_1",
            &data,
            Some("o_custkey"),
            &["o_custkey".to_string()],
            true,
            &mut m,
        )
        .unwrap();
        assert_eq!(outcome.rows, 100);
        assert_eq!(outcome.stats_values, 100);
        assert!(outcome.bytes > 0);
        assert_eq!(m.rows_materialized, 100);
        assert_eq!(m.stats_values_observed, 100);

        // Reading the intermediate back charges intermediate-read metrics, not
        // base-scan metrics.
        let mut m2 = ExecutionMetrics::new();
        let exec = Executor::new(&cat);
        let rel = exec
            .execute_to_relation(&PhysicalPlan::scan("I_1"), &mut m2)
            .unwrap();
        assert_eq!(rel.len(), 100);
        assert_eq!(m2.rows_intermediate_read, 100);
        assert_eq!(m2.rows_scanned, 0);

        // Online statistics for the tracked column are available.
        let stats = cat.stats().get("I_1").unwrap();
        assert_eq!(stats.row_count, 100);
        assert!(stats.column("o_custkey").is_some());
        assert!(stats.column("o_orderkey").is_none());
    }

    #[test]
    fn materialize_without_stats_counts_no_observations() {
        let mut cat = catalog();
        let mut m = ExecutionMetrics::new();
        let data = {
            let exec = Executor::new(&cat);
            exec.execute(&PhysicalPlan::scan("orders"), &mut m).unwrap()
        };
        let outcome = materialize(
            &mut cat,
            "I_last",
            &data,
            None,
            &["o_custkey".to_string()],
            false,
            &mut m,
        )
        .unwrap();
        assert_eq!(outcome.stats_values, 0);
        assert_eq!(cat.stats().row_count("I_last"), Some(100));
        assert!(cat.stats().get("I_last").unwrap().columns.is_empty());
    }

    #[test]
    fn materialize_spills_under_budget_and_scans_charge_spill_reads() {
        use rdo_storage::SpillConfig;
        let mut cat = catalog();
        cat.configure_spill(SpillConfig::default().with_budget(1).with_page_size(512))
            .unwrap();
        let mut m = ExecutionMetrics::new();
        let data = {
            let exec = Executor::new(&cat);
            exec.execute(&PhysicalPlan::scan("orders"), &mut m).unwrap()
        };
        let outcome = materialize(
            &mut cat,
            "I_spill",
            &data,
            Some("o_custkey"),
            &["o_custkey".to_string()],
            true,
            &mut m,
        )
        .unwrap();
        assert!(outcome.spilled, "1-byte budget forces the disk store");
        assert!(m.spill_pages_written > 0 && m.spill_bytes_written > 0);
        assert!(cat.table("I_spill").unwrap().is_spilled());

        // Reading the spilled intermediate charges the same logical
        // intermediate-read metrics as the memory path, plus page reads.
        let mut m2 = ExecutionMetrics::new();
        let exec = Executor::new(&cat);
        let rel = exec
            .execute_to_relation(&PhysicalPlan::scan("I_spill"), &mut m2)
            .unwrap();
        assert_eq!(rel.len(), 100);
        assert_eq!(m2.rows_intermediate_read, 100);
        assert_eq!(m2.spill_pages_read, m.spill_pages_written);
        assert_eq!(m2.spill_bytes_read, m.spill_bytes_written);

        // Statistics were collected before spilling, exactly as in memory.
        let stats = cat.stats().get("I_spill").unwrap();
        assert_eq!(stats.row_count, 100);
        assert!(stats.column("o_custkey").is_some());
    }

    #[test]
    fn tracked_columns_missing_from_schema_are_ignored() {
        let mut cat = catalog();
        let mut m = ExecutionMetrics::new();
        let data = {
            let exec = Executor::new(&cat);
            exec.execute(&PhysicalPlan::scan("orders"), &mut m).unwrap()
        };
        let outcome = materialize(
            &mut cat,
            "I_2",
            &data,
            None,
            &["not_a_column".to_string(), "o_custkey".to_string()],
            true,
            &mut m,
        )
        .unwrap();
        assert_eq!(
            outcome.stats_values, 100,
            "only the real column is observed"
        );
    }
}
