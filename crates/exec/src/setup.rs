//! Coordinator-side operator setup shared by the serial executor and the
//! partition-parallel executor (`rdo-parallel`).
//!
//! Schema aliasing, projection resolution, join-key resolution and
//! partition-key survival are computed once per operator, before any
//! per-partition work starts. Both executors call these helpers (as they share
//! the kernels in [`crate::partition`]), so a change to name resolution or
//! partition-key propagation can never make the two executors diverge.

use crate::data::PartitionedData;
use rdo_common::{FieldRef, Result, Schema};
use rdo_storage::Table;

/// Everything a scan derives from the plan node before touching rows.
#[derive(Debug, Clone)]
pub struct ScanSetup {
    /// The table's schema re-aliased to the plan's dataset name; predicates
    /// are evaluated against it.
    pub schema: Schema,
    /// Resolved projection column indexes (`None` keeps every column).
    pub projection_indexes: Option<Vec<usize>>,
    /// Schema of the scan output (after projection).
    pub out_schema: Schema,
    /// The table's partition key, if it survives the projection — a later
    /// hash join on it skips the re-partition exchange.
    pub partition_key: Option<String>,
}

/// Prepares a scan of `table` under the plan's `dataset` alias.
pub fn prepare_scan(
    table: &Table,
    dataset: &str,
    projection: Option<&[FieldRef]>,
) -> Result<ScanSetup> {
    let mut schema = table.schema().clone();
    if dataset != table.name() {
        schema = schema.with_dataset(dataset);
    }

    let projection_indexes = match projection {
        Some(cols) => Some(
            cols.iter()
                .map(|c| schema.resolve(c))
                .collect::<Result<Vec<usize>>>()?,
        ),
        None => None,
    };
    let out_schema = match &projection_indexes {
        Some(idx) => schema.project(idx),
        None => schema.clone(),
    };

    let partition_key = partition_key_surviving(table, &out_schema);
    Ok(ScanSetup {
        schema,
        projection_indexes,
        out_schema,
        partition_key,
    })
}

/// Everything an indexed nested-loop join derives from the plan before
/// probing: the indexed (left) side's scan setup plus the resolved key
/// indexes against the broadcast (right) side.
#[derive(Debug, Clone)]
pub struct IndexedJoinSetup {
    /// Aliased schema of the indexed base table; the scan's local predicates
    /// are evaluated against it.
    pub left_schema: Schema,
    /// Resolved projection indexes of the indexed side.
    pub projection_indexes: Option<Vec<usize>>,
    /// Schema of the join output (projected left ++ right).
    pub out_schema: Schema,
    /// Key column indexes in the indexed table.
    pub left_key_indexes: Vec<usize>,
    /// Key column indexes in the broadcast input.
    pub right_key_indexes: Vec<usize>,
    /// Index of the first (indexed) key in the broadcast input.
    pub first_right_key_index: usize,
    /// The indexed table's partition key, if it survives the projection.
    pub partition_key: Option<String>,
}

/// Prepares an indexed nested-loop join of base `table` (aliased `dataset`,
/// optionally projected) against a broadcast input with `right_schema`.
pub fn prepare_indexed_join(
    table: &Table,
    dataset: &str,
    projection: Option<&[FieldRef]>,
    right_schema: &Schema,
    keys: &[(FieldRef, FieldRef)],
) -> Result<IndexedJoinSetup> {
    let mut left_schema = table.schema().clone();
    if dataset != table.name() {
        left_schema = left_schema.with_dataset(dataset);
    }
    let projection_indexes = match projection {
        Some(cols) => Some(
            cols.iter()
                .map(|c| left_schema.resolve(c))
                .collect::<Result<Vec<usize>>>()?,
        ),
        None => None,
    };
    let left_out_schema = match &projection_indexes {
        Some(idx) => left_schema.project(idx),
        None => left_schema.clone(),
    };
    let out_schema = left_out_schema.join(right_schema);

    // Residual key pairs beyond the indexed one are checked after the index
    // probe (composite-key joins).
    let left_key_indexes: Vec<usize> = keys
        .iter()
        .map(|(l, _)| left_schema.resolve(l))
        .collect::<Result<Vec<usize>>>()?;
    let right_key_indexes: Vec<usize> = keys
        .iter()
        .map(|(_, r)| right_schema.resolve(r))
        .collect::<Result<Vec<usize>>>()?;
    let first_right_key_index = right_schema.resolve(&keys[0].1)?;

    let partition_key = partition_key_surviving(table, &left_out_schema);
    Ok(IndexedJoinSetup {
        left_schema,
        projection_indexes,
        out_schema,
        left_key_indexes,
        right_key_indexes,
        first_right_key_index,
        partition_key,
    })
}

/// Resolves every join-key pair against the two join inputs.
pub fn resolve_keys(
    left: &PartitionedData,
    right: &PartitionedData,
    keys: &[(FieldRef, FieldRef)],
) -> Result<(Vec<usize>, Vec<usize>)> {
    let left_indexes = keys
        .iter()
        .map(|(l, _)| left.schema().resolve(l))
        .collect::<Result<Vec<usize>>>()?;
    let right_indexes = keys
        .iter()
        .map(|(_, r)| right.schema().resolve(r))
        .collect::<Result<Vec<usize>>>()?;
    Ok((left_indexes, right_indexes))
}

/// The table's partition key if the output schema still contains that column.
fn partition_key_surviving(table: &Table, out_schema: &Schema) -> Option<String> {
    table.partition_key().and_then(|key| {
        if out_schema.fields().iter().any(|f| f.name.field == key) {
            Some(key.to_string())
        } else {
            None
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdo_common::{DataType, Relation, Tuple, Value};

    fn table() -> Table {
        let schema = Schema::for_dataset(
            "orders",
            &[("o_k", DataType::Int64), ("o_c", DataType::Int64)],
        );
        let rows = (0..10)
            .map(|i| Tuple::new(vec![Value::Int64(i), Value::Int64(i % 3)]))
            .collect();
        Table::from_relation(
            "orders",
            Relation::new(schema, rows).unwrap(),
            2,
            Some("o_k"),
        )
        .unwrap()
    }

    #[test]
    fn scan_setup_aliases_and_projects() {
        let t = table();
        let setup = prepare_scan(&t, "o2", Some(&[FieldRef::new("o2", "o_c")])).unwrap();
        assert_eq!(setup.schema.fields()[0].name.dataset, "o2");
        assert_eq!(setup.projection_indexes, Some(vec![1]));
        assert_eq!(setup.out_schema.len(), 1);
        assert_eq!(setup.partition_key, None, "o_k projected away");
    }

    #[test]
    fn scan_setup_keeps_surviving_partition_key() {
        let t = table();
        let setup = prepare_scan(&t, "orders", None).unwrap();
        assert_eq!(setup.partition_key.as_deref(), Some("o_k"));
        assert!(setup.projection_indexes.is_none());
    }

    #[test]
    fn unknown_projection_column_errors() {
        let t = table();
        assert!(prepare_scan(&t, "orders", Some(&[FieldRef::new("orders", "nope")])).is_err());
    }
}
