//! Partitioned intermediate data flowing between operators.

use rdo_common::{Relation, Schema, Tuple, Value};
use rdo_sketch::hll::hash_value;

/// Data produced by an operator, kept partitioned exactly as it would be across
/// the nodes of the shared-nothing cluster.
#[derive(Debug, Clone)]
pub struct PartitionedData {
    schema: Schema,
    partitions: Vec<Vec<Tuple>>,
    /// Column (unqualified name) the data is currently hash-partitioned on, if
    /// any. A subsequent hash join on the same column skips the re-partition
    /// exchange for this input — the "already partitioned on the join key(s)"
    /// case of the paper's hash-join description.
    partition_key: Option<String>,
    /// If the data is exactly a base-table scan with *no* residual predicates or
    /// projection, the table name is recorded here so that an indexed
    /// nested-loop join can use the table's secondary indexes.
    base_table: Option<String>,
}

impl PartitionedData {
    /// Creates partitioned data.
    pub fn new(schema: Schema, partitions: Vec<Vec<Tuple>>, partition_key: Option<String>) -> Self {
        Self {
            schema,
            partitions,
            partition_key,
            base_table: None,
        }
    }

    /// Creates empty data with the given schema and partition count.
    pub fn empty(schema: Schema, num_partitions: usize) -> Self {
        Self::new(schema, vec![Vec::new(); num_partitions.max(1)], None)
    }

    /// Tags the data as an un-filtered, un-projected scan of `table`.
    pub fn with_base_table(mut self, table: impl Into<String>) -> Self {
        self.base_table = Some(table.into());
        self
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The partitions.
    pub fn partitions(&self) -> &[Vec<Tuple>] {
        &self.partitions
    }

    /// Mutable access to the partitions.
    pub fn partitions_mut(&mut self) -> &mut [Vec<Tuple>] {
        &mut self.partitions
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Column the data is hash-partitioned on, if any.
    pub fn partition_key(&self) -> Option<&str> {
        self.partition_key.as_deref()
    }

    /// Base table name, if the data is a bare scan of one.
    pub fn base_table(&self) -> Option<&str> {
        self.base_table.as_deref()
    }

    /// Total number of rows.
    pub fn row_count(&self) -> usize {
        self.partitions.iter().map(|p| p.len()).sum()
    }

    /// Approximate total bytes.
    pub fn approx_bytes(&self) -> usize {
        self.partitions
            .iter()
            .flat_map(|p| p.iter())
            .map(|t| t.approx_bytes())
            .sum()
    }

    /// True if the data is hash-partitioned on `column` (unqualified comparison).
    pub fn is_partitioned_on(&self, column: &str) -> bool {
        let unqualified = rdo_common::unqualified(column);
        self.partition_key.as_deref() == Some(unqualified)
    }

    /// Re-partitions the data by hashing the value at `key_index`; returns the
    /// new data and the number of rows that had to move between partitions
    /// (the shuffle volume the cost model charges for).
    pub fn repartition(&self, key_index: usize, key_name: &str) -> (PartitionedData, u64, u64) {
        let n = self.num_partitions();
        let mut new_partitions: Vec<Vec<Tuple>> = vec![Vec::new(); n];
        let mut moved_rows = 0u64;
        let mut moved_bytes = 0u64;
        for (from, partition) in self.partitions.iter().enumerate() {
            let (buckets, rows, bytes) =
                crate::partition::repartition_partition(partition, key_index, from, n);
            moved_rows += rows;
            moved_bytes += bytes;
            for (to, mut bucket) in buckets.into_iter().enumerate() {
                new_partitions[to].append(&mut bucket);
            }
        }
        let key_name = rdo_common::unqualified(key_name).to_string();
        (
            PartitionedData::new(self.schema.clone(), new_partitions, Some(key_name)),
            moved_rows,
            moved_bytes,
        )
    }

    /// Gathers all partitions into a single relation (result delivery).
    pub fn gather(&self) -> Relation {
        let mut rel = Relation::empty(self.schema.clone());
        for p in &self.partitions {
            for row in p {
                rel.push(row.clone());
            }
        }
        rel
    }

    /// Flattens into a single vector of rows (broadcast build sides).
    pub fn all_rows(&self) -> Vec<Tuple> {
        self.partitions
            .iter()
            .flat_map(|p| p.iter().cloned())
            .collect()
    }
}

/// Partition id of a value for a cluster with `n` partitions.
pub fn partition_for(value: &Value, n: usize) -> usize {
    partition_for_hash(hash_value(value), n)
}

/// Partition id from a pre-computed stable digest. The columnar repartition
/// kernel hashes borrowed column slots (`rdo_sketch::hll::hash_int64` and
/// friends) and routes through this, so row and batch placement agree by
/// construction.
pub fn partition_for_hash(hash: u64, n: usize) -> usize {
    (hash % n.max(1) as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdo_common::DataType;

    fn data(n: i64, partitions: usize) -> PartitionedData {
        let schema = Schema::for_dataset("t", &[("k", DataType::Int64), ("g", DataType::Int64)]);
        let mut parts = vec![Vec::new(); partitions];
        for i in 0..n {
            parts[(i % partitions as i64) as usize]
                .push(Tuple::new(vec![Value::Int64(i), Value::Int64(i % 7)]));
        }
        PartitionedData::new(schema, parts, None)
    }

    #[test]
    fn row_count_and_bytes() {
        let d = data(100, 4);
        assert_eq!(d.row_count(), 100);
        assert_eq!(d.num_partitions(), 4);
        assert!(d.approx_bytes() > 0);
        assert_eq!(d.gather().len(), 100);
        assert_eq!(d.all_rows().len(), 100);
    }

    #[test]
    fn repartition_moves_rows_to_hash_partition() {
        let d = data(1000, 8);
        let (r, moved_rows, moved_bytes) = d.repartition(1, "t.g");
        assert_eq!(r.row_count(), 1000);
        assert!(r.is_partitioned_on("g"));
        assert!(r.is_partitioned_on("t.g"));
        assert!(moved_rows > 0 && moved_rows <= 1000);
        assert!(moved_bytes > 0);
        // Every row must be in the partition its key hashes to.
        for (p, rows) in r.partitions().iter().enumerate() {
            for row in rows {
                assert_eq!(partition_for(row.value(1), 8), p);
            }
        }
    }

    #[test]
    fn repartition_on_same_key_moves_nothing_second_time() {
        let d = data(500, 4);
        let (once, _, _) = d.repartition(0, "k");
        let (_twice, moved, _) = once.repartition(0, "k");
        assert_eq!(moved, 0, "already partitioned data should not move");
    }

    #[test]
    fn base_table_tag() {
        let d = data(10, 2).with_base_table("lineitem");
        assert_eq!(d.base_table(), Some("lineitem"));
        assert_eq!(data(10, 2).base_table(), None);
    }

    #[test]
    fn empty_data() {
        let schema = Schema::for_dataset("t", &[("k", DataType::Int64)]);
        let d = PartitionedData::empty(schema, 3);
        assert_eq!(d.row_count(), 0);
        assert_eq!(d.num_partitions(), 3);
        assert!(d.partition_key().is_none());
    }
}
