//! The memory-budgeted grace/hybrid hash join kernel.
//!
//! The in-memory [`crate::partition::hash_join_partition`] builds a hash table
//! over the whole build side of one partition; with a join budget configured
//! (`RDO_JOIN_BUDGET` / [`rdo_storage::SpillConfig::join_budget_bytes`]) this
//! module takes over whenever that table would exceed the budget:
//!
//! 1. Both sides of the partition are hashed into `fanout` grace buckets
//!    (a *different* hash than the partition-level exchange, so co-partitioned
//!    inputs still split). The fanout is adaptive by default — 4/8/16-way,
//!    the smallest that covers the build-side byte estimate within the
//!    remaining recursion depth.
//! 2. As many build buckets as fit in the budget stay resident (the *hybrid*
//!    part); their probe rows join immediately.
//! 3. The remaining buckets **stream** to spill files page by page: a first
//!    pass sizes the buckets, a second routes each row either into a resident
//!    bucket or through one page-sized write buffer per spilled bucket
//!    ([`rdo_storage::SpillPartitionWriter`]), so the partitioner's transient
//!    footprint is O(fanout × page size) — it never materializes full
//!    buckets. Spilled pairs are read back and joined one at a time —
//!    recursively re-bucketed with a depth-salted hash when a bucket still
//!    exceeds the budget, up to a bounded recursion depth.
//! 4. Past the depth bound (pathological skew: one key carrying more rows than
//!    the budget can hold) the bucket falls back to a block nested-loop join,
//!    which needs no hash table.
//!
//! The kernel is an *optimization, never a semantic change*: every probe row
//! is tagged with its original position and the per-row outputs are merged
//! back in probe order, so results, join tallies and plan-visible metrics are
//! bit-identical to the in-memory join at every worker count and budget. Only
//! the dedicated grace counters (pages/bytes written and read, partitions
//! spilled, recursions, fallbacks) reveal that the join went out-of-core;
//! they are logical tallies — pure functions of the joined rows — and
//! therefore deterministic too.

use crate::cost::ExecutionMetrics;
use crate::partition::{composite_key, hash_join_partition, JoinTally};
use rdo_common::{Result, Tuple, Value};
use rdo_sketch::hll::hash_value;
use rdo_storage::{Catalog, SpillManager, SpillPartitionWriter, SpilledPartitions};
use std::collections::HashMap;
use std::sync::Arc;

/// The fanout tiers the adaptive partitioner picks from, smallest first.
pub const FANOUT_TIERS: [usize; 3] = [4, 8, 16];

/// The middle tier of the adaptive grace fanout (and the fixed fanout of
/// earlier revisions). Eight buckets cut a build side to ~1/8 per level, so
/// three levels cover a build side 512× the budget before the nested-loop
/// fallback kicks in.
pub const DEFAULT_FANOUT: usize = FANOUT_TIERS[1];

/// Maximum recursive re-partitioning depth before the nested-loop fallback.
pub const DEFAULT_MAX_DEPTH: usize = 3;

/// Everything a join kernel needs to go out-of-core: the spill manager that
/// owns the directory and buffer pool, and the budget/shape knobs. Cloned
/// freely into per-partition tasks (the manager is behind an `Arc`).
#[derive(Debug, Clone)]
pub struct GraceContext {
    manager: Arc<SpillManager>,
    /// Build-side budget in bytes for one partition's hash table.
    pub budget_bytes: u64,
    /// Grace buckets per recursion level. `0` (the default) picks the fanout
    /// adaptively per level — the smallest of [`FANOUT_TIERS`] whose
    /// `fanout ^ remaining_depth` covers the build-side byte estimate — so
    /// small overflows pay 4 write buffers, not 16.
    pub fanout: usize,
    /// Maximum recursion depth before the nested-loop fallback.
    pub max_depth: usize,
}

impl GraceContext {
    /// The grace context of a catalog, if its spill configuration carries a
    /// join budget. Both executors call this once per join and thread the
    /// context into every partition's kernel.
    pub fn from_catalog(catalog: &Catalog) -> Option<Self> {
        let manager = catalog.spill_manager()?;
        let budget_bytes = manager.config().join_budget_bytes?;
        Some(Self {
            manager: Arc::clone(manager),
            budget_bytes,
            fanout: 0,
            max_depth: DEFAULT_MAX_DEPTH,
        })
    }

    /// A context over an explicit manager (tests and tools).
    pub fn new(manager: Arc<SpillManager>, budget_bytes: u64) -> Self {
        Self {
            manager,
            budget_bytes,
            fanout: 0,
            max_depth: DEFAULT_MAX_DEPTH,
        }
    }

    /// Builder-style fixed-fanout override (clamped to `[2, 1024]`),
    /// disabling the adaptive choice.
    pub fn with_fanout(mut self, fanout: usize) -> Self {
        self.fanout = fanout.clamp(2, 1024);
        self
    }

    /// Builder-style recursion-depth override.
    pub fn with_max_depth(mut self, max_depth: usize) -> Self {
        self.max_depth = max_depth;
        self
    }

    /// The fanout one recursion level uses: the fixed override when set,
    /// otherwise the adaptive tier for this build size and remaining depth.
    /// Re-clamped here because the `fanout` field is public — a value past
    /// 1024 would overflow the partitioner's u16 bucket cache.
    fn level_fanout(&self, build_bytes: u64, depth: usize) -> usize {
        if self.fanout > 0 {
            return self.fanout.clamp(2, 1024);
        }
        adaptive_fanout(
            build_bytes,
            self.budget_bytes,
            self.max_depth.saturating_sub(depth),
        )
    }
}

/// Picks the grace fanout from the build-side byte estimate: the smallest
/// tier whose `fanout ^ levels_remaining` covers `build_bytes / budget` —
/// i.e. the smallest fanout that can still split the build side down to the
/// budget within the remaining recursion depth (assuming even splits). A
/// build side too big even for the largest tier gets the largest tier and
/// relies on the nested-loop fallback past the depth bound. Deterministic,
/// so grace counters stay worker-count invariant.
pub fn adaptive_fanout(build_bytes: u64, budget_bytes: u64, levels_remaining: usize) -> usize {
    let ratio = build_bytes.div_ceil(budget_bytes.max(1)).max(1);
    let levels = levels_remaining.max(1) as u32;
    for fanout in FANOUT_TIERS {
        if (fanout as u64).saturating_pow(levels) >= ratio {
            return fanout;
        }
    }
    FANOUT_TIERS[FANOUT_TIERS.len() - 1]
}

/// Counters produced by one partition of a (possibly spilling) join. The
/// `join` part is bit-identical to the in-memory kernel's tally; the grace
/// counters are zero unless the partition actually went out-of-core.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GraceTally {
    /// The in-memory-equivalent build/probe/output tally.
    pub join: JoinTally,
    /// Build buckets written to spill files.
    pub partitions_spilled: u64,
    /// Pages written to grace spill files (both sides).
    pub pages_written: u64,
    /// Stored bytes written to grace spill files (compressed when page
    /// compression is on).
    pub bytes_written: u64,
    /// Pages read back from grace spill files.
    pub pages_read: u64,
    /// Stored bytes read back.
    pub bytes_read: u64,
    /// Uncompressed serialized bytes behind `bytes_written`.
    pub logical_bytes_written: u64,
    /// Uncompressed serialized bytes behind `bytes_read`.
    pub logical_bytes_read: u64,
    /// Recursive re-partitioning rounds (bucket still over budget).
    pub recursions: u64,
    /// Nested-loop fallback leaves (skew past the recursion bound).
    pub fallbacks: u64,
    /// High-water mark of the streaming partitioner's write buffers — the
    /// transient footprint of routing this partition, bounded by fanout ×
    /// page size plus at most one oversized row per bucket. Max-merged.
    pub peak_transient_bytes: u64,
}

impl GraceTally {
    /// Adds another tally into this one (partition-order fold). Every counter
    /// is a plain sum except `peak_transient_bytes`, a max-merged high-water
    /// mark.
    pub fn add(&mut self, other: &GraceTally) {
        self.join.add(&other.join);
        self.partitions_spilled += other.partitions_spilled;
        self.pages_written += other.pages_written;
        self.bytes_written += other.bytes_written;
        self.pages_read += other.pages_read;
        self.bytes_read += other.bytes_read;
        self.logical_bytes_written += other.logical_bytes_written;
        self.logical_bytes_read += other.logical_bytes_read;
        self.recursions += other.recursions;
        self.fallbacks += other.fallbacks;
        self.peak_transient_bytes = self.peak_transient_bytes.max(other.peak_transient_bytes);
    }

    /// Folds this partition tally into the stage metrics.
    pub fn record(&self, metrics: &mut ExecutionMetrics) {
        metrics.build_rows += self.join.build_rows;
        metrics.probe_rows += self.join.probe_rows;
        metrics.output_rows += self.join.output_rows;
        metrics.grace_partitions_spilled += self.partitions_spilled;
        metrics.grace_pages_written += self.pages_written;
        metrics.grace_bytes_written += self.bytes_written;
        metrics.grace_pages_read += self.pages_read;
        metrics.grace_bytes_read += self.bytes_read;
        metrics.grace_logical_bytes_written += self.logical_bytes_written;
        metrics.grace_logical_bytes_read += self.logical_bytes_read;
        metrics.grace_recursions += self.recursions;
        metrics.grace_fallbacks += self.fallbacks;
        metrics.grace_peak_transient_bytes = metrics
            .grace_peak_transient_bytes
            .max(self.peak_transient_bytes);
    }
}

/// Joins one partition, going through the grace path when a context is given:
/// the single dispatch point shared by the serial and the partition-parallel
/// executor, for both the hash and the broadcast join.
pub fn joined_partition(
    probe_rows: &[Tuple],
    build_rows: &[Tuple],
    probe_key_indexes: &[usize],
    build_key_indexes: &[usize],
    grace: Option<&GraceContext>,
) -> Result<(Vec<Tuple>, GraceTally)> {
    match grace {
        Some(ctx) => grace_join_partition(
            probe_rows,
            build_rows,
            probe_key_indexes,
            build_key_indexes,
            ctx,
        ),
        None => {
            let (out, join) =
                hash_join_partition(probe_rows, build_rows, probe_key_indexes, build_key_indexes);
            Ok((
                out,
                GraceTally {
                    join,
                    ..GraceTally::default()
                },
            ))
        }
    }
}

/// The memory-budgeted join of one partition. Below the budget this *is* the
/// in-memory kernel; above it, both sides go through grace partitioning.
pub fn grace_join_partition(
    probe_rows: &[Tuple],
    build_rows: &[Tuple],
    probe_key_indexes: &[usize],
    build_key_indexes: &[usize],
    ctx: &GraceContext,
) -> Result<(Vec<Tuple>, GraceTally)> {
    let mut tally = GraceTally::default();
    let build_bytes: u64 = build_rows.iter().map(|t| t.approx_bytes() as u64).sum();
    if build_bytes <= ctx.budget_bytes {
        let (out, join) =
            hash_join_partition(probe_rows, build_rows, probe_key_indexes, build_key_indexes);
        tally.join = join;
        return Ok((out, tally));
    }
    // An empty probe side joins to nothing; charge the build rows the
    // in-memory kernel would have counted and skip the partitioning I/O.
    if probe_rows.is_empty() {
        tally.join.build_rows = build_rows.len() as u64;
        return Ok((Vec::new(), tally));
    }

    let indexes: Vec<u64> = (0..probe_rows.len() as u64).collect();
    let mut emitted: Vec<(u64, Vec<Tuple>)> = Vec::new();
    recurse(
        probe_rows,
        &indexes,
        build_rows,
        0,
        probe_key_indexes,
        build_key_indexes,
        ctx,
        &mut emitted,
        &mut tally,
    )?;
    // Each probe row lives in exactly one bucket chain, so merging the
    // per-row outputs by original position reproduces the in-memory order.
    emitted.sort_unstable_by_key(|(i, _)| *i);
    let mut out = Vec::with_capacity(tally.join.output_rows as usize);
    for (_, rows) in emitted {
        out.extend(rows);
    }
    Ok((out, tally))
}

/// Grace bucket of a composite key at one recursion depth. Depth salts the
/// hash so a bucket that fails to split at one level splits at the next, and
/// the mixing makes it independent of the exchange-level `partition_for`
/// (co-partitioned inputs, whose first key is constant modulo the partition
/// count, still spread over all buckets).
fn grace_bucket(key: &[Value], depth: usize, fanout: usize) -> usize {
    let mut h: u64 = 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(depth as u64 + 1);
    for v in key {
        h ^= hash_value(v);
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h ^= h >> 33;
    }
    (h % fanout.max(1) as u64) as usize
}

#[allow(clippy::too_many_arguments)]
fn recurse(
    probe: &[Tuple],
    idx: &[u64],
    build: &[Tuple],
    depth: usize,
    probe_keys: &[usize],
    build_keys: &[usize],
    ctx: &GraceContext,
    emitted: &mut Vec<(u64, Vec<Tuple>)>,
    tally: &mut GraceTally,
) -> Result<()> {
    let build_bytes: u64 = build.iter().map(|t| t.approx_bytes() as u64).sum();
    if build_bytes <= ctx.budget_bytes {
        leaf_hash_join(probe, idx, build, probe_keys, build_keys, emitted, tally);
        return Ok(());
    }
    if depth >= ctx.max_depth {
        // Pathological skew: the bucket no longer splits (or we stopped
        // trying). A block nested-loop join needs no build hash table.
        tally.fallbacks += 1;
        leaf_nested_loop(probe, idx, build, probe_keys, build_keys, emitted, tally);
        return Ok(());
    }
    tally.recursions += 1;
    let fanout = ctx.level_fanout(build_bytes, depth);
    let mut span = rdo_trace::span("exec.grace");
    span.attr_u64("level", depth as u64);
    span.attr_u64("fanout", fanout as u64);
    span.attr_u64("bucket_bytes", build_bytes);

    // ---- Pass 1: size the buckets without materializing them — O(fanout)
    // state plus one cached bucket id per row, so pass 2 never re-hashes.
    // NULL-keyed rows never match; they are marked here and counted in
    // pass 2. ----
    const NULL_BUCKET: u16 = u16::MAX; // fanout is clamped to <= 1024
    let mut bucket_bytes = vec![0u64; fanout];
    let mut bucket_rows = vec![0u64; fanout];
    let mut row_buckets: Vec<u16> = Vec::with_capacity(build.len());
    for row in build {
        match composite_key(row, build_keys) {
            None => row_buckets.push(NULL_BUCKET),
            Some(key) => {
                let b = grace_bucket(&key, depth, fanout);
                bucket_bytes[b] += row.approx_bytes() as u64;
                bucket_rows[b] += 1;
                row_buckets.push(b as u16);
            }
        }
    }

    // ---- Hybrid: keep a prefix of buckets resident while they fit. Since the
    // total exceeds the budget, at least one non-empty bucket spills. ----
    let mut resident = vec![false; fanout];
    let mut resident_bytes = 0u64;
    for b in 0..fanout {
        if bucket_rows[b] > 0 && resident_bytes + bucket_bytes[b] <= ctx.budget_bytes {
            resident[b] = true;
            resident_bytes += bucket_bytes[b];
        }
    }
    let spilled_nonempty: Vec<bool> = (0..fanout)
        .map(|b| !resident[b] && bucket_rows[b] > 0)
        .collect();
    tally.partitions_spilled += spilled_nonempty.iter().filter(|s| **s).count() as u64;

    // ---- Pass 2: route the build side. Resident buckets materialize (they
    // fit the budget by construction); spilled buckets stream page by page
    // through one write buffer each, so the transient footprint of the
    // overflow is fanout × page size — not the overflow's own size. NULL-
    // keyed rows are counted the way the in-memory kernel counts its insert
    // attempts and dropped. ----
    let mut build_buckets: Vec<Vec<Tuple>> = vec![Vec::new(); fanout];
    let mut build_writer = SpillPartitionWriter::new(Arc::clone(&ctx.manager), fanout)?;
    for (row, &bucket) in build.iter().zip(&row_buckets) {
        if bucket == NULL_BUCKET {
            tally.join.build_rows += 1;
            continue;
        }
        let b = bucket as usize;
        if resident[b] {
            build_buckets[b].push(row.clone());
        } else {
            build_writer.append(b, row)?;
        }
    }
    drop(row_buckets);
    tally.peak_transient_bytes = tally
        .peak_transient_bytes
        .max(build_writer.peak_buffered_bytes());
    let (build_store, build_written) = build_writer.finish()?;
    tally.pages_written += build_written.pages;
    tally.bytes_written += build_written.bytes;
    tally.logical_bytes_written += build_written.logical_bytes;

    // ---- One hash table over all resident buckets: a key's matches live in a
    // single bucket and keep their build-order positions, so combining the
    // resident buckets changes nothing about match order. ----
    let mut table: HashMap<Vec<Value>, Vec<&Tuple>> = HashMap::new();
    for (b, bucket) in build_buckets.iter().enumerate() {
        if resident[b] {
            for row in bucket {
                tally.join.build_rows += 1;
                let key = composite_key(row, build_keys).expect("bucketed rows carry keys");
                table.entry(key).or_default().push(row);
            }
        }
    }

    // ---- Stream the probe side: resident buckets join now, buckets with a
    // spilled build partner stream to disk through per-bucket page buffers
    // (original positions stay in memory), and buckets whose build side is
    // empty can't match anything. ----
    let mut probe_spill_idx: Vec<Vec<u64>> = vec![Vec::new(); fanout];
    let mut probe_writer = SpillPartitionWriter::new(Arc::clone(&ctx.manager), fanout)?;
    for (row, &i) in probe.iter().zip(idx) {
        let Some(key) = composite_key(row, probe_keys) else {
            tally.join.probe_rows += 1;
            continue;
        };
        let b = grace_bucket(&key, depth, fanout);
        if resident[b] {
            tally.join.probe_rows += 1;
            if let Some(matches) = table.get(&key) {
                let rows: Vec<Tuple> = matches.iter().map(|m| row.concat(m)).collect();
                tally.join.output_rows += rows.len() as u64;
                emitted.push((i, rows));
            }
        } else if spilled_nonempty[b] {
            probe_writer.append(b, row)?;
            probe_spill_idx[b].push(i);
        } else {
            tally.join.probe_rows += 1;
        }
    }
    drop(table);
    drop(build_buckets);
    tally.peak_transient_bytes = tally
        .peak_transient_bytes
        .max(probe_writer.peak_buffered_bytes());
    let (probe_store, probe_written) = probe_writer.finish()?;
    tally.pages_written += probe_written.pages;
    tally.bytes_written += probe_written.bytes;
    tally.logical_bytes_written += probe_written.logical_bytes;

    // ---- Read back and join each spilled pair, one at a time. ----
    for b in 0..fanout {
        if !spilled_nonempty[b] {
            continue;
        }
        let bucket_build = read_partition(&build_store, b, tally)?;
        let bucket_probe = read_partition(&probe_store, b, tally)?;
        recurse(
            &bucket_probe,
            &probe_spill_idx[b],
            &bucket_build,
            depth + 1,
            probe_keys,
            build_keys,
            ctx,
            emitted,
            tally,
        )?;
    }
    // The stores drop here, deleting their spill files.
    Ok(())
}

/// Materializes one spilled bucket, charging the pages actually read.
fn read_partition(
    store: &SpilledPartitions,
    bucket: usize,
    tally: &mut GraceTally,
) -> Result<Vec<Tuple>> {
    let (rows, read) = store.read_partition_tallied(bucket)?;
    tally.pages_read += read.pages;
    tally.bytes_read += read.bytes;
    tally.logical_bytes_read += read.logical_bytes;
    Ok(rows)
}

/// In-budget leaf: the same build-and-probe as the in-memory kernel, emitting
/// per-probe-row outputs tagged with their original positions.
fn leaf_hash_join(
    probe: &[Tuple],
    idx: &[u64],
    build: &[Tuple],
    probe_keys: &[usize],
    build_keys: &[usize],
    emitted: &mut Vec<(u64, Vec<Tuple>)>,
    tally: &mut GraceTally,
) {
    let mut table: HashMap<Vec<Value>, Vec<&Tuple>> = HashMap::with_capacity(build.len());
    for row in build {
        tally.join.build_rows += 1;
        if let Some(key) = composite_key(row, build_keys) {
            table.entry(key).or_default().push(row);
        }
    }
    for (row, &i) in probe.iter().zip(idx) {
        tally.join.probe_rows += 1;
        let Some(key) = composite_key(row, probe_keys) else {
            continue;
        };
        if let Some(matches) = table.get(&key) {
            let rows: Vec<Tuple> = matches.iter().map(|m| row.concat(m)).collect();
            tally.join.output_rows += rows.len() as u64;
            emitted.push((i, rows));
        }
    }
}

/// Fallback leaf for skewed buckets: block nested loop, no hash table. Scans
/// the build side per probe row in build order, which is exactly the match
/// order the hash table's insertion-ordered entries would produce.
fn leaf_nested_loop(
    probe: &[Tuple],
    idx: &[u64],
    build: &[Tuple],
    probe_keys: &[usize],
    build_keys: &[usize],
    emitted: &mut Vec<(u64, Vec<Tuple>)>,
    tally: &mut GraceTally,
) {
    tally.join.build_rows += build.len() as u64;
    let build_keyed: Vec<Option<Vec<Value>>> = build
        .iter()
        .map(|row| composite_key(row, build_keys))
        .collect();
    for (row, &i) in probe.iter().zip(idx) {
        tally.join.probe_rows += 1;
        let Some(key) = composite_key(row, probe_keys) else {
            continue;
        };
        let mut rows = Vec::new();
        for (b_row, b_key) in build.iter().zip(&build_keyed) {
            if b_key.as_deref() == Some(key.as_slice()) {
                rows.push(row.concat(b_row));
            }
        }
        if !rows.is_empty() {
            tally.join.output_rows += rows.len() as u64;
            emitted.push((i, rows));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdo_storage::SpillConfig;

    fn manager() -> Arc<SpillManager> {
        SpillManager::create(SpillConfig::default().with_page_size(512)).unwrap()
    }

    fn rows(n: i64, keys: i64) -> Vec<Tuple> {
        (0..n)
            .map(|i| {
                Tuple::new(vec![
                    Value::Int64(i % keys),
                    Value::Utf8(format!("row-{i}")),
                ])
            })
            .collect()
    }

    /// The kernel's contract: identical rows and join tally to the in-memory
    /// kernel for a sweep of budgets, fanouts and depths — including budgets
    /// so small that every level recurses into the nested-loop fallback.
    #[test]
    fn matches_in_memory_kernel_for_all_budgets() {
        let probe = rows(200, 37);
        let build = rows(60, 37);
        let (expected, expected_tally) = hash_join_partition(&probe, &build, &[0], &[0]);
        for budget in [1u64, 64, 512, 4096, u64::MAX] {
            for fanout in [2, 8] {
                for max_depth in [0, 1, 3] {
                    let ctx = GraceContext::new(manager(), budget)
                        .with_fanout(fanout)
                        .with_max_depth(max_depth);
                    let (out, tally) =
                        grace_join_partition(&probe, &build, &[0], &[0], &ctx).unwrap();
                    assert_eq!(
                        out, expected,
                        "budget={budget} fanout={fanout} depth={max_depth}"
                    );
                    assert_eq!(tally.join, expected_tally);
                }
            }
        }
    }

    #[test]
    fn over_budget_build_side_goes_out_of_core() {
        let probe = rows(500, 101);
        let build = rows(300, 101);
        let ctx = GraceContext::new(manager(), 256);
        let (_, tally) = grace_join_partition(&probe, &build, &[0], &[0], &ctx).unwrap();
        assert!(tally.partitions_spilled > 0, "{tally:?}");
        assert!(tally.pages_written > 0 && tally.bytes_written > 0);
        assert!(tally.pages_read > 0 && tally.bytes_read > 0);
        assert!(tally.recursions > 0);
    }

    #[test]
    fn under_budget_build_side_stays_in_memory() {
        let probe = rows(50, 7);
        let build = rows(10, 7);
        let ctx = GraceContext::new(manager(), u64::MAX);
        let (_, tally) = grace_join_partition(&probe, &build, &[0], &[0], &ctx).unwrap();
        assert_eq!(tally.pages_written, 0);
        assert_eq!(tally.partitions_spilled, 0);
        assert_eq!(tally.recursions, 0);
    }

    /// One key owning the whole build side can never be split by re-hashing;
    /// the recursion bound turns it into a nested-loop leaf instead of
    /// looping forever.
    #[test]
    fn single_hot_key_falls_back_to_nested_loop() {
        let probe: Vec<Tuple> = (0..40)
            .map(|i| Tuple::new(vec![Value::Int64(7), Value::Int64(i)]))
            .collect();
        let build: Vec<Tuple> = (0..30)
            .map(|i| Tuple::new(vec![Value::Int64(7), Value::Int64(100 + i)]))
            .collect();
        let (expected, _) = hash_join_partition(&probe, &build, &[0], &[0]);
        let ctx = GraceContext::new(manager(), 8).with_max_depth(2);
        let (out, tally) = grace_join_partition(&probe, &build, &[0], &[0], &ctx).unwrap();
        assert_eq!(out, expected, "40 × 30 cross product on the hot key");
        assert!(tally.fallbacks > 0, "{tally:?}");
        assert_eq!(tally.join.output_rows, 40 * 30);
    }

    #[test]
    fn null_keys_never_match_but_are_counted() {
        let mut probe = rows(100, 11);
        probe.push(Tuple::new(vec![Value::Null, Value::Int64(0)]));
        let mut build = rows(80, 11);
        build.push(Tuple::new(vec![Value::Null, Value::Int64(0)]));
        let (expected, expected_tally) = hash_join_partition(&probe, &build, &[0], &[0]);
        let ctx = GraceContext::new(manager(), 1);
        let (out, tally) = grace_join_partition(&probe, &build, &[0], &[0], &ctx).unwrap();
        assert_eq!(out, expected);
        assert_eq!(tally.join, expected_tally);
        assert_eq!(tally.join.build_rows, 81);
        assert_eq!(tally.join.probe_rows, 101);
    }

    #[test]
    fn empty_probe_skips_partitioning_but_counts_build_rows() {
        let build = rows(200, 13);
        let ctx = GraceContext::new(manager(), 1);
        let (out, tally) = grace_join_partition(&[], &build, &[0], &[0], &ctx).unwrap();
        assert!(out.is_empty());
        assert_eq!(tally.join.build_rows, 200);
        assert_eq!(tally.pages_written, 0, "nothing to join, nothing spilled");
    }

    #[test]
    fn spill_files_are_gone_after_the_join() {
        let mgr = manager();
        let probe = rows(400, 53);
        let build = rows(400, 53);
        let ctx = GraceContext::new(Arc::clone(&mgr), 128);
        let (_, tally) = grace_join_partition(&probe, &build, &[0], &[0], &ctx).unwrap();
        assert!(tally.bytes_written > 0);
        assert_eq!(
            std::fs::read_dir(mgr.dir()).unwrap().count(),
            0,
            "grace stores delete their files on drop"
        );
    }

    #[test]
    fn tallies_fold_associatively_and_record_into_metrics() {
        let a = GraceTally {
            join: JoinTally {
                build_rows: 1,
                probe_rows: 2,
                output_rows: 3,
            },
            partitions_spilled: 4,
            pages_written: 5,
            bytes_written: 6,
            pages_read: 7,
            bytes_read: 8,
            logical_bytes_written: 11,
            logical_bytes_read: 12,
            recursions: 9,
            fallbacks: 10,
            peak_transient_bytes: 40,
        };
        let b = GraceTally {
            join: JoinTally {
                build_rows: 10,
                probe_rows: 20,
                output_rows: 30,
            },
            peak_transient_bytes: 25,
            ..a
        };
        let mut left = a;
        left.add(&b);
        let mut right = b;
        right.add(&a);
        assert_eq!(left, right);

        let mut metrics = ExecutionMetrics::new();
        left.record(&mut metrics);
        assert_eq!(metrics.build_rows, 11);
        assert_eq!(metrics.probe_rows, 22);
        assert_eq!(metrics.output_rows, 33);
        assert_eq!(metrics.grace_partitions_spilled, 8);
        assert_eq!(metrics.grace_pages_written, 10);
        assert_eq!(metrics.grace_bytes_written, 12);
        assert_eq!(metrics.grace_pages_read, 14);
        assert_eq!(metrics.grace_bytes_read, 16);
        assert_eq!(metrics.grace_logical_bytes_written, 22);
        assert_eq!(metrics.grace_logical_bytes_read, 24);
        assert_eq!(metrics.grace_recursions, 18);
        assert_eq!(metrics.grace_fallbacks, 20);
        assert_eq!(
            metrics.grace_peak_transient_bytes, 40,
            "peaks max-merge: the larger partial wins"
        );
    }

    /// The adaptive fanout picks the smallest tier that can still split the
    /// build side down to the budget within the remaining depth.
    #[test]
    fn adaptive_fanout_scales_with_the_build_estimate() {
        // One level remaining: the ratio alone decides the tier.
        assert_eq!(adaptive_fanout(100, 100, 1), 4, "at budget: smallest tier");
        assert_eq!(adaptive_fanout(400, 100, 1), 4, "4× fits 4-way");
        assert_eq!(adaptive_fanout(401, 100, 1), 8);
        assert_eq!(adaptive_fanout(800, 100, 1), 8);
        assert_eq!(adaptive_fanout(1_600, 100, 1), 16);
        assert_eq!(adaptive_fanout(1_000_000, 100, 1), 16, "capped at 16");
        // More remaining levels tolerate bigger ratios at small fanouts:
        // 4^3 = 64 covers a 64× build side.
        assert_eq!(adaptive_fanout(6_400, 100, 3), 4);
        assert_eq!(adaptive_fanout(6_500, 100, 3), 8);
        // Degenerate budgets don't panic.
        assert_eq!(adaptive_fanout(u64::MAX, 0, 3), 16);
        assert_eq!(adaptive_fanout(0, 0, 0), 4);
    }

    /// The streaming partitioner's transient footprint stays O(fanout × page)
    /// even when the spilled build side is orders of magnitude larger, and
    /// the kernel still matches the in-memory join bit for bit.
    #[test]
    fn streaming_partitioner_bounds_transient_footprint() {
        let probe = rows(4_000, 997);
        let build = rows(4_000, 997);
        let (expected, expected_tally) = hash_join_partition(&probe, &build, &[0], &[0]);
        let ctx = GraceContext::new(manager(), 2_048); // 512-byte pages
        let (out, tally) = grace_join_partition(&probe, &build, &[0], &[0], &ctx).unwrap();
        assert_eq!(out, expected);
        assert_eq!(tally.join, expected_tally);
        assert!(tally.peak_transient_bytes > 0);
        // Largest tier × (page + one row of overshoot) bounds the buffers;
        // the spilled volume is far larger than what was ever buffered.
        let bound = 16 * (512 + 64);
        assert!(
            tally.peak_transient_bytes <= bound,
            "peak {} exceeds fanout × page bound {bound}",
            tally.peak_transient_bytes
        );
        assert!(
            tally.logical_bytes_written > 4 * tally.peak_transient_bytes,
            "spilled volume dwarfs the transient footprint: {tally:?}"
        );
        assert!(
            tally.bytes_written < tally.logical_bytes_written,
            "grace pages compress: {tally:?}"
        );
    }

    #[test]
    fn dispatch_without_context_is_the_plain_kernel() {
        let probe = rows(30, 5);
        let build = rows(10, 5);
        let (expected, expected_tally) = hash_join_partition(&probe, &build, &[0], &[0]);
        let (out, tally) = joined_partition(&probe, &build, &[0], &[0], None).unwrap();
        assert_eq!(out, expected);
        assert_eq!(tally.join, expected_tally);
        assert_eq!(
            tally,
            GraceTally {
                join: expected_tally,
                ..GraceTally::default()
            }
        );
    }
}
