//! Physical plans: scans with pushed-down predicates plus a tree of joins, each
//! annotated with the join algorithm chosen by the optimizer.

use crate::expr::Predicate;
use rdo_common::FieldRef;
use std::fmt;

/// Join algorithms supported by the engine (Section 3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinAlgorithm {
    /// Re-partition both inputs on the join key and run a per-partition dynamic
    /// hash join. The AsterixDB default.
    Hash,
    /// Replicate the (small) build input to every partition of the probe input.
    Broadcast,
    /// Broadcast the build input and probe a secondary index of the other
    /// (base-dataset) input.
    IndexedNestedLoop,
}

impl JoinAlgorithm {
    /// The symbol used in the paper's appendix plan diagrams: plain `⋈` for
    /// hash, `⋈b` for broadcast, `⋈i` for indexed nested-loop.
    pub fn symbol(&self) -> &'static str {
        match self {
            JoinAlgorithm::Hash => "⋈",
            JoinAlgorithm::Broadcast => "⋈b",
            JoinAlgorithm::IndexedNestedLoop => "⋈i",
        }
    }
}

impl fmt::Display for JoinAlgorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// A physical plan tree.
#[derive(Debug, Clone)]
pub enum PhysicalPlan {
    /// Scan a table (base dataset or materialized intermediate result), apply
    /// pushed-down local predicates and an optional projection.
    Scan {
        /// Name the dataset is known by in the query (alias, e.g. `d1` for the
        /// first `date_dim` occurrence).
        dataset: String,
        /// Physical table name in the catalog.
        table: String,
        /// Local predicates applied during the scan.
        predicates: Vec<Predicate>,
        /// Columns to keep (`None` keeps everything).
        projection: Option<Vec<FieldRef>>,
    },
    /// Join two sub-plans on the conjunction of the equi-join key pairs. For
    /// [`JoinAlgorithm::Broadcast`] and [`JoinAlgorithm::IndexedNestedLoop`] the
    /// *right* input is the one broadcast; for `IndexedNestedLoop` the left
    /// input must be a bare base-table scan with a secondary index on the first
    /// left key.
    Join {
        /// Probe-side input.
        left: Box<PhysicalPlan>,
        /// Build-side input (broadcast for Broadcast/INL).
        right: Box<PhysicalPlan>,
        /// Equi-join key pairs `(left_key, right_key)`; composite joins (e.g.
        /// TPC-DS store_sales ⋈ store_returns on item/ticket/customer) have more
        /// than one pair.
        keys: Vec<(FieldRef, FieldRef)>,
        /// Join algorithm.
        algorithm: JoinAlgorithm,
    },
}

impl PhysicalPlan {
    /// Convenience constructor for a scan of a base dataset under its own name.
    pub fn scan(dataset: impl Into<String>) -> Self {
        let dataset = dataset.into();
        PhysicalPlan::Scan {
            table: dataset.clone(),
            dataset,
            predicates: Vec::new(),
            projection: None,
        }
    }

    /// Convenience constructor for a scan of `table` aliased as `dataset`.
    pub fn scan_aliased(dataset: impl Into<String>, table: impl Into<String>) -> Self {
        PhysicalPlan::Scan {
            dataset: dataset.into(),
            table: table.into(),
            predicates: Vec::new(),
            projection: None,
        }
    }

    /// Adds local predicates to a scan (no-op for joins).
    pub fn with_predicates(mut self, preds: Vec<Predicate>) -> Self {
        if let PhysicalPlan::Scan { predicates, .. } = &mut self {
            *predicates = preds;
        }
        self
    }

    /// Adds a projection to a scan (no-op for joins).
    pub fn with_projection(mut self, columns: Vec<FieldRef>) -> Self {
        if let PhysicalPlan::Scan { projection, .. } = &mut self {
            *projection = Some(columns);
        }
        self
    }

    /// Builds a join node on a single key pair.
    pub fn join(
        left: PhysicalPlan,
        right: PhysicalPlan,
        left_key: FieldRef,
        right_key: FieldRef,
        algorithm: JoinAlgorithm,
    ) -> Self {
        Self::join_on(left, right, vec![(left_key, right_key)], algorithm)
    }

    /// Builds a join node on a composite key (conjunction of key pairs).
    pub fn join_on(
        left: PhysicalPlan,
        right: PhysicalPlan,
        keys: Vec<(FieldRef, FieldRef)>,
        algorithm: JoinAlgorithm,
    ) -> Self {
        PhysicalPlan::Join {
            left: Box::new(left),
            right: Box::new(right),
            keys,
            algorithm,
        }
    }

    /// All dataset aliases scanned by the plan, left-to-right.
    pub fn datasets(&self) -> Vec<String> {
        match self {
            PhysicalPlan::Scan { dataset, .. } => vec![dataset.clone()],
            PhysicalPlan::Join { left, right, .. } => {
                let mut d = left.datasets();
                d.extend(right.datasets());
                d
            }
        }
    }

    /// Number of join nodes in the plan.
    pub fn join_count(&self) -> usize {
        match self {
            PhysicalPlan::Scan { .. } => 0,
            PhysicalPlan::Join { left, right, .. } => 1 + left.join_count() + right.join_count(),
        }
    }

    /// True if the plan is a bare scan of a base table (no predicates, no
    /// projection) — the shape required of the indexed side of an INL join.
    pub fn is_bare_scan(&self) -> bool {
        matches!(
            self,
            PhysicalPlan::Scan {
                predicates,
                projection,
                ..
            } if predicates.is_empty() && projection.is_none()
        )
    }

    /// Compact single-line form mirroring the paper's appendix notation, e.g.
    /// `((A ⋈b B) ⋈ C)`.
    pub fn signature(&self) -> String {
        match self {
            PhysicalPlan::Scan {
                dataset,
                predicates,
                ..
            } => {
                if predicates.is_empty() {
                    dataset.clone()
                } else {
                    format!("σ({dataset})")
                }
            }
            PhysicalPlan::Join {
                left,
                right,
                algorithm,
                ..
            } => format!(
                "({} {} {})",
                left.signature(),
                algorithm.symbol(),
                right.signature()
            ),
        }
    }

    /// Multi-line EXPLAIN output.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(&mut out, 0);
        out
    }

    fn explain_into(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        match self {
            PhysicalPlan::Scan {
                dataset,
                table,
                predicates,
                projection,
            } => {
                out.push_str(&pad);
                out.push_str("Scan ");
                out.push_str(dataset);
                if dataset != table {
                    out.push_str(&format!(" (table {table})"));
                }
                if !predicates.is_empty() {
                    let preds: Vec<String> = predicates.iter().map(|p| p.describe()).collect();
                    out.push_str(&format!(" [{}]", preds.join(" AND ")));
                }
                if let Some(cols) = projection {
                    out.push_str(&format!(" project {} cols", cols.len()));
                }
                out.push('\n');
            }
            PhysicalPlan::Join {
                left,
                right,
                keys,
                algorithm,
            } => {
                let conditions: Vec<String> =
                    keys.iter().map(|(l, r)| format!("{l} = {r}")).collect();
                out.push_str(&pad);
                out.push_str(&format!(
                    "{} Join [{}]\n",
                    algorithm.symbol(),
                    conditions.join(" AND ")
                ));
                left.explain_into(out, indent + 1);
                right.explain_into(out, indent + 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;

    fn sample_join() -> PhysicalPlan {
        let a = PhysicalPlan::scan("lineitem");
        let b = PhysicalPlan::scan("part").with_predicates(vec![Predicate::compare(
            FieldRef::new("part", "p_size"),
            CmpOp::Lt,
            10i64,
        )]);
        let ab = PhysicalPlan::join(
            a,
            b,
            FieldRef::new("lineitem", "l_partkey"),
            FieldRef::new("part", "p_partkey"),
            JoinAlgorithm::Broadcast,
        );
        PhysicalPlan::join(
            ab,
            PhysicalPlan::scan("orders"),
            FieldRef::new("lineitem", "l_orderkey"),
            FieldRef::new("orders", "o_orderkey"),
            JoinAlgorithm::Hash,
        )
    }

    #[test]
    fn datasets_and_join_count() {
        let p = sample_join();
        assert_eq!(p.datasets(), vec!["lineitem", "part", "orders"]);
        assert_eq!(p.join_count(), 2);
    }

    #[test]
    fn signature_uses_algorithm_symbols() {
        let p = sample_join();
        assert_eq!(p.signature(), "((lineitem ⋈b σ(part)) ⋈ orders)");
    }

    #[test]
    fn explain_contains_structure() {
        let p = sample_join();
        let text = p.explain();
        assert!(text.contains("⋈b Join"));
        assert!(text.contains("Scan lineitem"));
        assert!(text.contains("p_size < 10"));
    }

    #[test]
    fn bare_scan_detection() {
        assert!(PhysicalPlan::scan("x").is_bare_scan());
        let filtered = PhysicalPlan::scan("x").with_predicates(vec![Predicate::compare(
            FieldRef::new("x", "c"),
            CmpOp::Eq,
            1i64,
        )]);
        assert!(!filtered.is_bare_scan());
        let projected = PhysicalPlan::scan("x").with_projection(vec![FieldRef::new("x", "c")]);
        assert!(!projected.is_bare_scan());
        assert!(!sample_join().is_bare_scan());
    }

    #[test]
    fn aliased_scan_explain() {
        let p = PhysicalPlan::scan_aliased("d1", "date_dim");
        assert!(p.explain().contains("Scan d1 (table date_dim)"));
        assert_eq!(p.datasets(), vec!["d1"]);
    }

    #[test]
    fn algorithm_symbols() {
        assert_eq!(JoinAlgorithm::Hash.symbol(), "⋈");
        assert_eq!(JoinAlgorithm::Broadcast.symbol(), "⋈b");
        assert_eq!(JoinAlgorithm::IndexedNestedLoop.symbol(), "⋈i");
        assert_eq!(JoinAlgorithm::Broadcast.to_string(), "⋈b");
    }
}
