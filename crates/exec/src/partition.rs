//! Per-partition operator kernels.
//!
//! Every physical operator of the engine decomposes into work that runs
//! independently on one partition: filter/project a partition's rows, bucket a
//! partition's rows for a re-partition exchange, build-and-probe one
//! partition's hash table, probe one partition of a secondary index. The
//! serial [`crate::Executor`] loops these kernels partition-by-partition; the
//! partition-parallel executor (`rdo-parallel`) maps the *same* kernels across
//! a worker pool. Sharing the kernels is what makes the two executors
//! bit-identical: parallelism only changes *who* runs a partition, never what
//! the partition computes.
//!
//! Each kernel returns its output rows plus a tally of the counters it would
//! contribute to [`crate::ExecutionMetrics`]; tallies are summed in partition
//! order, which makes the merged metrics independent of worker interleaving.

use crate::data::partition_for;
use crate::expr::{evaluate_all, Predicate};
use rdo_common::{Result, Schema, Tuple, Value};
use rdo_storage::SecondaryIndex;
use std::collections::HashMap;

/// Counters produced by scanning one partition.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanTally {
    /// Rows read from the partition.
    pub scanned_rows: u64,
    /// Bytes read from the partition.
    pub scanned_bytes: u64,
    /// Rows surviving the predicates.
    pub kept: u64,
}

impl ScanTally {
    /// Adds another tally into this one (partition-order fold).
    pub fn add(&mut self, other: &ScanTally) {
        self.scanned_rows += other.scanned_rows;
        self.scanned_bytes += other.scanned_bytes;
        self.kept += other.kept;
    }
}

/// Filters and projects the rows of one partition.
pub fn scan_partition(
    schema: &Schema,
    predicates: &[Predicate],
    projection: Option<&[usize]>,
    rows: &[Tuple],
) -> Result<(Vec<Tuple>, ScanTally)> {
    let mut out = Vec::new();
    let mut tally = ScanTally::default();
    for row in rows {
        tally.scanned_rows += 1;
        tally.scanned_bytes += row.approx_bytes() as u64;
        if evaluate_all(predicates, schema, row)? {
            let projected = match projection {
                Some(indexes) => row.project(indexes),
                None => row.clone(),
            };
            out.push(projected);
            tally.kept += 1;
        }
    }
    Ok((out, tally))
}

/// Extracts a composite join key, treating any NULL component as "no key"
/// (SQL equi-join semantics: NULL never matches).
pub fn composite_key(row: &Tuple, indexes: &[usize]) -> Option<Vec<Value>> {
    let mut key = Vec::with_capacity(indexes.len());
    for &i in indexes {
        let v = row.value(i);
        if v.is_null() {
            return None;
        }
        key.push(v.clone());
    }
    Some(key)
}

/// Counters produced by one partition of a hash/broadcast join.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JoinTally {
    /// Rows inserted into the build table.
    pub build_rows: u64,
    /// Rows probed against the build table.
    pub probe_rows: u64,
    /// Join output rows.
    pub output_rows: u64,
}

impl JoinTally {
    /// Adds another tally into this one (partition-order fold).
    pub fn add(&mut self, other: &JoinTally) {
        self.build_rows += other.build_rows;
        self.probe_rows += other.probe_rows;
        self.output_rows += other.output_rows;
    }
}

/// Builds a hash table over `build_rows` and probes it with `probe_rows`,
/// emitting `probe ++ build` rows. Used per partition by the hash join (with
/// co-partitioned inputs) and by the broadcast join (with the replicated build
/// side).
pub fn hash_join_partition(
    probe_rows: &[Tuple],
    build_rows: &[Tuple],
    probe_key_indexes: &[usize],
    build_key_indexes: &[usize],
) -> (Vec<Tuple>, JoinTally) {
    let mut tally = JoinTally::default();
    let mut table: HashMap<Vec<Value>, Vec<&Tuple>> = HashMap::with_capacity(build_rows.len());
    for row in build_rows {
        tally.build_rows += 1;
        if let Some(key) = composite_key(row, build_key_indexes) {
            table.entry(key).or_default().push(row);
        }
    }
    let mut out = Vec::new();
    for row in probe_rows {
        tally.probe_rows += 1;
        let Some(key) = composite_key(row, probe_key_indexes) else {
            continue;
        };
        if let Some(matches) = table.get(&key) {
            for m in matches {
                out.push(row.concat(m));
                tally.output_rows += 1;
            }
        }
    }
    (out, tally)
}

/// Counters produced by one partition of an indexed nested-loop join.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexJoinTally {
    /// Secondary-index lookups performed.
    pub index_lookups: u64,
    /// Rows fetched through the index.
    pub index_fetched_rows: u64,
    /// Join output rows.
    pub output_rows: u64,
}

impl IndexJoinTally {
    /// Adds another tally into this one (partition-order fold).
    pub fn add(&mut self, other: &IndexJoinTally) {
        self.index_lookups += other.index_lookups;
        self.index_fetched_rows += other.index_fetched_rows;
        self.output_rows += other.output_rows;
    }
}

/// Probes one partition of a secondary index with the broadcast build rows,
/// emitting `indexed ++ probe` rows. `base_rows` is the indexed table's
/// partition; residual key pairs beyond the indexed one and the scan's local
/// predicates are checked after each index fetch.
#[allow(clippy::too_many_arguments)]
pub fn indexed_join_partition(
    broadcast_rows: &[Tuple],
    index: &SecondaryIndex,
    partition: usize,
    base_rows: &[Tuple],
    left_schema: &Schema,
    predicates: &[Predicate],
    projection: Option<&[usize]>,
    left_key_indexes: &[usize],
    right_key_indexes: &[usize],
    first_right_key_index: usize,
) -> Result<(Vec<Tuple>, IndexJoinTally)> {
    let mut tally = IndexJoinTally::default();
    let mut out = Vec::new();
    for probe_row in broadcast_rows {
        tally.index_lookups += 1;
        let key = probe_row.value(first_right_key_index);
        for &offset in index.probe(partition, key) {
            tally.index_fetched_rows += 1;
            let base_row = &base_rows[offset];
            let all_keys_match = left_key_indexes
                .iter()
                .zip(right_key_indexes)
                .skip(1)
                .all(|(&li, &ri)| base_row.value(li) == probe_row.value(ri));
            if !all_keys_match {
                continue;
            }
            if !evaluate_all(predicates, left_schema, base_row)? {
                continue;
            }
            let left_row = match projection {
                Some(indexes) => base_row.project(indexes),
                None => base_row.clone(),
            };
            out.push(left_row.concat(probe_row));
            tally.output_rows += 1;
        }
    }
    Ok((out, tally))
}

/// Buckets one source partition's rows by the hash of the key column — the
/// per-partition half of a `HashRepartition` exchange. Returns the buckets
/// (indexed by destination partition) and the rows/bytes that left partition
/// `from` (the shuffle volume the cost model charges for). The exchange
/// concatenates buckets in source-partition order, so the result is
/// deterministic no matter which worker ran which source partition.
pub fn repartition_partition(
    rows: &[Tuple],
    key_index: usize,
    from: usize,
    num_partitions: usize,
) -> (Vec<Vec<Tuple>>, u64, u64) {
    let mut buckets: Vec<Vec<Tuple>> = vec![Vec::new(); num_partitions];
    let mut moved_rows = 0u64;
    let mut moved_bytes = 0u64;
    for row in rows {
        let to = partition_for(row.value(key_index), num_partitions);
        if to != from {
            moved_rows += 1;
            moved_bytes += row.approx_bytes() as u64;
        }
        buckets[to].push(row.clone());
    }
    (buckets, moved_rows, moved_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdo_common::{DataType, Schema};

    fn rows(n: i64) -> Vec<Tuple> {
        (0..n)
            .map(|i| Tuple::new(vec![Value::Int64(i), Value::Int64(i % 5)]))
            .collect()
    }

    fn schema() -> Schema {
        Schema::for_dataset("t", &[("k", DataType::Int64), ("g", DataType::Int64)])
    }

    #[test]
    fn scan_kernel_counts_and_filters() {
        let rows = rows(10);
        let predicates = vec![Predicate::compare(
            rdo_common::FieldRef::new("t", "g"),
            crate::expr::CmpOp::Eq,
            2i64,
        )];
        let (out, tally) = scan_partition(&schema(), &predicates, None, &rows).unwrap();
        assert_eq!(tally.scanned_rows, 10);
        assert_eq!(tally.kept, 2);
        assert_eq!(out.len(), 2);
        assert!(tally.scanned_bytes > 0);
    }

    #[test]
    fn hash_join_kernel_concats_probe_then_build() {
        let probe = rows(10);
        let build = rows(5);
        let (out, tally) = hash_join_partition(&probe, &build, &[0], &[0]);
        assert_eq!(tally.build_rows, 5);
        assert_eq!(tally.probe_rows, 10);
        assert_eq!(tally.output_rows, 5, "keys 0..5 match");
        assert_eq!(out[0].values().len(), 4);
    }

    #[test]
    fn null_keys_never_match() {
        let probe = vec![Tuple::new(vec![Value::Null, Value::Int64(0)])];
        let build = vec![Tuple::new(vec![Value::Null, Value::Int64(0)])];
        let (out, tally) = hash_join_partition(&probe, &build, &[0], &[0]);
        assert!(out.is_empty());
        assert_eq!(tally.output_rows, 0);
    }

    #[test]
    fn repartition_kernel_buckets_by_hash() {
        let rows = rows(100);
        let (buckets, moved, bytes) = repartition_partition(&rows, 1, 0, 4);
        assert_eq!(buckets.iter().map(Vec::len).sum::<usize>(), 100);
        assert!(moved > 0 && moved <= 100);
        assert!(bytes > 0);
        for (p, bucket) in buckets.iter().enumerate() {
            for row in bucket {
                assert_eq!(partition_for(row.value(1), 4), p);
            }
        }
    }

    #[test]
    fn tallies_fold_associatively() {
        let a = ScanTally {
            scanned_rows: 1,
            scanned_bytes: 2,
            kept: 3,
        };
        let b = ScanTally {
            scanned_rows: 10,
            scanned_bytes: 20,
            kept: 30,
        };
        let mut left = a;
        left.add(&b);
        let mut right = b;
        right.add(&a);
        assert_eq!(left, right);
    }
}
