//! Per-partition operator kernels — columnar core, row-compatible edges.
//!
//! Every physical operator of the engine decomposes into work that runs
//! independently on one partition: filter/project a partition's rows, bucket a
//! partition's rows for a re-partition exchange, build-and-probe one
//! partition's hash table, probe one partition of a secondary index. The
//! serial [`crate::Executor`] loops these kernels partition-by-partition; the
//! partition-parallel executor (`rdo-parallel`) maps the *same* kernels across
//! a worker pool. Sharing the kernels is what makes the two executors
//! bit-identical: parallelism only changes *who* runs a partition, never what
//! the partition computes.
//!
//! Since the columnar redesign the kernels are *batch-at-a-time*: rows chunk
//! into typed [`Batch`]es of [`batch_size`] rows (`RDO_BATCH_SIZE`, default
//! 1024), predicates evaluate column-wise
//! ([`crate::expr::evaluate_all_batch`]), and partition hashing runs over
//! borrowed column slots ([`column_partition_hash`]) instead of per-tuple
//! [`Value`] hashing. The public row-level entry points
//! ([`scan_partition`], [`hash_join_partition`], [`repartition_partition`])
//! keep their signatures and exact row-level semantics — they are thin
//! adapters over the batch kernels, and since every kernel's output is an
//! order-preserving concatenation across chunks, results and every tally
//! counter are invariant to the batch size. The original row-at-a-time
//! implementations survive as `*_rows` reference kernels for equivalence
//! tests and the bench gate's row-vs-columnar comparison.
//!
//! Each kernel returns its output plus a tally of the counters it would
//! contribute to [`crate::ExecutionMetrics`]; tallies are summed in partition
//! order, which makes the merged metrics independent of worker interleaving.

use crate::data::{partition_for, partition_for_hash};
use crate::expr::{evaluate_all, evaluate_all_batch, Predicate};
use rdo_common::{Batch, Column, Result, Schema, Tuple, Value};
use rdo_sketch::hll::{hash_bool, hash_float64, hash_int64, hash_null, hash_utf8, hash_value};
use rdo_storage::SecondaryIndex;
use std::collections::HashMap;

// The batch-size knob moved to `rdo_common` when storage went columnar (the
// storage layer chunks resident partitions at the same size); re-exported
// here so kernel call sites keep their import paths.
pub use rdo_common::{batch_size, BATCH_SIZE_ENV, DEFAULT_BATCH_SIZE};

/// Counters produced by scanning one partition.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanTally {
    /// Rows read from the partition.
    pub scanned_rows: u64,
    /// Bytes read from the partition.
    pub scanned_bytes: u64,
    /// Rows surviving the predicates.
    pub kept: u64,
}

impl ScanTally {
    /// Adds another tally into this one (partition-order fold).
    pub fn add(&mut self, other: &ScanTally) {
        self.scanned_rows += other.scanned_rows;
        self.scanned_bytes += other.scanned_bytes;
        self.kept += other.kept;
    }
}

/// Filters and projects one column batch — the columnar scan kernel.
/// Counts every input row/byte, applies the conjunction column-wise, and
/// keeps survivors in input order.
pub fn scan_batch(
    schema: &Schema,
    predicates: &[Predicate],
    projection: Option<&[usize]>,
    batch: &Batch,
) -> Result<(Batch, ScanTally)> {
    let mut tally = ScanTally {
        scanned_rows: batch.num_rows() as u64,
        scanned_bytes: batch.approx_bytes() as u64,
        kept: 0,
    };
    let mask = evaluate_all_batch(predicates, schema, batch)?;
    let filtered = batch.filter(&mask);
    tally.kept = filtered.num_rows() as u64;
    let out = match projection {
        Some(indexes) => filtered.project(indexes),
        None => filtered,
    };
    Ok((out, tally))
}

/// Filters and projects the rows of one partition. Row-level adapter over
/// [`scan_batch`] at the process-wide [`batch_size`].
pub fn scan_partition(
    schema: &Schema,
    predicates: &[Predicate],
    projection: Option<&[usize]>,
    rows: &[Tuple],
) -> Result<(Vec<Tuple>, ScanTally)> {
    scan_partition_chunked(schema, predicates, projection, rows, batch_size())
}

/// [`scan_partition`] with an explicit chunk size (tests sweep sizes without
/// touching the environment). Output and tally are chunk-size invariant.
pub fn scan_partition_chunked(
    schema: &Schema,
    predicates: &[Predicate],
    projection: Option<&[usize]>,
    rows: &[Tuple],
    chunk_size: usize,
) -> Result<(Vec<Tuple>, ScanTally)> {
    let mut out = Vec::new();
    let mut tally = ScanTally::default();
    for chunk in rows.chunks(chunk_size.max(1)) {
        let batch = Batch::from_rows(chunk[0].len(), chunk);
        let (kept, t) = scan_batch(schema, predicates, projection, &batch)?;
        tally.add(&t);
        kept.extend_rows_into(&mut out);
    }
    Ok((out, tally))
}

/// The original row-at-a-time scan kernel, kept as the reference
/// implementation the batch path is tested against (and the row side of the
/// bench gate's row-vs-columnar case).
pub fn scan_partition_rows(
    schema: &Schema,
    predicates: &[Predicate],
    projection: Option<&[usize]>,
    rows: &[Tuple],
) -> Result<(Vec<Tuple>, ScanTally)> {
    let mut out = Vec::new();
    let mut tally = ScanTally::default();
    for row in rows {
        tally.scanned_rows += 1;
        tally.scanned_bytes += row.approx_bytes() as u64;
        if evaluate_all(predicates, schema, row)? {
            let projected = match projection {
                Some(indexes) => row.project(indexes),
                None => row.clone(),
            };
            out.push(projected);
            tally.kept += 1;
        }
    }
    Ok((out, tally))
}

/// Extracts a composite join key, treating any NULL component as "no key"
/// (SQL equi-join semantics: NULL never matches).
pub fn composite_key(row: &Tuple, indexes: &[usize]) -> Option<Vec<Value>> {
    let mut key = Vec::with_capacity(indexes.len());
    for &i in indexes {
        let v = row.value(i);
        if v.is_null() {
            return None;
        }
        key.push(v.clone());
    }
    Some(key)
}

/// Batch analogue of [`composite_key`]: the key of row `row` of a batch, or
/// `None` if any component is NULL.
pub fn composite_key_at(batch: &Batch, row: usize, indexes: &[usize]) -> Option<Vec<Value>> {
    let mut key = Vec::with_capacity(indexes.len());
    for &c in indexes {
        let col = batch.column(c);
        if col.is_null(row) {
            return None;
        }
        key.push(col.value(row));
    }
    Some(key)
}

/// Counters produced by one partition of a hash/broadcast join.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JoinTally {
    /// Rows inserted into the build table.
    pub build_rows: u64,
    /// Rows probed against the build table.
    pub probe_rows: u64,
    /// Join output rows.
    pub output_rows: u64,
}

impl JoinTally {
    /// Adds another tally into this one (partition-order fold).
    pub fn add(&mut self, other: &JoinTally) {
        self.build_rows += other.build_rows;
        self.probe_rows += other.probe_rows;
        self.output_rows += other.output_rows;
    }
}

/// A join build table over a columnar build side, constructed once per
/// partition and probed batch-at-a-time. Keys map to build-row indexes in
/// insertion order, so probe output preserves the row kernel's
/// probe-major/build-insertion-order sequence exactly.
pub struct JoinBuildTable {
    build: Batch,
    table: HashMap<Vec<Value>, Vec<u32>>,
}

impl JoinBuildTable {
    /// Builds the table over `build`'s key columns (NULL keys never enter).
    pub fn build(build: Batch, key_indexes: &[usize]) -> Self {
        let mut table: HashMap<Vec<Value>, Vec<u32>> = HashMap::with_capacity(build.num_rows());
        for i in 0..build.num_rows() {
            if let Some(key) = composite_key_at(&build, i, key_indexes) {
                table.entry(key).or_default().push(i as u32);
            }
        }
        Self { build, table }
    }

    /// Rows on the build side (counted once per partition, however many
    /// probe batches follow).
    pub fn build_rows(&self) -> u64 {
        self.build.num_rows() as u64
    }

    /// Probes the table with one batch, emitting `probe ++ build` columns in
    /// probe order. The returned tally covers this probe batch only —
    /// `build_rows` stays 0 so callers can sum probe tallies without
    /// multiply-counting the build side.
    pub fn probe(&self, probe: &Batch, key_indexes: &[usize]) -> (Batch, JoinTally) {
        let mut probe_idx: Vec<u32> = Vec::new();
        let mut build_idx: Vec<u32> = Vec::new();
        for i in 0..probe.num_rows() {
            let Some(key) = composite_key_at(probe, i, key_indexes) else {
                continue;
            };
            if let Some(matches) = self.table.get(&key) {
                for &m in matches {
                    probe_idx.push(i as u32);
                    build_idx.push(m);
                }
            }
        }
        let tally = JoinTally {
            build_rows: 0,
            probe_rows: probe.num_rows() as u64,
            output_rows: probe_idx.len() as u64,
        };
        let out = probe.take(&probe_idx).hstack(&self.build.take(&build_idx));
        (out, tally)
    }
}

/// Columnar hash join over two batches: builds a [`JoinBuildTable`] over
/// `build` and probes it with `probe`, emitting `probe ++ build` columns.
pub fn hash_join_batch(
    probe: &Batch,
    build: &Batch,
    probe_key_indexes: &[usize],
    build_key_indexes: &[usize],
) -> (Batch, JoinTally) {
    let table = JoinBuildTable::build(build.clone(), build_key_indexes);
    let (out, mut tally) = table.probe(probe, probe_key_indexes);
    tally.build_rows = table.build_rows();
    (out, tally)
}

/// Builds a hash table over `build_rows` and probes it with `probe_rows`,
/// emitting `probe ++ build` rows. Used per partition by the hash join (with
/// co-partitioned inputs) and by the broadcast join (with the replicated build
/// side). Row-level adapter over the columnar join: the build table is built
/// once, the probe side streams through in [`batch_size`] chunks.
pub fn hash_join_partition(
    probe_rows: &[Tuple],
    build_rows: &[Tuple],
    probe_key_indexes: &[usize],
    build_key_indexes: &[usize],
) -> (Vec<Tuple>, JoinTally) {
    hash_join_partition_chunked(
        probe_rows,
        build_rows,
        probe_key_indexes,
        build_key_indexes,
        batch_size(),
    )
}

/// [`hash_join_partition`] with an explicit probe chunk size. Output and
/// tally are chunk-size invariant.
pub fn hash_join_partition_chunked(
    probe_rows: &[Tuple],
    build_rows: &[Tuple],
    probe_key_indexes: &[usize],
    build_key_indexes: &[usize],
    chunk_size: usize,
) -> (Vec<Tuple>, JoinTally) {
    let build_width = build_rows.first().map(Tuple::len).unwrap_or(0);
    let table = JoinBuildTable::build(Batch::from_rows(build_width, build_rows), build_key_indexes);
    let mut tally = JoinTally {
        build_rows: table.build_rows(),
        probe_rows: 0,
        output_rows: 0,
    };
    let mut out = Vec::new();
    for chunk in probe_rows.chunks(chunk_size.max(1)) {
        let probe = Batch::from_rows(chunk[0].len(), chunk);
        let (joined, t) = table.probe(&probe, probe_key_indexes);
        tally.add(&t);
        joined.extend_rows_into(&mut out);
    }
    (out, tally)
}

/// The original row-at-a-time hash join kernel, kept as the reference
/// implementation the batch path is tested against.
pub fn hash_join_partition_rows(
    probe_rows: &[Tuple],
    build_rows: &[Tuple],
    probe_key_indexes: &[usize],
    build_key_indexes: &[usize],
) -> (Vec<Tuple>, JoinTally) {
    let mut tally = JoinTally::default();
    let mut table: HashMap<Vec<Value>, Vec<&Tuple>> = HashMap::with_capacity(build_rows.len());
    for row in build_rows {
        tally.build_rows += 1;
        if let Some(key) = composite_key(row, build_key_indexes) {
            table.entry(key).or_default().push(row);
        }
    }
    let mut out = Vec::new();
    for row in probe_rows {
        tally.probe_rows += 1;
        let Some(key) = composite_key(row, probe_key_indexes) else {
            continue;
        };
        if let Some(matches) = table.get(&key) {
            for m in matches {
                out.push(row.concat(m));
                tally.output_rows += 1;
            }
        }
    }
    (out, tally)
}

/// Counters produced by one partition of an indexed nested-loop join.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexJoinTally {
    /// Secondary-index lookups performed.
    pub index_lookups: u64,
    /// Rows fetched through the index.
    pub index_fetched_rows: u64,
    /// Join output rows.
    pub output_rows: u64,
}

impl IndexJoinTally {
    /// Adds another tally into this one (partition-order fold).
    pub fn add(&mut self, other: &IndexJoinTally) {
        self.index_lookups += other.index_lookups;
        self.index_fetched_rows += other.index_fetched_rows;
        self.output_rows += other.output_rows;
    }
}

/// Probes one partition of a secondary index with the broadcast build rows,
/// emitting `indexed ++ probe` rows. `base_rows` is the indexed table's
/// partition; residual key pairs beyond the indexed one and the scan's local
/// predicates are checked after each index fetch.
///
/// Stays row-at-a-time deliberately: each probe row fetches a handful of
/// base rows through the index, so there is no contiguous column run for a
/// batch to amortize over.
#[allow(clippy::too_many_arguments)]
pub fn indexed_join_partition(
    broadcast_rows: &[Tuple],
    index: &SecondaryIndex,
    partition: usize,
    base_rows: &[Tuple],
    left_schema: &Schema,
    predicates: &[Predicate],
    projection: Option<&[usize]>,
    left_key_indexes: &[usize],
    right_key_indexes: &[usize],
    first_right_key_index: usize,
) -> Result<(Vec<Tuple>, IndexJoinTally)> {
    let mut tally = IndexJoinTally::default();
    let mut out = Vec::new();
    for probe_row in broadcast_rows {
        tally.index_lookups += 1;
        let key = probe_row.value(first_right_key_index);
        for &offset in index.probe(partition, key) {
            tally.index_fetched_rows += 1;
            let base_row = &base_rows[offset];
            let all_keys_match = left_key_indexes
                .iter()
                .zip(right_key_indexes)
                .skip(1)
                .all(|(&li, &ri)| base_row.value(li) == probe_row.value(ri));
            if !all_keys_match {
                continue;
            }
            if !evaluate_all(predicates, left_schema, base_row)? {
                continue;
            }
            let left_row = match projection {
                Some(indexes) => base_row.project(indexes),
                None => base_row.clone(),
            };
            out.push(left_row.concat(probe_row));
            tally.output_rows += 1;
        }
    }
    Ok((out, tally))
}

/// Stable digest of one column slot without materializing a [`Value`]:
/// dispatches the variant once per column, then hashes the borrowed payload
/// through the same primitives `rdo_sketch::hll::hash_value` uses, so
/// partition placement is representation-invariant (cross-checked in the
/// tests below and in `rdo-sketch`).
pub fn column_partition_hash(col: &Column, i: usize) -> u64 {
    match col {
        Column::Int64 { values, validity } | Column::Date { values, validity } => {
            if validity.is_valid(i) {
                hash_int64(values[i])
            } else {
                hash_null()
            }
        }
        Column::Float64 { values, validity } => {
            if validity.is_valid(i) {
                hash_float64(values[i])
            } else {
                hash_null()
            }
        }
        Column::Utf8 { .. } => match col.str_at(i) {
            Some(s) => hash_utf8(s),
            None => hash_null(),
        },
        Column::Bool { values, validity } => {
            if validity.is_valid(i) {
                hash_bool(values[i])
            } else {
                hash_null()
            }
        }
        Column::Mixed { values } => hash_value(&values[i]),
    }
}

/// Buckets one batch's rows by the hash of the key column — the columnar
/// half of a `HashRepartition` exchange. Returns the buckets (indexed by
/// destination partition, rows in input order) and the rows/bytes that left
/// partition `from`.
pub fn repartition_batch(
    batch: &Batch,
    key_index: usize,
    from: usize,
    num_partitions: usize,
) -> (Vec<Batch>, u64, u64) {
    let col = batch.column(key_index);
    let mut bucket_idx: Vec<Vec<u32>> = vec![Vec::new(); num_partitions];
    let mut moved_rows = 0u64;
    let mut moved_bytes = 0u64;
    for i in 0..batch.num_rows() {
        let to = partition_for_hash(column_partition_hash(col, i), num_partitions);
        if to != from {
            moved_rows += 1;
            moved_bytes += batch.row_bytes(i) as u64;
        }
        bucket_idx[to].push(i as u32);
    }
    let buckets = bucket_idx.iter().map(|idx| batch.take(idx)).collect();
    (buckets, moved_rows, moved_bytes)
}

/// Buckets one source partition's rows by the hash of the key column — the
/// per-partition half of a `HashRepartition` exchange. Returns the buckets
/// (indexed by destination partition) and the rows/bytes that left partition
/// `from` (the shuffle volume the cost model charges for). The exchange
/// concatenates buckets in source-partition order, so the result is
/// deterministic no matter which worker ran which source partition.
/// Row-level adapter over [`repartition_batch`] at the process-wide
/// [`batch_size`].
pub fn repartition_partition(
    rows: &[Tuple],
    key_index: usize,
    from: usize,
    num_partitions: usize,
) -> (Vec<Vec<Tuple>>, u64, u64) {
    repartition_partition_chunked(rows, key_index, from, num_partitions, batch_size())
}

/// [`repartition_partition`] with an explicit chunk size. Buckets and
/// shuffle counters are chunk-size invariant.
pub fn repartition_partition_chunked(
    rows: &[Tuple],
    key_index: usize,
    from: usize,
    num_partitions: usize,
    chunk_size: usize,
) -> (Vec<Vec<Tuple>>, u64, u64) {
    let mut buckets: Vec<Vec<Tuple>> = vec![Vec::new(); num_partitions];
    let mut moved_rows = 0u64;
    let mut moved_bytes = 0u64;
    for chunk in rows.chunks(chunk_size.max(1)) {
        let batch = Batch::from_rows(chunk[0].len(), chunk);
        let (batch_buckets, mr, mb) = repartition_batch(&batch, key_index, from, num_partitions);
        moved_rows += mr;
        moved_bytes += mb;
        for (bucket, b) in buckets.iter_mut().zip(&batch_buckets) {
            b.extend_rows_into(bucket);
        }
    }
    (buckets, moved_rows, moved_bytes)
}

/// The original row-at-a-time repartition kernel, kept as the reference
/// implementation the batch path is tested against.
pub fn repartition_partition_rows(
    rows: &[Tuple],
    key_index: usize,
    from: usize,
    num_partitions: usize,
) -> (Vec<Vec<Tuple>>, u64, u64) {
    let mut buckets: Vec<Vec<Tuple>> = vec![Vec::new(); num_partitions];
    let mut moved_rows = 0u64;
    let mut moved_bytes = 0u64;
    for row in rows {
        let to = partition_for(row.value(key_index), num_partitions);
        if to != from {
            moved_rows += 1;
            moved_bytes += row.approx_bytes() as u64;
        }
        buckets[to].push(row.clone());
    }
    (buckets, moved_rows, moved_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdo_common::{DataType, FieldRef, Schema};

    fn rows(n: i64) -> Vec<Tuple> {
        (0..n)
            .map(|i| Tuple::new(vec![Value::Int64(i), Value::Int64(i % 5)]))
            .collect()
    }

    fn schema() -> Schema {
        Schema::for_dataset("t", &[("k", DataType::Int64), ("g", DataType::Int64)])
    }

    /// Rows exercising every column representation the kernels see: typed
    /// columns with NULL slots, floats with awkward payloads, strings.
    fn tricky_rows() -> Vec<Tuple> {
        (0..37)
            .map(|i| {
                Tuple::new(vec![
                    if i % 7 == 0 {
                        Value::Null
                    } else {
                        Value::Int64(i % 11)
                    },
                    match i % 5 {
                        0 => Value::Float64(f64::NAN),
                        1 => Value::Float64(-0.0),
                        2 => Value::Null,
                        _ => Value::Float64(i as f64 / 3.0),
                    },
                    if i % 3 == 0 {
                        Value::Null
                    } else {
                        Value::Utf8(format!("name-{}", i % 6))
                    },
                ])
            })
            .collect()
    }

    fn tricky_schema() -> Schema {
        Schema::for_dataset(
            "t",
            &[
                ("k", DataType::Int64),
                ("f", DataType::Float64),
                ("s", DataType::Utf8),
            ],
        )
    }

    #[test]
    fn scan_kernel_counts_and_filters() {
        let rows = rows(10);
        let predicates = vec![Predicate::compare(
            rdo_common::FieldRef::new("t", "g"),
            crate::expr::CmpOp::Eq,
            2i64,
        )];
        let (out, tally) = scan_partition(&schema(), &predicates, None, &rows).unwrap();
        assert_eq!(tally.scanned_rows, 10);
        assert_eq!(tally.kept, 2);
        assert_eq!(out.len(), 2);
        assert!(tally.scanned_bytes > 0);
    }

    #[test]
    fn hash_join_kernel_concats_probe_then_build() {
        let probe = rows(10);
        let build = rows(5);
        let (out, tally) = hash_join_partition(&probe, &build, &[0], &[0]);
        assert_eq!(tally.build_rows, 5);
        assert_eq!(tally.probe_rows, 10);
        assert_eq!(tally.output_rows, 5, "keys 0..5 match");
        assert_eq!(out[0].values().len(), 4);
    }

    #[test]
    fn null_keys_never_match() {
        let probe = vec![Tuple::new(vec![Value::Null, Value::Int64(0)])];
        let build = vec![Tuple::new(vec![Value::Null, Value::Int64(0)])];
        let (out, tally) = hash_join_partition(&probe, &build, &[0], &[0]);
        assert!(out.is_empty());
        assert_eq!(tally.output_rows, 0);
    }

    #[test]
    fn repartition_kernel_buckets_by_hash() {
        let rows = rows(100);
        let (buckets, moved, bytes) = repartition_partition(&rows, 1, 0, 4);
        assert_eq!(buckets.iter().map(Vec::len).sum::<usize>(), 100);
        assert!(moved > 0 && moved <= 100);
        assert!(bytes > 0);
        for (p, bucket) in buckets.iter().enumerate() {
            for row in bucket {
                assert_eq!(partition_for(row.value(1), 4), p);
            }
        }
    }

    #[test]
    fn tallies_fold_associatively() {
        let a = ScanTally {
            scanned_rows: 1,
            scanned_bytes: 2,
            kept: 3,
        };
        let b = ScanTally {
            scanned_rows: 10,
            scanned_bytes: 20,
            kept: 30,
        };
        let mut left = a;
        left.add(&b);
        let mut right = b;
        right.add(&a);
        assert_eq!(left, right);
    }

    #[test]
    fn batch_size_is_positive() {
        assert!(batch_size() >= 1);
    }

    #[test]
    fn scan_is_chunk_size_invariant_and_matches_row_kernel() {
        let rows = tricky_rows();
        let schema = tricky_schema();
        let predicates = vec![
            Predicate::compare(FieldRef::new("t", "k"), crate::expr::CmpOp::Le, 7i64),
            Predicate::compare(FieldRef::new("t", "f"), crate::expr::CmpOp::Ge, 0i64),
        ];
        let projection = [2usize, 0];
        let reference =
            scan_partition_rows(&schema, &predicates, Some(&projection), &rows).unwrap();
        for chunk_size in [1, 2, 3, 7, 36, 37, 1000] {
            let chunked =
                scan_partition_chunked(&schema, &predicates, Some(&projection), &rows, chunk_size)
                    .unwrap();
            assert_eq!(chunked, reference, "chunk size {chunk_size}");
        }
        // Empty partitions produce no output, no counters, no resolve errors.
        let empty = scan_partition(&schema, &predicates, None, &[]).unwrap();
        assert_eq!(empty, (Vec::new(), ScanTally::default()));
    }

    #[test]
    fn hash_join_is_chunk_size_invariant_and_matches_row_kernel() {
        let probe = tricky_rows();
        let build: Vec<Tuple> = tricky_rows().into_iter().step_by(2).collect();
        for keys in [&[0usize][..], &[0, 2][..]] {
            let reference = hash_join_partition_rows(&probe, &build, keys, keys);
            for chunk_size in [1, 3, 5, 37, 1000] {
                let chunked = hash_join_partition_chunked(&probe, &build, keys, keys, chunk_size);
                assert_eq!(chunked, reference, "keys {keys:?} chunk {chunk_size}");
            }
        }
        // Empty sides behave like the row kernel, including the tally.
        assert_eq!(
            hash_join_partition(&[], &build, &[0], &[0]),
            hash_join_partition_rows(&[], &build, &[0], &[0])
        );
        assert_eq!(
            hash_join_partition(&probe, &[], &[0], &[0]),
            hash_join_partition_rows(&probe, &[], &[0], &[0])
        );
    }

    #[test]
    fn repartition_is_chunk_size_invariant_and_matches_row_kernel() {
        let rows = tricky_rows();
        for key_index in [0usize, 1, 2] {
            let reference = repartition_partition_rows(&rows, key_index, 1, 4);
            for chunk_size in [1, 3, 8, 37, 1000] {
                let chunked = repartition_partition_chunked(&rows, key_index, 1, 4, chunk_size);
                assert_eq!(chunked, reference, "key {key_index} chunk {chunk_size}");
            }
        }
    }

    #[test]
    fn column_hash_matches_value_hash() {
        // Representation invariance of partition placement: hashing a column
        // slot equals hashing the materialized Value, for typed columns with
        // NULL slots and for the Mixed fallback alike.
        let rows = tricky_rows();
        let batch = Batch::from_rows(3, &rows);
        for c in 0..batch.num_columns() {
            let col = batch.column(c);
            for i in 0..batch.num_rows() {
                assert_eq!(
                    column_partition_hash(col, i),
                    hash_value(&col.value(i)),
                    "column {c} row {i}"
                );
            }
        }
        let mixed = Batch::from_rows(
            1,
            &[
                Tuple::new(vec![Value::Int64(1)]),
                Tuple::new(vec![Value::from("one")]),
                Tuple::new(vec![Value::Bool(true)]),
                Tuple::new(vec![Value::Date(9)]),
                Tuple::new(vec![Value::Null]),
            ],
        );
        let col = mixed.column(0);
        for i in 0..mixed.num_rows() {
            assert_eq!(column_partition_hash(col, i), hash_value(&col.value(i)));
        }
    }

    #[test]
    fn join_build_table_counts_build_once() {
        let probe = rows(10);
        let build = rows(5);
        let reference = hash_join_partition_rows(&probe, &build, &[0], &[0]);
        let chunked = hash_join_partition_chunked(&probe, &build, &[0], &[0], 2);
        assert_eq!(
            chunked.1.build_rows, reference.1.build_rows,
            "build side counted once, not once per probe chunk"
        );
        assert_eq!(chunked, reference);
    }
}
