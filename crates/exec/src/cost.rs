//! Execution metrics and the deterministic cluster cost model.
//!
//! The paper measures wall-clock time on a 10-node AWS cluster. The reproduction
//! executes plans for real on in-memory data, but the *ranking* of plans on a
//! real cluster is dominated by distributed effects (network shuffles, broadcast
//! replication, disk I/O of materialized intermediate data, index lookups) that
//! an in-memory laptop run underweights. Every operator therefore records what
//! it did into an [`ExecutionMetrics`], and a [`CostModel`] converts those
//! counters into simulated time. Benchmarks report both simulated and wall-clock
//! time; the figures use the simulated time.

/// Counters describing everything a (partial) plan execution did.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ExecutionMetrics {
    /// Rows scanned from base datasets.
    pub rows_scanned: u64,
    /// Bytes scanned from base datasets.
    pub bytes_scanned: u64,
    /// Rows read back from materialized intermediate results.
    pub rows_intermediate_read: u64,
    /// Bytes read back from materialized intermediate results.
    pub bytes_intermediate_read: u64,
    /// Rows re-partitioned over the (simulated) network for hash joins.
    pub rows_shuffled: u64,
    /// Bytes re-partitioned over the network.
    pub bytes_shuffled: u64,
    /// Row copies created by broadcast replication (rows × partitions).
    pub rows_broadcast: u64,
    /// Byte copies created by broadcast replication.
    pub bytes_broadcast: u64,
    /// Rows inserted into join build tables.
    pub build_rows: u64,
    /// Rows used to probe join tables.
    pub probe_rows: u64,
    /// Rows produced by joins and scans (operator outputs).
    pub output_rows: u64,
    /// Secondary-index lookups performed by indexed nested-loop joins.
    pub index_lookups: u64,
    /// Rows fetched through a secondary index.
    pub index_fetched_rows: u64,
    /// Rows written to materialized intermediate results (Sink operator).
    pub rows_materialized: u64,
    /// Bytes written to materialized intermediate results.
    pub bytes_materialized: u64,
    /// Individual values observed by online statistics collection.
    pub stats_values_observed: u64,
    /// Rows returned to the user.
    pub result_rows: u64,
    /// Pages written to the disk-backed spill store (out-of-core
    /// intermediates). Logical page traffic: deterministic for a given query,
    /// independent of worker count and buffer-pool state.
    pub spill_pages_written: u64,
    /// Stored bytes written to the spill store — the *measured* on-disk size
    /// of spilled intermediates (compressed when `RDO_SPILL_COMPRESS` is on),
    /// as opposed to the modeled `bytes_materialized`.
    pub spill_bytes_written: u64,
    /// Pages read back from the spill store.
    pub spill_pages_read: u64,
    /// Stored bytes read back from the spill store.
    pub spill_bytes_read: u64,
    /// Uncompressed serialized bytes behind `spill_bytes_written`; the
    /// written/logical ratio is the measured page-compression ratio (they are
    /// equal with compression off).
    pub spill_logical_bytes_written: u64,
    /// Uncompressed serialized bytes behind `spill_bytes_read`.
    pub spill_logical_bytes_read: u64,
    /// Build-side grace buckets written to spill files by memory-budgeted
    /// joins (`RDO_JOIN_BUDGET`). Like the spill counters, all grace counters
    /// are logical tallies — pure functions of the joined rows, independent of
    /// worker count and buffer-pool state.
    pub grace_partitions_spilled: u64,
    /// Pages written to grace spill files (build and probe sides).
    pub grace_pages_written: u64,
    /// Stored bytes written to grace spill files (compressed when page
    /// compression is on).
    pub grace_bytes_written: u64,
    /// Pages read back from grace spill files.
    pub grace_pages_read: u64,
    /// Stored bytes read back from grace spill files.
    pub grace_bytes_read: u64,
    /// Uncompressed serialized bytes behind `grace_bytes_written`.
    pub grace_logical_bytes_written: u64,
    /// Uncompressed serialized bytes behind `grace_bytes_read`.
    pub grace_logical_bytes_read: u64,
    /// Recursive re-partitioning rounds (a grace bucket still over budget).
    pub grace_recursions: u64,
    /// Nested-loop fallback leaves (skew past the grace recursion bound).
    pub grace_fallbacks: u64,
    /// High-water mark of bytes buffered by the streaming grace partitioner —
    /// the transient footprint of routing one over-budget join partition,
    /// bounded by fanout × page size (plus at most one oversized row per
    /// bucket buffer). The only **max-merged** counter: folding partials
    /// keeps the largest observed peak, which is still associative,
    /// commutative and worker-count invariant.
    pub grace_peak_transient_bytes: u64,
}

impl ExecutionMetrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds another metrics object into this one.
    pub fn add(&mut self, other: &ExecutionMetrics) {
        self.rows_scanned += other.rows_scanned;
        self.bytes_scanned += other.bytes_scanned;
        self.rows_intermediate_read += other.rows_intermediate_read;
        self.bytes_intermediate_read += other.bytes_intermediate_read;
        self.rows_shuffled += other.rows_shuffled;
        self.bytes_shuffled += other.bytes_shuffled;
        self.rows_broadcast += other.rows_broadcast;
        self.bytes_broadcast += other.bytes_broadcast;
        self.build_rows += other.build_rows;
        self.probe_rows += other.probe_rows;
        self.output_rows += other.output_rows;
        self.index_lookups += other.index_lookups;
        self.index_fetched_rows += other.index_fetched_rows;
        self.rows_materialized += other.rows_materialized;
        self.bytes_materialized += other.bytes_materialized;
        self.stats_values_observed += other.stats_values_observed;
        self.result_rows += other.result_rows;
        self.spill_pages_written += other.spill_pages_written;
        self.spill_bytes_written += other.spill_bytes_written;
        self.spill_pages_read += other.spill_pages_read;
        self.spill_bytes_read += other.spill_bytes_read;
        self.spill_logical_bytes_written += other.spill_logical_bytes_written;
        self.spill_logical_bytes_read += other.spill_logical_bytes_read;
        self.grace_partitions_spilled += other.grace_partitions_spilled;
        self.grace_pages_written += other.grace_pages_written;
        self.grace_bytes_written += other.grace_bytes_written;
        self.grace_pages_read += other.grace_pages_read;
        self.grace_bytes_read += other.grace_bytes_read;
        self.grace_logical_bytes_written += other.grace_logical_bytes_written;
        self.grace_logical_bytes_read += other.grace_logical_bytes_read;
        self.grace_recursions += other.grace_recursions;
        self.grace_fallbacks += other.grace_fallbacks;
        // A peak is a high-water mark, not a volume: folding partials keeps
        // the largest one (max is associative and commutative, so partition-
        // order folds stay worker-count invariant).
        self.grace_peak_transient_bytes = self
            .grace_peak_transient_bytes
            .max(other.grace_peak_transient_bytes);
    }

    /// Returns the sum of two metrics objects.
    pub fn combined(&self, other: &ExecutionMetrics) -> ExecutionMetrics {
        let mut out = *self;
        out.add(other);
        out
    }

    /// Merges two per-partition metric partials into one. Every counter is a
    /// plain sum (except `grace_peak_transient_bytes`, a max-merged
    /// high-water mark), so the operation is associative and commutative —
    /// the partition-parallel executor folds worker partials in partition
    /// order and gets the same totals the serial executor accumulates,
    /// regardless of which worker ran which partition.
    #[must_use]
    pub fn merge(mut self, other: ExecutionMetrics) -> ExecutionMetrics {
        self.add(&other);
        self
    }

    /// Simulated execution time in cost units under the given model.
    pub fn simulated_cost(&self, model: &CostModel) -> f64 {
        model.cost_of(self)
    }
}

/// Weights converting [`ExecutionMetrics`] counters into simulated time.
///
/// The defaults are calibrated so that (a) shuffling a large fact table
/// dominates scanning it, (b) broadcasting a small filtered dimension table is
/// far cheaper than shuffling a fact table, (c) materializing intermediate
/// results costs roughly 10–20% of a typical join stage (the overhead band the
/// paper reports in Figure 6), and (d) an index lookup is much cheaper than a
/// scan of the indexed table but not free.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Cost per base-table row scanned.
    pub scan_row: f64,
    /// Cost per base-table byte scanned (sequential I/O).
    pub scan_byte: f64,
    /// Cost per intermediate row read back from a temporary file.
    pub intermediate_read_row: f64,
    /// Cost per intermediate byte read back.
    pub intermediate_read_byte: f64,
    /// Cost per row re-partitioned over the network.
    pub shuffle_row: f64,
    /// Cost per byte re-partitioned over the network.
    pub shuffle_byte: f64,
    /// Cost per replicated row created by a broadcast.
    pub broadcast_row: f64,
    /// Cost per replicated byte created by a broadcast.
    pub broadcast_byte: f64,
    /// Cost per row inserted into a hash-join build table.
    pub build_row: f64,
    /// Cost per probe of a hash-join table.
    pub probe_row: f64,
    /// Cost per output row produced by an operator.
    pub output_row: f64,
    /// Cost per secondary-index lookup (random I/O).
    pub index_lookup: f64,
    /// Cost per row fetched through a secondary index.
    pub index_fetch_row: f64,
    /// Cost per row written to a materialized intermediate result.
    pub materialize_row: f64,
    /// Cost per byte written to a materialized intermediate result.
    pub materialize_byte: f64,
    /// Cost per value observed by online statistics collection.
    pub stats_value: f64,
    /// Cost per *stored* byte written to the spill store (sequential disk
    /// write; compressed size when page compression is on). Charged on
    /// measured bytes — when an intermediate actually went out-of-core — on
    /// top of the modeled materialization cost, so re-optimization decisions
    /// see the real size of spilled intermediates.
    pub spill_write_byte: f64,
    /// Cost per stored byte read back from the spill store.
    pub spill_read_byte: f64,
    /// CPU cost per byte the page codec squeezed out (the logical−stored
    /// gap, summed over writes and reads): compression is not free, so the
    /// model charges its work alongside the I/O it saves. Calibrated well
    /// below `spill_write_byte`/`spill_read_byte` — on the modeled cluster's
    /// disks, saving a byte of I/O always beats the CPU spent saving it.
    pub spill_codec_byte: f64,
    /// Fixed cost per spill page touched (write or read) — the per-request
    /// overhead of the paged store and buffer pool.
    pub spill_page_io: f64,
    /// Fixed cost charged per planner invocation (re-optimization point).
    pub planner_invocation: f64,
    /// Number of partitions in the simulated cluster; a higher partition count
    /// makes per-partition work cheaper but broadcasts more expensive.
    pub partitions: usize,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            scan_row: 0.25,
            scan_byte: 0.004,
            intermediate_read_row: 0.18,
            intermediate_read_byte: 0.003,
            shuffle_row: 1.0,
            shuffle_byte: 0.02,
            broadcast_row: 0.9,
            broadcast_byte: 0.018,
            build_row: 0.35,
            probe_row: 0.25,
            output_row: 0.15,
            index_lookup: 3.0,
            index_fetch_row: 0.4,
            materialize_row: 0.25,
            materialize_byte: 0.004,
            stats_value: 0.06,
            spill_write_byte: 0.002,
            spill_read_byte: 0.002,
            spill_codec_byte: 0.0004,
            spill_page_io: 0.5,
            planner_invocation: 40.0,
            partitions: 40,
        }
    }
}

impl CostModel {
    /// A cost model for a cluster with the given number of partitions.
    pub fn with_partitions(partitions: usize) -> Self {
        Self {
            partitions: partitions.max(1),
            ..Default::default()
        }
    }

    /// Converts metrics into simulated time (cost units). Per-partition
    /// parallelism is modeled by dividing the partitionable work by the number
    /// of partitions; network and materialization volumes are already absolute.
    pub fn cost_of(&self, m: &ExecutionMetrics) -> f64 {
        let p = self.partitions.max(1) as f64;
        let cpu = m.rows_scanned as f64 * self.scan_row
            + m.bytes_scanned as f64 * self.scan_byte
            + m.rows_intermediate_read as f64 * self.intermediate_read_row
            + m.bytes_intermediate_read as f64 * self.intermediate_read_byte
            + m.build_rows as f64 * self.build_row
            + m.probe_rows as f64 * self.probe_row
            + m.output_rows as f64 * self.output_row
            + m.index_fetched_rows as f64 * self.index_fetch_row
            + m.rows_materialized as f64 * self.materialize_row
            + m.bytes_materialized as f64 * self.materialize_byte
            + m.stats_values_observed as f64 * self.stats_value;
        let network = m.rows_shuffled as f64 * self.shuffle_row
            + m.bytes_shuffled as f64 * self.shuffle_byte
            + m.rows_broadcast as f64 * self.broadcast_row
            + m.bytes_broadcast as f64 * self.broadcast_byte;
        let random_io = m.index_lookups as f64 * self.index_lookup;
        // Grace-join partition files share the spill store's weights: the
        // measured I/O of a spilling join lands in the same simulated-time
        // ledger, so the pilot-run optimizer (which scores measured metrics)
        // sees the true cost of running a join past its memory budget.
        let spill_io = (m.spill_bytes_written + m.grace_bytes_written) as f64
            * self.spill_write_byte
            + (m.spill_bytes_read + m.grace_bytes_read) as f64 * self.spill_read_byte
            + (m.spill_pages_written
                + m.spill_pages_read
                + m.grace_pages_written
                + m.grace_pages_read) as f64
                * self.spill_page_io;
        // Codec CPU, measured by how many bytes compression removed (zero
        // with compression off: raw pages store slightly MORE than logical —
        // the frame flag — and the subtraction saturates).
        let codec_cpu = ((m.spill_logical_bytes_written + m.grace_logical_bytes_written)
            .saturating_sub(m.spill_bytes_written + m.grace_bytes_written)
            + (m.spill_logical_bytes_read + m.grace_logical_bytes_read)
                .saturating_sub(m.spill_bytes_read + m.grace_bytes_read))
            as f64
            * self.spill_codec_byte;
        cpu / p + network / p + random_io / p + spill_io / p + codec_cpu / p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExecutionMetrics {
        ExecutionMetrics {
            rows_scanned: 1_000,
            bytes_scanned: 50_000,
            rows_shuffled: 500,
            bytes_shuffled: 25_000,
            output_rows: 200,
            ..Default::default()
        }
    }

    #[test]
    fn add_accumulates_every_counter() {
        let mut a = sample();
        let b = ExecutionMetrics {
            rows_scanned: 1,
            bytes_scanned: 2,
            rows_intermediate_read: 3,
            bytes_intermediate_read: 4,
            rows_shuffled: 5,
            bytes_shuffled: 6,
            rows_broadcast: 7,
            bytes_broadcast: 8,
            build_rows: 9,
            probe_rows: 10,
            output_rows: 11,
            index_lookups: 12,
            index_fetched_rows: 13,
            rows_materialized: 14,
            bytes_materialized: 15,
            stats_values_observed: 16,
            result_rows: 17,
            spill_pages_written: 18,
            spill_bytes_written: 19,
            spill_pages_read: 20,
            spill_bytes_read: 21,
            spill_logical_bytes_written: 29,
            spill_logical_bytes_read: 30,
            grace_partitions_spilled: 22,
            grace_pages_written: 23,
            grace_bytes_written: 24,
            grace_pages_read: 25,
            grace_bytes_read: 26,
            grace_logical_bytes_written: 31,
            grace_logical_bytes_read: 32,
            grace_recursions: 27,
            grace_fallbacks: 28,
            grace_peak_transient_bytes: 33,
        };
        a.add(&b);
        assert_eq!(a.rows_scanned, 1_001);
        assert_eq!(a.bytes_intermediate_read, 4);
        assert_eq!(a.rows_broadcast, 7);
        assert_eq!(a.build_rows, 9);
        assert_eq!(a.index_fetched_rows, 13);
        assert_eq!(a.stats_values_observed, 16);
        assert_eq!(a.result_rows, 17);
        assert_eq!(a.spill_pages_written, 18);
        assert_eq!(a.spill_bytes_written, 19);
        assert_eq!(a.spill_pages_read, 20);
        assert_eq!(a.spill_bytes_read, 21);
        assert_eq!(a.spill_logical_bytes_written, 29);
        assert_eq!(a.spill_logical_bytes_read, 30);
        assert_eq!(a.grace_partitions_spilled, 22);
        assert_eq!(a.grace_pages_written, 23);
        assert_eq!(a.grace_bytes_written, 24);
        assert_eq!(a.grace_pages_read, 25);
        assert_eq!(a.grace_bytes_read, 26);
        assert_eq!(a.grace_logical_bytes_written, 31);
        assert_eq!(a.grace_logical_bytes_read, 32);
        assert_eq!(a.grace_recursions, 27);
        assert_eq!(a.grace_fallbacks, 28);
        assert_eq!(a.grace_peak_transient_bytes, 33);
    }

    /// The peak counter merges by max, not sum: two stages with peaks 40 and
    /// 70 saw at most 70 bytes buffered at once, never 110.
    #[test]
    fn peak_transient_bytes_merge_by_max() {
        let mut a = ExecutionMetrics {
            grace_peak_transient_bytes: 40,
            ..Default::default()
        };
        let b = ExecutionMetrics {
            grace_peak_transient_bytes: 70,
            ..Default::default()
        };
        a.add(&b);
        assert_eq!(a.grace_peak_transient_bytes, 70);
        let mut c = ExecutionMetrics {
            grace_peak_transient_bytes: 70,
            ..Default::default()
        };
        c.add(&ExecutionMetrics {
            grace_peak_transient_bytes: 40,
            ..Default::default()
        });
        assert_eq!(c.grace_peak_transient_bytes, 70, "max is commutative");
    }

    /// Compression shows up in the gap between stored and logical spill
    /// bytes, and the cost model charges the *stored* volume — so a pilot run
    /// over compressed spill files sees the cheaper I/O.
    #[test]
    fn compressed_spill_io_costs_less_than_raw() {
        let model = CostModel::default();
        let raw = ExecutionMetrics {
            spill_pages_written: 16,
            spill_bytes_written: 1_000_000,
            spill_logical_bytes_written: 1_000_000,
            ..Default::default()
        };
        let compressed = ExecutionMetrics {
            spill_bytes_written: 400_000,
            ..raw
        };
        assert!(compressed.simulated_cost(&model) < raw.simulated_cost(&model));
        // The codec's CPU is charged (on the logical−stored gap), it just
        // never outweighs the I/O it saves.
        let free_codec = CostModel {
            spill_codec_byte: 0.0,
            ..model
        };
        assert!(compressed.simulated_cost(&model) > compressed.simulated_cost(&free_codec));
        assert_eq!(
            raw.simulated_cost(&model),
            raw.simulated_cost(&free_codec),
            "no compression gap, no codec charge"
        );
    }

    #[test]
    fn spilled_intermediates_cost_more_than_resident_ones() {
        let model = CostModel::default();
        let resident = ExecutionMetrics {
            rows_materialized: 10_000,
            bytes_materialized: 1_000_000,
            ..Default::default()
        };
        let spilled = ExecutionMetrics {
            spill_pages_written: 16,
            spill_bytes_written: 1_000_000,
            spill_pages_read: 16,
            spill_bytes_read: 1_000_000,
            ..resident
        };
        assert!(
            spilled.simulated_cost(&model) > resident.simulated_cost(&model),
            "measured spill I/O adds real cost on top of the modeled charge"
        );
    }

    #[test]
    fn grace_joins_cost_more_than_in_memory_joins() {
        let model = CostModel::default();
        let in_memory = ExecutionMetrics {
            build_rows: 10_000,
            probe_rows: 50_000,
            output_rows: 50_000,
            ..Default::default()
        };
        let grace = ExecutionMetrics {
            grace_partitions_spilled: 6,
            grace_pages_written: 32,
            grace_bytes_written: 2_000_000,
            grace_pages_read: 32,
            grace_bytes_read: 2_000_000,
            grace_recursions: 1,
            ..in_memory
        };
        assert!(
            grace.simulated_cost(&model) > in_memory.simulated_cost(&model),
            "measured grace-partition I/O adds real cost on top of the CPU charge"
        );
    }

    #[test]
    fn combined_is_symmetric() {
        let a = sample();
        let b = ExecutionMetrics {
            rows_broadcast: 100,
            ..Default::default()
        };
        assert_eq!(a.combined(&b), b.combined(&a));
    }

    #[test]
    fn cost_is_positive_and_monotone() {
        let model = CostModel::default();
        let a = sample();
        let mut b = a;
        b.rows_shuffled *= 10;
        b.bytes_shuffled *= 10;
        assert!(a.simulated_cost(&model) > 0.0);
        assert!(b.simulated_cost(&model) > a.simulated_cost(&model));
    }

    #[test]
    fn shuffle_dominates_scan_for_same_volume() {
        let model = CostModel::default();
        let scan_only = ExecutionMetrics {
            rows_scanned: 10_000,
            bytes_scanned: 1_000_000,
            ..Default::default()
        };
        let shuffle_only = ExecutionMetrics {
            rows_shuffled: 10_000,
            bytes_shuffled: 1_000_000,
            ..Default::default()
        };
        assert!(shuffle_only.simulated_cost(&model) > 2.0 * scan_only.simulated_cost(&model));
    }

    #[test]
    fn more_partitions_cheaper_partitionable_work() {
        let m = sample();
        let small = CostModel::with_partitions(4);
        let large = CostModel::with_partitions(64);
        assert!(m.simulated_cost(&large) < m.simulated_cost(&small));
    }

    #[test]
    fn zero_metrics_zero_cost() {
        assert_eq!(
            ExecutionMetrics::new().simulated_cost(&CostModel::default()),
            0.0
        );
    }
}
