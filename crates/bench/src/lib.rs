//! Benchmark harness reproducing every table and figure of the paper's
//! evaluation (Section 7).
//!
//! | Experiment | Paper content | Harness entry point |
//! |---|---|---|
//! | Figure 6 (left)  | overhead of re-optimization points + online statistics | [`figure6_overheads`] |
//! | Figure 6 (right) | overhead of predicate push-down                         | [`figure6_pushdown`] |
//! | Figure 7         | execution time of all six strategies, SF 10/100/1000    | [`figure7`] |
//! | Figure 8         | same comparison with indexed nested-loop joins enabled  | [`figure8`] |
//! | Table 1          | average improvement of dynamic vs. each baseline        | [`table1`] |
//! | Figures 11–23    | per-query plans chosen by every optimizer                | [`plans`] |
//!
//! Every function returns plain serializable rows so the `figures` binary can
//! print aligned text tables and dump JSON for further analysis.

use rdo_core::{OverheadReport, QueryRunner, RunReport, Strategy};
use rdo_exec::CostModel;
use rdo_planner::{JoinAlgorithmRule, QuerySpec};
use rdo_workloads::{all_queries, BenchmarkEnv, ScaleFactor};
use serde::Serialize;
use std::collections::BTreeMap;

/// Shared configuration for every experiment.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Scale factors (in "GB") to evaluate.
    pub scales: Vec<u64>,
    /// Number of partitions of the simulated cluster (the paper uses 10 nodes ×
    /// 4 cores).
    pub partitions: usize,
    /// Broadcast threshold (rows) of the join-algorithm rule.
    pub broadcast_threshold: f64,
    /// Sample size of the pilot-run baseline.
    pub pilot_sample: usize,
    /// Generator seed.
    pub seed: u64,
    /// Worker threads of the partition-parallel executor. Defaults to the
    /// machine's available parallelism; set the `RDO_WORKERS` environment
    /// variable to pin it so figures reproduce exactly on any core count
    /// (results and metrics are worker-count invariant, only wall time moves).
    pub workers: usize,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            scales: vec![10, 100, 1000],
            partitions: 16,
            broadcast_threshold: 25_000.0,
            pilot_sample: 2_000,
            seed: 42,
            workers: rdo_core::ParallelConfig::from_env().workers,
        }
    }
}

impl ExperimentConfig {
    /// A configuration with reduced scale factors, for quick runs and CI.
    pub fn quick() -> Self {
        Self {
            scales: vec![5, 20],
            ..Default::default()
        }
    }

    /// The query runner for this configuration.
    pub fn runner(&self, indexed_nested_loop: bool) -> QueryRunner {
        let rule = JoinAlgorithmRule::with_threshold(self.broadcast_threshold)
            .with_indexed_nested_loop(indexed_nested_loop);
        let mut runner = QueryRunner::new(CostModel::with_partitions(self.partitions), rule)
            .with_parallel(self.parallel());
        runner.pilot_sample_limit = self.pilot_sample;
        runner
    }

    /// The parallel-execution knobs for this configuration.
    pub fn parallel(&self) -> rdo_core::ParallelConfig {
        // RDO_WORKERS pins the worker count (via `Self::default`);
        // RDO_TRANSPORT routes the harness's exchanges like everywhere else.
        rdo_core::ParallelConfig::serial()
            .with_workers(self.workers)
            .with_transport(rdo_core::TransportKind::from_env())
    }

    /// Loads the benchmark environment for one scale factor.
    pub fn load_env(&self, scale_gb: u64, with_indexes: bool) -> BenchmarkEnv {
        BenchmarkEnv::load(
            ScaleFactor::gb(scale_gb),
            self.partitions,
            with_indexes,
            self.seed,
        )
        .expect("workload generation cannot fail")
    }
}

/// One measurement of one strategy on one query at one scale factor.
#[derive(Debug, Clone, Serialize)]
pub struct FigureRow {
    /// Query name (Q17, Q50, Q8, Q9).
    pub query: String,
    /// Scale factor in GB.
    pub scale_gb: u64,
    /// Strategy label.
    pub strategy: String,
    /// Simulated cluster cost (the figure's y-axis).
    pub simulated_cost: f64,
    /// Wall-clock seconds of the in-process run.
    pub wall_seconds: f64,
    /// Number of result rows.
    pub result_rows: usize,
    /// Plan signature.
    pub plan: String,
}

impl FigureRow {
    fn from_report(report: &RunReport, scale_gb: u64) -> Self {
        Self {
            query: report.query.clone(),
            scale_gb,
            strategy: report.strategy.label().to_string(),
            simulated_cost: report.simulated_cost,
            wall_seconds: report.wall_seconds,
            result_rows: report.result_rows(),
            plan: report.plan.clone(),
        }
    }
}

/// One row of the Figure 6 (left) overhead decomposition.
#[derive(Debug, Clone, Serialize)]
pub struct OverheadRow {
    /// Query name.
    pub query: String,
    /// Scale factor in GB.
    pub scale_gb: u64,
    /// Cost of the optimal plan with statistics known upfront.
    pub statistics_upfront: f64,
    /// Extra cost of the re-optimization points.
    pub reoptimization: f64,
    /// Extra cost of online statistics collection.
    pub online_stats: f64,
    /// Combined overhead as a fraction of the total.
    pub overhead_fraction: f64,
}

/// One row of the Figure 6 (right) predicate push-down overhead comparison.
#[derive(Debug, Clone, Serialize)]
pub struct PushdownRow {
    /// Query name.
    pub query: String,
    /// Scale factor in GB.
    pub scale_gb: u64,
    /// Cost without the predicate push-down stage (accurate statistics assumed).
    pub baseline: f64,
    /// Cost with predicate push-down enabled.
    pub with_pushdown: f64,
    /// Overhead fraction of push-down relative to the baseline.
    pub overhead_fraction: f64,
}

/// One row of Table 1 (average improvement of the dynamic approach).
#[derive(Debug, Clone, Serialize)]
pub struct Table1Row {
    /// Scale factor in GB.
    pub scale_gb: u64,
    /// Baseline strategy.
    pub baseline: String,
    /// Average cost(baseline) / cost(dynamic) over the four queries.
    pub improvement: f64,
}

/// One row of the re-optimization budget ablation (paper §8 future work).
#[derive(Debug, Clone, Serialize)]
pub struct BudgetRow {
    /// Query name.
    pub query: String,
    /// Scale factor in GB.
    pub scale_gb: u64,
    /// The configured budget (`"unlimited"` for the paper's configuration).
    pub budget: String,
    /// Re-optimization points the driver actually spent.
    pub reoptimization_points: u32,
    /// Simulated cluster cost of the whole execution (including overheads).
    pub simulated_cost: f64,
    /// Wall-clock seconds of the in-process run.
    pub wall_seconds: f64,
}

/// One row of the correlated-predicate analysis (Section 5.1 / the Q8
/// motivation): how far the independence assumption is from the truth for a
/// dataset with multiple local predicates.
#[derive(Debug, Clone, Serialize)]
pub struct CorrelationRow {
    /// Query name.
    pub query: String,
    /// Scale factor in GB.
    pub scale_gb: u64,
    /// Dataset alias carrying the predicates.
    pub alias: String,
    /// Number of local predicates analyzed.
    pub predicates: usize,
    /// True selectivity of the conjunction.
    pub combined_selectivity: f64,
    /// What a static optimizer estimates under the independence assumption
    /// (histogram marginals, default factors for complex predicates).
    pub independence_estimate: f64,
    /// True selectivity divided by the product of the *measured* marginals
    /// (1.0 = independent).
    pub correlation_factor: f64,
    /// `max(est, truth) / min(est, truth)` of the static estimate (≥ 1).
    pub static_error_factor: f64,
}

/// One plan description (appendix Figures 11–23).
#[derive(Debug, Clone, Serialize)]
pub struct PlanRow {
    /// Query name.
    pub query: String,
    /// Scale factor in GB.
    pub scale_gb: u64,
    /// Whether indexed nested-loop joins were enabled (Figure 8 configuration).
    pub indexed_nested_loop: bool,
    /// Strategy label.
    pub strategy: String,
    /// Plan signature (for the dynamic strategies, the per-stage signatures
    /// separated by `;`).
    pub plan: String,
}

/// Runs the Figure 7 comparison (all strategies, no secondary indexes).
pub fn figure7(config: &ExperimentConfig) -> Vec<FigureRow> {
    comparison_rows(config, false)
}

/// Runs the Figure 8 comparison (secondary indexes + indexed nested-loop joins).
pub fn figure8(config: &ExperimentConfig) -> Vec<FigureRow> {
    comparison_rows(config, true)
}

fn comparison_rows(config: &ExperimentConfig, with_indexes: bool) -> Vec<FigureRow> {
    let runner = config.runner(with_indexes);
    let mut rows = Vec::new();
    for &scale in &config.scales {
        let mut env = config.load_env(scale, with_indexes);
        for query in all_queries() {
            for strategy in Strategy::COMPARISON {
                let report = runner
                    .run(strategy, &query, &mut env.catalog)
                    .expect("benchmark query execution");
                rows.push(FigureRow::from_report(&report, scale));
            }
        }
    }
    rows
}

/// Runs the Figure 6 (left) overhead decomposition.
pub fn figure6_overheads(config: &ExperimentConfig) -> Vec<OverheadRow> {
    let runner = config.runner(false);
    let mut rows = Vec::new();
    for &scale in &config.scales {
        let mut env = config.load_env(scale, false);
        for query in all_queries() {
            let upfront = runner
                .run(Strategy::BestOrder, &query, &mut env.catalog)
                .expect("best-order run");
            let reopt = runner
                .run(Strategy::ReoptWithoutOnlineStats, &query, &mut env.catalog)
                .expect("re-optimization run");
            let full = runner
                .run(Strategy::Dynamic, &query, &mut env.catalog)
                .expect("dynamic run");
            let report = OverheadReport::from_costs(
                upfront.simulated_cost,
                reopt.simulated_cost,
                full.simulated_cost,
            );
            rows.push(OverheadRow {
                query: query.name.clone(),
                scale_gb: scale,
                statistics_upfront: report.statistics_upfront,
                reoptimization: report.reoptimization,
                online_stats: report.online_stats,
                overhead_fraction: report.overhead_fraction(),
            });
        }
    }
    rows
}

/// Runs the Figure 6 (right) predicate push-down overhead comparison.
pub fn figure6_pushdown(config: &ExperimentConfig) -> Vec<PushdownRow> {
    let runner = config.runner(false);
    let mut rows = Vec::new();
    for &scale in &config.scales {
        let mut env = config.load_env(scale, false);
        for query in all_queries() {
            let baseline = runner
                .run(Strategy::DynamicWithoutPushdown, &query, &mut env.catalog)
                .expect("baseline run");
            let with_pushdown = runner
                .run(Strategy::Dynamic, &query, &mut env.catalog)
                .expect("dynamic run");
            let overhead = if baseline.simulated_cost > 0.0 {
                ((with_pushdown.simulated_cost - baseline.simulated_cost) / baseline.simulated_cost)
                    .max(0.0)
            } else {
                0.0
            };
            rows.push(PushdownRow {
                query: query.name.clone(),
                scale_gb: scale,
                baseline: baseline.simulated_cost,
                with_pushdown: with_pushdown.simulated_cost,
                overhead_fraction: overhead,
            });
        }
    }
    rows
}

/// Computes Table 1 (average improvement of the dynamic approach against every
/// baseline) from the Figure 7 rows.
pub fn table1(rows: &[FigureRow]) -> Vec<Table1Row> {
    // (scale, query) -> dynamic cost
    let mut dynamic_cost: BTreeMap<(u64, String), f64> = BTreeMap::new();
    for row in rows {
        if row.strategy == Strategy::Dynamic.label() {
            dynamic_cost.insert((row.scale_gb, row.query.clone()), row.simulated_cost);
        }
    }
    // (scale, baseline) -> improvement ratios
    let mut ratios: BTreeMap<(u64, String), Vec<f64>> = BTreeMap::new();
    for row in rows {
        if row.strategy == Strategy::Dynamic.label() {
            continue;
        }
        if let Some(&dynamic) = dynamic_cost.get(&(row.scale_gb, row.query.clone())) {
            if dynamic > 0.0 {
                ratios
                    .entry((row.scale_gb, row.strategy.clone()))
                    .or_default()
                    .push(row.simulated_cost / dynamic);
            }
        }
    }
    ratios
        .into_iter()
        .map(|((scale_gb, baseline), values)| Table1Row {
            scale_gb,
            baseline,
            improvement: values.iter().sum::<f64>() / values.len().max(1) as f64,
        })
        .collect()
}

/// Sweeps the re-optimization budget of the dynamic driver (0, 1, 2, unlimited)
/// over the two queries with the most joins — the "fewer re-optimizations"
/// trade-off the paper's future-work section raises.
pub fn reopt_budget_ablation(config: &ExperimentConfig) -> Vec<BudgetRow> {
    use rdo_core::{DynamicConfig, DynamicDriver};
    use rdo_workloads::{q17, q9};

    let rule = rdo_planner::JoinAlgorithmRule::with_threshold(config.broadcast_threshold);
    let cost_model = CostModel::with_partitions(config.partitions);
    let mut rows = Vec::new();
    for &scale in &config.scales {
        let mut env = config.load_env(scale, false);
        for query in [q17(), q9()] {
            for budget in [Some(0u32), Some(1), Some(2), None] {
                let driver_config = match budget {
                    Some(limit) => DynamicConfig::dynamic(rule).with_reopt_budget(limit),
                    None => DynamicConfig::dynamic(rule),
                }
                .with_parallel(config.parallel());
                let start = std::time::Instant::now();
                let outcome = DynamicDriver::new(driver_config)
                    .execute(&query, &mut env.catalog)
                    .expect("budgeted dynamic execution");
                rows.push(BudgetRow {
                    query: query.name.clone(),
                    scale_gb: scale,
                    budget: budget
                        .map(|limit| limit.to_string())
                        .unwrap_or_else(|| "unlimited".to_string()),
                    reoptimization_points: outcome.reoptimization_points,
                    simulated_cost: outcome.total.simulated_cost(&cost_model),
                    wall_seconds: start.elapsed().as_secs_f64(),
                });
            }
        }
    }
    rows
}

/// Formats the re-optimization budget ablation as an aligned text table.
pub fn render_budget(rows: &[BudgetRow]) -> String {
    let mut out = String::from("Ablation: re-optimization budget (dynamic strategy)\n");
    out.push_str(&format!(
        "{:<6} {:>6}  {:>10} {:>8} {:>14} {:>10}\n",
        "query", "scale", "budget", "reopts", "sim-cost", "wall-s"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<6} {:>4}GB  {:>10} {:>8} {:>14.1} {:>10.4}\n",
            row.query,
            row.scale_gb,
            row.budget,
            row.reoptimization_points,
            row.simulated_cost,
            row.wall_seconds
        ));
    }
    out
}

/// Measures predicate correlation for every multi-predicate dataset of the
/// four evaluation queries — the quantified version of the paper's Section 5.1
/// argument that multiplying marginal selectivities misestimates correlated
/// conjunctions (TPC-H Q8's `o_orderdate`/`o_orderstatus` pair, the UDF pairs
/// of Q9, the month/year filters of Q17/Q50).
pub fn correlations(config: &ExperimentConfig) -> Vec<CorrelationRow> {
    let mut rows = Vec::new();
    for &scale in &config.scales {
        let env = config.load_env(scale, false);
        for query in all_queries() {
            let reports = rdo_planner::analyze_query(&query, |alias| {
                let table = query.table_of(alias)?;
                let relation = env.catalog.table(table)?.try_gather()?;
                let stats = env.catalog.stats().get(table).cloned();
                Ok((relation, stats))
            })
            .expect("correlation analysis");
            for report in reports {
                rows.push(CorrelationRow {
                    query: query.name.clone(),
                    scale_gb: scale,
                    alias: report.alias.clone(),
                    predicates: report.marginal_selectivities.len(),
                    combined_selectivity: report.combined_selectivity,
                    independence_estimate: report.independence_estimate,
                    correlation_factor: report.correlation_factor(),
                    static_error_factor: report.static_error_factor(),
                });
            }
        }
    }
    rows
}

/// Formats the correlation analysis as an aligned text table.
pub fn render_correlations(rows: &[CorrelationRow]) -> String {
    let mut out =
        String::from("Correlated local predicates (true vs independence-assumption selectivity)\n");
    out.push_str(&format!(
        "{:<6} {:>6}  {:<10} {:>6} {:>12} {:>12} {:>10} {:>10}\n",
        "query", "scale", "dataset", "preds", "true-sel", "static-est", "corr", "err-factor"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<6} {:>4}GB  {:<10} {:>6} {:>12.5} {:>12.5} {:>10.2} {:>10.2}\n",
            row.query,
            row.scale_gb,
            row.alias,
            row.predicates,
            row.combined_selectivity,
            row.independence_estimate,
            row.correlation_factor,
            row.static_error_factor
        ));
    }
    out
}

/// Collects the plans every strategy chooses for every query (appendix
/// Figures 11–23).
pub fn plans(config: &ExperimentConfig, with_indexes: bool) -> Vec<PlanRow> {
    let runner = config.runner(with_indexes);
    let mut rows = Vec::new();
    for &scale in &config.scales {
        let mut env = config.load_env(scale, with_indexes);
        for query in all_queries() {
            for strategy in Strategy::COMPARISON {
                let report = runner
                    .run(strategy, &query, &mut env.catalog)
                    .expect("plan collection run");
                rows.push(PlanRow {
                    query: query.name.clone(),
                    scale_gb: scale,
                    indexed_nested_loop: with_indexes,
                    strategy: report.strategy.label().to_string(),
                    plan: report.plan.clone(),
                });
            }
        }
    }
    rows
}

/// Formats Figure 7/8 rows as an aligned text table grouped by scale and query.
pub fn render_comparison(rows: &[FigureRow]) -> String {
    let mut out = String::new();
    let mut grouped: BTreeMap<(u64, String), Vec<&FigureRow>> = BTreeMap::new();
    for row in rows {
        grouped
            .entry((row.scale_gb, row.query.clone()))
            .or_default()
            .push(row);
    }
    let mut last_scale = None;
    for ((scale, query), group) in grouped {
        if last_scale != Some(scale) {
            out.push_str(&format!("\n=== scale factor {scale} GB ===\n"));
            last_scale = Some(scale);
        }
        out.push_str(&format!("{query}\n"));
        for row in group {
            out.push_str(&format!(
                "  {:<22} cost {:>14.1}   wall {:>8.3}s   rows {:>8}\n",
                row.strategy, row.simulated_cost, row.wall_seconds, row.result_rows
            ));
        }
    }
    out
}

/// Formats the Figure 6 rows as text.
pub fn render_overheads(left: &[OverheadRow], right: &[PushdownRow]) -> String {
    let mut out = String::new();
    out.push_str("Figure 6 (left): re-optimization + online statistics overhead\n");
    out.push_str(&format!(
        "{:<6} {:>8} {:>16} {:>16} {:>14} {:>11}\n",
        "query", "scale", "stats upfront", "re-optimization", "online stats", "overhead%"
    ));
    for row in left {
        out.push_str(&format!(
            "{:<6} {:>8} {:>16.1} {:>16.1} {:>14.1} {:>10.1}%\n",
            row.query,
            row.scale_gb,
            row.statistics_upfront,
            row.reoptimization,
            row.online_stats,
            100.0 * row.overhead_fraction
        ));
    }
    out.push_str("\nFigure 6 (right): predicate push-down overhead\n");
    out.push_str(&format!(
        "{:<6} {:>8} {:>16} {:>16} {:>11}\n",
        "query", "scale", "baseline", "push-down", "overhead%"
    ));
    for row in right {
        out.push_str(&format!(
            "{:<6} {:>8} {:>16.1} {:>16.1} {:>10.1}%\n",
            row.query,
            row.scale_gb,
            row.baseline,
            row.with_pushdown,
            100.0 * row.overhead_fraction
        ));
    }
    out
}

/// Formats Table 1 as text.
pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut out = String::new();
    out.push_str(
        "Table 1: average improvement of the dynamic approach (cost ratio baseline/dynamic)\n",
    );
    out.push_str(&format!(
        "{:<8} {:<14} {:>12}\n",
        "scale", "baseline", "improvement"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<8} {:<14} {:>11.2}x\n",
            row.scale_gb, row.baseline, row.improvement
        ));
    }
    out
}

/// Formats the plan rows as text.
pub fn render_plans(rows: &[PlanRow]) -> String {
    let mut out = String::new();
    let mut last = (u64::MAX, String::new());
    for row in rows {
        if last != (row.scale_gb, row.query.clone()) {
            out.push_str(&format!(
                "\n=== {} at {} GB (INL {}) ===\n",
                row.query,
                row.scale_gb,
                if row.indexed_nested_loop { "on" } else { "off" }
            ));
            last = (row.scale_gb, row.query.clone());
        }
        out.push_str(&format!("  {:<22} {}\n", row.strategy, row.plan));
    }
    out
}

/// Convenience used by the criterion benches: run one strategy on one query.
pub fn run_once(
    runner: &QueryRunner,
    strategy: Strategy,
    query: &QuerySpec,
    env: &mut BenchmarkEnv,
) -> RunReport {
    runner
        .run(strategy, query, &mut env.catalog)
        .expect("bench query execution")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ExperimentConfig {
        ExperimentConfig {
            scales: vec![2],
            partitions: 4,
            broadcast_threshold: 2_000.0,
            pilot_sample: 500,
            seed: 13,
            workers: 2,
        }
    }

    #[test]
    fn figure7_produces_one_row_per_query_and_strategy() {
        let rows = figure7(&tiny_config());
        assert_eq!(rows.len(), 4 * Strategy::COMPARISON.len());
        assert!(rows.iter().all(|r| r.simulated_cost > 0.0));
        let rendered = render_comparison(&rows);
        assert!(rendered.contains("Q17"));
        assert!(rendered.contains("worst-order"));
    }

    #[test]
    fn reopt_budget_ablation_respects_the_budget() {
        let rows = reopt_budget_ablation(&tiny_config());
        // Two queries × four budgets × one scale factor.
        assert_eq!(rows.len(), 8);
        for row in &rows {
            assert!(row.simulated_cost > 0.0);
            match row.budget.as_str() {
                "0" => assert_eq!(row.reoptimization_points, 0),
                "1" => assert!(row.reoptimization_points <= 1),
                "2" => assert!(row.reoptimization_points <= 2),
                "unlimited" => {}
                other => panic!("unexpected budget label {other}"),
            }
        }
        let rendered = render_budget(&rows);
        assert!(rendered.contains("unlimited"));
        assert!(rendered.contains("Q17"));
    }

    #[test]
    fn correlation_rows_cover_the_multi_predicate_datasets() {
        let rows = correlations(&tiny_config());
        // Q17 has three filtered date_dim aliases, Q50 one, Q8 one (orders),
        // Q9 none with *two or more* predicates on the same dataset... except
        // that its UDF datasets carry a single predicate each, so they are not
        // analyzed. At least the Q17 + Q50 + Q8 datasets must appear.
        assert!(rows.len() >= 5, "got {} rows", rows.len());
        for row in &rows {
            assert!(row.combined_selectivity >= 0.0 && row.combined_selectivity <= 1.0);
            assert!(row.static_error_factor >= 1.0);
            assert!(row.predicates >= 2);
        }
        // The correlated orders predicates of Q8 must be flagged as correlated.
        let q8_orders = rows
            .iter()
            .find(|r| r.query == "Q8" && r.alias == "orders")
            .expect("Q8 orders row");
        assert!(
            q8_orders.correlation_factor > 1.3,
            "Q8 orders correlation factor {}",
            q8_orders.correlation_factor
        );
        let rendered = render_correlations(&rows);
        assert!(rendered.contains("orders"));
    }

    #[test]
    fn table1_improvements_are_positive_and_worst_order_is_largest() {
        let rows = figure7(&tiny_config());
        let table = table1(&rows);
        assert_eq!(table.len(), 5, "five baselines compared against dynamic");
        for row in &table {
            assert!(row.improvement > 0.0);
        }
        let worst = table
            .iter()
            .find(|r| r.baseline == "worst-order")
            .expect("worst-order row");
        let best = table
            .iter()
            .find(|r| r.baseline == "best-order")
            .expect("best-order row");
        assert!(
            worst.improvement > best.improvement,
            "worst-order ({:.2}) must show a larger improvement factor than best-order ({:.2})",
            worst.improvement,
            best.improvement
        );
        assert!(render_table1(&table).contains("worst-order"));
    }

    #[test]
    fn figure6_rows_have_bounded_overheads() {
        let config = tiny_config();
        let left = figure6_overheads(&config);
        let right = figure6_pushdown(&config);
        assert_eq!(left.len(), 4);
        assert_eq!(right.len(), 4);
        for row in &left {
            assert!(row.overhead_fraction >= 0.0 && row.overhead_fraction < 0.9);
        }
        for row in &right {
            assert!(row.overhead_fraction >= 0.0 && row.overhead_fraction < 0.9);
        }
        let text = render_overheads(&left, &right);
        assert!(text.contains("Figure 6"));
    }

    #[test]
    fn plan_rows_cover_all_strategies() {
        let rows = plans(&tiny_config(), false);
        assert_eq!(rows.len(), 4 * Strategy::COMPARISON.len());
        assert!(render_plans(&rows).contains("dynamic"));
    }
}
