//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p rdo-bench --bin figures -- [--fig 6|7|8] [--table1] [--plans]
//!     [--scales 10,100,1000] [--partitions 16] [--out results] [--quick] [--all]
//! ```
//!
//! Without arguments the binary runs `--all --quick` (every experiment at
//! reduced scale factors). Text tables go to stdout; JSON files with the raw
//! rows are written to the output directory.

use rdo_bench::{
    correlations, figure6_overheads, figure6_pushdown, figure7, figure8, plans, render_budget,
    render_comparison, render_correlations, render_overheads, render_plans, render_table1,
    reopt_budget_ablation, table1, ExperimentConfig,
};
use std::fs;
use std::path::PathBuf;

#[derive(Debug)]
struct Args {
    figures: Vec<u32>,
    table1: bool,
    plans: bool,
    ablations: bool,
    config: ExperimentConfig,
    out_dir: PathBuf,
}

fn parse_args() -> Args {
    let mut figures = Vec::new();
    let mut want_table1 = false;
    let mut want_plans = false;
    let mut want_ablations = false;
    let mut config = ExperimentConfig::default();
    let mut out_dir = PathBuf::from("results");
    let mut all = false;
    let mut quick = false;
    let mut explicit_scales = false;

    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--fig" => {
                i += 1;
                let value = argv.get(i).expect("--fig requires a number (6, 7 or 8)");
                figures.push(value.parse().expect("figure number"));
            }
            "--table1" => want_table1 = true,
            "--plans" => want_plans = true,
            "--ablations" => want_ablations = true,
            "--all" => all = true,
            "--quick" => quick = true,
            "--scales" => {
                i += 1;
                let value = argv
                    .get(i)
                    .expect("--scales requires a comma-separated list");
                config.scales = value
                    .split(',')
                    .map(|s| s.trim().parse().expect("scale factor"))
                    .collect();
                explicit_scales = true;
            }
            "--partitions" => {
                i += 1;
                config.partitions = argv
                    .get(i)
                    .expect("--partitions requires a number")
                    .parse()
                    .expect("partition count");
            }
            "--out" => {
                i += 1;
                out_dir = PathBuf::from(argv.get(i).expect("--out requires a path"));
            }
            other => panic!("unknown argument: {other}"),
        }
        i += 1;
    }

    if figures.is_empty() && !want_table1 && !want_plans && !want_ablations {
        all = true;
        if !explicit_scales {
            quick = true;
        }
    }
    if all {
        figures = vec![6, 7, 8];
        want_table1 = true;
        want_plans = true;
        want_ablations = true;
    }
    if quick && !explicit_scales {
        config.scales = ExperimentConfig::quick().scales;
    }
    Args {
        figures,
        table1: want_table1,
        plans: want_plans,
        ablations: want_ablations,
        config,
        out_dir,
    }
}

fn write_json<T: serde::Serialize>(out_dir: &PathBuf, name: &str, rows: &T) {
    fs::create_dir_all(out_dir).expect("create output directory");
    let path = out_dir.join(name);
    let json = serde_json::to_string_pretty(rows).expect("serialize rows");
    fs::write(&path, json).expect("write results file");
    rdo_common::info!("wrote {}", path.display());
}

fn main() {
    let args = parse_args();
    rdo_common::info!(
        "running experiments at scale factors {:?} with {} partitions",
        args.config.scales,
        args.config.partitions
    );

    let mut figure7_rows = None;

    for figure in &args.figures {
        match figure {
            6 => {
                let left = figure6_overheads(&args.config);
                let right = figure6_pushdown(&args.config);
                println!("{}", render_overheads(&left, &right));
                write_json(&args.out_dir, "figure6_overheads.json", &left);
                write_json(&args.out_dir, "figure6_pushdown.json", &right);
            }
            7 => {
                let rows = figure7(&args.config);
                println!(
                    "Figure 7: strategy comparison (hash/broadcast joins)\n{}",
                    render_comparison(&rows)
                );
                write_json(&args.out_dir, "figure7.json", &rows);
                figure7_rows = Some(rows);
            }
            8 => {
                let rows = figure8(&args.config);
                println!(
                    "Figure 8: strategy comparison with indexed nested-loop joins\n{}",
                    render_comparison(&rows)
                );
                write_json(&args.out_dir, "figure8.json", &rows);
            }
            other => panic!("unknown figure {other}; supported figures are 6, 7 and 8"),
        }
    }

    if args.table1 {
        let rows = match figure7_rows {
            Some(ref rows) => rows.clone(),
            None => figure7(&args.config),
        };
        let table = table1(&rows);
        println!("{}", render_table1(&table));
        write_json(&args.out_dir, "table1.json", &table);
    }

    if args.plans {
        let without = plans(&args.config, false);
        let with = plans(&args.config, true);
        println!(
            "Appendix plans (Figures 11–18, INL off)\n{}",
            render_plans(&without)
        );
        println!(
            "Appendix plans (Figures 19–23, INL on)\n{}",
            render_plans(&with)
        );
        write_json(&args.out_dir, "plans_inl_off.json", &without);
        write_json(&args.out_dir, "plans_inl_on.json", &with);
    }

    if args.ablations {
        let rows = reopt_budget_ablation(&args.config);
        println!("{}", render_budget(&rows));
        write_json(&args.out_dir, "ablation_reopt_budget.json", &rows);

        let rows = correlations(&args.config);
        println!("{}", render_correlations(&rows));
        write_json(&args.out_dir, "correlations.json", &rows);
    }
}
