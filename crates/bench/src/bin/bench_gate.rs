//! The bench-regression gate.
//!
//! ```text
//! cargo run --release -p rdo-bench --bin bench_gate -- \
//!     [--out BENCH_pr.json] [--baseline crates/bench/BENCH_baseline.json] \
//!     [--max-regression 0.25] [--update-baseline]
//! ```
//!
//! Runs the micro-benchmarks (join algorithms, the grace/hybrid spillable
//! join, the dynamic driver on all four evaluation queries), writes the
//! results to `--out`, and fails (exit 1) when any benchmark's **simulated
//! cost** exceeds the checked-in baseline by more than `--max-regression`.
//!
//! The gated number is the deterministic simulated cluster cost (execution
//! counters × the cost model), not wall time: it is bit-identical on every
//! machine and worker count, so the gate cannot flake on shared CI runners,
//! while still catching real regressions — plan changes, extra shuffles,
//! needless spill I/O. Wall time is recorded alongside for trend analysis of
//! the uploaded artifacts but never gated.
//!
//! After an *intentional* cost change (a new operator, a cost-model
//! recalibration), refresh the baseline with `--update-baseline` and commit
//! the diff.

use rdo_common::{DataType, FieldRef, Relation, Schema, Tuple, Value};
use rdo_core::{DynamicConfig, DynamicDriver, ParallelConfig};
use rdo_exec::partition::{
    hash_join_partition_chunked, hash_join_partition_rows, repartition_partition_chunked,
    repartition_partition_rows, scan_partition_chunked, scan_partition_rows,
};
use rdo_exec::{
    CmpOp, CostModel, ExecutionMetrics, Executor, JoinAlgorithm, PhysicalPlan, Predicate,
    DEFAULT_BATCH_SIZE,
};
use rdo_storage::{Catalog, IngestOptions, SpillConfig};
use rdo_workloads::{all_queries, BenchmarkEnv, ScaleFactor};
use serde::Serialize;
use std::time::Instant;

/// One benchmark's record in the trajectory file.
#[derive(Debug, Clone, Serialize)]
struct BenchRecord {
    name: String,
    /// Simulated cluster cost — deterministic, the gated number.
    cost_units: f64,
    /// Wall-clock milliseconds — machine-dependent, recorded but never gated.
    wall_ms: f64,
    /// Result rows, as a sanity anchor for the cost.
    result_rows: u64,
    /// Largest estimate-vs-actual Q-error of the run's audit trail
    /// (dynamic cases only; 0 when the case records no audit).
    max_q_error: f64,
}

fn main() {
    let args = Args::parse();
    let records = run_benchmarks();

    let json = serde_json::to_string_pretty(&records).expect("serialize records");
    std::fs::write(&args.out, &json).unwrap_or_else(|e| panic!("write {}: {e}", args.out));
    println!("wrote {} benchmarks to {}", records.len(), args.out);

    // Companion profile artifact: traced repetitions of the dynamic-driver
    // cases, written next to the trajectory file. Strictly after (and apart
    // from) the gated runs above, which stay untraced so the gated costs are
    // the exact seed code path.
    let profile_path = format!("{}.profile.txt", args.out.trim_end_matches(".json"));
    let profile = write_profile_artifact(&profile_path);
    std::fs::write(&profile_path, profile).unwrap_or_else(|e| panic!("write {profile_path}: {e}"));
    println!("wrote stage profiles to {profile_path}");

    if args.update_baseline {
        std::fs::write(&args.baseline, &json)
            .unwrap_or_else(|e| panic!("write {}: {e}", args.baseline));
        println!("baseline {} refreshed", args.baseline);
        return;
    }

    let baseline_json = std::fs::read_to_string(&args.baseline).unwrap_or_else(|e| {
        panic!(
            "baseline {} unreadable ({e}); seed it with --update-baseline",
            args.baseline
        )
    });
    let baseline = parse_records(&baseline_json)
        .unwrap_or_else(|e| panic!("baseline {} malformed: {e}", args.baseline));

    let mut failures = Vec::new();
    for base in &baseline {
        let Some(current) = records.iter().find(|r| r.name == base.name) else {
            failures.push(format!("{}: benchmark disappeared from the run", base.name));
            continue;
        };
        let allowed = base.cost_units * (1.0 + args.max_regression) + 1e-9;
        let delta = if base.cost_units > 0.0 {
            (current.cost_units - base.cost_units) / base.cost_units * 100.0
        } else {
            0.0
        };
        if current.cost_units > allowed {
            failures.push(format!(
                "{}: cost {:.1} vs baseline {:.1} ({:+.1}%, limit +{:.0}%)",
                base.name,
                current.cost_units,
                base.cost_units,
                delta,
                args.max_regression * 100.0
            ));
        } else {
            println!(
                "ok   {}: cost {:.1} vs baseline {:.1} ({:+.1}%)  wall {:.1} ms",
                base.name, current.cost_units, base.cost_units, delta, current.wall_ms
            );
        }
    }
    for record in &records {
        if !baseline.iter().any(|b| b.name == record.name) {
            println!(
                "new  {}: cost {:.1} (not in baseline yet; refresh with --update-baseline)",
                record.name, record.cost_units
            );
        }
    }

    if !failures.is_empty() {
        rdo_common::error!("bench regression gate FAILED:");
        for failure in &failures {
            rdo_common::error!("  {failure}");
        }
        std::process::exit(1);
    }
    println!(
        "bench regression gate passed ({} benchmarks)",
        baseline.len()
    );
}

// ---------------------------------------------------------------------------
// Benchmarks. Everything here is pinned — explicit configs, fixed seeds, no
// environment-variable influence — so the gated costs are reproducible on any
// machine.
// ---------------------------------------------------------------------------

fn run_benchmarks() -> Vec<BenchRecord> {
    let model = CostModel::with_partitions(8);
    let mut records = Vec::new();

    // Micro joins: the three algorithms on a key/foreign-key join.
    let catalog = join_catalog(50_000, 10_000);
    for (label, algorithm) in [
        ("join/hash", JoinAlgorithm::Hash),
        ("join/broadcast", JoinAlgorithm::Broadcast),
        ("join/inl", JoinAlgorithm::IndexedNestedLoop),
    ] {
        records.push(run_join(label, &catalog, algorithm, &model));
    }

    // The kernel pair: the same scan → repartition → join pipeline over the
    // micro-join data, once through the row-at-a-time reference kernels and
    // once through the columnar batch kernels (pinned to the default batch
    // size — no environment influence). The tallies, and therefore the gated
    // simulated costs, are bit-identical between the two; the wall times give
    // the row-vs-columnar comparison in the uploaded artifact.
    for (label, columnar) in [("kernel/row", false), ("kernel/columnar", true)] {
        records.push(run_kernel(label, &catalog, columnar, &model));
    }

    // The grace/hybrid spillable join: the same hash join with a build-side
    // budget far below the per-partition build size, so every partition
    // partitions through the spill store.
    let mut grace_catalog = join_catalog(50_000, 10_000);
    grace_catalog
        .configure_spill(
            SpillConfig::default()
                .with_join_budget(4_096)
                // Pinned to the row page layout so the gated grace I/O cost
                // keeps its historical meaning regardless of RDO_COLUMNAR.
                .with_columnar(false),
        )
        .expect("configure join budget");
    records.push(run_join(
        "join/grace",
        &grace_catalog,
        JoinAlgorithm::Hash,
        &model,
    ));

    // The spill I/O fast path: one oversized intermediate through the paged
    // store (1-byte budget forces the spill) and a scan back — page
    // compression off vs on (row layout pinned, so the historical figures
    // hold), then the columnar page layout on top of compression. The gated
    // cost is the measured page I/O: the compressed leg must stay cheaper
    // than the raw leg, and the columnar leg cheaper than the compressed
    // row leg, or the fast path has regressed.
    for (label, compress, columnar) in [
        ("spill/raw", false, false),
        ("spill/compressed", true, false),
        ("spill/columnar", true, true),
    ] {
        records.push(run_spill(label, compress, columnar, &model));
    }

    // The at-rest storage layout: the same intermediate registered row-backed
    // vs columnar-backed (batch-partition chunks), scanned and joined against
    // a base dimension table. The logical tallies — and therefore the gated
    // simulated costs — are bit-identical between the two; the wall times
    // give the rest-format comparison in the uploaded artifact.
    for (label, columnar) in [("storage/row", false), ("storage/columnar", true)] {
        records.push(run_storage(label, columnar, &model));
    }

    // The dynamic driver end to end on the four evaluation queries.
    let env = BenchmarkEnv::load(ScaleFactor::gb(2), 8, true, 42).expect("workload generation");
    for query in all_queries() {
        let mut catalog = env.catalog.clone();
        let config = DynamicConfig::default()
            .with_parallel(ParallelConfig::serial())
            .with_spill(SpillConfig::disabled());
        let start = Instant::now();
        let outcome = DynamicDriver::new(config)
            .execute(&query, &mut catalog)
            .expect("dynamic execution");
        records.push(BenchRecord {
            name: format!("dynamic/{}", query.name.to_lowercase()),
            cost_units: outcome.total.simulated_cost(&model),
            wall_ms: start.elapsed().as_secs_f64() * 1_000.0,
            result_rows: outcome.result.len() as u64,
            max_q_error: outcome.audit.max_q_error(),
        });
    }

    records
}

/// Traced repetitions of the dynamic-driver cases: per stage of each query,
/// the p50/p90/p99 wall time across `REPS` runs, followed by one full span
/// tree (with its latency-histogram percentiles), the estimate-vs-actual
/// audit table, and the metrics exposition of the last repetition.
/// Diagnostics only — nothing here feeds the gate.
fn write_profile_artifact(path: &str) -> String {
    const REPS: usize = 5;
    let env = BenchmarkEnv::load(ScaleFactor::gb(2), 8, true, 42).expect("workload generation");
    let mut out = String::new();
    out.push_str(&format!(
        "# per-stage wall times over {REPS} traced repetitions (p50 / p90 / p99, ms)\n\
         # written by bench_gate next to {path}; not part of the gated costs\n"
    ));
    for query in all_queries() {
        // stage key -> wall seconds per repetition, in stage order.
        let mut stages: Vec<(String, Vec<f64>)> = Vec::new();
        let mut last_trace = None;
        let mut last_audit = None;
        for _ in 0..REPS {
            let trace = rdo_trace::TraceHandle::enabled();
            let mut catalog = env.catalog.clone();
            let config = DynamicConfig::default()
                .with_parallel(ParallelConfig::serial())
                .with_spill(SpillConfig::disabled())
                .with_trace(trace.clone());
            let outcome = DynamicDriver::new(config)
                .execute(&query, &mut catalog)
                .expect("traced dynamic execution");
            last_audit = Some(outcome.audit);
            for (key, seconds) in stage_walls(&trace) {
                match stages.iter_mut().find(|(k, _)| *k == key) {
                    Some((_, walls)) => walls.push(seconds),
                    None => stages.push((key, vec![seconds])),
                }
            }
            last_trace = Some(trace);
        }
        out.push_str(&format!("\n== {} ==\n", query.name));
        for (key, walls) in &stages {
            let mut sorted = walls.clone();
            sorted.sort_by(|a, b| a.total_cmp(b));
            let p = |q: f64| sorted[((sorted.len() - 1) as f64 * q).round() as usize] * 1_000.0;
            out.push_str(&format!(
                "{key:<40} p50 {:>9.3} ms   p90 {:>9.3} ms   p99 {:>9.3} ms\n",
                p(0.5),
                p(0.9),
                p(0.99)
            ));
        }
        if let Some(trace) = last_trace {
            let profile = trace.profile();
            out.push_str("\n--- span tree (last repetition) ---\n");
            out.push_str(&profile.render_tree());
            if let Some(audit) = last_audit {
                out.push_str("--- audit (last repetition) ---\n");
                out.push_str(&audit.render());
            }
            out.push_str("--- metrics ---\n");
            out.push_str(&profile.metrics_text());
        }
    }
    out
}

/// The top-level stages of one traced run: every child of `driver.execute`,
/// keyed by name plus its identifying attribute, with wall seconds.
fn stage_walls(trace: &rdo_trace::TraceHandle) -> Vec<(String, f64)> {
    let spans = trace.spans();
    let roots: Vec<u64> = spans
        .iter()
        .filter(|s| s.name == "driver.execute")
        .map(|s| s.id)
        .collect();
    spans
        .iter()
        .filter(|s| roots.contains(&s.parent))
        .map(|s| {
            let key = match s.attrs.first() {
                Some((k, v)) => format!("{} {}={}", s.name, k, v),
                None => s.name.clone(),
            };
            (key, s.duration_ns as f64 / 1e9)
        })
        .collect()
}

fn run_join(
    label: &str,
    catalog: &Catalog,
    algorithm: JoinAlgorithm,
    model: &CostModel,
) -> BenchRecord {
    let plan = PhysicalPlan::join(
        PhysicalPlan::scan("fact"),
        PhysicalPlan::scan("dim"),
        FieldRef::new("fact", "f_dim"),
        FieldRef::new("dim", "d_id"),
        algorithm,
    );
    let executor = Executor::new(catalog);
    let mut metrics = ExecutionMetrics::new();
    let start = Instant::now();
    let data = executor
        .execute(&plan, &mut metrics)
        .expect("join execution");
    BenchRecord {
        name: label.to_string(),
        cost_units: metrics.simulated_cost(model),
        wall_ms: start.elapsed().as_secs_f64() * 1_000.0,
        result_rows: data.row_count() as u64,
        max_q_error: 0.0,
    }
}

/// One scan → repartition → hash-join pass over the micro-join catalog,
/// driven directly through the partition kernels: the filtered fact rows are
/// shuffled on the join key, then each target partition probes the matching
/// dim partition. `columnar` selects the batch kernels (at the pinned default
/// batch size) vs the row-at-a-time reference kernels; both populate the
/// metrics from the same tallies, so their simulated costs must coincide.
fn run_kernel(label: &str, catalog: &Catalog, columnar: bool, model: &CostModel) -> BenchRecord {
    let fact = catalog.table("fact").expect("fact table");
    let dim = catalog.table("dim").expect("dim table");
    let predicates = [Predicate::compare(
        FieldRef::new("fact", "f_dim"),
        CmpOp::Lt,
        Value::Int64(5_000),
    )];
    let key_index = 1; // f_dim
    let num_partitions = catalog.num_partitions();

    let mut metrics = ExecutionMetrics::new();
    let start = Instant::now();
    let mut shuffled: Vec<Vec<Tuple>> = vec![Vec::new(); num_partitions];
    for p in 0..fact.num_partitions() {
        let (kept, scan) = if columnar {
            scan_partition_chunked(
                fact.schema(),
                &predicates,
                None,
                fact.partition(p),
                DEFAULT_BATCH_SIZE,
            )
        } else {
            scan_partition_rows(fact.schema(), &predicates, None, fact.partition(p))
        }
        .expect("kernel scan");
        metrics.rows_scanned += scan.scanned_rows;
        metrics.bytes_scanned += scan.scanned_bytes;
        let (buckets, moved_rows, moved_bytes) = if columnar {
            repartition_partition_chunked(&kept, key_index, p, num_partitions, DEFAULT_BATCH_SIZE)
        } else {
            repartition_partition_rows(&kept, key_index, p, num_partitions)
        };
        metrics.rows_shuffled += moved_rows;
        metrics.bytes_shuffled += moved_bytes;
        for (bucket, out) in buckets.into_iter().zip(shuffled.iter_mut()) {
            out.extend(bucket);
        }
    }
    let mut result_rows = 0u64;
    for (p, probe_rows) in shuffled.iter().enumerate() {
        let (joined, tally) = if columnar {
            hash_join_partition_chunked(
                probe_rows,
                dim.partition(p),
                &[key_index],
                &[0],
                DEFAULT_BATCH_SIZE,
            )
        } else {
            hash_join_partition_rows(probe_rows, dim.partition(p), &[key_index], &[0])
        };
        metrics.build_rows += tally.build_rows;
        metrics.probe_rows += tally.probe_rows;
        metrics.output_rows += tally.output_rows;
        result_rows += joined.len() as u64;
    }
    BenchRecord {
        name: label.to_string(),
        cost_units: metrics.simulated_cost(model),
        wall_ms: start.elapsed().as_secs_f64() * 1_000.0,
        result_rows,
        max_q_error: 0.0,
    }
}

fn run_spill(label: &str, compress: bool, columnar: bool, model: &CostModel) -> BenchRecord {
    let mut catalog = Catalog::new(8);
    catalog
        .configure_spill(
            SpillConfig::default()
                .with_budget(1)
                .with_compression(compress)
                .with_columnar(columnar),
        )
        .expect("configure spill budget");
    let schema = Schema::for_dataset(
        "temp",
        &[
            ("k", DataType::Int64),
            ("payload", DataType::Utf8),
            ("v", DataType::Float64),
        ],
    );
    let rows: Vec<Tuple> = (0..40_000)
        .map(|i| {
            Tuple::new(vec![
                Value::Int64(i),
                Value::Utf8(format!("payload-{:06}", i % 1_000)),
                Value::Float64(i as f64 / 7.0),
            ])
        })
        .collect();
    let relation = Relation::new(schema, rows).expect("temp relation");

    let mut metrics = ExecutionMetrics::new();
    let start = Instant::now();
    let stored = catalog
        .register_intermediate("temp", relation, Some("k"), &[], false)
        .expect("register intermediate");
    assert!(stored.spilled, "the 1-byte budget must spill");
    metrics.spill_pages_written += stored.pages_written;
    metrics.spill_bytes_written += stored.bytes_written;
    metrics.spill_logical_bytes_written += stored.logical_bytes_written;
    let data = Executor::new(&catalog)
        .execute(&PhysicalPlan::scan("temp"), &mut metrics)
        .expect("scan spilled intermediate");
    BenchRecord {
        name: label.to_string(),
        cost_units: metrics.simulated_cost(model),
        wall_ms: start.elapsed().as_secs_f64() * 1_000.0,
        result_rows: data.row_count() as u64,
        max_q_error: 0.0,
    }
}

/// The at-rest layout pair: registers a fact-shaped intermediate with the
/// catalog's rest format pinned to `columnar` (batch-partition chunks) or row
/// vectors, then runs a hash join of the intermediate against a base
/// dimension table. Registration and join both sit inside the timed region,
/// so the wall times compare the full write-then-consume cycle of the two
/// rest formats; the logical tallies are identical by construction.
fn run_storage(label: &str, columnar: bool, model: &CostModel) -> BenchRecord {
    let mut catalog = Catalog::new(8);
    catalog
        .configure_spill(SpillConfig::disabled().with_columnar(columnar))
        .expect("configure rest format");
    let dim_schema = Schema::for_dataset(
        "dim",
        &[("d_id", DataType::Int64), ("d_val", DataType::Int64)],
    );
    let dim: Vec<Tuple> = (0..10_000)
        .map(|i| Tuple::new(vec![Value::Int64(i), Value::Int64(i % 17)]))
        .collect();
    catalog
        .ingest(
            "dim",
            Relation::new(dim_schema, dim).expect("dim relation"),
            IngestOptions::partitioned_on("d_id"),
        )
        .expect("ingest dim");
    let temp_schema = Schema::for_dataset(
        "temp",
        &[
            ("t_id", DataType::Int64),
            ("t_dim", DataType::Int64),
            ("t_tag", DataType::Utf8),
        ],
    );
    let temp: Vec<Tuple> = (0..50_000)
        .map(|i| {
            Tuple::new(vec![
                Value::Int64(i),
                Value::Int64(i % 10_000),
                Value::Utf8(format!("tag-{:04}", i % 500)),
            ])
        })
        .collect();
    let relation = Relation::new(temp_schema, temp).expect("temp relation");

    let mut metrics = ExecutionMetrics::new();
    let start = Instant::now();
    let stored = catalog
        .register_intermediate("temp", relation, Some("t_dim"), &[], false)
        .expect("register intermediate");
    assert!(!stored.spilled, "no budget was configured");
    assert_eq!(
        catalog.table("temp").expect("temp table").is_columnar(),
        columnar,
        "the intermediate must rest in the requested layout"
    );
    let plan = PhysicalPlan::join(
        PhysicalPlan::scan("temp"),
        PhysicalPlan::scan("dim"),
        FieldRef::new("temp", "t_dim"),
        FieldRef::new("dim", "d_id"),
        JoinAlgorithm::Hash,
    );
    let data = Executor::new(&catalog)
        .execute(&plan, &mut metrics)
        .expect("join over the intermediate");
    BenchRecord {
        name: label.to_string(),
        cost_units: metrics.simulated_cost(model),
        wall_ms: start.elapsed().as_secs_f64() * 1_000.0,
        result_rows: data.row_count() as u64,
        max_q_error: 0.0,
    }
}

fn join_catalog(fact_rows: i64, dim_rows: i64) -> Catalog {
    let mut catalog = Catalog::new(8);
    let fact_schema = Schema::for_dataset(
        "fact",
        &[("f_id", DataType::Int64), ("f_dim", DataType::Int64)],
    );
    let fact: Vec<Tuple> = (0..fact_rows)
        .map(|i| Tuple::new(vec![Value::Int64(i), Value::Int64(i % dim_rows)]))
        .collect();
    catalog
        .ingest(
            "fact",
            Relation::new(fact_schema, fact).expect("fact relation"),
            IngestOptions::partitioned_on("f_id").with_index("f_dim"),
        )
        .expect("ingest fact");
    let dim_schema = Schema::for_dataset(
        "dim",
        &[("d_id", DataType::Int64), ("d_val", DataType::Int64)],
    );
    let dim: Vec<Tuple> = (0..dim_rows)
        .map(|i| Tuple::new(vec![Value::Int64(i), Value::Int64(i % 17)]))
        .collect();
    catalog
        .ingest(
            "dim",
            Relation::new(dim_schema, dim).expect("dim relation"),
            IngestOptions::partitioned_on("d_id"),
        )
        .expect("ingest dim");
    catalog
}

// ---------------------------------------------------------------------------
// CLI and baseline parsing. The offline serde_json shim only serializes, so
// the gate carries a minimal reader for the exact shape it writes: an array
// of flat objects with string keys and string/number values.
// ---------------------------------------------------------------------------

struct Args {
    out: String,
    baseline: String,
    max_regression: f64,
    update_baseline: bool,
}

impl Args {
    fn parse() -> Self {
        let mut args = Self {
            out: "BENCH_pr.json".to_string(),
            baseline: "crates/bench/BENCH_baseline.json".to_string(),
            max_regression: 0.25,
            update_baseline: false,
        };
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            match argv[i].as_str() {
                "--out" => {
                    i += 1;
                    args.out = argv.get(i).expect("--out requires a path").clone();
                }
                "--baseline" => {
                    i += 1;
                    args.baseline = argv.get(i).expect("--baseline requires a path").clone();
                }
                "--max-regression" => {
                    i += 1;
                    args.max_regression = argv
                        .get(i)
                        .expect("--max-regression requires a fraction")
                        .parse()
                        .expect("fraction like 0.25");
                }
                "--update-baseline" => args.update_baseline = true,
                other => panic!("unknown argument {other}"),
            }
            i += 1;
        }
        args
    }
}

fn parse_records(json: &str) -> Result<Vec<BenchRecord>, String> {
    let mut parser = Parser {
        bytes: json.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    parser.expect(b'[')?;
    let mut records = Vec::new();
    parser.skip_ws();
    if parser.peek() == Some(b']') {
        return Ok(records);
    }
    loop {
        records.push(parser.object()?);
        parser.skip_ws();
        match parser.next() {
            Some(b',') => parser.skip_ws(),
            Some(b']') => return Ok(records),
            other => return Err(format!("expected ',' or ']', got {other:?}")),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.peek().is_some_and(|b| b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn expect(&mut self, expected: u8) -> Result<(), String> {
        match self.next() {
            Some(b) if b == expected => Ok(()),
            other => Err(format!("expected {:?}, got {other:?}", expected as char)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        // Accumulate raw UTF-8 bytes and decode once, so multi-byte
        // characters in benchmark names survive the roundtrip.
        let mut out: Vec<u8> = Vec::new();
        loop {
            match self.next() {
                Some(b'"') => return String::from_utf8(out).map_err(|e| format!("bad UTF-8: {e}")),
                Some(b'\\') => match self.next() {
                    Some(b'n') => out.push(b'\n'),
                    Some(b't') => out.push(b'\t'),
                    Some(b'r') => out.push(b'\r'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let digit = self
                                .next()
                                .and_then(|b| (b as char).to_digit(16))
                                .ok_or("bad \\u escape")?;
                            code = code * 16 + digit;
                        }
                        let c = char::from_u32(code).ok_or("bad \\u code point")?;
                        out.extend_from_slice(c.to_string().as_bytes());
                    }
                    // \" \\ \/ and anything else: the character itself.
                    Some(c) => out.push(c),
                    None => return Err("unterminated escape".to_string()),
                },
                Some(c) => out.push(c),
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<f64, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| e.to_string())?
            .parse()
            .map_err(|e| format!("bad number: {e}"))
    }

    /// One flat `{"name": ..., "cost_units": ..., ...}` object.
    fn object(&mut self) -> Result<BenchRecord, String> {
        self.expect(b'{')?;
        let mut record = BenchRecord {
            name: String::new(),
            cost_units: f64::NAN,
            wall_ms: 0.0,
            result_rows: 0,
            max_q_error: 0.0,
        };
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            match key.as_str() {
                "name" => record.name = self.string()?,
                "cost_units" => record.cost_units = self.number()?,
                "wall_ms" => record.wall_ms = self.number()?,
                "result_rows" => record.result_rows = self.number()? as u64,
                "max_q_error" => record.max_q_error = self.number()?,
                other => return Err(format!("unknown key {other:?}")),
            }
            self.skip_ws();
            match self.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
        if record.name.is_empty() || record.cost_units.is_nan() {
            return Err("record missing name or cost_units".to_string());
        }
        Ok(record)
    }
}
