//! Micro-benchmarks of the SQL++ frontend: parsing and binding the paper
//! queries. Compilation sits on the critical path of every re-optimization in
//! AsterixDB's integration (the reconstructed query re-enters the SQL++
//! parser), so it must stay cheap relative to execution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rdo_bench::ExperimentConfig;
use rdo_sql::parse;
use rdo_workloads::{compile_paper_query, Q17_SQL, Q50_SQL, Q8_SQL, Q9_SQL};

fn bench_parse(c: &mut Criterion) {
    let mut group = c.benchmark_group("sql_parse");
    for (name, sql) in [
        ("Q17", Q17_SQL),
        ("Q50", Q50_SQL),
        ("Q8", Q8_SQL),
        ("Q9", Q9_SQL),
    ] {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| parse(sql).expect("paper query parses"));
        });
    }
    group.finish();
}

fn bench_compile(c: &mut Criterion) {
    let config = ExperimentConfig {
        scales: vec![2],
        partitions: 4,
        ..Default::default()
    };
    let env = config.load_env(2, false);
    let mut group = c.benchmark_group("sql_parse_and_bind");
    for name in ["Q17", "Q50", "Q8", "Q9"] {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| compile_paper_query(name, &env.catalog).expect("paper query compiles"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parse, bench_compile);
criterion_main!(benches);
