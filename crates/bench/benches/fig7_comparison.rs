//! Criterion benchmark behind Figure 7: wall-clock execution time of every
//! optimization strategy on the four evaluation queries (hash/broadcast joins
//! only). The figure itself is produced by the `figures` binary from the
//! simulated cluster cost; this bench tracks the real in-process time so
//! regressions in the engine show up in `cargo bench`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rdo_bench::{run_once, ExperimentConfig};
use rdo_core::Strategy;
use rdo_workloads::all_queries;

fn bench_fig7(c: &mut Criterion) {
    let config = ExperimentConfig {
        scales: vec![5],
        partitions: 8,
        ..Default::default()
    };
    let runner = config.runner(false);
    let mut env = config.load_env(5, false);

    let mut group = c.benchmark_group("fig7_strategy_comparison_sf5");
    group.sample_size(10);
    for query in all_queries() {
        for strategy in Strategy::COMPARISON {
            group.bench_with_input(
                BenchmarkId::new(query.name.clone(), strategy.label()),
                &strategy,
                |b, strategy| {
                    b.iter(|| run_once(&runner, *strategy, &query, &mut env));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
