//! Micro-benchmarks of the LSM ingestion substrate: insert throughput under the
//! different merge policies and the cost of deriving dataset statistics from
//! component sketches (versus rescanning the merged data).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rdo_common::{DataType, Schema, Tuple, Value};
use rdo_lsm::{
    LsmDataset, LsmOptions, MergePolicy, NoMergePolicy, PrefixMergePolicy, TieredMergePolicy,
};
use rdo_sketch::DatasetStatsBuilder;

fn schema() -> Schema {
    Schema::for_dataset(
        "orders",
        &[
            ("o_orderkey", DataType::Int64),
            ("o_custkey", DataType::Int64),
            ("o_total", DataType::Float64),
        ],
    )
}

fn row(i: i64) -> Tuple {
    Tuple::new(vec![
        Value::Int64(i),
        Value::Int64(i % 997),
        Value::Float64((i % 10_000) as f64 * 0.01),
    ])
}

type PolicyFactory = Box<dyn Fn() -> Box<dyn MergePolicy>>;

fn policies() -> Vec<(&'static str, PolicyFactory)> {
    vec![
        (
            "no-merge",
            Box::new(|| Box::new(NoMergePolicy) as Box<dyn MergePolicy>),
        ),
        (
            "tiered-4",
            Box::new(|| Box::new(TieredMergePolicy { max_components: 4 }) as Box<dyn MergePolicy>),
        ),
        (
            "prefix",
            Box::new(|| Box::new(PrefixMergePolicy::default()) as Box<dyn MergePolicy>),
        ),
    ]
}

fn bench_ingestion(c: &mut Criterion) {
    const ROWS: i64 = 20_000;
    let mut group = c.benchmark_group("lsm_ingest_20k_rows");
    group.sample_size(10);
    for (label, make_policy) in policies() {
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                let mut dataset = LsmDataset::with_policy(
                    "orders",
                    schema(),
                    "o_orderkey",
                    LsmOptions {
                        memtable_capacity: 1_024,
                    },
                    make_policy(),
                )
                .unwrap();
                for i in 0..ROWS {
                    dataset.insert(row(i)).unwrap();
                }
                dataset.flush().unwrap();
                dataset
            });
        });
    }
    group.finish();
}

fn bench_stats_derivation(c: &mut Criterion) {
    const ROWS: i64 = 20_000;
    let mut dataset = LsmDataset::with_policy(
        "orders",
        schema(),
        "o_orderkey",
        LsmOptions {
            memtable_capacity: 1_024,
        },
        Box::new(PrefixMergePolicy::default()),
    )
    .unwrap();
    for i in 0..ROWS {
        dataset.insert(row(i)).unwrap();
    }
    dataset.flush().unwrap();

    let mut group = c.benchmark_group("lsm_statistics_20k_rows");
    group.sample_size(10);
    group.bench_function("merge-component-sketches", |b| {
        b.iter(|| dataset.merged_stats());
    });
    group.bench_function("rescan-merged-data", |b| {
        b.iter(|| {
            let mut builder = DatasetStatsBuilder::all_columns(&schema());
            builder.observe_relation(&dataset.scan());
            builder.build()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_ingestion, bench_stats_derivation);
criterion_main!(benches);
