//! Micro-benchmark of the partition-parallel executor: scan + hash-join
//! throughput at 1/2/4/8 workers on a multi-partition catalog. Results and
//! metrics are worker-count invariant, so the only thing that moves between
//! rows is wall time — the speedup the worker pool buys on the machine's
//! actual cores (set `RDO_WORKERS` elsewhere in the harness to pin figure
//! runs; this bench sweeps the worker count explicitly).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rdo_common::{DataType, FieldRef, Relation, Schema, Tuple, Value};
use rdo_core::{ParallelConfig, ParallelExecutor};
use rdo_exec::{CmpOp, ExecutionMetrics, JoinAlgorithm, PhysicalPlan, Predicate};
use rdo_storage::{Catalog, IngestOptions};

fn build_catalog(fact_rows: i64, dim_rows: i64, partitions: usize) -> Catalog {
    let mut catalog = Catalog::new(partitions);
    let fact_schema = Schema::for_dataset(
        "fact",
        &[
            ("f_id", DataType::Int64),
            ("f_dim", DataType::Int64),
            ("f_val", DataType::Int64),
        ],
    );
    let fact: Vec<Tuple> = (0..fact_rows)
        .map(|i| {
            Tuple::new(vec![
                Value::Int64(i),
                Value::Int64(i % dim_rows),
                Value::Int64(i % 97),
            ])
        })
        .collect();
    catalog
        .ingest(
            "fact",
            Relation::new(fact_schema, fact).unwrap(),
            IngestOptions::partitioned_on("f_id"),
        )
        .unwrap();
    let dim_schema = Schema::for_dataset(
        "dim",
        &[("d_id", DataType::Int64), ("d_val", DataType::Int64)],
    );
    let dim: Vec<Tuple> = (0..dim_rows)
        .map(|i| Tuple::new(vec![Value::Int64(i), Value::Int64(i % 17)]))
        .collect();
    catalog
        .ingest(
            "dim",
            Relation::new(dim_schema, dim).unwrap(),
            IngestOptions::partitioned_on("d_id"),
        )
        .unwrap();
    catalog
}

fn scan_plan() -> PhysicalPlan {
    PhysicalPlan::scan("fact").with_predicates(vec![Predicate::compare(
        FieldRef::new("fact", "f_val"),
        CmpOp::Lt,
        48i64,
    )])
}

fn join_plan() -> PhysicalPlan {
    // Joining on f_dim forces a HashRepartition exchange of the fact side
    // (it is partitioned on f_id), so the bench exercises scan, exchange and
    // per-partition build/probe.
    PhysicalPlan::join(
        scan_plan(),
        PhysicalPlan::scan("dim"),
        FieldRef::new("fact", "f_dim"),
        FieldRef::new("dim", "d_id"),
        JoinAlgorithm::Hash,
    )
}

fn bench_parallel(c: &mut Criterion) {
    let partitions = 16;
    let catalog = build_catalog(400_000, 10_000, partitions);
    let mut group = c.benchmark_group("parallel_scan_join");
    group.sample_size(10);
    for (label, plan) in [("scan", scan_plan()), ("scan_join", join_plan())] {
        for workers in [1usize, 2, 4, 8] {
            let config = ParallelConfig::serial().with_workers(workers);
            group.bench_with_input(
                BenchmarkId::new(label, format!("workers-{workers}")),
                &plan,
                |b, plan| {
                    b.iter(|| {
                        let executor = ParallelExecutor::new(&catalog, config);
                        let mut metrics = ExecutionMetrics::new();
                        executor.execute(plan, &mut metrics).unwrap().row_count()
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_parallel);
criterion_main!(benches);
