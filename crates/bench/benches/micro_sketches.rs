//! Micro-benchmarks of the statistics sketches (Greenwald–Khanna quantiles and
//! HyperLogLog). The paper's argument that online statistics collection is a
//! small overhead rests on these being cheap relative to join work.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rdo_common::Value;
use rdo_sketch::{ColumnStatsBuilder, EquiHeightHistogram, GkSketch, HyperLogLog};

fn bench_sketches(c: &mut Criterion) {
    let mut group = c.benchmark_group("sketches");
    group.sample_size(20);

    for n in [10_000u64, 100_000] {
        group.bench_with_input(BenchmarkId::new("gk_insert", n), &n, |b, &n| {
            b.iter(|| {
                let mut sketch = GkSketch::new(0.01);
                for i in 0..n {
                    sketch.insert(((i * 2_654_435_761) % 1_000_003) as f64);
                }
                sketch.quantile(0.5)
            });
        });
        group.bench_with_input(BenchmarkId::new("hll_insert", n), &n, |b, &n| {
            b.iter(|| {
                let mut hll = HyperLogLog::default_precision();
                for i in 0..n {
                    hll.insert(&Value::Int64(i as i64));
                }
                hll.estimate_count()
            });
        });
        group.bench_with_input(BenchmarkId::new("column_stats", n), &n, |b, &n| {
            b.iter(|| {
                let mut builder = ColumnStatsBuilder::new();
                for i in 0..n {
                    builder.observe(&Value::Int64((i % 10_000) as i64));
                }
                builder.build().distinct
            });
        });
    }

    group.bench_function("histogram_range_estimates", |b| {
        let histogram = EquiHeightHistogram::from_values((0..100_000).map(|i| i as f64), 64);
        b.iter(|| {
            let mut total = 0.0;
            for i in 0..1_000 {
                total += histogram.range_selectivity(i as f64 * 10.0, i as f64 * 10.0 + 500.0);
            }
            total
        });
    });
    group.finish();
}

criterion_group!(benches, bench_sketches);
criterion_main!(benches);
