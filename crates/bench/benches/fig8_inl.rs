//! Criterion benchmark behind Figure 8: the same strategy comparison with
//! secondary indexes present and the indexed nested-loop join enabled.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rdo_bench::{run_once, ExperimentConfig};
use rdo_core::Strategy;
use rdo_workloads::all_queries;

fn bench_fig8(c: &mut Criterion) {
    let config = ExperimentConfig {
        scales: vec![5],
        partitions: 8,
        ..Default::default()
    };
    let runner = config.runner(true);
    let mut env = config.load_env(5, true);

    let mut group = c.benchmark_group("fig8_strategy_comparison_inl_sf5");
    group.sample_size(10);
    for query in all_queries() {
        // The worst-order baseline never chooses INL (it is identical to
        // Figure 7), so the paper omits it here; we do the same.
        for strategy in [
            Strategy::Dynamic,
            Strategy::BestOrder,
            Strategy::CostBased,
            Strategy::PilotRun,
            Strategy::IngresLike,
        ] {
            group.bench_with_input(
                BenchmarkId::new(query.name.clone(), strategy.label()),
                &strategy,
                |b, strategy| {
                    b.iter(|| run_once(&runner, *strategy, &query, &mut env));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
