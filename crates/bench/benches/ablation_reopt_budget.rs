//! Ablation: how many re-optimization points are worth paying for?
//!
//! The paper's future-work section asks whether fewer re-optimization points
//! (less blocking, less materialization) can retain most of the benefit. This
//! bench sweeps the re-optimization budget of the dynamic driver from 0 (plan
//! the whole query statically after predicate push-down) to unlimited (the
//! paper's configuration) on the two queries with the most joins.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rdo_bench::ExperimentConfig;
use rdo_core::{DynamicConfig, DynamicDriver};
use rdo_planner::JoinAlgorithmRule;
use rdo_workloads::{q17, q9};

fn bench_reopt_budget(c: &mut Criterion) {
    let config = ExperimentConfig {
        scales: vec![5],
        partitions: 8,
        ..Default::default()
    };
    let mut env = config.load_env(5, false);
    let rule = JoinAlgorithmRule::with_threshold(config.broadcast_threshold);

    let mut group = c.benchmark_group("ablation_reopt_budget_sf5");
    group.sample_size(10);
    for query in [q17(), q9()] {
        for budget in [Some(0u32), Some(1), Some(2), None] {
            let label = match budget {
                Some(b) => format!("budget-{b}"),
                None => "unlimited".to_string(),
            };
            let driver_config = match budget {
                Some(b) => DynamicConfig::dynamic(rule).with_reopt_budget(b),
                None => DynamicConfig::dynamic(rule),
            };
            group.bench_with_input(
                BenchmarkId::new(query.name.clone(), label),
                &driver_config,
                |b, driver_config| {
                    b.iter(|| {
                        DynamicDriver::new(driver_config.clone())
                            .execute(&query, &mut env.catalog)
                            .expect("budgeted dynamic execution")
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_reopt_budget);
criterion_main!(benches);
