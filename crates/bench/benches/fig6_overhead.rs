//! Criterion benchmark behind Figure 6: the cost of the dynamic machinery
//! itself. For every query we measure (a) the optimal plan with statistics
//! known upfront (best-order), (b) re-optimization points without online
//! statistics and (c) the full dynamic approach — the differences are the
//! materialization and statistics-collection overheads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rdo_bench::{run_once, ExperimentConfig};
use rdo_core::Strategy;
use rdo_workloads::all_queries;

fn bench_fig6(c: &mut Criterion) {
    let config = ExperimentConfig {
        scales: vec![5],
        partitions: 8,
        ..Default::default()
    };
    let runner = config.runner(false);
    let mut env = config.load_env(5, false);

    let mut group = c.benchmark_group("fig6_overhead_sf5");
    group.sample_size(10);
    for query in all_queries() {
        for (label, strategy) in [
            ("stats-upfront", Strategy::BestOrder),
            ("reopt-only", Strategy::ReoptWithoutOnlineStats),
            ("dynamic-full", Strategy::Dynamic),
            ("no-pushdown", Strategy::DynamicWithoutPushdown),
        ] {
            group.bench_with_input(
                BenchmarkId::new(query.name.clone(), label),
                &strategy,
                |b, strategy| {
                    b.iter(|| run_once(&runner, *strategy, &query, &mut env));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
