//! Micro-benchmarks of the three join algorithms (hash, broadcast, indexed
//! nested-loop) on a key/foreign-key join, at two build-side sizes. These back
//! the join-algorithm selection rule: broadcast/INL should win while the build
//! side is small, hash should win once it is not.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rdo_common::{DataType, FieldRef, Relation, Schema, Tuple, Value};
use rdo_exec::{ExecutionMetrics, Executor, JoinAlgorithm, PhysicalPlan};
use rdo_storage::{Catalog, IngestOptions};

fn build_catalog(fact_rows: i64, dim_rows: i64) -> Catalog {
    let mut catalog = Catalog::new(8);
    let fact_schema = Schema::for_dataset(
        "fact",
        &[("f_id", DataType::Int64), ("f_dim", DataType::Int64)],
    );
    let fact: Vec<Tuple> = (0..fact_rows)
        .map(|i| Tuple::new(vec![Value::Int64(i), Value::Int64(i % dim_rows)]))
        .collect();
    catalog
        .ingest(
            "fact",
            Relation::new(fact_schema, fact).unwrap(),
            IngestOptions::partitioned_on("f_id").with_index("f_dim"),
        )
        .unwrap();
    let dim_schema = Schema::for_dataset(
        "dim",
        &[("d_id", DataType::Int64), ("d_val", DataType::Int64)],
    );
    let dim: Vec<Tuple> = (0..dim_rows)
        .map(|i| Tuple::new(vec![Value::Int64(i), Value::Int64(i % 17)]))
        .collect();
    catalog
        .ingest(
            "dim",
            Relation::new(dim_schema, dim).unwrap(),
            IngestOptions::partitioned_on("d_id"),
        )
        .unwrap();
    catalog
}

fn join_plan(algorithm: JoinAlgorithm) -> PhysicalPlan {
    PhysicalPlan::join(
        PhysicalPlan::scan("fact"),
        PhysicalPlan::scan("dim"),
        FieldRef::new("fact", "f_dim"),
        FieldRef::new("dim", "d_id"),
        algorithm,
    )
}

fn bench_joins(c: &mut Criterion) {
    let mut group = c.benchmark_group("join_algorithms");
    group.sample_size(10);
    for (fact_rows, dim_rows) in [(50_000i64, 100i64), (50_000, 10_000)] {
        let catalog = build_catalog(fact_rows, dim_rows);
        for algorithm in [
            JoinAlgorithm::Hash,
            JoinAlgorithm::Broadcast,
            JoinAlgorithm::IndexedNestedLoop,
        ] {
            let plan = join_plan(algorithm);
            group.bench_with_input(
                BenchmarkId::new(format!("fact{fact_rows}_dim{dim_rows}"), algorithm.symbol()),
                &plan,
                |b, plan| {
                    b.iter(|| {
                        let executor = Executor::new(&catalog);
                        let mut metrics = ExecutionMetrics::new();
                        executor.execute(plan, &mut metrics).unwrap().row_count()
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_joins);
criterion_main!(benches);
