//! Ablation: sensitivity of the dynamic approach to the broadcast threshold.
//!
//! The paper's gains hinge on recognizing (after predicate execution) that a
//! filtered dimension table is small enough to broadcast. This bench sweeps the
//! broadcast threshold of the join-algorithm rule from "never broadcast" to
//! "broadcast almost anything" and runs the dynamic strategy on Q8 and Q50,
//! the two queries whose plans flip the most joins between hash and broadcast.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rdo_bench::{run_once, ExperimentConfig};
use rdo_core::Strategy;
use rdo_workloads::{q50, q8};

fn bench_broadcast_threshold(c: &mut Criterion) {
    let config = ExperimentConfig {
        scales: vec![5],
        partitions: 8,
        ..Default::default()
    };
    let mut env = config.load_env(5, false);

    let mut group = c.benchmark_group("ablation_broadcast_threshold_sf5");
    group.sample_size(10);
    for query in [q8(), q50(9, 2000)] {
        for threshold in [0.0f64, 1_000.0, 25_000.0, 1e9] {
            let mut cfg = config.clone();
            cfg.broadcast_threshold = threshold;
            let runner = cfg.runner(false);
            group.bench_with_input(
                BenchmarkId::new(query.name.clone(), format!("threshold-{threshold:.0}")),
                &runner,
                |b, runner| {
                    b.iter(|| run_once(runner, Strategy::Dynamic, &query, &mut env));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_broadcast_threshold);
criterion_main!(benches);
