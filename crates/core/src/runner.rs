//! The unified query runner: executes a query under any of the strategies the
//! paper compares and reports wall time, simulated cluster cost and (for the
//! dynamic variants) the overhead breakdown.

use crate::driver::{project_result, DynamicConfig, DynamicDriver};
use crate::report::CostBreakdown;
use rdo_common::{Relation, Result};
use rdo_exec::{CostModel, ExecutionMetrics};
use rdo_parallel::{ParallelConfig, ParallelExecutor, WorkerPool};
use rdo_planner::{
    BestOrderOptimizer, CostBasedOptimizer, JoinAlgorithmRule, Optimizer, PilotRunOptimizer,
    QuerySpec, WorstOrderOptimizer,
};
use rdo_storage::Catalog;
use std::fmt;
use std::time::Instant;

/// The optimization strategies compared in the paper's evaluation (Figures 7
/// and 8) plus the ablation variants used for the overhead analysis (Figure 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// The paper's runtime dynamic optimization.
    Dynamic,
    /// Dynamic decomposition driven by dataset cardinalities only (INGRES-like).
    IngresLike,
    /// Static Selinger-style cost-based optimization over initial statistics.
    CostBased,
    /// The user-supplied best FROM order with broadcast hints.
    BestOrder,
    /// The user-supplied worst FROM order (hash joins only).
    WorstOrder,
    /// Pilot runs over samples followed by a static plan.
    PilotRun,
    /// Ablation: re-optimization points enabled but online statistics disabled.
    ReoptWithoutOnlineStats,
    /// Ablation: dynamic approach without the predicate push-down stage.
    DynamicWithoutPushdown,
}

impl Strategy {
    /// Every strategy compared in Figure 7 / Figure 8.
    pub const COMPARISON: [Strategy; 6] = [
        Strategy::Dynamic,
        Strategy::BestOrder,
        Strategy::CostBased,
        Strategy::PilotRun,
        Strategy::IngresLike,
        Strategy::WorstOrder,
    ];

    /// Short label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            Strategy::Dynamic => "dynamic",
            Strategy::IngresLike => "ingres-like",
            Strategy::CostBased => "cost-based",
            Strategy::BestOrder => "best-order",
            Strategy::WorstOrder => "worst-order",
            Strategy::PilotRun => "pilot-run",
            Strategy::ReoptWithoutOnlineStats => "reopt-no-online-stats",
            Strategy::DynamicWithoutPushdown => "dynamic-no-pushdown",
        }
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The outcome of running one query under one strategy.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Strategy used.
    pub strategy: Strategy,
    /// Query name.
    pub query: String,
    /// The (projected) result relation.
    pub result: Relation,
    /// Wall-clock seconds of the in-process execution.
    pub wall_seconds: f64,
    /// Simulated cluster cost under the runner's cost model.
    pub simulated_cost: f64,
    /// Raw execution metrics (including any planning overhead such as pilot
    /// runs).
    pub metrics: ExecutionMetrics,
    /// Human-readable plan description.
    pub plan: String,
    /// Overhead breakdown (dynamic variants only).
    pub breakdown: Option<CostBreakdown>,
    /// The optimizer audit trail (dynamic variants; empty for static
    /// strategies, which never re-optimize).
    pub audit_log: rdo_trace::audit::AuditLog,
    /// The run's trace: enabled when the runner's tracing is on, carrying the
    /// span tree and counters this run (and only this run) recorded.
    pub trace: rdo_trace::TraceHandle,
}

impl RunReport {
    /// Number of result rows.
    pub fn result_rows(&self) -> usize {
        self.result.len()
    }

    /// The run's profile (span tree + counters). Empty when tracing was
    /// disabled.
    pub fn profile(&self) -> rdo_trace::Profile {
        self.trace.profile()
    }

    /// The estimate-vs-actual audit table plus the re-optimization decision
    /// explanations, rendered for humans. Static strategies (and dynamic runs
    /// of join-free queries) report "no audit records".
    pub fn audit(&self) -> String {
        self.audit_log.render()
    }

    /// Prometheus text exposition of this run: every [`ExecutionMetrics`]
    /// counter plus whatever the trace collected (works with tracing
    /// disabled too — the logical metrics never depend on tracing). All
    /// series share the single `rdo_` namespace; a trace counter or gauge
    /// whose sanitized name collides with an execution metric is skipped so
    /// the exposition never emits the same series twice.
    pub fn metrics_text(&self) -> String {
        let mut out = crate::report::execution_metrics_text(&self.metrics);
        let mut seen: std::collections::BTreeSet<String> = out
            .lines()
            .filter(|line| !line.starts_with('#'))
            .filter_map(|line| line.split_whitespace().next().map(str::to_string))
            .collect();
        let profile = self.profile();
        for (kind, map) in [("counter", profile.counters()), ("gauge", profile.gauges())] {
            for (name, value) in map {
                let metric = rdo_trace::profile::prometheus_name(name);
                if !seen.insert(metric.clone()) {
                    continue;
                }
                out.push_str(&format!("# TYPE {metric} {kind}\n{metric} {value}\n"));
            }
        }
        out.push_str(&profile.histograms_text());
        out
    }
}

/// Runs queries under the different strategies with a shared configuration.
#[derive(Debug, Clone)]
pub struct QueryRunner {
    /// Cost model of the simulated cluster.
    pub cost_model: CostModel,
    /// Join-algorithm rule shared by all strategies.
    pub rule: JoinAlgorithmRule,
    /// Sample limit for the pilot-run baseline.
    pub pilot_sample_limit: usize,
    /// Partition-parallel execution knobs shared by every strategy — static
    /// baselines execute their plan through the worker pool too, so all six
    /// Figure 7 strategies benefit equally from parallel hardware.
    pub parallel: ParallelConfig,
    /// Tracing template: when enabled, every run records into a *fresh*
    /// handle of its own (so a comparison's six runs don't mix profiles) and
    /// the handle lands in [`RunReport::trace`]. The default follows
    /// `RDO_TRACE` / `RDO_TRACE_SPANS`.
    pub trace: rdo_trace::TraceHandle,
}

impl Default for QueryRunner {
    fn default() -> Self {
        Self {
            cost_model: CostModel::default(),
            rule: JoinAlgorithmRule::default(),
            pilot_sample_limit: 2_000,
            // RDO_TRANSPORT applies to every strategy the runner executes;
            // worker counts stay explicit or machine-default.
            parallel: ParallelConfig::default()
                .with_transport(rdo_parallel::TransportKind::from_env()),
            trace: rdo_trace::TraceHandle::from_env(),
        }
    }
}

impl QueryRunner {
    /// Creates a runner with the given cost model and algorithm rule.
    pub fn new(cost_model: CostModel, rule: JoinAlgorithmRule) -> Self {
        Self {
            cost_model,
            rule,
            ..Default::default()
        }
    }

    /// Enables or disables indexed nested-loop joins for every strategy
    /// (Figure 7 vs Figure 8).
    pub fn with_indexed_nested_loop(mut self, enabled: bool) -> Self {
        self.rule = self.rule.with_indexed_nested_loop(enabled);
        self
    }

    /// Sets the partition-parallel execution knobs (builder style).
    pub fn with_parallel(mut self, parallel: ParallelConfig) -> Self {
        self.parallel = parallel;
        self
    }

    /// Enables or disables tracing for every run (builder style). Each run
    /// still records into its own fresh handle; read it from
    /// [`RunReport::trace`] / [`RunReport::profile`].
    pub fn with_tracing(mut self, enabled: bool) -> Self {
        self.trace = if enabled {
            rdo_trace::TraceHandle::enabled()
        } else {
            rdo_trace::TraceHandle::disabled()
        };
        self
    }

    /// A fresh per-run handle following the runner's tracing template.
    fn run_trace(&self) -> rdo_trace::TraceHandle {
        if self.trace.is_enabled() {
            rdo_trace::TraceHandle::enabled()
        } else {
            rdo_trace::TraceHandle::disabled()
        }
    }

    /// Runs `spec` under `strategy`.
    pub fn run(
        &self,
        strategy: Strategy,
        spec: &QuerySpec,
        catalog: &mut Catalog,
    ) -> Result<RunReport> {
        match strategy {
            Strategy::Dynamic => {
                self.run_dynamic(strategy, spec, catalog, DynamicConfig::dynamic(self.rule))
            }
            Strategy::IngresLike => self.run_dynamic(
                strategy,
                spec,
                catalog,
                DynamicConfig::ingres_like(self.rule),
            ),
            Strategy::ReoptWithoutOnlineStats => self.run_dynamic(
                strategy,
                spec,
                catalog,
                DynamicConfig::without_online_stats(self.rule),
            ),
            Strategy::DynamicWithoutPushdown => self.run_dynamic(
                strategy,
                spec,
                catalog,
                DynamicConfig {
                    push_down_predicates: false,
                    ..DynamicConfig::dynamic(self.rule)
                },
            ),
            Strategy::CostBased => {
                self.run_static(strategy, spec, catalog, &CostBasedOptimizer::new(self.rule))
            }
            Strategy::BestOrder => {
                self.run_static(strategy, spec, catalog, &BestOrderOptimizer::new(self.rule))
            }
            Strategy::WorstOrder => self.run_static(strategy, spec, catalog, &WorstOrderOptimizer),
            Strategy::PilotRun => {
                // The pilot optimizer takes the run's executor pool so its
                // sample probes execute partition-parallel too.
                let pool = WorkerPool::new(self.parallel.workers);
                let optimizer = PilotRunOptimizer::new(self.rule, self.pilot_sample_limit)
                    .with_pool(pool.clone());
                self.run_static_on_pool(strategy, spec, catalog, &optimizer, pool)
            }
        }
    }

    /// Runs every Figure 7 strategy and returns the reports in the same order.
    pub fn run_comparison(
        &self,
        spec: &QuerySpec,
        catalog: &mut Catalog,
    ) -> Result<Vec<RunReport>> {
        Strategy::COMPARISON
            .iter()
            .map(|s| self.run(*s, spec, catalog))
            .collect()
    }

    fn run_dynamic(
        &self,
        strategy: Strategy,
        spec: &QuerySpec,
        catalog: &mut Catalog,
        config: DynamicConfig,
    ) -> Result<RunReport> {
        let trace = self.run_trace();
        let config = DynamicConfig {
            parallel: self.parallel,
            trace: trace.clone(),
            ..config
        };
        let start = Instant::now();
        let outcome = DynamicDriver::new(config).execute(spec, catalog)?;
        let wall_seconds = start.elapsed().as_secs_f64();
        let breakdown = CostBreakdown::of(&outcome, &self.cost_model);
        Ok(RunReport {
            strategy,
            query: spec.name.clone(),
            result: outcome.result,
            wall_seconds,
            simulated_cost: breakdown.total,
            metrics: outcome.total,
            plan: outcome.stage_plans.join(" ; "),
            breakdown: Some(breakdown),
            audit_log: outcome.audit,
            trace,
        })
    }

    fn run_static(
        &self,
        strategy: Strategy,
        spec: &QuerySpec,
        catalog: &mut Catalog,
        optimizer: &dyn Optimizer,
    ) -> Result<RunReport> {
        let pool = WorkerPool::new(self.parallel.workers);
        self.run_static_on_pool(strategy, spec, catalog, optimizer, pool)
    }

    fn run_static_on_pool(
        &self,
        strategy: Strategy,
        spec: &QuerySpec,
        catalog: &mut Catalog,
        optimizer: &dyn Optimizer,
        pool: WorkerPool,
    ) -> Result<RunReport> {
        // Static strategies route their exchanges through the configured
        // transport too, so RDO_TRANSPORT=tcp distributes all six Figure 7
        // strategies, not just the dynamic ones.
        let transport = rdo_net::transport_from_config(&self.parallel)?;
        let trace = self.run_trace();
        let start = Instant::now();
        let (result, plan, metrics) = {
            let _trace_guard = trace.install();
            let mut root = rdo_trace::span("driver.execute");
            root.attr_str("query", &spec.name);
            let (plan, mut metrics) = {
                let _planning = rdo_trace::span("planner.plan");
                optimizer.plan_with_overhead(spec, catalog, catalog.stats())?
            };
            let relation = {
                let mut stage_span = rdo_trace::span("stage.final");
                stage_span.attr_str("plan", &plan.signature());
                let executor = ParallelExecutor::with_pool(catalog, self.parallel, pool)
                    .with_transport(transport);
                executor.execute_to_relation(&plan, &mut metrics)?
            };
            (project_result(relation, &spec.projection)?, plan, metrics)
        };
        let wall_seconds = start.elapsed().as_secs_f64();
        Ok(RunReport {
            strategy,
            query: spec.name.clone(),
            result,
            wall_seconds,
            simulated_cost: metrics.simulated_cost(&self.cost_model),
            metrics,
            plan: plan.signature(),
            breakdown: None,
            audit_log: Default::default(),
            trace,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdo_common::{DataType, FieldRef, Schema, Tuple, Value};
    use rdo_exec::{CmpOp, Predicate};
    use rdo_planner::DatasetRef;
    use rdo_storage::IngestOptions;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new(4);
        let fact_schema = Schema::for_dataset(
            "fact",
            &[
                ("f_id", DataType::Int64),
                ("f_a", DataType::Int64),
                ("f_b", DataType::Int64),
                ("f_c", DataType::Int64),
            ],
        );
        let fact_rows = (0..8_000)
            .map(|i| {
                Tuple::new(vec![
                    Value::Int64(i),
                    Value::Int64(i % 80),
                    Value::Int64(i % 400),
                    Value::Int64(i % 40),
                ])
            })
            .collect();
        cat.ingest(
            "fact",
            Relation::new(fact_schema, fact_rows).unwrap(),
            IngestOptions::partitioned_on("f_id").with_index("f_a"),
        )
        .unwrap();
        for (name, rows) in [("da", 80i64), ("db", 400), ("dc", 40)] {
            let schema =
                Schema::for_dataset(name, &[("id", DataType::Int64), ("attr", DataType::Int64)]);
            let data = (0..rows)
                .map(|i| Tuple::new(vec![Value::Int64(i), Value::Int64(i % 6)]))
                .collect();
            cat.ingest(
                name,
                Relation::new(schema, data).unwrap(),
                IngestOptions::partitioned_on("id"),
            )
            .unwrap();
        }
        cat
    }

    fn spec() -> QuerySpec {
        QuerySpec::new("runner-q")
            .with_dataset(DatasetRef::named("fact"))
            .with_dataset(DatasetRef::named("da"))
            .with_dataset(DatasetRef::named("db"))
            .with_dataset(DatasetRef::named("dc"))
            .with_join(FieldRef::new("fact", "f_a"), FieldRef::new("da", "id"))
            .with_join(FieldRef::new("fact", "f_b"), FieldRef::new("db", "id"))
            .with_join(FieldRef::new("fact", "f_c"), FieldRef::new("dc", "id"))
            .with_predicate(Predicate::udf(
                "da_pick",
                FieldRef::new("da", "attr"),
                |v| v.as_i64() == Some(2),
            ))
            .with_predicate(Predicate::compare(
                FieldRef::new("da", "id"),
                CmpOp::Lt,
                1_000i64,
            ))
            .with_projection(vec![FieldRef::new("fact", "f_id")])
    }

    #[test]
    fn all_strategies_return_identical_results() {
        let mut cat = catalog();
        let runner = QueryRunner::default();
        let q = spec();
        let reports = runner.run_comparison(&q, &mut cat).unwrap();
        assert_eq!(reports.len(), 6);
        let reference = reports[0].result.clone().sorted();
        for report in &reports {
            assert_eq!(
                report.result.clone().sorted(),
                reference,
                "{} returned a different result",
                report.strategy
            );
            assert!(report.simulated_cost > 0.0);
            assert!(report.wall_seconds >= 0.0);
            assert!(!report.plan.is_empty());
        }
    }

    #[test]
    fn dynamic_report_has_breakdown_and_static_does_not() {
        let mut cat = catalog();
        let runner = QueryRunner::default();
        let q = spec();
        let dynamic = runner.run(Strategy::Dynamic, &q, &mut cat).unwrap();
        assert!(dynamic.breakdown.is_some());
        assert!(dynamic.result_rows() > 0);
        let cost_based = runner.run(Strategy::CostBased, &q, &mut cat).unwrap();
        assert!(cost_based.breakdown.is_none());
    }

    #[test]
    fn worst_order_costs_more_than_dynamic() {
        let mut cat = catalog();
        let runner = QueryRunner::default();
        let q = spec();
        let dynamic = runner.run(Strategy::Dynamic, &q, &mut cat).unwrap();
        let worst = runner.run(Strategy::WorstOrder, &q, &mut cat).unwrap();
        assert!(
            worst.simulated_cost > dynamic.simulated_cost,
            "worst {} vs dynamic {}",
            worst.simulated_cost,
            dynamic.simulated_cost
        );
    }

    #[test]
    fn ablation_strategies_run() {
        let mut cat = catalog();
        let runner = QueryRunner::default();
        let q = spec();
        let no_stats = runner
            .run(Strategy::ReoptWithoutOnlineStats, &q, &mut cat)
            .unwrap();
        assert_eq!(no_stats.metrics.stats_values_observed, 0);
        let no_pushdown = runner
            .run(Strategy::DynamicWithoutPushdown, &q, &mut cat)
            .unwrap();
        assert_eq!(
            no_pushdown.result.clone().sorted(),
            no_stats.result.clone().sorted()
        );
    }

    #[test]
    fn dynamic_report_carries_an_audit_and_static_does_not() {
        let mut cat = catalog();
        let runner = QueryRunner::default();
        let q = spec();
        let dynamic = runner.run(Strategy::Dynamic, &q, &mut cat).unwrap();
        assert!(!dynamic.audit_log.is_empty());
        assert!(dynamic.audit().contains("estimate audit (per stage):"));
        assert!(dynamic.audit_log.max_q_error() >= 1.0);
        let cost_based = runner.run(Strategy::CostBased, &q, &mut cat).unwrap();
        assert!(cost_based.audit_log.is_empty());
        assert_eq!(cost_based.audit(), "no audit records\n");
    }

    #[test]
    fn metrics_exposition_has_no_duplicate_series() {
        let mut cat = catalog();
        let runner = QueryRunner::default().with_tracing(true);
        let report = runner.run(Strategy::Dynamic, &spec(), &mut cat).unwrap();
        let text = report.metrics_text();
        assert!(text.contains("rdo_rows_scanned"), "{text}");
        assert!(
            text.contains("_duration_ns_bucket{le="),
            "histogram buckets present: {text}"
        );
        // No metric/label pair may appear twice, and no family may be typed
        // twice (promtool rejects both).
        let mut series = std::collections::BTreeSet::new();
        let mut families = std::collections::BTreeSet::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let family = rest.split_whitespace().next().unwrap();
                assert!(
                    families.insert(family.to_string()),
                    "family {family} typed twice"
                );
            } else if !line.is_empty() {
                let key = line.rsplit_once(' ').map(|(k, _)| k).unwrap_or(line);
                assert!(series.insert(key.to_string()), "series {key} emitted twice");
            }
        }
    }

    #[test]
    fn inl_toggle_changes_rule() {
        let runner = QueryRunner::default().with_indexed_nested_loop(true);
        assert!(runner.rule.enable_indexed_nested_loop);
        let labels: Vec<&str> = Strategy::COMPARISON.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), 6);
        assert_eq!(Strategy::Dynamic.to_string(), "dynamic");
    }
}
