//! Checkpoint-based fault tolerance on top of runtime dynamic optimization.
//!
//! The paper's conclusion points out that the materialized intermediate results
//! the dynamic approach produces anyway can double as *checkpoints*: "runtime
//! dynamic optimization can also be used as a way to achieve fault-tolerance by
//! integrating checkpoints. That would help the system to recover from a
//! failure by not having to start over from the beginning of a long-running
//! query." This module implements that extension.
//!
//! [`CheckpointedDriver`] runs the same stages as [`crate::DynamicDriver`]
//! (predicate push-down, one materialized join per re-optimization point, final
//! job) but records every completed stage in a [`CheckpointLog`] and leaves the
//! materialized intermediates in the catalog when a failure interrupts the run.
//! A subsequent execution with the same log *replays* the completed stages —
//! reusing their intermediates and statistics — and only executes the remaining
//! ones. [`FailureInjector`] provides deterministic failure injection for tests
//! and experiments.

use crate::driver::{project_result, sanitize, DynamicConfig, DynamicDriver};
use rdo_common::{RdoError, Relation, Result};
use rdo_exec::ExecutionMetrics;
use rdo_parallel::{materialize, ParallelExecutor, WorkerPool};
use rdo_planner::greedy::join_edges;
use rdo_planner::{
    reconstruct_after_join, reconstruct_after_pushdown, CostBasedOptimizer, GreedyPlanner,
    Optimizer, QuerySpec,
};
use rdo_storage::Catalog;

/// Deterministic failure injection: the run fails after a given number of
/// newly executed (and checkpointed) stages.
#[derive(Debug, Clone, Copy, Default)]
pub struct FailureInjector {
    fail_after: Option<u32>,
}

impl FailureInjector {
    /// Never fails.
    pub fn none() -> Self {
        Self { fail_after: None }
    }

    /// Fails once `stages` newly executed stages have been checkpointed.
    pub fn after_stages(stages: u32) -> Self {
        Self {
            fail_after: Some(stages),
        }
    }

    fn should_fail(&self, executed_stages: u32) -> bool {
        matches!(self.fail_after, Some(limit) if executed_stages >= limit)
    }
}

/// The kind of checkpointed stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageKind {
    /// A pushed-down single-variable query (Algorithm 1 lines 6–9).
    Pushdown,
    /// A materialized join from the re-optimization loop.
    Join,
}

/// One completed (and materialized) stage.
#[derive(Debug, Clone)]
pub struct CheckpointEntry {
    /// What the stage was.
    pub kind: StageKind,
    /// Human-readable description (plan signature).
    pub description: String,
    /// Name of the materialized temporary table holding the stage's output.
    pub table: String,
    /// The remaining query after the stage's reconstruction.
    pub spec_after: QuerySpec,
}

/// The durable record of completed stages. In AsterixDB this would live next to
/// the temporary files of the Sink operator; here it is an in-memory value the
/// caller keeps across the failed and the recovering execution.
#[derive(Debug, Clone, Default)]
pub struct CheckpointLog {
    /// Completed stages in execution order.
    pub entries: Vec<CheckpointEntry>,
}

impl CheckpointLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of checkpointed stages.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing has been checkpointed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Names of the materialized intermediates the log references.
    pub fn tables(&self) -> Vec<String> {
        self.entries.iter().map(|e| e.table.clone()).collect()
    }
}

/// The outcome of a checkpointed (possibly recovering) execution.
#[derive(Debug, Clone)]
pub struct RecoveredOutcome {
    /// The final query result, projected onto the SELECT list.
    pub result: Relation,
    /// Metrics of the work done *by this execution* (recovered stages cost
    /// nothing — that is the point of the checkpoint).
    pub metrics: ExecutionMetrics,
    /// Stages replayed from the checkpoint log.
    pub stages_recovered: u32,
    /// Stages newly executed by this run.
    pub stages_executed: u32,
    /// Plan signature of every stage this run executed (recovered stages are
    /// annotated).
    pub stage_plans: Vec<String>,
}

/// A dynamic-optimization driver whose stages double as recovery checkpoints.
#[derive(Debug, Clone)]
pub struct CheckpointedDriver {
    /// Dynamic-optimization configuration (shared with [`DynamicDriver`]).
    pub config: DynamicConfig,
}

impl CheckpointedDriver {
    /// Creates a checkpointed driver.
    pub fn new(config: DynamicConfig) -> Self {
        Self { config }
    }

    /// Executes (or resumes) the query. Completed stages found in `log` are
    /// replayed from their materialized intermediates; newly completed stages
    /// are appended to `log`. When `injector` triggers, the run returns an
    /// execution error and leaves both the log and the intermediates in place
    /// so a later call can resume. On success every temporary table is dropped
    /// and the log is cleared.
    pub fn execute(
        &self,
        spec: &QuerySpec,
        catalog: &mut Catalog,
        injector: FailureInjector,
        log: &mut CheckpointLog,
    ) -> Result<RecoveredOutcome> {
        spec.validate()?;
        // Shared persistent pool + spill policy, exactly as in DynamicDriver:
        // spilled checkpoints survive between the failed and the recovering
        // execution because the catalog keeps the same spill manager for an
        // unchanged configuration.
        catalog.configure_spill(self.config.spill)?;
        let pool = WorkerPool::new(self.config.parallel.workers);
        let transport = rdo_net::transport_from_config(&self.config.parallel)?;
        let planner = GreedyPlanner::new(self.config.policy, self.config.rule);
        let mut metrics = ExecutionMetrics::new();
        let mut stage_plans = Vec::new();
        let mut executed = 0u32;
        let mut reoptimization_points = 0u32;
        let mut intermediate_counter = 0usize;

        // ---- Replay the checkpointed stages. ----
        let mut spec = spec.clone();
        for entry in &log.entries {
            if !catalog.has_table(&entry.table) {
                return Err(RdoError::Execution(format!(
                    "checkpointed intermediate `{}` is missing from the catalog; cannot recover",
                    entry.table
                )));
            }
            if entry.kind == StageKind::Join {
                reoptimization_points += 1;
                intermediate_counter += 1;
            }
            stage_plans.push(format!("recovered {}", entry.description));
            spec = entry.spec_after.clone();
        }
        let stages_recovered = log.len() as u32;

        // ---- Predicate push-down stage (skipping already-recovered aliases). ----
        if self.config.push_down_predicates {
            loop {
                let candidates = spec.pushdown_candidates();
                let Some(alias) = candidates.first().cloned() else {
                    break;
                };
                let mut stage_metrics = ExecutionMetrics::new();
                let plan = DynamicDriver::pushdown_plan(&spec, &alias)?;
                let description = format!("pushdown {}", plan.signature());
                let data = {
                    let executor =
                        ParallelExecutor::with_pool(catalog, self.config.parallel, pool.clone())
                            .with_transport(std::sync::Arc::clone(&transport));
                    executor.execute(&plan, &mut stage_metrics)?
                };
                let table = format!("{}__ckpt_{}_filtered", sanitize(&spec.name), alias);
                let partition_key = spec
                    .joins_involving(&alias)
                    .first()
                    .and_then(|j| j.key_of(&alias))
                    .map(|k| k.field.clone());
                let tracked = DynamicDriver::tracked_columns(&spec, &alias);
                materialize(
                    &pool,
                    catalog,
                    &table,
                    &data,
                    partition_key.as_deref(),
                    &tracked,
                    self.config.collect_online_stats,
                    &mut stage_metrics,
                )?;
                spec = reconstruct_after_pushdown(&spec, &alias, &table);
                metrics.add(&stage_metrics);
                stage_plans.push(description.clone());
                log.entries.push(CheckpointEntry {
                    kind: StageKind::Pushdown,
                    description,
                    table,
                    spec_after: spec.clone(),
                });
                executed += 1;
                if injector.should_fail(executed) {
                    return Err(injected_failure(executed));
                }
            }
        }

        // ---- Re-optimization loop, one checkpoint per materialized join. ----
        while join_edges(&spec).len() > 2
            && self
                .config
                .reopt_budget
                .is_none_or(|budget| reoptimization_points < budget)
        {
            reoptimization_points += 1;
            let planned = planner.next_join(&spec, catalog, catalog.stats())?;
            let plan = planner.join_plan(&spec, &planned)?;
            let description = plan.signature();

            let mut stage_metrics = ExecutionMetrics::new();
            let data = {
                let executor =
                    ParallelExecutor::with_pool(catalog, self.config.parallel, pool.clone())
                        .with_transport(std::sync::Arc::clone(&transport));
                executor.execute(&plan, &mut stage_metrics)?
            };
            intermediate_counter += 1;
            let table = format!("{}__ckptI{}", sanitize(&spec.name), intermediate_counter);
            let new_spec =
                reconstruct_after_join(&spec, &planned.probe_alias, &planned.build_alias, &table);
            let remaining_edges = join_edges(&new_spec).len();
            let collect = self.config.collect_online_stats && remaining_edges > 2;
            let tracked = DynamicDriver::tracked_columns(&new_spec, &table);
            let partition_key = planned.keys.first().map(|(probe, _)| probe.field.clone());
            materialize(
                &pool,
                catalog,
                &table,
                &data,
                partition_key.as_deref(),
                &tracked,
                collect,
                &mut stage_metrics,
            )?;
            spec = new_spec;
            metrics.add(&stage_metrics);
            stage_plans.push(description.clone());
            log.entries.push(CheckpointEntry {
                kind: StageKind::Join,
                description,
                table,
                spec_after: spec.clone(),
            });
            executed += 1;
            if injector.should_fail(executed) {
                return Err(injected_failure(executed));
            }
        }

        // ---- Final job (never checkpointed: its output is the result). ----
        let final_plan = if join_edges(&spec).len() > 2 {
            CostBasedOptimizer::new(self.config.rule).plan(&spec, catalog, catalog.stats())?
        } else {
            planner.plan_remaining(&spec, catalog, catalog.stats())?
        };
        stage_plans.push(final_plan.signature());
        let mut stage_metrics = ExecutionMetrics::new();
        let relation = {
            let executor = ParallelExecutor::with_pool(catalog, self.config.parallel, pool.clone())
                .with_transport(std::sync::Arc::clone(&transport));
            executor.execute_to_relation(&final_plan, &mut stage_metrics)?
        };
        metrics.add(&stage_metrics);
        let result = project_result(relation, &spec.projection)?;

        // Success: the checkpoints are no longer needed.
        for table in log.tables() {
            catalog.drop_table(&table);
        }
        log.entries.clear();

        Ok(RecoveredOutcome {
            result,
            metrics,
            stages_recovered,
            stages_executed: executed,
            stage_plans,
        })
    }
}

fn injected_failure(executed: u32) -> RdoError {
    RdoError::Execution(format!(
        "injected failure after {executed} newly executed stage(s); checkpoints retained"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::DynamicDriver;
    use rdo_common::{DataType, FieldRef, Schema, Tuple, Value};
    use rdo_exec::{CmpOp, Predicate};
    use rdo_planner::DatasetRef;
    use rdo_storage::IngestOptions;

    /// fact(20_000) joined with four dimensions, two of which carry complex
    /// predicates so the checkpointed run has several stages: two push-downs,
    /// two materialized joins, one final job.
    fn catalog() -> Catalog {
        let mut cat = Catalog::new(4);
        let fact_schema = Schema::for_dataset(
            "fact",
            &[
                ("f_id", DataType::Int64),
                ("f_d1", DataType::Int64),
                ("f_d2", DataType::Int64),
                ("f_d3", DataType::Int64),
                ("f_d4", DataType::Int64),
            ],
        );
        let fact_rows = (0..20_000)
            .map(|i| {
                Tuple::new(vec![
                    Value::Int64(i),
                    Value::Int64(i % 100),
                    Value::Int64(i % 200),
                    Value::Int64(i % 50),
                    Value::Int64(i % 25),
                ])
            })
            .collect();
        cat.ingest(
            "fact",
            Relation::new(fact_schema, fact_rows).unwrap(),
            IngestOptions::partitioned_on("f_id"),
        )
        .unwrap();
        for (name, rows) in [("d1", 100i64), ("d2", 200), ("d3", 50), ("d4", 25)] {
            let schema =
                Schema::for_dataset(name, &[("id", DataType::Int64), ("attr", DataType::Int64)]);
            let data = (0..rows)
                .map(|i| Tuple::new(vec![Value::Int64(i), Value::Int64(i % 10)]))
                .collect();
            cat.ingest(
                name,
                Relation::new(schema, data).unwrap(),
                IngestOptions::partitioned_on("id"),
            )
            .unwrap();
        }
        cat
    }

    fn spec() -> QuerySpec {
        QuerySpec::new("ckpt-query")
            .with_dataset(DatasetRef::named("fact"))
            .with_dataset(DatasetRef::named("d1"))
            .with_dataset(DatasetRef::named("d2"))
            .with_dataset(DatasetRef::named("d3"))
            .with_dataset(DatasetRef::named("d4"))
            .with_join(FieldRef::new("fact", "f_d1"), FieldRef::new("d1", "id"))
            .with_join(FieldRef::new("fact", "f_d2"), FieldRef::new("d2", "id"))
            .with_join(FieldRef::new("fact", "f_d3"), FieldRef::new("d3", "id"))
            .with_join(FieldRef::new("fact", "f_d4"), FieldRef::new("d4", "id"))
            .with_predicate(Predicate::udf("pick1", FieldRef::new("d1", "attr"), |v| {
                v.as_i64() == Some(3)
            }))
            .with_predicate(Predicate::compare(
                FieldRef::new("d1", "id"),
                CmpOp::Lt,
                1_000i64,
            ))
            .with_predicate(Predicate::udf("pick2", FieldRef::new("d2", "attr"), |v| {
                v.as_i64().map(|x| x < 5).unwrap_or(false)
            }))
            .with_predicate(Predicate::compare(
                FieldRef::new("d2", "id"),
                CmpOp::Ge,
                0i64,
            ))
            .with_projection(vec![FieldRef::new("fact", "f_id")])
    }

    fn reference_result(cat: &mut Catalog) -> Relation {
        DynamicDriver::new(DynamicConfig::default())
            .execute(&spec(), cat)
            .unwrap()
            .result
            .sorted()
    }

    #[test]
    fn no_failure_matches_the_plain_dynamic_driver() {
        let mut cat = catalog();
        let expected = reference_result(&mut cat);
        let tables_before = cat.table_names();
        let mut log = CheckpointLog::new();
        let outcome = CheckpointedDriver::new(DynamicConfig::default())
            .execute(&spec(), &mut cat, FailureInjector::none(), &mut log)
            .unwrap();
        assert_eq!(outcome.result.sorted(), expected);
        assert_eq!(outcome.stages_recovered, 0);
        assert!(
            outcome.stages_executed >= 3,
            "pushdowns + at least one join"
        );
        assert!(log.is_empty(), "log cleared after success");
        assert_eq!(cat.table_names(), tables_before, "temporaries cleaned up");
    }

    #[test]
    fn failure_then_recovery_reuses_checkpointed_stages() {
        let mut cat = catalog();
        let expected = reference_result(&mut cat);
        let driver = CheckpointedDriver::new(DynamicConfig::default());
        let mut log = CheckpointLog::new();

        // First run: crash after two completed stages.
        let error = driver
            .execute(
                &spec(),
                &mut cat,
                FailureInjector::after_stages(2),
                &mut log,
            )
            .unwrap_err();
        assert!(error.to_string().contains("injected failure"));
        assert_eq!(
            log.len(),
            2,
            "two stages were checkpointed before the crash"
        );
        for table in log.tables() {
            assert!(
                cat.has_table(&table),
                "checkpoint `{table}` must survive the failure"
            );
        }

        // Second run: resumes from the log and finishes.
        let outcome = driver
            .execute(&spec(), &mut cat, FailureInjector::none(), &mut log)
            .unwrap();
        assert_eq!(outcome.stages_recovered, 2);
        assert!(outcome.stages_executed >= 1);
        assert_eq!(
            outcome.result.sorted(),
            expected,
            "recovered run must agree"
        );
        assert!(log.is_empty());
        assert!(
            cat.table_names().iter().all(|t| !t.contains("__ckpt")),
            "all checkpoints dropped after success"
        );
    }

    #[test]
    fn repeated_failures_make_progress_and_eventually_finish() {
        let mut cat = catalog();
        let expected = reference_result(&mut cat);
        let driver = CheckpointedDriver::new(DynamicConfig::default());
        let mut log = CheckpointLog::new();
        let mut attempts = 0;
        let outcome = loop {
            attempts += 1;
            match driver.execute(
                &spec(),
                &mut cat,
                FailureInjector::after_stages(1),
                &mut log,
            ) {
                Ok(outcome) => break outcome,
                Err(_) => {
                    assert!(attempts < 20, "must converge");
                    continue;
                }
            }
        };
        assert!(attempts > 1, "at least one failure was injected");
        assert_eq!(outcome.result.sorted(), expected);
    }

    #[test]
    fn missing_checkpoint_table_is_detected() {
        let mut cat = catalog();
        let driver = CheckpointedDriver::new(DynamicConfig::default());
        let mut log = CheckpointLog::new();
        driver
            .execute(
                &spec(),
                &mut cat,
                FailureInjector::after_stages(1),
                &mut log,
            )
            .unwrap_err();
        // Simulate losing the materialized intermediate (e.g. local disk wiped).
        let table = log.tables()[0].clone();
        cat.drop_table(&table);
        let error = driver
            .execute(&spec(), &mut cat, FailureInjector::none(), &mut log)
            .unwrap_err();
        assert!(error.to_string().contains("missing from the catalog"));
    }

    #[test]
    fn injector_that_never_triggers_lets_the_run_finish() {
        let mut cat = catalog();
        let mut log = CheckpointLog::new();
        let outcome = CheckpointedDriver::new(DynamicConfig::default())
            .execute(
                &spec(),
                &mut cat,
                FailureInjector::after_stages(100),
                &mut log,
            )
            .unwrap();
        assert!(outcome.stages_executed < 100);
        assert!(log.is_empty());
    }

    #[test]
    fn checkpoint_log_helpers() {
        let mut log = CheckpointLog::new();
        assert!(log.is_empty());
        log.entries.push(CheckpointEntry {
            kind: StageKind::Pushdown,
            description: "x".into(),
            table: "t".into(),
            spec_after: QuerySpec::new("q"),
        });
        assert_eq!(log.len(), 1);
        assert_eq!(log.tables(), vec!["t".to_string()]);
        assert!(!FailureInjector::none().should_fail(10));
        assert!(FailureInjector::after_stages(2).should_fail(2));
        assert!(!FailureInjector::after_stages(2).should_fail(1));
    }
}
