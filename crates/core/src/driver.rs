//! The runtime dynamic optimization driver (Algorithm 1 of the paper).

use rdo_common::{FieldRef, RdoError, Relation, Result, Tuple};
use rdo_exec::{ExecutionMetrics, PhysicalPlan};
use rdo_parallel::{
    materialize, ParallelConfig, ParallelExecutor, Transport, TransportKind, WorkerPool,
};
use rdo_planner::greedy::join_edges;
use rdo_planner::{
    reconstruct_after_join, reconstruct_after_pushdown, CostBasedOptimizer, EstimationMode,
    GreedyPlanner, JoinAlgorithmRule, LearnedStatsCatalog, NextJoinPolicy, Optimizer, QuerySpec,
    SizeEstimator,
};
use rdo_storage::Catalog;
use rdo_storage::SpillConfig;
use rdo_trace::audit::{AuditLog, EstimateRecord, ReoptDecision};
use std::sync::Arc;

/// Configuration of the dynamic driver. The paper's approach and the
/// INGRES-like baseline share the same driver and differ only in these knobs.
#[derive(Debug, Clone)]
pub struct DynamicConfig {
    /// How the next join is scored ([`NextJoinPolicy::Statistics`] for the
    /// paper's approach, [`NextJoinPolicy::CardinalityOnly`] for INGRES-like).
    pub policy: NextJoinPolicy,
    /// Physical join-algorithm rule.
    pub rule: JoinAlgorithmRule,
    /// Whether sketches (GK + HLL) are collected on materialized intermediate
    /// results. Disabled for the INGRES-like baseline (cardinalities only) and
    /// for the Figure 6 ablation that isolates the online-statistics cost.
    pub collect_online_stats: bool,
    /// Whether datasets with multiple or complex local predicates are executed
    /// first as single-variable queries (Algorithm 1 lines 6–9).
    pub push_down_predicates: bool,
    /// Maximum number of re-optimization points to spend. `None` (the paper's
    /// configuration) re-optimizes until only two joins remain; `Some(k)` stops
    /// after `k` materialized joins and plans the remaining query statically
    /// over whatever statistics have been gathered so far — the overhead/
    /// accuracy trade-off the paper's future-work section raises.
    pub reopt_budget: Option<u32>,
    /// Partition-parallel execution knobs: every stage (push-down, materialized
    /// join, final job) runs through the worker pool, and the Sink at each
    /// re-optimization barrier merges per-partition sketch partials. Results
    /// and metrics are identical for every worker count.
    pub parallel: ParallelConfig,
    /// Disk-backed materialization knobs: when a budget is set, intermediates
    /// that would push the resident working set past it are spilled to the
    /// paged disk store and read back page by page, with real spilled-bytes /
    /// page-I/O counters in the metrics. A join budget additionally runs
    /// over-budget build sides as grace/hybrid hash joins through the same
    /// store. Results and (non-spill) metrics are bit-identical to the
    /// in-memory paths.
    pub spill: SpillConfig,
    /// Structured tracing: when the handle is enabled, the driver installs it
    /// for the whole execution and records a span tree (stages,
    /// re-optimization points, planner invocations, operators, exchanges)
    /// plus counters into it — call [`rdo_trace::TraceHandle::profile`] on
    /// your clone of the handle afterwards. The default follows the
    /// `RDO_TRACE` / `RDO_TRACE_SPANS` knobs; disabled tracing leaves the
    /// execution on the exact untraced code path.
    pub trace: rdo_trace::TraceHandle,
    /// An externally owned worker pool to execute on. `None` (the default)
    /// spawns a fresh pool per execution; a multi-query server passes its one
    /// shared pool here so concurrent sessions share threads instead of
    /// multiplying them.
    pub pool: Option<WorkerPool>,
    /// A learned-statistics catalog shared across executions. When set, the
    /// driver (a) seeds each push-down stage's plan-time estimate from the
    /// measured cardinality of the same value-qualified filter signature, and
    /// (b) records every materialized stage's actual row count back into the
    /// catalog — so *repeat* queries start from measured statistics instead of
    /// static guesses. `None` keeps the single-query behavior.
    pub learned: Option<Arc<LearnedStatsCatalog>>,
}

impl Default for DynamicConfig {
    fn default() -> Self {
        Self {
            policy: NextJoinPolicy::Statistics,
            rule: JoinAlgorithmRule::default(),
            collect_online_stats: true,
            push_down_predicates: true,
            reopt_budget: None,
            // Reads RDO_TRANSPORT (but not RDO_WORKERS — worker counts stay
            // explicit or machine-default here) so an exported transport
            // selection routes every driver-based code path through the
            // distributed exchanges without code changes.
            parallel: ParallelConfig::default().with_transport(TransportKind::from_env()),
            // Reads RDO_SPILL_BUDGET and RDO_JOIN_BUDGET so an exported
            // budget drives every driver-based code path (including the
            // whole test suite) out-of-core without code changes.
            spill: SpillConfig::from_env(),
            // Reads RDO_TRACE / RDO_TRACE_SPANS, so exported tracing knobs
            // profile every driver-based code path without code changes.
            trace: rdo_trace::TraceHandle::from_env(),
            pool: None,
            learned: None,
        }
    }
}

impl DynamicConfig {
    /// The paper's full dynamic approach.
    pub fn dynamic(rule: JoinAlgorithmRule) -> Self {
        Self {
            rule,
            ..Default::default()
        }
    }

    /// The INGRES-like baseline: same decomposition, but the next join is
    /// chosen by dataset cardinalities only and no sketches are collected.
    pub fn ingres_like(rule: JoinAlgorithmRule) -> Self {
        Self {
            policy: NextJoinPolicy::CardinalityOnly,
            rule,
            collect_online_stats: false,
            push_down_predicates: true,
            ..Default::default()
        }
    }

    /// Ablation used in Figure 6: re-optimization points enabled but online
    /// statistics collection disabled.
    pub fn without_online_stats(rule: JoinAlgorithmRule) -> Self {
        Self {
            rule,
            collect_online_stats: false,
            ..Default::default()
        }
    }

    /// Caps the number of re-optimization points (builder style).
    pub fn with_reopt_budget(mut self, budget: u32) -> Self {
        self.reopt_budget = Some(budget);
        self
    }

    /// Sets the partition-parallel execution knobs (builder style).
    pub fn with_parallel(mut self, parallel: ParallelConfig) -> Self {
        self.parallel = parallel;
        self
    }

    /// Sets the disk-backed materialization knobs (builder style).
    pub fn with_spill(mut self, spill: SpillConfig) -> Self {
        self.spill = spill;
        self
    }

    /// Sets a spill budget in bytes (builder style).
    pub fn with_spill_budget(mut self, bytes: u64) -> Self {
        self.spill = self.spill.with_budget(bytes);
        self
    }

    /// Sets a join build-side budget in bytes (builder style): joins whose
    /// per-partition build side exceeds it run as grace/hybrid hash joins
    /// through the spill store.
    pub fn with_join_budget(mut self, bytes: u64) -> Self {
        self.spill = self.spill.with_join_budget(bytes);
        self
    }

    /// Switches spill-page compression on or off (builder style; on by
    /// default, `RDO_SPILL_COMPRESS` overrides the default). Physical only:
    /// results and all logical metrics are identical either way, the stored
    /// `spill_bytes_*` / `grace_bytes_*` counters shrink.
    pub fn with_spill_compression(mut self, compress: bool) -> Self {
        self.spill = self.spill.with_compression(compress);
        self
    }

    /// Sets the spill-scan read-ahead in pages (builder style; `0` disables
    /// prefetching, `RDO_SPILL_PREFETCH` overrides the default).
    pub fn with_spill_prefetch(mut self, pages: usize) -> Self {
        self.spill = self.spill.with_prefetch_pages(pages);
        self
    }

    /// Sets the trace handle the execution records into (builder style).
    /// Keep a clone of the handle to read the profile after the run.
    pub fn with_trace(mut self, trace: rdo_trace::TraceHandle) -> Self {
        self.trace = trace;
        self
    }

    /// Executes on an externally owned (shared) worker pool instead of
    /// spawning one per execution (builder style).
    pub fn with_pool(mut self, pool: WorkerPool) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Attaches a shared learned-statistics catalog (builder style): push-down
    /// estimates are seeded from it and every materialized stage's actual
    /// cardinality is recorded back into it.
    pub fn with_learned(mut self, learned: Arc<LearnedStatsCatalog>) -> Self {
        self.learned = Some(learned);
        self
    }
}

/// What one dynamic execution did.
#[derive(Debug, Clone)]
pub struct DynamicOutcome {
    /// The final query result (already projected onto the SELECT list).
    pub result: Relation,
    /// Metrics of everything the driver executed (including overheads).
    pub total: ExecutionMetrics,
    /// Subset of `total` incurred by the predicate push-down stage.
    pub pushdown: ExecutionMetrics,
    /// Number of Planner invocations (re-optimization points + final planning).
    pub planner_invocations: u32,
    /// Number of materialized intermediate results (re-optimization points).
    pub reoptimization_points: u32,
    /// Signature of the plan executed at every stage, in order.
    pub stage_plans: Vec<String>,
    /// The optimizer audit trail: per-stage estimate-vs-actual records plus
    /// one decision explanation per re-optimization point. Derived entirely
    /// from deterministic coordinator-side quantities, so it is bit-identical
    /// across worker counts and transports.
    pub audit: AuditLog,
}

impl DynamicOutcome {
    /// The overall plan shape as a single string (for EXPLAIN-style reports).
    pub fn plan_description(&self) -> String {
        self.stage_plans.join(" ; ")
    }
}

/// The runtime dynamic optimization driver.
#[derive(Debug, Clone)]
pub struct DynamicDriver {
    /// Driver configuration.
    pub config: DynamicConfig,
}

impl DynamicDriver {
    /// Creates a driver.
    pub fn new(config: DynamicConfig) -> Self {
        Self { config }
    }

    /// Executes the query with runtime dynamic optimization. The catalog is
    /// mutated while the query runs (temporary tables for intermediate results)
    /// but restored before returning.
    ///
    /// The exchange transport is resolved from
    /// [`ParallelConfig::transport`] (`RDO_TRANSPORT`, plus `RDO_NET_WORKERS`
    /// for the TCP backend); use [`DynamicDriver::execute_with_transport`] to
    /// pass an explicit transport object instead.
    pub fn execute(&self, spec: &QuerySpec, catalog: &mut Catalog) -> Result<DynamicOutcome> {
        let transport = rdo_net::transport_from_config(&self.config.parallel)?;
        self.execute_with_transport(spec, catalog, transport)
    }

    /// [`DynamicDriver::execute`] with an explicit exchange transport —
    /// results, plans and logical metrics are transport-invariant, so the
    /// distributed harnesses run the same query through an in-process and a
    /// TCP transport and compare outcomes bit for bit.
    pub fn execute_with_transport(
        &self,
        spec: &QuerySpec,
        catalog: &mut Catalog,
        transport: Arc<dyn Transport>,
    ) -> Result<DynamicOutcome> {
        spec.validate()?;
        // One persistent worker pool per execution, shared by every stage's
        // executor and Sink barrier (threads spawn once, not per stage), and
        // the spill policy applied to the catalog for the intermediates this
        // run materializes.
        let trace = self.config.trace.clone();
        let _trace_guard = trace.install();
        // Live observability: start the RDO_METRICS_ADDR scrape listener (a
        // no-op without the knob) and expose this query's collector to it.
        rdo_trace::serve::ensure_started_from_env();
        rdo_trace::serve::register_query(&spec.name, &trace);
        catalog.configure_spill(self.config.spill)?;
        let pool = match &self.config.pool {
            Some(shared) => shared.clone(),
            None => WorkerPool::new(self.config.parallel.workers),
        };
        let planner = GreedyPlanner::new(self.config.policy, self.config.rule);
        let mut spec = spec.clone();
        let mut total = ExecutionMetrics::new();
        let mut pushdown = ExecutionMetrics::new();
        let mut planner_invocations = 0u32;
        let mut reoptimization_points = 0u32;
        let mut stage_plans = Vec::new();
        let mut audit = AuditLog::default();
        let mut temp_tables: Vec<String> = Vec::new();
        let mut intermediate_counter = 0usize;

        let outcome = (|| -> Result<DynamicOutcome> {
            let mut root = rdo_trace::span("driver.execute");
            root.attr_str("query", &spec.name);
            // ---- Stage 1: predicate push-down (Algorithm 1, lines 6–9). ----
            if self.config.push_down_predicates {
                for alias in spec.pushdown_candidates() {
                    let mut stage_span = rdo_trace::span("stage.pushdown");
                    stage_span.attr_str("table", &alias);
                    rdo_trace::note("stage", &format!("pushdown:{alias}"));
                    let mut stage_metrics = ExecutionMetrics::new();
                    let plan = Self::pushdown_plan(&spec, &alias)?;
                    stage_plans.push(format!("pushdown {}", plan.signature()));
                    // The value-qualified signature of this filtered scan —
                    // the key repeat queries find the measured cardinality
                    // under (the plan signature alone is predicate-blind).
                    let stage_predicates: Vec<_> =
                        spec.predicates_for(&alias).into_iter().cloned().collect();
                    let learned_key =
                        LearnedStatsCatalog::filter_key(spec.table_of(&alias)?, &stage_predicates);
                    // The planner's estimate for the filtered dataset, recorded
                    // before execution so the audit compares plan-time numbers.
                    // With a learned catalog attached, a repeat query's
                    // estimate is the previously measured row count.
                    let estimator =
                        SizeEstimator::new(catalog, catalog.stats(), EstimationMode::Static);
                    let estimator = match self.config.learned.as_deref() {
                        Some(learned) => estimator.with_learned(learned),
                        None => estimator,
                    };
                    let estimated_rows = estimator.dataset_size(&spec, &alias).ok();
                    let data = {
                        let executor = ParallelExecutor::with_pool(
                            catalog,
                            self.config.parallel,
                            pool.clone(),
                        )
                        .with_transport(Arc::clone(&transport));
                        executor.execute(&plan, &mut stage_metrics)?
                    };
                    let table_name = format!("{}__{}_filtered", sanitize(&spec.name), alias);
                    let partition_key = spec
                        .joins_involving(&alias)
                        .first()
                        .and_then(|j| j.key_of(&alias))
                        .map(|k| k.field.clone());
                    let tracked = Self::tracked_columns(&spec, &alias);
                    let materialized = materialize(
                        &pool,
                        catalog,
                        &table_name,
                        &data,
                        partition_key.as_deref(),
                        &tracked,
                        self.config.collect_online_stats,
                        &mut stage_metrics,
                    )?;
                    audit.estimates.push(EstimateRecord {
                        stage: format!("pushdown:{alias}"),
                        operator: plan.signature(),
                        estimated_rows,
                        actual_rows: materialized.rows,
                    });
                    if let Some(learned) = &self.config.learned {
                        learned.observe(&learned_key, materialized.rows);
                    }
                    temp_tables.push(table_name.clone());
                    spec = reconstruct_after_pushdown(&spec, &alias, &table_name);
                    pushdown.add(&stage_metrics);
                    total.add(&stage_metrics);
                }
            }

            // ---- Stage 2: the re-optimization loop (Algorithm 1, lines 11–15). ----
            while join_edges(&spec).len() > 2
                && self
                    .config
                    .reopt_budget
                    .is_none_or(|budget| reoptimization_points < budget)
            {
                planner_invocations += 1;
                reoptimization_points += 1;
                let mut stage_span = rdo_trace::span("stage.reopt");
                stage_span.attr_u64("point", reoptimization_points as u64);
                rdo_trace::note("stage", &format!("reopt#{reoptimization_points}"));
                let (planned, plan, runner_up) = {
                    let _planning = rdo_trace::span("planner.plan");
                    let ranked = planner.ranked_joins(&spec, catalog, catalog.stats())?;
                    let planned = ranked
                        .first()
                        .cloned()
                        .ok_or_else(|| RdoError::Planning("no plannable join found".into()))?;
                    let plan = planner.join_plan(&spec, &planned)?;
                    let runner_up = match ranked.get(1) {
                        Some(second) => {
                            Some((planner.join_plan(&spec, second)?.signature(), second.score))
                        }
                        None => None,
                    };
                    (planned, plan, runner_up)
                };
                stage_plans.push(plan.signature());
                // Explain the decision: the estimate the last stage corrected,
                // the join the refreshed statistics picked, and the alternative
                // it rejected.
                audit.decisions.push(ReoptDecision {
                    point: reoptimization_points,
                    trigger: audit.estimates.last().cloned(),
                    chosen: plan.signature(),
                    chosen_cardinality: planned.estimated_cardinality,
                    chosen_score: planned.score,
                    runner_up,
                });

                let mut stage_metrics = ExecutionMetrics::new();
                let data = {
                    let executor =
                        ParallelExecutor::with_pool(catalog, self.config.parallel, pool.clone())
                            .with_transport(Arc::clone(&transport));
                    executor.execute(&plan, &mut stage_metrics)?
                };

                intermediate_counter += 1;
                let name = format!("{}__I{}", sanitize(&spec.name), intermediate_counter);
                let new_spec = reconstruct_after_join(
                    &spec,
                    &planned.probe_alias,
                    &planned.build_alias,
                    &name,
                );
                // Online statistics are collected on the attributes that
                // participate in later join stages, and skipped entirely on the
                // last iteration (Section 5.3, "Online Statistics").
                let remaining_edges = join_edges(&new_spec).len();
                let collect = self.config.collect_online_stats && remaining_edges > 2;
                let tracked = Self::tracked_columns(&new_spec, &name);
                let partition_key = planned.keys.first().map(|(probe, _)| probe.field.clone());
                let materialized = materialize(
                    &pool,
                    catalog,
                    &name,
                    &data,
                    partition_key.as_deref(),
                    &tracked,
                    collect,
                    &mut stage_metrics,
                )?;
                audit.estimates.push(EstimateRecord {
                    stage: format!("reopt#{reoptimization_points}"),
                    operator: plan.signature(),
                    estimated_rows: Some(planned.estimated_cardinality),
                    actual_rows: materialized.rows,
                });
                // Join-stage cardinalities are NOT recorded in the learned
                // catalog: `plan.signature()` renders filtered-scan leaves
                // predicate-blind (`σ(table)`), so the key would collide
                // across queries with different constants. Only the
                // value-qualified `filter_key` observations of the push-down
                // stages feed the catalog.
                temp_tables.push(name);
                spec = new_spec;
                total.add(&stage_metrics);
            }

            // ---- Stage 3: final job. With an unlimited budget at most two joins
            // remain and the greedy planner orders them; with an exhausted
            // budget the rest of the query is planned statically (Selinger DP)
            // over whatever statistics the executed stages refreshed. ----
            planner_invocations += 1;
            let mut stage_span = rdo_trace::span("stage.final");
            rdo_trace::note("stage", "final");
            let (final_plan, final_estimate) = {
                let _planning = rdo_trace::span("planner.plan");
                if join_edges(&spec).len() > 2 {
                    // The budget-exhausted cost-based path reports no
                    // single-number cardinality estimate.
                    let plan = CostBasedOptimizer::new(self.config.rule).plan(
                        &spec,
                        catalog,
                        catalog.stats(),
                    )?;
                    (plan, None)
                } else {
                    let estimate = planner
                        .estimate_remaining(&spec, catalog, catalog.stats())
                        .ok()
                        .flatten();
                    (
                        planner.plan_remaining(&spec, catalog, catalog.stats())?,
                        estimate,
                    )
                }
            };
            stage_plans.push(final_plan.signature());
            stage_span.attr_str("plan", &final_plan.signature());
            let mut stage_metrics = ExecutionMetrics::new();
            let relation = {
                let executor =
                    ParallelExecutor::with_pool(catalog, self.config.parallel, pool.clone())
                        .with_transport(Arc::clone(&transport));
                executor.execute_to_relation(&final_plan, &mut stage_metrics)?
            };
            total.add(&stage_metrics);
            audit.estimates.push(EstimateRecord {
                stage: "final".to_string(),
                operator: final_plan.signature(),
                estimated_rows: final_estimate,
                actual_rows: relation.len() as u64,
            });
            // Like the join stages above, the final plan's signature is
            // predicate-blind (any single-table filtered query renders as
            // `σ(table)`), so its cardinality is not observed under it.
            let result = project_result(relation, &spec.projection)?;

            Ok(DynamicOutcome {
                result,
                total,
                pushdown,
                planner_invocations,
                reoptimization_points,
                stage_plans,
                audit,
            })
        })();

        // Always clean up temporary tables, even on error.
        for table in &temp_tables {
            catalog.drop_table(table);
        }
        // RDO_TRACE names a Chrome trace_event export path: write the profile
        // collected by this execution there (last run wins). API users call
        // `profile()` on their handle clone instead.
        if trace.is_enabled() {
            if let Some(path) = rdo_trace::export_path() {
                if let Err(e) = std::fs::write(&path, trace.profile().chrome_trace_json()) {
                    rdo_common::warn!("RDO_TRACE export to {path} failed: {e}");
                }
            }
        }
        outcome
    }

    /// Builds the single-variable query for one pushed-down dataset (the paper's
    /// Q2/Q3): its local predicates plus a projection onto the attributes the
    /// remaining query needs.
    pub(crate) fn pushdown_plan(spec: &QuerySpec, alias: &str) -> Result<PhysicalPlan> {
        let table = spec.table_of(alias)?;
        let predicates = spec.predicates_for(alias).into_iter().cloned().collect();
        let projection = spec.required_columns(alias, false);
        let mut plan = PhysicalPlan::scan_aliased(alias, table).with_predicates(predicates);
        if !projection.is_empty() {
            plan = plan.with_projection(projection);
        }
        Ok(plan)
    }

    /// The columns of `alias` worth collecting statistics on: its join keys in
    /// the (remaining) query.
    pub(crate) fn tracked_columns(spec: &QuerySpec, alias: &str) -> Vec<String> {
        spec.join_key_columns().remove(alias).unwrap_or_default()
    }
}

/// Projects the final relation onto the SELECT list (empty list keeps all
/// columns).
pub fn project_result(relation: Relation, projection: &[FieldRef]) -> Result<Relation> {
    if projection.is_empty() {
        return Ok(relation);
    }
    let schema = relation.schema().clone();
    let indexes = projection
        .iter()
        .map(|f| schema.resolve(f))
        .collect::<Result<Vec<usize>>>()?;
    let out_schema = schema.project(&indexes);
    let rows: Vec<Tuple> = relation
        .rows()
        .iter()
        .map(|r| r.project(&indexes))
        .collect();
    Relation::new(out_schema, rows).map_err(|e| RdoError::Execution(e.to_string()))
}

pub(crate) fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_alphanumeric() { c } else { '_' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdo_common::{DataType, Schema, Value};
    use rdo_exec::{CmpOp, Predicate};
    use rdo_planner::DatasetRef;
    use rdo_storage::IngestOptions;

    /// A star-ish schema with four datasets and three joins so the driver goes
    /// through at least one real re-optimization point:
    /// fact(10_000) ⋈ d1(100, filtered by a UDF) ⋈ d2(200) ⋈ d3(50).
    fn catalog() -> Catalog {
        let mut cat = Catalog::new(4);
        let fact_schema = Schema::for_dataset(
            "fact",
            &[
                ("f_id", DataType::Int64),
                ("f_d1", DataType::Int64),
                ("f_d2", DataType::Int64),
                ("f_d3", DataType::Int64),
                ("f_val", DataType::Int64),
            ],
        );
        let fact_rows = (0..10_000)
            .map(|i| {
                Tuple::new(vec![
                    Value::Int64(i),
                    Value::Int64(i % 100),
                    Value::Int64(i % 200),
                    Value::Int64(i % 50),
                    Value::Int64(i % 7),
                ])
            })
            .collect();
        cat.ingest(
            "fact",
            Relation::new(fact_schema, fact_rows).unwrap(),
            IngestOptions::partitioned_on("f_id"),
        )
        .unwrap();

        for (name, rows) in [("d1", 100i64), ("d2", 200), ("d3", 50)] {
            let schema =
                Schema::for_dataset(name, &[("id", DataType::Int64), ("attr", DataType::Int64)]);
            let data = (0..rows)
                .map(|i| Tuple::new(vec![Value::Int64(i), Value::Int64(i % 10)]))
                .collect();
            cat.ingest(
                name,
                Relation::new(schema, data).unwrap(),
                IngestOptions::partitioned_on("id"),
            )
            .unwrap();
        }
        cat
    }

    fn spec() -> QuerySpec {
        QuerySpec::new("star")
            .with_dataset(DatasetRef::named("fact"))
            .with_dataset(DatasetRef::named("d1"))
            .with_dataset(DatasetRef::named("d2"))
            .with_dataset(DatasetRef::named("d3"))
            .with_join(FieldRef::new("fact", "f_d1"), FieldRef::new("d1", "id"))
            .with_join(FieldRef::new("fact", "f_d2"), FieldRef::new("d2", "id"))
            .with_join(FieldRef::new("fact", "f_d3"), FieldRef::new("d3", "id"))
            .with_predicate(Predicate::udf("pick", FieldRef::new("d1", "attr"), |v| {
                v.as_i64() == Some(3)
            }))
            .with_predicate(Predicate::compare(
                FieldRef::new("d1", "id"),
                CmpOp::Lt,
                1_000i64,
            ))
            .with_projection(vec![
                FieldRef::new("fact", "f_id"),
                FieldRef::new("fact", "f_val"),
            ])
    }

    /// The truth: d1 keeps ids with attr==3 and id<1000 → ids {3,13,...,93} (10
    /// rows); every fact row matches d2 and d3 always, and d1 when f_d1 % 10 == 3
    /// → 1/10 of fact rows → 1_000 results.
    const EXPECTED_ROWS: usize = 1_000;

    #[test]
    fn dynamic_execution_produces_correct_result() {
        let mut cat = catalog();
        let driver = DynamicDriver::new(DynamicConfig::dynamic(JoinAlgorithmRule::with_threshold(
            500.0,
        )));
        let outcome = driver.execute(&spec(), &mut cat).unwrap();
        assert_eq!(outcome.result.len(), EXPECTED_ROWS);
        assert_eq!(
            outcome.result.schema().len(),
            2,
            "projected to the SELECT list"
        );
        // One re-optimization point: 3 edges → after one materialized join, 2
        // edges remain and the final job runs.
        assert_eq!(outcome.reoptimization_points, 1);
        assert_eq!(outcome.planner_invocations, 2);
        assert!(outcome.total.rows_materialized > 0);
        assert!(outcome.pushdown.rows_scanned >= 100, "d1 was pushed down");
        assert!(outcome.stage_plans.len() >= 3, "pushdown + loop + final");
        assert!(!outcome.plan_description().is_empty());
    }

    #[test]
    fn temporary_tables_are_cleaned_up() {
        let mut cat = catalog();
        let tables_before = cat.table_names();
        let driver = DynamicDriver::new(DynamicConfig::default());
        driver.execute(&spec(), &mut cat).unwrap();
        assert_eq!(cat.table_names(), tables_before);
    }

    #[test]
    fn ingres_like_matches_result_but_skips_sketches() {
        let mut cat = catalog();
        let dynamic = DynamicDriver::new(DynamicConfig::dynamic(JoinAlgorithmRule::default()))
            .execute(&spec(), &mut cat)
            .unwrap();
        let ingres = DynamicDriver::new(DynamicConfig::ingres_like(JoinAlgorithmRule::default()))
            .execute(&spec(), &mut cat)
            .unwrap();
        assert_eq!(dynamic.result.len(), ingres.result.len());
        assert_eq!(
            dynamic.result.clone().sorted(),
            ingres.result.clone().sorted(),
            "both strategies compute the same answer"
        );
        assert!(ingres.total.stats_values_observed == 0);
        assert!(dynamic.total.stats_values_observed > 0);
    }

    #[test]
    fn disabling_pushdown_still_computes_the_query() {
        let mut cat = catalog();
        let config = DynamicConfig {
            push_down_predicates: false,
            ..DynamicConfig::default()
        };
        let outcome = DynamicDriver::new(config)
            .execute(&spec(), &mut cat)
            .unwrap();
        assert_eq!(outcome.result.len(), EXPECTED_ROWS);
        assert_eq!(outcome.pushdown, ExecutionMetrics::new());
    }

    #[test]
    fn without_online_stats_observes_no_values_in_the_loop() {
        let mut cat = catalog();
        let outcome = DynamicDriver::new(DynamicConfig::without_online_stats(
            JoinAlgorithmRule::default(),
        ))
        .execute(&spec(), &mut cat)
        .unwrap();
        assert_eq!(outcome.result.len(), EXPECTED_ROWS);
        assert_eq!(outcome.total.stats_values_observed, 0);
    }

    #[test]
    fn reopt_budget_zero_plans_statically_but_stays_correct() {
        let mut cat = catalog();
        let config = DynamicConfig::dynamic(JoinAlgorithmRule::default()).with_reopt_budget(0);
        let outcome = DynamicDriver::new(config)
            .execute(&spec(), &mut cat)
            .unwrap();
        assert_eq!(outcome.result.len(), EXPECTED_ROWS);
        assert_eq!(outcome.reoptimization_points, 0);
        // One planner invocation for the final (static) job; the push-down stage
        // still ran and refreshed the statistics it produced.
        assert_eq!(outcome.planner_invocations, 1);
        assert!(outcome.pushdown.rows_scanned > 0);
    }

    #[test]
    fn reopt_budget_caps_the_number_of_materialized_joins() {
        let mut cat = catalog();
        let unlimited = DynamicDriver::new(DynamicConfig::default())
            .execute(&spec(), &mut cat)
            .unwrap();
        let capped = DynamicDriver::new(DynamicConfig::default().with_reopt_budget(1))
            .execute(&spec(), &mut cat)
            .unwrap();
        assert!(capped.reoptimization_points <= 1);
        assert!(capped.reoptimization_points <= unlimited.reoptimization_points);
        assert_eq!(
            capped.result.clone().sorted(),
            unlimited.result.clone().sorted(),
            "budgeted and unlimited runs must agree on the answer"
        );
        // A large budget behaves exactly like the unlimited configuration.
        let large = DynamicDriver::new(DynamicConfig::default().with_reopt_budget(100))
            .execute(&spec(), &mut cat)
            .unwrap();
        assert_eq!(large.reoptimization_points, unlimited.reoptimization_points);
    }

    #[test]
    fn two_join_query_needs_no_reoptimization_point() {
        let mut cat = catalog();
        let q = QuerySpec::new("small")
            .with_dataset(DatasetRef::named("fact"))
            .with_dataset(DatasetRef::named("d1"))
            .with_dataset(DatasetRef::named("d2"))
            .with_join(FieldRef::new("fact", "f_d1"), FieldRef::new("d1", "id"))
            .with_join(FieldRef::new("fact", "f_d2"), FieldRef::new("d2", "id"));
        let outcome = DynamicDriver::new(DynamicConfig::default())
            .execute(&q, &mut cat)
            .unwrap();
        assert_eq!(outcome.reoptimization_points, 0);
        assert_eq!(outcome.planner_invocations, 1);
        assert_eq!(outcome.result.len(), 10_000);
    }

    #[test]
    fn projection_of_missing_column_errors() {
        let mut cat = catalog();
        let q = spec().with_projection(vec![FieldRef::new("fact", "not_a_column")]);
        let result = DynamicDriver::new(DynamicConfig::default()).execute(&q, &mut cat);
        assert!(result.is_err());
        // Cleanup still happened.
        assert!(cat.table_names().iter().all(|t| !t.contains("__I")));
    }

    #[test]
    fn worker_count_never_changes_results_or_metrics() {
        let reference = {
            let mut cat = catalog();
            DynamicDriver::new(DynamicConfig::default().with_parallel(ParallelConfig::serial()))
                .execute(&spec(), &mut cat)
                .unwrap()
        };
        for workers in [2, 4, 8] {
            let mut cat = catalog();
            let config = DynamicConfig::default()
                .with_parallel(ParallelConfig::serial().with_workers(workers));
            let outcome = DynamicDriver::new(config)
                .execute(&spec(), &mut cat)
                .unwrap();
            assert_eq!(outcome.result, reference.result, "workers={workers}");
            assert_eq!(outcome.total, reference.total, "workers={workers}");
            assert_eq!(outcome.stage_plans, reference.stage_plans);
            assert_eq!(outcome.audit, reference.audit, "workers={workers}");
        }
    }

    #[test]
    fn audit_trail_records_every_stage_and_decision() {
        let mut cat = catalog();
        let outcome = DynamicDriver::new(DynamicConfig::default())
            .execute(&spec(), &mut cat)
            .unwrap();
        let audit = &outcome.audit;
        assert_eq!(
            audit.estimates.len(),
            outcome.stage_plans.len(),
            "one estimate record per executed stage"
        );
        assert_eq!(
            audit.decisions.len(),
            outcome.reoptimization_points as usize,
            "one decision explanation per re-optimization point"
        );
        let final_record = audit.estimates.last().unwrap();
        assert_eq!(final_record.stage, "final");
        assert_eq!(final_record.actual_rows, EXPECTED_ROWS as u64);
        assert!(audit.max_q_error() >= 1.0);
        let decision = &audit.decisions[0];
        assert_eq!(decision.point, 1);
        assert!(
            decision.trigger.is_some(),
            "the push-down stage preceded the first decision"
        );
        assert!(!decision.chosen.is_empty());
        let rendered = audit.render();
        assert!(
            rendered.contains("estimate audit (per stage):"),
            "{rendered}"
        );
        assert!(
            rendered.contains("re-optimization decisions:"),
            "{rendered}"
        );
    }

    #[test]
    fn spilled_execution_matches_in_memory_execution_exactly() {
        let reference = {
            let mut cat = catalog();
            DynamicDriver::new(DynamicConfig::default().with_spill(SpillConfig::disabled()))
                .execute(&spec(), &mut cat)
                .unwrap()
        };
        let mut cat = catalog();
        // A 1-byte budget forces every materialized intermediate to disk.
        let config = DynamicConfig::default()
            .with_spill(SpillConfig::disabled().with_budget(1).with_page_size(4096));
        let outcome = DynamicDriver::new(config)
            .execute(&spec(), &mut cat)
            .unwrap();
        assert!(
            outcome.total.spill_bytes_written > 0 && outcome.total.spill_pages_read > 0,
            "the run actually went out-of-core: {:?}",
            outcome.total
        );
        assert_eq!(outcome.result, reference.result, "bit-identical result");
        assert_eq!(outcome.stage_plans, reference.stage_plans);
        let mut scrubbed = outcome.total;
        scrubbed.spill_pages_written = 0;
        scrubbed.spill_bytes_written = 0;
        scrubbed.spill_pages_read = 0;
        scrubbed.spill_bytes_read = 0;
        scrubbed.spill_logical_bytes_written = 0;
        scrubbed.spill_logical_bytes_read = 0;
        assert_eq!(scrubbed, reference.total, "non-spill metrics unchanged");
        // Temp tables dropped => spill dir is empty again.
        let dir = cat.spill_dir().expect("spill configured");
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0);
    }

    #[test]
    fn grace_join_execution_matches_in_memory_execution_exactly() {
        let reference = {
            let mut cat = catalog();
            DynamicDriver::new(DynamicConfig::default().with_spill(SpillConfig::disabled()))
                .execute(&spec(), &mut cat)
                .unwrap()
        };
        let mut cat = catalog();
        // A 1-byte join budget drives every join's build side through the
        // grace path (recursion down to the nested-loop fallback included).
        let config = DynamicConfig::default()
            .with_spill(SpillConfig::disabled().with_page_size(4096))
            .with_join_budget(1);
        let outcome = DynamicDriver::new(config)
            .execute(&spec(), &mut cat)
            .unwrap();
        assert!(
            outcome.total.grace_bytes_written > 0
                && outcome.total.grace_pages_read > 0
                && outcome.total.grace_partitions_spilled > 0,
            "the joins actually went out-of-core: {:?}",
            outcome.total
        );
        assert_eq!(outcome.result, reference.result, "bit-identical result");
        assert_eq!(outcome.stage_plans, reference.stage_plans);
        let mut scrubbed = outcome.total;
        scrubbed.grace_partitions_spilled = 0;
        scrubbed.grace_pages_written = 0;
        scrubbed.grace_bytes_written = 0;
        scrubbed.grace_pages_read = 0;
        scrubbed.grace_bytes_read = 0;
        scrubbed.grace_logical_bytes_written = 0;
        scrubbed.grace_logical_bytes_read = 0;
        scrubbed.grace_recursions = 0;
        scrubbed.grace_fallbacks = 0;
        scrubbed.grace_peak_transient_bytes = 0;
        assert_eq!(scrubbed, reference.total, "non-grace metrics unchanged");
        // Grace partition files live only inside a join call.
        let dir = cat.spill_dir().expect("join budget configured");
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0);
    }

    #[test]
    fn shared_pool_executions_match_private_pool_executions() {
        let reference = {
            let mut cat = catalog();
            DynamicDriver::new(DynamicConfig::default().with_parallel(ParallelConfig::serial()))
                .execute(&spec(), &mut cat)
                .unwrap()
        };
        // One externally owned pool, reused across two executions — what the
        // SQL server does across sessions.
        let pool = WorkerPool::new(2);
        let config = DynamicConfig::default()
            .with_parallel(ParallelConfig::serial().with_workers(2))
            .with_pool(pool.clone());
        for _ in 0..2 {
            let mut cat = catalog();
            let outcome = DynamicDriver::new(config.clone())
                .execute(&spec(), &mut cat)
                .unwrap();
            assert_eq!(outcome.result, reference.result);
            assert_eq!(outcome.total, reference.total);
            assert_eq!(outcome.stage_plans, reference.stage_plans);
        }
    }

    #[test]
    fn learned_stats_seed_repeat_runs() {
        let learned = Arc::new(LearnedStatsCatalog::new());
        let cold = {
            let mut cat = catalog();
            DynamicDriver::new(DynamicConfig::default().with_learned(Arc::clone(&learned)))
                .execute(&spec(), &mut cat)
                .unwrap()
        };
        assert!(
            !learned.is_empty(),
            "the cold run recorded measured cardinalities"
        );
        let hits_before = learned.hits();

        // The repeat run: measured stats stand in for the pilot stages, so the
        // re-optimization loop is skipped entirely.
        let warm = {
            let mut cat = catalog();
            let config = DynamicConfig::default()
                .with_learned(Arc::clone(&learned))
                .with_reopt_budget(0);
            DynamicDriver::new(config)
                .execute(&spec(), &mut cat)
                .unwrap()
        };
        assert_eq!(warm.result.clone().sorted(), cold.result.clone().sorted());
        assert_eq!(warm.reoptimization_points, 0);
        assert!(
            learned.hits() > hits_before,
            "the repeat run read the cache"
        );
        // The seeded push-down estimate is the measured truth → q-error 1.
        let pushdown = warm
            .audit
            .estimates
            .iter()
            .find(|r| r.stage.starts_with("pushdown:"))
            .expect("warm run still push-downs");
        assert_eq!(pushdown.estimated_rows, Some(pushdown.actual_rows as f64));
        assert!(warm.audit.max_q_error() <= cold.audit.max_q_error());
    }

    #[test]
    fn project_result_empty_projection_keeps_everything() {
        let schema = Schema::for_dataset("t", &[("a", DataType::Int64)]);
        let rel = Relation::new(schema, vec![Tuple::new(vec![Value::Int64(1)])]).unwrap();
        let out = project_result(rel.clone(), &[]).unwrap();
        assert_eq!(out, rel);
    }
}
