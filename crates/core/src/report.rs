//! Cost breakdowns used to reproduce the overhead analysis of Figure 6.

use crate::driver::DynamicOutcome;
use rdo_exec::{CostModel, ExecutionMetrics};

/// Decomposition of a dynamic run's simulated cost into the components the
/// paper analyses: the re-optimization overhead (materializing and re-reading
/// intermediate results plus the extra planner invocations), the online
/// statistics collection, the predicate push-down stage, and everything else
/// (the "useful" join work).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostBreakdown {
    /// Total simulated cost, including all overheads.
    pub total: f64,
    /// Cost of writing and re-reading materialized intermediate results plus
    /// the planner invocations.
    pub reoptimization: f64,
    /// Cost of the online statistics collection (sketch updates at every Sink).
    pub online_stats: f64,
    /// Cost of the predicate push-down stage (separate execution of the filtered
    /// datasets).
    pub predicate_pushdown: f64,
    /// Remaining cost: scans, shuffles, broadcasts and join work.
    pub base_execution: f64,
}

impl CostBreakdown {
    /// Computes the breakdown of a dynamic outcome under a cost model.
    pub fn of(outcome: &DynamicOutcome, model: &CostModel) -> Self {
        let partitions = model.partitions.max(1) as f64;
        let m = &outcome.total;
        let execution_cost = m.simulated_cost(model);
        let planner_cost = outcome.planner_invocations as f64 * model.planner_invocation;
        let total = execution_cost + planner_cost;

        let reopt_io = (m.rows_materialized as f64 * model.materialize_row
            + m.bytes_materialized as f64 * model.materialize_byte
            + m.rows_intermediate_read as f64 * model.intermediate_read_row
            + m.bytes_intermediate_read as f64 * model.intermediate_read_byte)
            / partitions;
        let reoptimization = reopt_io + planner_cost;
        let online_stats = m.stats_values_observed as f64 * model.stats_value / partitions;
        let predicate_pushdown = outcome.pushdown.simulated_cost(model);
        let base_execution = (total - reoptimization - online_stats).max(0.0);
        Self {
            total,
            reoptimization,
            online_stats,
            predicate_pushdown,
            base_execution,
        }
    }

    /// Re-optimization overhead as a fraction of the total.
    pub fn reoptimization_fraction(&self) -> f64 {
        if self.total > 0.0 {
            self.reoptimization / self.total
        } else {
            0.0
        }
    }

    /// Online-statistics overhead as a fraction of the total.
    pub fn online_stats_fraction(&self) -> f64 {
        if self.total > 0.0 {
            self.online_stats / self.total
        } else {
            0.0
        }
    }

    /// Predicate push-down overhead as a fraction of the total.
    pub fn pushdown_fraction(&self) -> f64 {
        if self.total > 0.0 {
            self.predicate_pushdown / self.total
        } else {
            0.0
        }
    }
}

/// The Figure 6 (left) decomposition obtained the way the paper measures it:
/// three executions of the same query — optimal plan with statistics known
/// upfront, re-optimization without online statistics, and the full dynamic
/// approach — whose differences isolate each overhead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadReport {
    /// Cost of executing the optimal plan with statistics available upfront.
    pub statistics_upfront: f64,
    /// Extra cost introduced by the re-optimization points (materialization I/O).
    pub reoptimization: f64,
    /// Extra cost introduced by online statistics collection.
    pub online_stats: f64,
}

impl OverheadReport {
    /// Builds the report from the three measured costs.
    pub fn from_costs(upfront: f64, reopt_without_stats: f64, full_dynamic: f64) -> Self {
        Self {
            statistics_upfront: upfront,
            reoptimization: (reopt_without_stats - upfront).max(0.0),
            online_stats: (full_dynamic - reopt_without_stats).max(0.0),
        }
    }

    /// Total cost of the full dynamic execution.
    pub fn total(&self) -> f64 {
        self.statistics_upfront + self.reoptimization + self.online_stats
    }

    /// Combined overhead (re-optimization + online statistics) as a fraction of
    /// the total — the 7–20% band the paper reports.
    pub fn overhead_fraction(&self) -> f64 {
        let total = self.total();
        if total > 0.0 {
            (self.reoptimization + self.online_stats) / total
        } else {
            0.0
        }
    }
}

/// Convenience: simulated cost of plain metrics under a model (used by the
/// benchmark harness for the static baselines, which have no breakdown).
pub fn simulated_cost(metrics: &ExecutionMetrics, model: &CostModel) -> f64 {
    metrics.simulated_cost(model)
}

/// Renders [`ExecutionMetrics`] in the Prometheus text exposition format
/// (same name sanitization and `# TYPE` convention as
/// [`rdo_trace::Profile::metrics_text`]). Every counter sum-merges except
/// `grace_peak_transient_bytes`, which is a max-merged gauge.
pub fn execution_metrics_text(m: &ExecutionMetrics) -> String {
    let counters: [(&str, u64); 33] = [
        ("rows_scanned", m.rows_scanned),
        ("bytes_scanned", m.bytes_scanned),
        ("rows_intermediate_read", m.rows_intermediate_read),
        ("bytes_intermediate_read", m.bytes_intermediate_read),
        ("rows_shuffled", m.rows_shuffled),
        ("bytes_shuffled", m.bytes_shuffled),
        ("rows_broadcast", m.rows_broadcast),
        ("bytes_broadcast", m.bytes_broadcast),
        ("build_rows", m.build_rows),
        ("probe_rows", m.probe_rows),
        ("output_rows", m.output_rows),
        ("index_lookups", m.index_lookups),
        ("index_fetched_rows", m.index_fetched_rows),
        ("rows_materialized", m.rows_materialized),
        ("bytes_materialized", m.bytes_materialized),
        ("stats_values_observed", m.stats_values_observed),
        ("result_rows", m.result_rows),
        ("spill_pages_written", m.spill_pages_written),
        ("spill_bytes_written", m.spill_bytes_written),
        ("spill_pages_read", m.spill_pages_read),
        ("spill_bytes_read", m.spill_bytes_read),
        ("spill_logical_bytes_written", m.spill_logical_bytes_written),
        ("spill_logical_bytes_read", m.spill_logical_bytes_read),
        ("grace_partitions_spilled", m.grace_partitions_spilled),
        ("grace_pages_written", m.grace_pages_written),
        ("grace_bytes_written", m.grace_bytes_written),
        ("grace_pages_read", m.grace_pages_read),
        ("grace_bytes_read", m.grace_bytes_read),
        ("grace_logical_bytes_written", m.grace_logical_bytes_written),
        ("grace_logical_bytes_read", m.grace_logical_bytes_read),
        ("grace_recursions", m.grace_recursions),
        ("grace_fallbacks", m.grace_fallbacks),
        ("grace_peak_transient_bytes", m.grace_peak_transient_bytes),
    ];
    let mut out = String::new();
    for (name, value) in counters {
        let kind = if name == "grace_peak_transient_bytes" {
            "gauge"
        } else {
            "counter"
        };
        out.push_str(&format!("# TYPE rdo_{name} {kind}\nrdo_{name} {value}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdo_common::{DataType, Relation, Schema};

    fn outcome_with(total: ExecutionMetrics, pushdown: ExecutionMetrics) -> DynamicOutcome {
        DynamicOutcome {
            result: Relation::empty(Schema::for_dataset("t", &[("a", DataType::Int64)])),
            total,
            pushdown,
            planner_invocations: 2,
            reoptimization_points: 1,
            stage_plans: vec!["(a ⋈ b)".into()],
            audit: Default::default(),
        }
    }

    #[test]
    fn breakdown_components_sum_to_total() {
        let total = ExecutionMetrics {
            rows_scanned: 100_000,
            bytes_scanned: 5_000_000,
            rows_shuffled: 50_000,
            bytes_shuffled: 2_500_000,
            rows_materialized: 10_000,
            bytes_materialized: 500_000,
            rows_intermediate_read: 10_000,
            bytes_intermediate_read: 500_000,
            stats_values_observed: 20_000,
            output_rows: 30_000,
            ..Default::default()
        };
        let pushdown = ExecutionMetrics {
            rows_scanned: 5_000,
            rows_materialized: 500,
            ..Default::default()
        };
        let model = CostModel::default();
        let b = CostBreakdown::of(&outcome_with(total, pushdown), &model);
        assert!(b.total > 0.0);
        assert!(b.reoptimization > 0.0);
        assert!(b.online_stats > 0.0);
        assert!(b.predicate_pushdown > 0.0);
        let sum = b.base_execution + b.reoptimization + b.online_stats;
        assert!((sum - b.total).abs() < 1e-6, "components must sum to total");
        assert!(b.reoptimization_fraction() > 0.0 && b.reoptimization_fraction() < 1.0);
        assert!(b.online_stats_fraction() < b.reoptimization_fraction());
        assert!(b.pushdown_fraction() < 1.0);
    }

    #[test]
    fn zero_cost_breakdown_is_safe() {
        let b = CostBreakdown::of(
            &DynamicOutcome {
                result: Relation::empty(Schema::for_dataset("t", &[("a", DataType::Int64)])),
                total: ExecutionMetrics::new(),
                pushdown: ExecutionMetrics::new(),
                planner_invocations: 0,
                reoptimization_points: 0,
                stage_plans: vec![],
                audit: Default::default(),
            },
            &CostModel::default(),
        );
        assert_eq!(b.total, 0.0);
        assert_eq!(b.reoptimization_fraction(), 0.0);
        assert_eq!(b.online_stats_fraction(), 0.0);
    }

    #[test]
    fn overhead_report_differences() {
        let r = OverheadReport::from_costs(100.0, 112.0, 115.0);
        assert!((r.reoptimization - 12.0).abs() < 1e-9);
        assert!((r.online_stats - 3.0).abs() < 1e-9);
        assert!((r.total() - 115.0).abs() < 1e-9);
        assert!((r.overhead_fraction() - 15.0 / 115.0).abs() < 1e-9);
    }

    #[test]
    fn overhead_report_clamps_negative_differences() {
        let r = OverheadReport::from_costs(100.0, 95.0, 90.0);
        assert_eq!(r.reoptimization, 0.0);
        assert_eq!(r.online_stats, 0.0);
        assert_eq!(r.overhead_fraction(), 0.0);
    }
}
