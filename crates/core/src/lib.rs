//! Runtime dynamic optimization — the paper's primary contribution.
//!
//! The [`DynamicDriver`] implements Algorithm 1: push down and execute complex
//! local predicates first, then repeatedly ask the Planner for the single
//! cheapest next join, execute just that join, materialize its result while
//! collecting online statistics, reconstruct the remaining query around the
//! intermediate, and stop re-optimizing once at most two joins remain.
//!
//! The [`QueryRunner`] executes the same query under any of the strategies the
//! paper compares (dynamic, INGRES-like, cost-based, best-order, worst-order,
//! pilot-run, and the ablation variants used for Figure 6) and reports wall
//! time, simulated cluster cost and the overhead breakdown.

pub mod checkpoint;
pub mod driver;
pub mod report;
pub mod runner;

pub use checkpoint::{
    CheckpointEntry, CheckpointLog, CheckpointedDriver, FailureInjector, RecoveredOutcome,
    StageKind,
};
pub use driver::{DynamicConfig, DynamicDriver, DynamicOutcome};
pub use rdo_parallel::{ParallelConfig, ParallelExecutor, TransportKind};
pub use report::{CostBreakdown, OverheadReport};
pub use runner::{QueryRunner, RunReport, Strategy};
