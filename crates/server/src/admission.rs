//! Global memory admission for concurrent queries.
//!
//! Every query reserves a memory grant from one server-wide budget before it
//! executes; the grant funds the query's private spill and join budgets, so
//! the sum of per-query memory the server hands out never exceeds the global
//! cap. Waiters queue FIFO (ticket numbers, like a bakery lock) and wait a
//! bounded time: a query that cannot be admitted before its deadline fails
//! with a clean admission-timeout error instead of wedging its session.

use rdo_common::{RdoError, Result};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Mutable admission state guarded by the controller mutex.
#[derive(Debug, Default)]
struct State {
    /// Bytes currently handed out to running queries.
    reserved: u64,
    /// Next ticket number to issue to an arriving query.
    next_ticket: u64,
    /// Lowest ticket number still owed a turn (FIFO head).
    next_served: u64,
    /// Tickets whose waiters timed out mid-queue; the head skips over them.
    abandoned: HashSet<u64>,
}

impl State {
    /// Hands the head of the queue to the next ticket still waiting, skipping
    /// tickets whose waiters departed at their deadline.
    fn advance_head(&mut self) {
        self.next_served += 1;
        while self.abandoned.remove(&self.next_served) {
            self.next_served += 1;
        }
    }
}

/// A server-wide memory budget that concurrent queries draw grants from.
///
/// FIFO fairness: grants are handed out strictly in arrival order, so a large
/// query at the head of the queue is never starved by small queries slipping
/// past it. A waiter that times out consumes its queue turn (hands the head to
/// its successor) before failing.
#[derive(Debug)]
pub struct AdmissionController {
    /// Total budget in bytes.
    total: u64,
    state: Mutex<State>,
    changed: Condvar,
    peak: AtomicU64,
    waits: AtomicU64,
    timeouts: AtomicU64,
    max_queue_depth: AtomicU64,
}

impl AdmissionController {
    /// Creates a controller over `total` bytes of global memory budget.
    pub fn new(total: u64) -> Arc<Self> {
        Arc::new(Self {
            total,
            state: Mutex::new(State::default()),
            changed: Condvar::new(),
            peak: AtomicU64::new(0),
            waits: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            max_queue_depth: AtomicU64::new(0),
        })
    }

    /// The total budget in bytes.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Reserves `bytes` (clamped to the total, so one query can never ask for
    /// more than the whole budget and deadlock). Blocks until the reservation
    /// is both at the head of the FIFO queue and fundable, or until `timeout`
    /// elapses — then fails with an execution error naming the wait.
    pub fn admit(self: &Arc<Self>, bytes: u64, timeout: Duration) -> Result<AdmissionTicket> {
        let grant = bytes.min(self.total);
        let deadline = Instant::now() + timeout;
        let mut state = self.state.lock().expect("admission mutex poisoned");
        let ticket = state.next_ticket;
        state.next_ticket += 1;

        let depth = state.next_ticket - state.next_served;
        self.max_queue_depth.fetch_max(depth, Ordering::Relaxed);
        let mut waited = false;

        loop {
            let my_turn = state.next_served == ticket;
            if my_turn && state.reserved + grant <= self.total {
                state.advance_head();
                state.reserved += grant;
                self.peak.fetch_max(state.reserved, Ordering::Relaxed);
                if waited {
                    self.waits.fetch_add(1, Ordering::Relaxed);
                }
                // Successors may be fundable too (e.g. grant 0 edge case).
                self.changed.notify_all();
                return Ok(AdmissionTicket {
                    controller: Arc::clone(self),
                    bytes: grant,
                });
            }
            waited = true;
            let now = Instant::now();
            if now >= deadline {
                // Consume this ticket's turn so successors are not stuck
                // behind a departed waiter: advance the head if we hold it,
                // otherwise leave a marker the head skips when it gets here.
                if state.next_served == ticket {
                    state.advance_head();
                } else {
                    state.abandoned.insert(ticket);
                }
                self.timeouts.fetch_add(1, Ordering::Relaxed);
                self.changed.notify_all();
                return Err(RdoError::Execution(format!(
                    "admission timeout: waited {}ms for {} bytes of the {}-byte global budget",
                    timeout.as_millis(),
                    grant,
                    self.total
                )));
            }
            let (next, _timed_out) = self
                .changed
                .wait_timeout(state, deadline - now)
                .expect("admission mutex poisoned");
            state = next;
        }
    }

    /// Bytes currently reserved by running queries.
    pub fn reserved(&self) -> u64 {
        self.state
            .lock()
            .expect("admission mutex poisoned")
            .reserved
    }

    /// Highest concurrent reservation ever observed (≤ total, by construction).
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    /// Queries currently queued or being served (instantaneous).
    pub fn queue_depth(&self) -> u64 {
        let state = self.state.lock().expect("admission mutex poisoned");
        state.next_ticket - state.next_served
    }

    /// Highest queue depth ever observed.
    pub fn max_queue_depth(&self) -> u64 {
        self.max_queue_depth.load(Ordering::Relaxed)
    }

    /// Number of admissions that had to wait at least one round.
    pub fn waits(&self) -> u64 {
        self.waits.load(Ordering::Relaxed)
    }

    /// Number of admissions that gave up at their deadline.
    pub fn timeouts(&self) -> u64 {
        self.timeouts.load(Ordering::Relaxed)
    }

    fn release(&self, bytes: u64) {
        let mut state = self.state.lock().expect("admission mutex poisoned");
        state.reserved = state.reserved.saturating_sub(bytes);
        self.changed.notify_all();
    }
}

/// An admitted reservation; returns its bytes to the global pool on drop, so
/// a query that panics or errors still releases its grant.
#[derive(Debug)]
pub struct AdmissionTicket {
    controller: Arc<AdmissionController>,
    bytes: u64,
}

impl AdmissionTicket {
    /// The granted bytes (the requested amount clamped to the total budget).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl Drop for AdmissionTicket {
    fn drop(&mut self) {
        self.controller.release(self.bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    const MS: Duration = Duration::from_millis(1);

    #[test]
    fn grants_clamp_to_total_and_return_on_drop() {
        let ctl = AdmissionController::new(100);
        let ticket = ctl.admit(1_000_000, 10 * MS).unwrap();
        assert_eq!(ticket.bytes(), 100, "request clamped to the total budget");
        assert_eq!(ctl.reserved(), 100);
        drop(ticket);
        assert_eq!(ctl.reserved(), 0, "budget fully returned");
        assert_eq!(ctl.peak(), 100);
    }

    #[test]
    fn concurrent_holders_never_exceed_total() {
        let ctl = AdmissionController::new(100);
        let running = Arc::new(AtomicUsize::new(0));
        let max_running = Arc::new(AtomicUsize::new(0));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let ctl = Arc::clone(&ctl);
                let running = Arc::clone(&running);
                let max_running = Arc::clone(&max_running);
                std::thread::spawn(move || {
                    let _ticket = ctl.admit(60, Duration::from_secs(30)).unwrap();
                    let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                    max_running.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(5 * MS);
                    running.fetch_sub(1, Ordering::SeqCst);
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(
            max_running.load(Ordering::SeqCst),
            1,
            "60-byte grants against a 100-byte budget must serialize"
        );
        assert!(ctl.peak() <= ctl.total());
        assert_eq!(ctl.reserved(), 0);
        assert!(ctl.waits() >= 7, "all but the first admission waited");
        assert!(ctl.max_queue_depth() >= 2);
    }

    #[test]
    fn timeout_fails_cleanly_and_frees_the_queue() {
        let ctl = AdmissionController::new(100);
        let holder = ctl.admit(100, 10 * MS).unwrap();
        let err = ctl.admit(10, 20 * MS).unwrap_err();
        assert!(err.to_string().contains("admission timeout"), "{err}");
        assert_eq!(ctl.timeouts(), 1);
        drop(holder);
        // The timed-out waiter consumed its turn; a new arrival is served.
        let next = ctl.admit(10, 10 * MS).unwrap();
        assert_eq!(next.bytes(), 10);
        drop(next);
        assert_eq!(ctl.reserved(), 0);
    }

    #[test]
    fn fifo_order_is_preserved() {
        let ctl = AdmissionController::new(100);
        let first = ctl.admit(100, 10 * MS).unwrap();
        let order = Arc::new(Mutex::new(Vec::new()));
        let threads: Vec<_> = (0..4)
            .map(|i| {
                let ctl = Arc::clone(&ctl);
                let order = Arc::clone(&order);
                // Stagger arrivals so ticket numbers follow thread index.
                std::thread::sleep(3 * MS);
                std::thread::spawn(move || {
                    let _t = ctl.admit(100, Duration::from_secs(30)).unwrap();
                    order.lock().unwrap().push(i);
                })
            })
            .collect();
        std::thread::sleep(20 * MS);
        drop(first);
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3]);
    }
}
