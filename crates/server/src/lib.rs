#![warn(missing_docs)]

//! Multi-query SQL server front-end for the runtime dynamic optimizer.
//!
//! The paper evaluates its dynamic re-optimization inside AsterixDB, a shared
//! multi-query server: many clients submit SQL++ text concurrently, the
//! cluster's memory is one global pool, and a query's statistics outlive the
//! query that collected them. This crate reproduces that operating mode on
//! top of the single-query [`rdo_core`] driver:
//!
//! * **Shared worker pool** — every session's queries execute on ONE
//!   [`WorkerPool`], injected through [`rdo_core::DynamicConfig::with_pool`];
//!   the server never spawns per-query executor threads.
//! * **Global memory admission** — with `RDO_SERVER_MEM_BUDGET` set, each
//!   query reserves a grant from one tracked global budget before running
//!   (FIFO queueing, bounded wait, clean admission-timeout error), and its
//!   private spill/join budgets are carved from that grant.
//! * **Learned-stats plan cache** — bound plans are cached under the
//!   normalized SQL text ([`rdo_sql::normalize`]), and the audit trail's
//!   measured per-subplan cardinalities feed a [`LearnedStatsCatalog`]: a
//!   repeat query plans statically from measured statistics (zero
//!   re-optimization points) instead of re-running pilot stages, with a max
//!   q-error no worse than the cold run's.
//!
//! The wire protocol is a dependency-free length-prefixed frame scheme in the
//! style of `rdo_net::frame` — see [`protocol`]. Server-side counters
//! (`server.sessions_opened`, `server.plan_cache_hits`, `server.admissions`,
//! ...) surface on the `RDO_METRICS_ADDR` exposition endpoint alongside the
//! per-query series.

pub mod admission;
pub mod protocol;

pub use admission::{AdmissionController, AdmissionTicket};
pub use protocol::{Client, ErrorCode, QueryResponse, RunSummary};

use crate::protocol::{
    encode_error, encode_rows, encode_schema, encode_summary, read_frame, write_frame, Tag,
    ROWS_PER_FRAME,
};
use rdo_common::env::{parse_env_positive_usize, parse_env_u64, parse_or_warn};
use rdo_common::{Relation, Result};
use rdo_core::{DynamicConfig, DynamicDriver};
use rdo_parallel::{ParallelConfig, WorkerPool};
use rdo_planner::{JoinAlgorithmRule, LearnedStatsCatalog};
use rdo_spill::SpillConfig;
use rdo_sql::{BoundQuery, ParamBindings, UdfRegistry};
use rdo_storage::Catalog;
use rdo_trace::TraceHandle;
use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// `RDO_SERVER_ADDR`: the listen address (default `127.0.0.1:0`, an ephemeral
/// port announced by [`ServerHandle::addr`]).
pub const ADDR_ENV: &str = "RDO_SERVER_ADDR";
/// `RDO_SERVER_MEM_BUDGET`: global memory budget in bytes shared by all
/// concurrent queries. Unset disables admission control.
pub const MEM_BUDGET_ENV: &str = "RDO_SERVER_MEM_BUDGET";
/// `RDO_SERVER_ADMIT_TIMEOUT_MS`: how long a query may wait for admission
/// before failing with an admission-timeout error (default 10000).
pub const ADMIT_TIMEOUT_ENV: &str = "RDO_SERVER_ADMIT_TIMEOUT_MS";
/// `RDO_SERVER_QUERY_GRANT`: the per-query memory grant requested from the
/// global budget (default 64 MiB; clamped to the budget).
pub const QUERY_GRANT_ENV: &str = "RDO_SERVER_QUERY_GRANT";
/// `RDO_SERVER_PLAN_CACHE_CAP`: maximum number of cached bound plans
/// (default 256). Past the cap the least-recently-used plan is evicted, so a
/// client iterating literal values inline cannot grow the cache without
/// bound (`$param` bindings are the right tool for value-varying queries).
pub const PLAN_CACHE_CAP_ENV: &str = "RDO_SERVER_PLAN_CACHE_CAP";
/// `RDO_SERVER_LEARNED_CAP`: maximum number of learned-stats entries
/// (default 4096), evicted least-recently-touched past the cap.
pub const LEARNED_CAP_ENV: &str = "RDO_SERVER_LEARNED_CAP";

const DEFAULT_ADMIT_TIMEOUT_MS: u64 = 10_000;
const DEFAULT_QUERY_GRANT: u64 = 64 << 20;
const DEFAULT_PLAN_CACHE_CAP: usize = 256;
const DEFAULT_LEARNED_CAP: usize = 4096;

/// Server configuration; every knob has an `RDO_SERVER_*` environment
/// variable read through the shared warn-on-invalid parsers.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address (`RDO_SERVER_ADDR`).
    pub addr: String,
    /// Global admission budget in bytes; `None` disables admission
    /// (`RDO_SERVER_MEM_BUDGET`).
    pub mem_budget: Option<u64>,
    /// Admission wait bound in milliseconds (`RDO_SERVER_ADMIT_TIMEOUT_MS`).
    pub admit_timeout_ms: u64,
    /// Per-query grant requested from the budget (`RDO_SERVER_QUERY_GRANT`).
    pub query_grant: u64,
    /// Plan-cache entry bound (`RDO_SERVER_PLAN_CACHE_CAP`).
    pub plan_cache_cap: usize,
    /// Learned-stats entry bound (`RDO_SERVER_LEARNED_CAP`).
    pub learned_cap: usize,
    /// Parallelism of the shared worker pool (the `RDO_WORKERS` family).
    pub parallel: ParallelConfig,
    /// Join-algorithm rule queries plan under.
    pub rule: JoinAlgorithmRule,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            mem_budget: None,
            admit_timeout_ms: DEFAULT_ADMIT_TIMEOUT_MS,
            query_grant: DEFAULT_QUERY_GRANT,
            plan_cache_cap: DEFAULT_PLAN_CACHE_CAP,
            learned_cap: DEFAULT_LEARNED_CAP,
            parallel: ParallelConfig::default(),
            rule: JoinAlgorithmRule::default(),
        }
    }
}

impl ServerConfig {
    /// The defaults with every `RDO_SERVER_*` (and `RDO_WORKERS` family)
    /// override applied. Invalid values warn and keep the default.
    pub fn from_env() -> Self {
        let mut config = Self::from_env_with(|var| std::env::var(var).ok());
        config.parallel = ParallelConfig::from_env();
        config
    }

    /// [`ServerConfig::from_env`] over an injectable lookup, so the override
    /// logic is testable without mutating the process environment.
    fn from_env_with(lookup: impl Fn(&str) -> Option<String>) -> Self {
        fn get(lookup: &impl Fn(&str) -> Option<String>, var: &str, fallback: &str) -> Option<u64> {
            lookup(var).and_then(|raw| parse_or_warn(var, &raw, fallback, parse_env_u64))
        }
        fn get_count(
            lookup: &impl Fn(&str) -> Option<String>,
            var: &str,
            fallback: &str,
        ) -> Option<usize> {
            lookup(var).and_then(|raw| parse_or_warn(var, &raw, fallback, parse_env_positive_usize))
        }
        let defaults = Self::default();
        Self {
            mem_budget: get(&lookup, MEM_BUDGET_ENV, "admission stays disabled"),
            admit_timeout_ms: get(
                &lookup,
                ADMIT_TIMEOUT_ENV,
                "the default admission timeout stays in effect",
            )
            .unwrap_or(defaults.admit_timeout_ms),
            query_grant: get(
                &lookup,
                QUERY_GRANT_ENV,
                "the default per-query grant stays in effect",
            )
            .unwrap_or(defaults.query_grant),
            plan_cache_cap: get_count(
                &lookup,
                PLAN_CACHE_CAP_ENV,
                "the default plan-cache cap stays in effect",
            )
            .unwrap_or(defaults.plan_cache_cap),
            learned_cap: get_count(
                &lookup,
                LEARNED_CAP_ENV,
                "the default learned-stats cap stays in effect",
            )
            .unwrap_or(defaults.learned_cap),
            addr: lookup(ADDR_ENV).unwrap_or(defaults.addr),
            ..defaults
        }
    }
}

/// A bounded LRU map. The plan cache keys on client-controlled SQL text —
/// every distinct inline literal is a new key — so the map must evict rather
/// than grow with the workload's value diversity. Eviction scans for the
/// least-recently-used entry; the cap is small enough that O(cap) is noise
/// next to compiling a plan.
struct Lru<V> {
    cap: usize,
    clock: u64,
    entries: HashMap<String, (u64, V)>,
}

impl<V: Clone> Lru<V> {
    fn new(cap: usize) -> Self {
        Self {
            cap: cap.max(1),
            clock: 0,
            entries: HashMap::new(),
        }
    }

    fn get(&mut self, key: &str) -> Option<V> {
        self.clock += 1;
        let clock = self.clock;
        self.entries.get_mut(key).map(|(touched, value)| {
            *touched = clock;
            value.clone()
        })
    }

    fn insert(&mut self, key: String, value: V) {
        self.clock += 1;
        if !self.entries.contains_key(&key) {
            while self.entries.len() >= self.cap {
                let coldest = self
                    .entries
                    .iter()
                    .min_by_key(|(_, (touched, _))| *touched)
                    .map(|(k, _)| k.clone())
                    .expect("map at cap is non-empty");
                self.entries.remove(&coldest);
            }
        }
        self.entries.insert(key, (self.clock, value));
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

/// State shared by every session of one server.
struct Shared {
    catalog: Catalog,
    udfs: UdfRegistry,
    params: ParamBindings,
    pool: WorkerPool,
    admission: Option<Arc<AdmissionController>>,
    learned: Arc<LearnedStatsCatalog>,
    /// Bound plans keyed by normalized SQL text, reused verbatim by repeat
    /// queries (the stable name keeps intermediate-table names and plan
    /// signatures identical across runs).
    cache: Mutex<Lru<Arc<BoundQuery>>>,
    trace: TraceHandle,
    config: ServerConfig,
}

/// The multi-query SQL server.
pub struct SqlServer;

impl SqlServer {
    /// Binds the configured address and starts accepting sessions. The
    /// catalog is the shared base data every query reads (each run works on a
    /// cheap clone, so per-query intermediates and spill state stay private).
    pub fn start(
        catalog: Catalog,
        udfs: UdfRegistry,
        params: ParamBindings,
        config: ServerConfig,
    ) -> Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| rdo_common::RdoError::Io(format!("bind {}: {e}", config.addr)))?;
        let addr = listener
            .local_addr()
            .map_err(|e| rdo_common::RdoError::Io(format!("local_addr: {e}")))?;

        let trace = TraceHandle::enabled();
        rdo_trace::serve::ensure_started_from_env();
        rdo_trace::serve::register_query("server", &trace);

        let shared = Arc::new(Shared {
            catalog,
            udfs,
            params,
            pool: WorkerPool::new(config.parallel.workers),
            admission: config.mem_budget.map(AdmissionController::new),
            learned: Arc::new(LearnedStatsCatalog::bounded(config.learned_cap)),
            cache: Mutex::new(Lru::new(config.plan_cache_cap)),
            trace,
            config,
        });

        let stop = Arc::new(AtomicBool::new(false));
        let accept_thread = {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    match stream {
                        Ok(stream) => {
                            let shared = Arc::clone(&shared);
                            std::thread::spawn(move || session(shared, stream));
                        }
                        Err(_) => break,
                    }
                }
            })
        };

        Ok(ServerHandle {
            addr,
            shared,
            stop,
            accept_thread: Some(accept_thread),
        })
    }
}

/// A running server: the bound address plus introspection hooks for tests and
/// examples. Dropping the handle stops the accept loop.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound listen address (resolves the `:0` ephemeral port).
    pub fn addr(&self) -> String {
        self.addr.to_string()
    }

    /// The learned-stats catalog repeat queries plan from.
    pub fn learned(&self) -> Arc<LearnedStatsCatalog> {
        Arc::clone(&self.shared.learned)
    }

    /// The admission controller, if a global budget is configured.
    pub fn admission(&self) -> Option<Arc<AdmissionController>> {
        self.shared.admission.as_ref().map(Arc::clone)
    }

    /// The server-level trace handle (session/cache/admission counters).
    pub fn trace(&self) -> TraceHandle {
        self.shared.trace.clone()
    }

    /// Number of cached bound plans.
    pub fn plan_cache_len(&self) -> usize {
        self.shared
            .cache
            .lock()
            .expect("cache mutex poisoned")
            .len()
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Poke the accept loop awake so it observes the stop flag (the same
        // self-connect pattern `rdo_net`'s worker listener uses).
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
    }
}

/// One client session: a loop of query frames until the peer disconnects. A
/// malformed frame errors (and closes) only this session; malformed SQL or a
/// failed execution sends a structured error frame and keeps the session
/// open.
fn session(shared: Arc<Shared>, stream: TcpStream) {
    shared.trace.counter("server.sessions_opened", 1);
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    loop {
        match read_frame(&mut reader) {
            Ok(None) => break, // clean disconnect between frames
            Ok(Some((Tag::Query, payload))) => {
                let outcome = match String::from_utf8(payload) {
                    Ok(sql) => run_query(&shared, &sql),
                    Err(_) => Err((ErrorCode::InvalidSql, "query text is not UTF-8".to_string())),
                };
                if respond(&mut writer, outcome).is_err() {
                    break; // mid-response disconnect: this session only
                }
            }
            Ok(Some((tag, _))) => {
                // A well-formed frame the server has no business receiving.
                let _ = write_frame(
                    &mut writer,
                    Tag::Error,
                    &encode_error(
                        ErrorCode::Protocol,
                        &format!("unexpected frame {tag:?} from client"),
                    ),
                );
                break;
            }
            Err(e) => {
                // Garbage tag, oversized length or truncated frame: tell the
                // client if it is still there, then drop the session. The
                // listener and every other session keep running.
                let _ = write_frame(
                    &mut writer,
                    Tag::Error,
                    &encode_error(ErrorCode::Protocol, &e.to_string()),
                );
                break;
            }
        }
    }
}

/// Streams one query outcome back to the client.
fn respond(
    writer: &mut impl Write,
    outcome: std::result::Result<(Relation, RunSummary), (ErrorCode, String)>,
) -> Result<()> {
    match outcome {
        Ok((relation, summary)) => {
            write_frame(writer, Tag::ResultSchema, &encode_schema(relation.schema()))?;
            for chunk in relation.rows().chunks(ROWS_PER_FRAME) {
                write_frame(writer, Tag::ResultRows, &encode_rows(chunk))?;
            }
            write_frame(writer, Tag::ResultEnd, &encode_summary(&summary))
        }
        Err((code, message)) => write_frame(writer, Tag::Error, &encode_error(code, &message)),
    }
}

/// FNV-1a over the normalized text: a stable query name (`q<hash>`) so repeat
/// runs register identically-named intermediates and produce identical plan
/// signatures.
fn stable_name(key: &str) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in key.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("q{hash:016x}")
}

/// Compiles (or recalls) and executes one query under the server's shared
/// pool, admission budget and learned statistics.
fn run_query(
    shared: &Shared,
    sql: &str,
) -> std::result::Result<(Relation, RunSummary), (ErrorCode, String)> {
    let invalid = |e: rdo_common::RdoError| (ErrorCode::InvalidSql, e.to_string());

    // 1. Plan cache: normalized text is the key; a hit reuses the bound plan
    //    and plans statically from learned statistics (no pilot stages).
    let key = rdo_sql::normalize(sql).map_err(invalid)?;
    let cached = {
        let mut cache = shared.cache.lock().expect("cache mutex poisoned");
        cache.get(&key)
    };
    let warm = cached.is_some();
    shared.trace.counter(
        if warm {
            "server.plan_cache_hits"
        } else {
            "server.plan_cache_misses"
        },
        1,
    );
    let bound = match cached {
        Some(bound) => bound,
        None => Arc::new(
            rdo_sql::compile(
                sql,
                stable_name(&key),
                &shared.catalog,
                &shared.udfs,
                &shared.params,
            )
            .map_err(invalid)?,
        ),
    };

    // 2. Global admission: reserve this query's memory grant (FIFO, bounded
    //    wait). The RAII ticket returns the grant even on error/panic paths.
    let ticket = match &shared.admission {
        Some(controller) => {
            let grant = shared.config.query_grant;
            let timeout = Duration::from_millis(shared.config.admit_timeout_ms);
            let admitted = controller.admit(grant, timeout);
            shared
                .trace
                .gauge_max("server.admission_queue_depth", controller.max_queue_depth());
            match admitted {
                Ok(ticket) => {
                    shared.trace.counter("server.admissions", 1);
                    Some(ticket)
                }
                Err(e) => {
                    shared.trace.counter("server.admission_timeouts", 1);
                    return Err((ErrorCode::AdmissionTimeout, e.to_string()));
                }
            }
        }
        None => None,
    };

    // 3. Execute on the shared pool. The catalog clone keeps per-query
    //    intermediates and spill state private; the spill/join budgets are
    //    carved from the admission grant so per-query memory stays inside the
    //    global budget.
    let mut spill = SpillConfig::from_env();
    if let Some(ticket) = &ticket {
        let half = (ticket.bytes() / 2).max(1);
        spill = spill.with_budget(half).with_join_budget(half);
    }
    let mut config = DynamicConfig::dynamic(shared.config.rule)
        .with_parallel(shared.config.parallel)
        .with_spill(spill)
        .with_trace(TraceHandle::disabled())
        .with_pool(shared.pool.clone())
        .with_learned(Arc::clone(&shared.learned));
    if warm {
        // The statistics the pilot stages would re-measure are already in the
        // learned catalog: plan the join order statically from them.
        config = config.with_reopt_budget(0);
    }
    let driver = DynamicDriver::new(config);
    let mut catalog = shared.catalog.clone();
    let mut execute = || -> Result<(Relation, RunSummary)> {
        let outcome = driver.execute(&bound.spec, &mut catalog)?;
        let plan = outcome.plan_description();
        let summary_rows;
        let result = {
            let relation = bound.post.apply(outcome.result)?;
            summary_rows = relation.len() as u64;
            relation
        };
        Ok((
            result,
            RunSummary {
                rows: summary_rows,
                plan_cache_hit: warm,
                reopt_points: outcome.reoptimization_points,
                planner_invocations: outcome.planner_invocations,
                max_q_error: outcome.audit.max_q_error(),
                learned_hits: shared.learned.hits(),
                learned_misses: shared.learned.misses(),
                plan,
                audit: outcome.audit.render(),
            },
        ))
    };
    let outcome = execute();
    drop(ticket); // return the grant before replying

    match outcome {
        Ok(response) => {
            shared.trace.counter("server.queries_ok", 1);
            if !warm {
                // Cache only plans that executed successfully, so a poisoned
                // entry can never pin a failing plan.
                let mut cache = shared.cache.lock().expect("cache mutex poisoned");
                cache.insert(key, bound);
            }
            shared
                .trace
                .gauge_max("server.learned_entries", shared.learned.len() as u64);
            Ok(response)
        }
        Err(e) => {
            shared.trace.counter("server.queries_err", 1);
            Err((ErrorCode::Execution, e.to_string()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_and_env_overrides() {
        let defaults = ServerConfig::default();
        assert_eq!(defaults.addr, "127.0.0.1:0");
        assert_eq!(defaults.mem_budget, None);
        assert_eq!(defaults.admit_timeout_ms, DEFAULT_ADMIT_TIMEOUT_MS);
        assert_eq!(defaults.query_grant, DEFAULT_QUERY_GRANT);
        assert_eq!(defaults.plan_cache_cap, DEFAULT_PLAN_CACHE_CAP);
        assert_eq!(defaults.learned_cap, DEFAULT_LEARNED_CAP);

        let config = ServerConfig::from_env_with(|var| match var {
            ADDR_ENV => Some("0.0.0.0:5432".to_string()),
            MEM_BUDGET_ENV => Some("1048576".to_string()),
            ADMIT_TIMEOUT_ENV => Some("250".to_string()),
            QUERY_GRANT_ENV => Some("65536".to_string()),
            PLAN_CACHE_CAP_ENV => Some("8".to_string()),
            LEARNED_CAP_ENV => Some("128".to_string()),
            _ => None,
        });
        assert_eq!(config.addr, "0.0.0.0:5432");
        assert_eq!(config.mem_budget, Some(1 << 20));
        assert_eq!(config.admit_timeout_ms, 250);
        assert_eq!(config.query_grant, 65536);
        assert_eq!(config.plan_cache_cap, 8);
        assert_eq!(config.learned_cap, 128);
    }

    #[test]
    fn invalid_env_values_warn_and_keep_defaults() {
        // Set-but-garbage values fall back (and warn on stderr) instead of
        // silently configuring something else.
        let config = ServerConfig::from_env_with(|var| match var {
            MEM_BUDGET_ENV => Some("64MB".to_string()),
            ADMIT_TIMEOUT_ENV => Some("soon".to_string()),
            QUERY_GRANT_ENV => Some("-5".to_string()),
            PLAN_CACHE_CAP_ENV => Some("0".to_string()),
            LEARNED_CAP_ENV => Some("lots".to_string()),
            _ => None,
        });
        assert_eq!(config.mem_budget, None, "admission stays disabled");
        assert_eq!(config.admit_timeout_ms, DEFAULT_ADMIT_TIMEOUT_MS);
        assert_eq!(config.query_grant, DEFAULT_QUERY_GRANT);
        assert_eq!(
            config.plan_cache_cap, DEFAULT_PLAN_CACHE_CAP,
            "caps need >= 1"
        );
        assert_eq!(config.learned_cap, DEFAULT_LEARNED_CAP);
        // The underlying parser produces the warning text read_env prints.
        let warning = parse_env_u64(MEM_BUDGET_ENV, "64MB", "admission stays disabled")
            .expect_err("64MB is not a byte count");
        assert!(warning.contains(MEM_BUDGET_ENV) && warning.contains("admission stays disabled"));
    }

    #[test]
    fn lru_bounds_entries_and_tracks_recency() {
        let mut lru = Lru::new(2);
        lru.insert("a".into(), 1);
        lru.insert("b".into(), 2);
        assert_eq!(lru.get("a"), Some(1), "touch a so b is coldest");
        lru.insert("c".into(), 3);
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.get("b"), None, "coldest entry evicted");
        assert_eq!(lru.get("a"), Some(1));
        assert_eq!(lru.get("c"), Some(3));
        // Re-inserting an existing key refreshes instead of evicting.
        lru.insert("a".into(), 10);
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.get("a"), Some(10));
    }

    #[test]
    fn stable_name_is_deterministic_and_distinct() {
        let a = stable_name("SELECT 1");
        assert_eq!(a, stable_name("SELECT 1"));
        assert_ne!(a, stable_name("SELECT 2"));
        assert!(a.starts_with('q') && a.len() == 17);
    }
}
