//! The server wire protocol: length-prefixed frames over TCP, in the style of
//! `rdo_net::frame`.
//!
//! Every frame is `tag: u8` + `len: u32 LE` + `len` payload bytes. A query is
//! one [`Tag::Query`] frame carrying SQL text; the response is one
//! [`Tag::ResultSchema`] frame, zero or more [`Tag::ResultRows`] frames (the
//! result streamed in bounded chunks) and one [`Tag::ResultEnd`] frame with
//! the run summary — or a single [`Tag::Error`] frame with a structured
//! error code and message, after which the connection stays usable for the
//! next query. Malformed frames (unknown tag, oversized length, truncated
//! payload) error only the session that sent them.

use rdo_common::{DataType, Field, FieldRef, RdoError, Relation, Result, Schema, Tuple, Value};
use std::io::{Read, Write};

/// Refuses absurd frame lengths before allocating (a garbage length prefix
/// must not look like a 4 GiB allocation request).
pub const MAX_FRAME_LEN: usize = 1 << 26;

/// Rows per [`Tag::ResultRows`] frame, so arbitrarily large results stream in
/// bounded frames.
pub const ROWS_PER_FRAME: usize = 4096;

/// Frame tags of the SQL server protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Tag {
    /// Client → server: SQL text (UTF-8).
    Query = 1,
    /// Server → client: the result schema (field list).
    ResultSchema = 2,
    /// Server → client: one chunk of result rows.
    ResultRows = 3,
    /// Server → client: end of result + run summary.
    ResultEnd = 4,
    /// Server → client: structured error (code + message).
    Error = 5,
}

impl Tag {
    /// Parses a wire tag byte.
    pub fn from_u8(byte: u8) -> Option<Tag> {
        match byte {
            1 => Some(Tag::Query),
            2 => Some(Tag::ResultSchema),
            3 => Some(Tag::ResultRows),
            4 => Some(Tag::ResultEnd),
            5 => Some(Tag::Error),
            _ => None,
        }
    }
}

/// Structured error codes carried by [`Tag::Error`] frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum ErrorCode {
    /// The SQL text failed to tokenize, parse or bind.
    InvalidSql = 1,
    /// The query waited longer than the admission timeout for memory budget.
    AdmissionTimeout = 2,
    /// The query was admitted but execution failed.
    Execution = 3,
    /// The client sent a malformed frame (the server closes the connection).
    Protocol = 4,
}

impl ErrorCode {
    /// Parses a wire error code.
    pub fn from_u32(code: u32) -> Option<ErrorCode> {
        match code {
            1 => Some(ErrorCode::InvalidSql),
            2 => Some(ErrorCode::AdmissionTimeout),
            3 => Some(ErrorCode::Execution),
            4 => Some(ErrorCode::Protocol),
            _ => None,
        }
    }

    /// Short human label used in rendered error messages.
    pub fn label(&self) -> &'static str {
        match self {
            ErrorCode::InvalidSql => "invalid sql",
            ErrorCode::AdmissionTimeout => "admission timeout",
            ErrorCode::Execution => "execution error",
            ErrorCode::Protocol => "protocol error",
        }
    }
}

/// Writes one frame.
pub fn write_frame(writer: &mut impl Write, tag: Tag, payload: &[u8]) -> Result<()> {
    write_raw_frame(writer, tag as u8, payload)
}

/// Writes one frame with an arbitrary tag byte (robustness tests send tags
/// the server does not know).
pub fn write_raw_frame(writer: &mut impl Write, tag: u8, payload: &[u8]) -> Result<()> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(RdoError::Io(format!(
            "frame payload of {} bytes exceeds the {} byte limit",
            payload.len(),
            MAX_FRAME_LEN
        )));
    }
    let mut header = [0u8; 5];
    header[0] = tag;
    header[1..5].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    writer
        .write_all(&header)
        .and_then(|_| writer.write_all(payload))
        .and_then(|_| writer.flush())
        .map_err(|e| RdoError::Io(format!("frame write: {e}")))?;
    Ok(())
}

/// Reads one frame. `Ok(None)` is a clean end-of-stream (the peer closed
/// between frames); a close mid-frame, an unknown tag or an oversized length
/// is an error.
pub fn read_frame(reader: &mut impl Read) -> Result<Option<(Tag, Vec<u8>)>> {
    // Read the tag byte on its own: EOF before it is a clean end-of-stream
    // (the peer closed between frames), while EOF anywhere after it means the
    // peer died mid-frame and must be reported as an error.
    let mut tag_byte = [0u8; 1];
    loop {
        match reader.read(&mut tag_byte) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(RdoError::Io(format!("frame header read: {e}"))),
        }
    }
    let mut len_bytes = [0u8; 4];
    reader
        .read_exact(&mut len_bytes)
        .map_err(|e| RdoError::Io(format!("frame header truncated: {e}")))?;
    let tag = Tag::from_u8(tag_byte[0])
        .ok_or_else(|| RdoError::Io(format!("unknown frame tag {}", tag_byte[0])))?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME_LEN {
        return Err(RdoError::Io(format!(
            "frame length {len} exceeds the {MAX_FRAME_LEN} byte limit"
        )));
    }
    let mut payload = vec![0u8; len];
    reader
        .read_exact(&mut payload)
        .map_err(|e| RdoError::Io(format!("frame payload read ({len} bytes): {e}")))?;
    Ok(Some((tag, payload)))
}

// ---- payload encoding ------------------------------------------------------

fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

fn put_value(buf: &mut Vec<u8>, value: &Value) {
    match value {
        Value::Int64(v) => {
            buf.push(0);
            buf.extend_from_slice(&v.to_le_bytes());
        }
        Value::Float64(v) => {
            buf.push(1);
            buf.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        Value::Utf8(s) => {
            buf.push(2);
            put_str(buf, s);
        }
        Value::Bool(b) => {
            buf.push(3);
            buf.push(*b as u8);
        }
        Value::Date(v) => {
            buf.push(4);
            buf.extend_from_slice(&v.to_le_bytes());
        }
        Value::Null => buf.push(5),
    }
}

fn dtype_tag(dt: DataType) -> u8 {
    match dt {
        DataType::Int64 => 0,
        DataType::Float64 => 1,
        DataType::Utf8 => 2,
        DataType::Bool => 3,
        DataType::Date => 4,
        DataType::Null => 5,
    }
}

fn dtype_from_tag(tag: u8) -> Result<DataType> {
    Ok(match tag {
        0 => DataType::Int64,
        1 => DataType::Float64,
        2 => DataType::Utf8,
        3 => DataType::Bool,
        4 => DataType::Date,
        5 => DataType::Null,
        other => return Err(RdoError::Io(format!("unknown data-type tag {other}"))),
    })
}

/// A bounds-checked little-endian payload reader.
struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.at + n > self.buf.len() {
            return Err(RdoError::Io(format!(
                "truncated payload: wanted {n} bytes at offset {} of {}",
                self.at,
                self.buf.len()
            )));
        }
        let slice = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn str(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| RdoError::Io("payload string is not UTF-8".into()))
    }

    fn value(&mut self) -> Result<Value> {
        Ok(match self.u8()? {
            0 => Value::Int64(self.i64()?),
            1 => Value::Float64(self.f64()?),
            2 => Value::Utf8(self.str()?),
            3 => Value::Bool(self.u8()? != 0),
            4 => Value::Date(self.i64()?),
            5 => Value::Null,
            other => return Err(RdoError::Io(format!("unknown value tag {other}"))),
        })
    }

    fn done(&self) -> bool {
        self.at == self.buf.len()
    }
}

/// Encodes a [`Tag::ResultSchema`] payload.
pub fn encode_schema(schema: &Schema) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(&(schema.fields().len() as u32).to_le_bytes());
    for field in schema.fields() {
        put_str(&mut buf, &field.name.dataset);
        put_str(&mut buf, &field.name.field);
        buf.push(dtype_tag(field.data_type));
    }
    buf
}

/// Decodes a [`Tag::ResultSchema`] payload.
pub fn decode_schema(payload: &[u8]) -> Result<Schema> {
    let mut cur = Cursor::new(payload);
    let n = cur.u32()? as usize;
    let mut fields = Vec::with_capacity(n);
    for _ in 0..n {
        let dataset = cur.str()?;
        let name = cur.str()?;
        let dt = dtype_from_tag(cur.u8()?)?;
        fields.push(Field::new(FieldRef::new(dataset, name), dt));
    }
    Ok(Schema::new(fields))
}

/// Encodes one chunk of rows as a [`Tag::ResultRows`] payload.
pub fn encode_rows(rows: &[Tuple]) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(&(rows.len() as u32).to_le_bytes());
    for row in rows {
        for value in row.values() {
            put_value(&mut buf, value);
        }
    }
    buf
}

/// Decodes a [`Tag::ResultRows`] payload into tuples of `width` values each.
pub fn decode_rows(payload: &[u8], width: usize) -> Result<Vec<Tuple>> {
    let mut cur = Cursor::new(payload);
    let n = cur.u32()? as usize;
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        let mut values = Vec::with_capacity(width);
        for _ in 0..width {
            values.push(cur.value()?);
        }
        rows.push(Tuple::new(values));
    }
    if !cur.done() {
        return Err(RdoError::Io("trailing bytes after row payload".into()));
    }
    Ok(rows)
}

/// The run summary carried by a [`Tag::ResultEnd`] frame.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// Result row count (matches the streamed rows).
    pub rows: u64,
    /// True if the bound plan came from the server's plan cache (a repeat
    /// query) — repeat runs skip the pilot re-optimization stages.
    pub plan_cache_hit: bool,
    /// Re-optimization points the run spent (0 for cache-hit runs).
    pub reopt_points: u32,
    /// Planner invocations of the run.
    pub planner_invocations: u32,
    /// Worst estimate-vs-actual factor of the run's audit trail.
    pub max_q_error: f64,
    /// Learned-stats catalog hits, totalled over the server's lifetime at the
    /// time the query finished.
    pub learned_hits: u64,
    /// Learned-stats catalog misses, same totalling.
    pub learned_misses: u64,
    /// The executed stage plans, `;`-joined.
    pub plan: String,
    /// The rendered optimizer audit table (estimates vs actuals, decisions).
    pub audit: String,
}

/// Encodes a [`Tag::ResultEnd`] payload.
pub fn encode_summary(summary: &RunSummary) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(&summary.rows.to_le_bytes());
    buf.push(summary.plan_cache_hit as u8);
    buf.extend_from_slice(&summary.reopt_points.to_le_bytes());
    buf.extend_from_slice(&summary.planner_invocations.to_le_bytes());
    buf.extend_from_slice(&summary.max_q_error.to_bits().to_le_bytes());
    buf.extend_from_slice(&summary.learned_hits.to_le_bytes());
    buf.extend_from_slice(&summary.learned_misses.to_le_bytes());
    put_str(&mut buf, &summary.plan);
    put_str(&mut buf, &summary.audit);
    buf
}

/// Decodes a [`Tag::ResultEnd`] payload.
pub fn decode_summary(payload: &[u8]) -> Result<RunSummary> {
    let mut cur = Cursor::new(payload);
    Ok(RunSummary {
        rows: cur.u64()?,
        plan_cache_hit: cur.u8()? != 0,
        reopt_points: cur.u32()?,
        planner_invocations: cur.u32()?,
        max_q_error: cur.f64()?,
        learned_hits: cur.u64()?,
        learned_misses: cur.u64()?,
        plan: cur.str()?,
        audit: cur.str()?,
    })
}

/// Encodes a [`Tag::Error`] payload.
pub fn encode_error(code: ErrorCode, message: &str) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(&(code as u32).to_le_bytes());
    put_str(&mut buf, message);
    buf
}

/// Decodes a [`Tag::Error`] payload.
pub fn decode_error(payload: &[u8]) -> Result<(ErrorCode, String)> {
    let mut cur = Cursor::new(payload);
    let raw = cur.u32()?;
    let code = ErrorCode::from_u32(raw)
        .ok_or_else(|| RdoError::Io(format!("unknown error code {raw}")))?;
    Ok((code, cur.str()?))
}

// ---- client ----------------------------------------------------------------

/// A query response: the reassembled result relation plus the run summary.
#[derive(Debug, Clone)]
pub struct QueryResponse {
    /// The result, bit-identical to what an in-process run produces.
    pub result: Relation,
    /// The run summary from the [`Tag::ResultEnd`] frame.
    pub summary: RunSummary,
}

/// A blocking client for the SQL server protocol.
#[derive(Debug)]
pub struct Client {
    reader: std::io::BufReader<std::net::TcpStream>,
    writer: std::io::BufWriter<std::net::TcpStream>,
}

impl Client {
    /// Connects to a server.
    pub fn connect(addr: &str) -> Result<Client> {
        let stream = std::net::TcpStream::connect(addr)
            .map_err(|e| RdoError::Io(format!("connect {addr}: {e}")))?;
        stream
            .set_nodelay(true)
            .map_err(|e| RdoError::Io(format!("set_nodelay: {e}")))?;
        let reader = std::io::BufReader::new(
            stream
                .try_clone()
                .map_err(|e| RdoError::Io(format!("stream clone: {e}")))?,
        );
        Ok(Client {
            reader,
            writer: std::io::BufWriter::new(stream),
        })
    }

    /// Sends one SQL query and reassembles the response. A server-side error
    /// frame becomes an `Err` whose message carries the structured code label
    /// (e.g. `admission timeout`); the connection stays usable afterwards.
    pub fn query(&mut self, sql: &str) -> Result<QueryResponse> {
        write_frame(&mut self.writer, Tag::Query, sql.as_bytes())?;
        let schema = match self.expect_frame()? {
            (Tag::ResultSchema, payload) => decode_schema(&payload)?,
            (Tag::Error, payload) => return Err(server_error(&payload)),
            (tag, _) => {
                return Err(RdoError::Io(format!(
                    "protocol violation: expected schema, got {tag:?}"
                )))
            }
        };
        let width = schema.fields().len();
        let mut rows = Vec::new();
        let summary = loop {
            match self.expect_frame()? {
                (Tag::ResultRows, payload) => rows.extend(decode_rows(&payload, width)?),
                (Tag::ResultEnd, payload) => break decode_summary(&payload)?,
                (Tag::Error, payload) => return Err(server_error(&payload)),
                (tag, _) => {
                    return Err(RdoError::Io(format!(
                        "protocol violation: expected rows or end, got {tag:?}"
                    )))
                }
            }
        };
        if rows.len() as u64 != summary.rows {
            return Err(RdoError::Io(format!(
                "row count mismatch: streamed {}, summary says {}",
                rows.len(),
                summary.rows
            )));
        }
        let result =
            Relation::new(schema, rows).map_err(|e| RdoError::Io(format!("reassembly: {e}")))?;
        Ok(QueryResponse { result, summary })
    }

    fn expect_frame(&mut self) -> Result<(Tag, Vec<u8>)> {
        read_frame(&mut self.reader)?
            .ok_or_else(|| RdoError::Io("server closed the connection mid-response".into()))
    }
}

/// Renders a server error frame as a client-side error.
fn server_error(payload: &[u8]) -> RdoError {
    match decode_error(payload) {
        Ok((code, message)) => RdoError::Execution(format!("server [{}]: {message}", code.label())),
        Err(e) => e,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_relation() -> Relation {
        let schema = Schema::new(vec![
            Field::new(FieldRef::new("t", "id"), DataType::Int64),
            Field::new(FieldRef::new("t", "name"), DataType::Utf8),
            Field::new(FieldRef::new("t", "score"), DataType::Float64),
        ]);
        let rows = vec![
            Tuple::new(vec![
                Value::Int64(1),
                Value::Utf8("a".into()),
                Value::Float64(1.5),
            ]),
            Tuple::new(vec![Value::Int64(-2), Value::Utf8("β".into()), Value::Null]),
        ];
        Relation::new(schema, rows).unwrap()
    }

    #[test]
    fn schema_and_rows_round_trip() {
        let rel = sample_relation();
        let schema = decode_schema(&encode_schema(rel.schema())).unwrap();
        assert_eq!(&schema, rel.schema());
        let rows = decode_rows(&encode_rows(rel.rows()), schema.fields().len()).unwrap();
        assert_eq!(rows, rel.rows().to_vec());
    }

    #[test]
    fn summary_round_trips() {
        let summary = RunSummary {
            rows: 7,
            plan_cache_hit: true,
            reopt_points: 0,
            planner_invocations: 1,
            max_q_error: 1.25,
            learned_hits: 3,
            learned_misses: 9,
            plan: "pushdown σ(d1) ; (f ⨝H d1)".into(),
            audit: "estimate audit (per stage):".into(),
        };
        assert_eq!(decode_summary(&encode_summary(&summary)).unwrap(), summary);
    }

    #[test]
    fn error_round_trips() {
        let (code, msg) =
            decode_error(&encode_error(ErrorCode::AdmissionTimeout, "waited 50ms")).unwrap();
        assert_eq!(code, ErrorCode::AdmissionTimeout);
        assert_eq!(msg, "waited 50ms");
    }

    #[test]
    fn frames_round_trip_and_reject_garbage() {
        let mut buf = Vec::new();
        write_frame(&mut buf, Tag::Query, b"SELECT 1").unwrap();
        let (tag, payload) = read_frame(&mut &buf[..]).unwrap().unwrap();
        assert_eq!(tag, Tag::Query);
        assert_eq!(payload, b"SELECT 1");
        // Clean EOF between frames.
        assert!(read_frame(&mut &[][..]).unwrap().is_none());
        // A peer dying after 1-4 header bytes is a mid-frame close, not a
        // clean disconnect.
        for sent in 1..5 {
            let fragment = vec![Tag::Query as u8; sent];
            let err = read_frame(&mut &fragment[..]).unwrap_err();
            assert!(err.to_string().contains("truncated"), "{sent} bytes: {err}");
        }
        // Unknown tag.
        let bad = [99u8, 0, 0, 0, 0];
        assert!(read_frame(&mut &bad[..]).is_err());
        // Oversized length prefix refuses before allocating.
        let mut oversized = vec![Tag::Query as u8];
        oversized.extend_from_slice(&(u32::MAX).to_le_bytes());
        assert!(read_frame(&mut &oversized[..]).is_err());
        // Truncated payload.
        let mut truncated = Vec::new();
        write_frame(&mut truncated, Tag::Query, b"SELECT 1").unwrap();
        truncated.truncate(truncated.len() - 3);
        assert!(read_frame(&mut &truncated[..]).is_err());
    }

    #[test]
    fn decoders_reject_truncated_payloads() {
        let rel = sample_relation();
        let schema_bytes = encode_schema(rel.schema());
        assert!(decode_schema(&schema_bytes[..schema_bytes.len() - 1]).is_err());
        let rows_bytes = encode_rows(rel.rows());
        assert!(decode_rows(&rows_bytes[..rows_bytes.len() - 1], 3).is_err());
        assert!(decode_rows(&rows_bytes, 2).is_err(), "width mismatch");
    }
}
