//! HyperLogLog distinct-count sketch.
//!
//! The paper uses HyperLogLog [Flajolet et al.] to estimate `U(x.k)`, the number
//! of unique values of a join-key attribute, which is the denominator of the
//! join-result-size formula. The implementation below is the classic
//! register-array variant with the small-range (linear counting) and large-range
//! corrections.

use rdo_common::Value;
use std::hash::{Hash, Hasher};

/// Deterministic 64-bit hash used by the sketch (FNV-1a followed by a finalizer).
/// A hand-rolled hasher keeps results stable across Rust versions, which the
/// test-suite accuracy bounds rely on.
#[derive(Clone, Copy)]
struct StableHasher {
    state: u64,
}

impl StableHasher {
    fn new() -> Self {
        Self {
            state: 0xcbf2_9ce4_8422_2325,
        }
    }

    fn finalize(mut self) -> u64 {
        // splitmix64 finalizer for better bit diffusion than raw FNV.
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        self.state = z ^ (z >> 31);
        self.state
    }
}

impl Hasher for StableHasher {
    fn finish(&self) -> u64 {
        self.state
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
}

/// Hashes a [`Value`] to a well-mixed 64-bit digest.
pub fn hash_value(value: &Value) -> u64 {
    let mut hasher = StableHasher::new();
    value.hash(&mut hasher);
    hasher.finalize()
}

// Columnar hash primitives. The batch kernels hash borrowed column slots
// without materializing a `Value`; each function below replays the exact
// byte stream `Value::hash` feeds the stable hasher (type tag, then the
// payload as `Hash` would write it), so for every value
// `hash_int64(v) == hash_value(&Value::Int64(v))` and likewise for the other
// variants. A cross-check test below keeps the two representations locked
// together — grace/repartition placement must be representation-invariant.

/// Digest of an `Int64` (or `Date` — the two hash identically, like
/// [`Value`]'s own `Hash`, so date-surrogate joins are type-agnostic).
pub fn hash_int64(v: i64) -> u64 {
    let mut hasher = StableHasher::new();
    hasher.write(&[1]);
    hasher.write(&v.to_ne_bytes());
    hasher.finalize()
}

/// Digest of a `Float64` (hashed through its IEEE-754 bit pattern).
pub fn hash_float64(v: f64) -> u64 {
    let mut hasher = StableHasher::new();
    hasher.write(&[2]);
    hasher.write(&v.to_bits().to_ne_bytes());
    hasher.finalize()
}

/// Digest of a `Utf8` string.
pub fn hash_utf8(s: &str) -> u64 {
    let mut hasher = StableHasher::new();
    hasher.write(&[3]);
    hasher.write(s.as_bytes());
    hasher.write(&[0xff]);
    hasher.finalize()
}

/// Digest of a `Bool`.
pub fn hash_bool(b: bool) -> u64 {
    let mut hasher = StableHasher::new();
    hasher.write(&[4]);
    hasher.write(&[b as u8]);
    hasher.finalize()
}

/// Digest of SQL NULL.
pub fn hash_null() -> u64 {
    let mut hasher = StableHasher::new();
    hasher.write(&[0]);
    hasher.finalize()
}

/// HyperLogLog sketch with `2^precision` registers.
#[derive(Debug, Clone)]
pub struct HyperLogLog {
    precision: u8,
    registers: Vec<u8>,
}

impl HyperLogLog {
    /// Default precision (2^12 = 4096 registers, ~1.6% standard error).
    pub const DEFAULT_PRECISION: u8 = 12;

    /// Creates a sketch with the given precision (4..=16).
    pub fn new(precision: u8) -> Self {
        assert!((4..=16).contains(&precision), "precision must be in 4..=16");
        Self {
            precision,
            registers: vec![0; 1 << precision],
        }
    }

    /// Creates a sketch with the default precision.
    pub fn default_precision() -> Self {
        Self::new(Self::DEFAULT_PRECISION)
    }

    /// Number of registers.
    pub fn num_registers(&self) -> usize {
        self.registers.len()
    }

    /// Adds a value to the sketch.
    pub fn insert(&mut self, value: &Value) {
        self.insert_hash(hash_value(value));
    }

    /// Adds a pre-hashed value.
    pub fn insert_hash(&mut self, hash: u64) {
        let p = self.precision as u32;
        let index = (hash >> (64 - p)) as usize;
        let rest = hash << p;
        // Number of leading zeros of the remaining bits, plus one; capped so the
        // register (u8) cannot overflow.
        let rank = if rest == 0 {
            (64 - p + 1) as u8
        } else {
            (rest.leading_zeros() + 1) as u8
        };
        if rank > self.registers[index] {
            self.registers[index] = rank;
        }
    }

    /// Merges another sketch of the same precision into this one.
    pub fn merge(&mut self, other: &HyperLogLog) {
        assert_eq!(
            self.precision, other.precision,
            "cannot merge HLL sketches of different precision"
        );
        for (a, b) in self.registers.iter_mut().zip(&other.registers) {
            if *b > *a {
                *a = *b;
            }
        }
    }

    /// Estimates the number of distinct values inserted.
    pub fn estimate(&self) -> f64 {
        let m = self.registers.len() as f64;
        let alpha = match self.registers.len() {
            16 => 0.673,
            32 => 0.697,
            64 => 0.709,
            _ => 0.7213 / (1.0 + 1.079 / m),
        };
        let sum: f64 = self.registers.iter().map(|&r| 2f64.powi(-(r as i32))).sum();
        let raw = alpha * m * m / sum;

        if raw <= 2.5 * m {
            // Small-range correction: linear counting.
            let zeros = self.registers.iter().filter(|&&r| r == 0).count();
            if zeros != 0 {
                return m * (m / zeros as f64).ln();
            }
            return raw;
        }
        let two64 = 2f64.powi(64);
        if raw > two64 / 30.0 {
            // Large-range correction.
            return -two64 * (1.0 - raw / two64).ln();
        }
        raw
    }

    /// Estimate rounded to a u64 count (never below 1 once something was added).
    pub fn estimate_count(&self) -> u64 {
        let est = self.estimate().round() as u64;
        if est == 0 && self.registers.iter().any(|&r| r != 0) {
            1
        } else {
            est
        }
    }

    /// True if nothing has been inserted.
    pub fn is_empty(&self) -> bool {
        self.registers.iter().all(|&r| r == 0)
    }
}

impl Default for HyperLogLog {
    fn default() -> Self {
        Self::default_precision()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn relative_error(estimate: f64, truth: f64) -> f64 {
        (estimate - truth).abs() / truth
    }

    #[test]
    fn empty_estimate_is_zero() {
        let hll = HyperLogLog::default();
        assert!(hll.is_empty());
        assert_eq!(hll.estimate_count(), 0);
    }

    #[test]
    fn single_value() {
        let mut hll = HyperLogLog::default();
        hll.insert(&Value::Int64(7));
        assert!(!hll.is_empty());
        assert_eq!(hll.estimate_count(), 1);
    }

    #[test]
    fn duplicates_do_not_inflate() {
        let mut hll = HyperLogLog::default();
        for _ in 0..10_000 {
            hll.insert(&Value::Int64(42));
        }
        assert_eq!(hll.estimate_count(), 1);
    }

    #[test]
    fn accuracy_small_cardinality() {
        let mut hll = HyperLogLog::default();
        for i in 0..500 {
            hll.insert(&Value::Int64(i));
        }
        assert!(relative_error(hll.estimate(), 500.0) < 0.05);
    }

    #[test]
    fn accuracy_medium_cardinality() {
        let mut hll = HyperLogLog::default();
        for i in 0..100_000i64 {
            hll.insert(&Value::Int64(i * 7 + 3));
        }
        let err = relative_error(hll.estimate(), 100_000.0);
        assert!(err < 0.05, "relative error {err} too high");
    }

    #[test]
    fn accuracy_string_values() {
        let mut hll = HyperLogLog::default();
        for i in 0..20_000 {
            hll.insert(&Value::Utf8(format!("customer#{i:08}")));
        }
        let err = relative_error(hll.estimate(), 20_000.0);
        assert!(err < 0.06, "relative error {err} too high");
    }

    #[test]
    fn merge_equals_union() {
        let mut a = HyperLogLog::new(12);
        let mut b = HyperLogLog::new(12);
        let mut both = HyperLogLog::new(12);
        for i in 0..30_000i64 {
            let v = Value::Int64(i);
            if i % 2 == 0 {
                a.insert(&v);
            } else {
                b.insert(&v);
            }
            both.insert(&v);
        }
        a.merge(&b);
        let diff = relative_error(a.estimate(), both.estimate());
        assert!(diff < 1e-9, "merged sketch must equal union sketch");
    }

    #[test]
    #[should_panic(expected = "different precision")]
    fn merge_different_precision_panics() {
        let mut a = HyperLogLog::new(10);
        let b = HyperLogLog::new(12);
        a.merge(&b);
    }

    #[test]
    fn int_and_date_treated_alike() {
        let mut a = HyperLogLog::default();
        let mut b = HyperLogLog::default();
        for i in 0..1000 {
            a.insert(&Value::Int64(i));
            b.insert(&Value::Date(i));
        }
        assert_eq!(a.estimate_count(), b.estimate_count());
    }

    #[test]
    fn columnar_primitives_match_value_hash() {
        // The representation-invariance contract: hashing a borrowed column
        // slot must equal hashing the materialized Value, for every variant
        // and every awkward payload (NaN, -0.0, infinities, huge strings).
        for v in [0i64, 1, -1, i64::MIN, i64::MAX, 42] {
            assert_eq!(hash_int64(v), hash_value(&Value::Int64(v)));
            assert_eq!(hash_int64(v), hash_value(&Value::Date(v)));
        }
        for f in [
            0.0f64,
            -0.0,
            1.5,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE,
        ] {
            assert_eq!(hash_float64(f), hash_value(&Value::Float64(f)));
        }
        let huge = "x".repeat(100_000);
        for s in ["", "a", "hello world", huge.as_str()] {
            assert_eq!(hash_utf8(s), hash_value(&Value::Utf8(s.to_string())));
        }
        assert_eq!(hash_bool(true), hash_value(&Value::Bool(true)));
        assert_eq!(hash_bool(false), hash_value(&Value::Bool(false)));
        assert_eq!(hash_null(), hash_value(&Value::Null));
        // -0.0 and 0.0 have different bit patterns, hence different digests.
        assert_ne!(hash_float64(0.0), hash_float64(-0.0));
    }

    #[test]
    fn precision_bounds_enforced() {
        let hll = HyperLogLog::new(4);
        assert_eq!(hll.num_registers(), 16);
        let hll = HyperLogLog::new(16);
        assert_eq!(hll.num_registers(), 65536);
    }
}
