//! Per-column statistics: row count, distinct-value estimate, equi-height
//! histogram and min/max.

use crate::gk::GkSketch;
use crate::histogram::EquiHeightHistogram;
use crate::hll::HyperLogLog;
use rdo_common::Value;

/// Statistics describing one column of a (base or intermediate) dataset.
#[derive(Debug, Clone)]
pub struct ColumnStats {
    /// Number of non-null rows observed.
    pub count: u64,
    /// Number of null rows observed.
    pub null_count: u64,
    /// Estimated number of distinct non-null values.
    pub distinct: u64,
    /// Equi-height histogram over the numeric rank of the values.
    pub histogram: EquiHeightHistogram,
    /// Minimum observed value rank.
    pub min: Option<f64>,
    /// Maximum observed value rank.
    pub max: Option<f64>,
}

impl ColumnStats {
    /// Estimated selectivity of `lo <= col <= hi` (on value ranks).
    pub fn range_selectivity(&self, lo: f64, hi: f64) -> f64 {
        self.histogram.range_selectivity(lo, hi)
    }

    /// Estimated selectivity of `col = v` (on value ranks).
    pub fn equality_selectivity(&self, v: f64) -> f64 {
        self.histogram
            .equality_selectivity(v, Some(self.distinct.max(1) as f64))
    }

    /// Distinct count, never below 1 when the column has rows (avoids division
    /// by zero in the join-size formula).
    pub fn distinct_nonzero(&self) -> f64 {
        if self.count == 0 {
            1.0
        } else {
            self.distinct.max(1) as f64
        }
    }
}

/// Streaming builder collecting a [`ColumnStats`] while scanning rows, exactly
/// like the ingestion pipeline and the Sink operator do in the paper.
#[derive(Debug, Clone)]
pub struct ColumnStatsBuilder {
    gk: GkSketch,
    hll: HyperLogLog,
    count: u64,
    null_count: u64,
    min: Option<f64>,
    max: Option<f64>,
    buckets: usize,
}

impl ColumnStatsBuilder {
    /// Creates a builder with the default histogram resolution.
    pub fn new() -> Self {
        Self::with_buckets(EquiHeightHistogram::DEFAULT_BUCKETS)
    }

    /// Creates a builder with a custom number of histogram buckets.
    pub fn with_buckets(buckets: usize) -> Self {
        Self {
            gk: GkSketch::new(0.01),
            hll: HyperLogLog::default_precision(),
            count: 0,
            null_count: 0,
            min: None,
            max: None,
            buckets,
        }
    }

    /// Observes one value.
    pub fn observe(&mut self, value: &Value) {
        if value.is_null() {
            self.null_count += 1;
            return;
        }
        let rank = value.numeric_rank();
        self.count += 1;
        self.gk.insert(rank);
        self.hll.insert(value);
        self.min = Some(self.min.map_or(rank, |m| m.min(rank)));
        self.max = Some(self.max.map_or(rank, |m| m.max(rank)));
    }

    /// Observes many values.
    pub fn observe_all<'a>(&mut self, values: impl IntoIterator<Item = &'a Value>) {
        for v in values {
            self.observe(v);
        }
    }

    /// Merges another builder (per-partition collection then coordinator merge).
    pub fn merge(&mut self, other: &ColumnStatsBuilder) {
        self.gk.merge(&other.gk);
        self.hll.merge(&other.hll);
        self.count += other.count;
        self.null_count += other.null_count;
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }

    /// Number of non-null values observed so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Finalizes the statistics.
    pub fn build(mut self) -> ColumnStats {
        let histogram = EquiHeightHistogram::from_sketch(&mut self.gk, self.buckets);
        ColumnStats {
            count: self.count,
            null_count: self.null_count,
            distinct: self.hll.estimate_count(),
            histogram,
            min: self.min,
            max: self.max,
        }
    }
}

impl Default for ColumnStatsBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_of(values: Vec<Value>) -> ColumnStats {
        let mut b = ColumnStatsBuilder::new();
        b.observe_all(values.iter());
        b.build()
    }

    #[test]
    fn counts_and_nulls() {
        let s = stats_of(vec![
            Value::Int64(1),
            Value::Null,
            Value::Int64(2),
            Value::Null,
        ]);
        assert_eq!(s.count, 2);
        assert_eq!(s.null_count, 2);
    }

    #[test]
    fn distinct_estimate_exactish_for_small_inputs() {
        let s = stats_of((0..100).map(Value::Int64).collect());
        assert!(
            (s.distinct as i64 - 100).abs() <= 3,
            "distinct {}",
            s.distinct
        );
    }

    #[test]
    fn distinct_of_constant_column_is_one() {
        let s = stats_of(vec![Value::Int64(7); 1000]);
        assert_eq!(s.distinct, 1);
        assert_eq!(s.min, Some(7.0));
        assert_eq!(s.max, Some(7.0));
    }

    #[test]
    fn min_max_tracking() {
        let s = stats_of(vec![Value::Int64(5), Value::Int64(-3), Value::Int64(12)]);
        assert_eq!(s.min, Some(-3.0));
        assert_eq!(s.max, Some(12.0));
    }

    #[test]
    fn range_and_equality_selectivity() {
        let s = stats_of((0..10_000).map(Value::Int64).collect());
        let r = s.range_selectivity(0.0, 999.0);
        assert!((r - 0.1).abs() < 0.05, "range selectivity {r}");
        let e = s.equality_selectivity(500.0);
        assert!(e > 0.0 && e < 0.01);
    }

    #[test]
    fn merge_combines_partitions() {
        let mut a = ColumnStatsBuilder::new();
        let mut b = ColumnStatsBuilder::new();
        for i in 0..5_000 {
            a.observe(&Value::Int64(i));
        }
        for i in 5_000..10_000 {
            b.observe(&Value::Int64(i));
        }
        a.merge(&b);
        let s = a.build();
        assert_eq!(s.count, 10_000);
        assert_eq!(s.min, Some(0.0));
        assert_eq!(s.max, Some(9_999.0));
        let err = (s.distinct as f64 - 10_000.0).abs() / 10_000.0;
        assert!(err < 0.05, "distinct error {err}");
    }

    #[test]
    fn distinct_nonzero_guards_empty() {
        let s = stats_of(vec![]);
        assert_eq!(s.distinct_nonzero(), 1.0);
        assert_eq!(s.count, 0);
    }

    #[test]
    fn string_columns_supported() {
        let s = stats_of(
            (0..500)
                .map(|i| Value::Utf8(format!("name{i:04}")))
                .collect(),
        );
        assert_eq!(s.count, 500);
        assert!((s.distinct as i64 - 500).abs() <= 15);
    }
}
