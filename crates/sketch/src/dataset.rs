//! Dataset-level statistics and the statistics catalog.
//!
//! The paper collects sketches "for every field of a dataset that may
//! participate in any query" at ingestion time and, for intermediate results,
//! "only on attributes that participate on subsequent join stages". The
//! [`DatasetStatsBuilder`] supports both modes by taking an explicit list of
//! tracked columns.

use crate::column::{ColumnStats, ColumnStatsBuilder};
use rdo_common::{FieldRef, RdoError, Relation, Result, Schema, Tuple};
use std::collections::HashMap;

/// Statistics for one dataset (base or intermediate).
#[derive(Debug, Clone, Default)]
pub struct DatasetStats {
    /// Number of rows in the dataset.
    pub row_count: u64,
    /// Per-column statistics keyed by (unqualified) column name.
    pub columns: HashMap<String, ColumnStats>,
}

impl DatasetStats {
    /// Returns the statistics for a column if tracked.
    pub fn column(&self, name: &str) -> Option<&ColumnStats> {
        self.columns.get(name)
    }

    /// Estimated number of distinct values of a column; falls back to the row
    /// count (every row distinct) when the column is untracked, which is the
    /// conservative assumption for key columns.
    pub fn distinct_or_rowcount(&self, name: &str) -> f64 {
        self.columns
            .get(name)
            .map(|c| c.distinct_nonzero())
            .unwrap_or_else(|| self.row_count.max(1) as f64)
    }
}

/// Streaming builder for [`DatasetStats`].
#[derive(Debug, Clone)]
pub struct DatasetStatsBuilder {
    row_count: u64,
    tracked: Vec<(String, usize)>,
    builders: Vec<ColumnStatsBuilder>,
}

impl DatasetStatsBuilder {
    /// Creates a builder tracking the given columns of `schema`. Column names
    /// may be qualified or unqualified; unknown columns are ignored (they may
    /// belong to other datasets of the same query).
    pub fn new(schema: &Schema, tracked_columns: &[String]) -> Self {
        let mut tracked = Vec::new();
        for name in tracked_columns {
            let field = match FieldRef::parse(name) {
                Ok(f) => f,
                Err(_) => FieldRef::new("", name.clone()),
            };
            let idx = if field.dataset.is_empty() {
                schema.index_of_unqualified(&field.field).ok()
            } else {
                schema.resolve(&field).ok()
            };
            if let Some(idx) = idx {
                let column_name = schema.field(idx).name.field.clone();
                if !tracked.iter().any(|(n, _)| n == &column_name) {
                    tracked.push((column_name, idx));
                }
            }
        }
        let builders = tracked.iter().map(|_| ColumnStatsBuilder::new()).collect();
        Self {
            row_count: 0,
            tracked,
            builders,
        }
    }

    /// Creates a builder tracking *all* columns of the schema (ingestion mode).
    pub fn all_columns(schema: &Schema) -> Self {
        let names: Vec<String> = schema
            .fields()
            .iter()
            .map(|f| f.name.field.clone())
            .collect();
        Self::new(schema, &names)
    }

    /// Observes one tuple.
    pub fn observe(&mut self, tuple: &Tuple) {
        self.row_count += 1;
        for ((_, idx), builder) in self.tracked.iter().zip(self.builders.iter_mut()) {
            builder.observe(tuple.value(*idx));
        }
    }

    /// Observes every row of a relation.
    pub fn observe_relation(&mut self, relation: &Relation) {
        for row in relation.rows() {
            self.observe(row);
        }
    }

    /// Number of rows observed.
    pub fn row_count(&self) -> u64 {
        self.row_count
    }

    /// Merges another builder collected over a disjoint set of rows of the same
    /// dataset — another cluster partition, or another LSM component of the
    /// ingestion pipeline. Columns are matched by name; columns tracked only by
    /// one side keep that side's state.
    pub fn merge(&mut self, other: &DatasetStatsBuilder) {
        self.row_count += other.row_count;
        for ((name, _), builder) in self.tracked.iter().zip(self.builders.iter_mut()) {
            if let Some(pos) = other.tracked.iter().position(|(n, _)| n == name) {
                builder.merge(&other.builders[pos]);
            }
        }
    }

    /// Names of the columns being tracked.
    pub fn tracked_columns(&self) -> Vec<String> {
        self.tracked.iter().map(|(n, _)| n.clone()).collect()
    }

    /// Finalizes the statistics.
    pub fn build(self) -> DatasetStats {
        let columns = self
            .tracked
            .into_iter()
            .zip(self.builders)
            .map(|((name, _), builder)| (name, builder.build()))
            .collect();
        DatasetStats {
            row_count: self.row_count,
            columns,
        }
    }
}

/// The statistics catalog: dataset name → statistics. This is the `Statistics`
/// object threaded through Algorithm 1 of the paper; it is updated after the
/// predicate push-down stage and after every materialized join.
#[derive(Debug, Clone, Default)]
pub struct StatsCatalog {
    datasets: HashMap<String, DatasetStats>,
}

impl StatsCatalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) the statistics of a dataset.
    pub fn register(&mut self, dataset: impl Into<String>, stats: DatasetStats) {
        self.datasets.insert(dataset.into(), stats);
    }

    /// Removes a dataset's statistics (used when the dataset is consumed by a
    /// materialized join and replaced by the intermediate result).
    pub fn remove(&mut self, dataset: &str) -> Option<DatasetStats> {
        self.datasets.remove(dataset)
    }

    /// Returns the statistics for a dataset.
    pub fn get(&self, dataset: &str) -> Option<&DatasetStats> {
        self.datasets.get(dataset)
    }

    /// Returns the statistics for a dataset or an error.
    pub fn require(&self, dataset: &str) -> Result<&DatasetStats> {
        self.get(dataset)
            .ok_or_else(|| RdoError::MissingStatistics(dataset.to_string()))
    }

    /// Row count of a dataset, if known.
    pub fn row_count(&self, dataset: &str) -> Option<u64> {
        self.get(dataset).map(|s| s.row_count)
    }

    /// Distinct-count estimate for `dataset.column`, falling back to the row
    /// count.
    pub fn distinct(&self, dataset: &str, column: &str) -> Option<f64> {
        self.get(dataset).map(|s| s.distinct_or_rowcount(column))
    }

    /// Names of all datasets with statistics.
    pub fn dataset_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.datasets.keys().cloned().collect();
        names.sort();
        names
    }

    /// True if the catalog has statistics for the dataset.
    pub fn contains(&self, dataset: &str) -> bool {
        self.datasets.contains_key(dataset)
    }

    /// Number of datasets tracked.
    pub fn len(&self) -> usize {
        self.datasets.len()
    }

    /// True if no dataset is tracked.
    pub fn is_empty(&self) -> bool {
        self.datasets.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdo_common::{DataType, Value};

    fn schema() -> Schema {
        Schema::for_dataset(
            "orders",
            &[
                ("o_orderkey", DataType::Int64),
                ("o_custkey", DataType::Int64),
                ("o_status", DataType::Utf8),
            ],
        )
    }

    fn relation(n: i64) -> Relation {
        let rows = (0..n)
            .map(|i| {
                Tuple::new(vec![
                    Value::Int64(i),
                    Value::Int64(i % 100),
                    Value::from(if i % 2 == 0 { "F" } else { "O" }),
                ])
            })
            .collect();
        Relation::new(schema(), rows).unwrap()
    }

    #[test]
    fn tracks_requested_columns_only() {
        let b = DatasetStatsBuilder::new(&schema(), &["o_custkey".into(), "unknown".into()]);
        assert_eq!(b.tracked_columns(), vec!["o_custkey".to_string()]);
    }

    #[test]
    fn qualified_column_names_accepted() {
        let b = DatasetStatsBuilder::new(&schema(), &["orders.o_orderkey".into()]);
        assert_eq!(b.tracked_columns(), vec!["o_orderkey".to_string()]);
    }

    #[test]
    fn duplicate_tracked_columns_deduplicated() {
        let b = DatasetStatsBuilder::new(
            &schema(),
            &["o_orderkey".into(), "orders.o_orderkey".into()],
        );
        assert_eq!(b.tracked_columns().len(), 1);
    }

    #[test]
    fn builds_dataset_stats() {
        let mut b = DatasetStatsBuilder::all_columns(&schema());
        b.observe_relation(&relation(1000));
        let stats = b.build();
        assert_eq!(stats.row_count, 1000);
        let custkey = stats.column("o_custkey").unwrap();
        assert!((custkey.distinct as i64 - 100).abs() <= 5);
        let status = stats.column("o_status").unwrap();
        assert!(status.distinct <= 3);
        assert_eq!(stats.distinct_or_rowcount("o_missing"), 1000.0);
    }

    #[test]
    fn merge_combines_disjoint_row_sets() {
        let mut a = DatasetStatsBuilder::all_columns(&schema());
        let mut b = DatasetStatsBuilder::all_columns(&schema());
        let full = relation(2_000);
        for (i, row) in full.rows().iter().enumerate() {
            if i < 1_000 {
                a.observe(row);
            } else {
                b.observe(row);
            }
        }
        a.merge(&b);
        let merged = a.build();

        let mut direct = DatasetStatsBuilder::all_columns(&schema());
        direct.observe_relation(&full);
        let reference = direct.build();

        assert_eq!(merged.row_count, reference.row_count);
        let merged_distinct = merged.column("o_orderkey").unwrap().distinct as f64;
        let reference_distinct = reference.column("o_orderkey").unwrap().distinct as f64;
        let relative = (merged_distinct - reference_distinct).abs() / reference_distinct;
        assert!(relative < 0.05, "merged distinct deviates by {relative}");
    }

    #[test]
    fn merge_ignores_columns_missing_from_other() {
        let mut a = DatasetStatsBuilder::new(&schema(), &["o_orderkey".into(), "o_custkey".into()]);
        let mut b = DatasetStatsBuilder::new(&schema(), &["o_orderkey".into()]);
        a.observe_relation(&relation(10));
        b.observe_relation(&relation(10));
        a.merge(&b);
        let stats = a.build();
        assert_eq!(stats.row_count, 20);
        assert_eq!(stats.column("o_orderkey").unwrap().count, 20);
        assert_eq!(stats.column("o_custkey").unwrap().count, 10);
    }

    #[test]
    fn catalog_roundtrip() {
        let mut catalog = StatsCatalog::new();
        assert!(catalog.is_empty());
        let mut b = DatasetStatsBuilder::all_columns(&schema());
        b.observe_relation(&relation(50));
        catalog.register("orders", b.build());
        assert!(catalog.contains("orders"));
        assert_eq!(catalog.row_count("orders"), Some(50));
        assert_eq!(catalog.len(), 1);
        assert!(catalog.require("orders").is_ok());
        assert!(catalog.require("lineitem").is_err());
        assert!(catalog.distinct("orders", "o_custkey").unwrap() >= 40.0);
        catalog.remove("orders");
        assert!(catalog.is_empty());
    }

    #[test]
    fn dataset_names_sorted() {
        let mut catalog = StatsCatalog::new();
        catalog.register("b", DatasetStats::default());
        catalog.register("a", DatasetStats::default());
        assert_eq!(
            catalog.dataset_names(),
            vec!["a".to_string(), "b".to_string()]
        );
    }
}
