//! Equi-height histograms derived from Greenwald–Khanna quantile boundaries.
//!
//! Section 4 of the paper: "we extract quantiles which represent the right
//! border of a bucket in an equi-height histogram. The buckets help us identify
//! estimates for different ranges which are very useful in the case that filters
//! exist in the base datasets."

use crate::gk::GkSketch;

/// An equi-height histogram over the numeric rank of a column.
#[derive(Debug, Clone, PartialEq)]
pub struct EquiHeightHistogram {
    /// `buckets + 1` boundaries; bucket `i` covers `[bounds[i], bounds[i+1]]`
    /// (the last bucket is closed on both ends).
    bounds: Vec<f64>,
    /// Number of rows represented by each bucket (equal by construction, except
    /// for rounding).
    bucket_count: f64,
    /// Total number of rows summarized.
    total: u64,
}

impl EquiHeightHistogram {
    /// Default number of buckets used by the statistics framework.
    pub const DEFAULT_BUCKETS: usize = 64;

    /// Builds the histogram from a GK sketch.
    pub fn from_sketch(sketch: &mut GkSketch, buckets: usize) -> Self {
        let total = sketch.count();
        let bounds = sketch.boundaries(buckets.max(1));
        let effective_buckets = bounds.len().saturating_sub(1).max(1);
        Self {
            bounds,
            bucket_count: total as f64 / effective_buckets as f64,
            total,
        }
    }

    /// Builds a histogram directly from values (convenience for tests and small
    /// relations).
    pub fn from_values(values: impl IntoIterator<Item = f64>, buckets: usize) -> Self {
        let mut sketch = GkSketch::new(0.005);
        sketch.extend(values);
        Self::from_sketch(&mut sketch, buckets)
    }

    /// Total number of rows summarized.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.bounds.len().saturating_sub(1)
    }

    /// Minimum observed value (approximate).
    pub fn min(&self) -> Option<f64> {
        self.bounds.first().copied()
    }

    /// Maximum observed value (approximate).
    pub fn max(&self) -> Option<f64> {
        self.bounds.last().copied()
    }

    /// Estimates the selectivity (fraction of rows in `[0,1]`) of the range
    /// predicate `lo <= x <= hi`. Either bound may be infinite.
    pub fn range_selectivity(&self, lo: f64, hi: f64) -> f64 {
        if self.total == 0 || self.bounds.len() < 2 || hi < lo {
            return 0.0;
        }
        let mut selected = 0.0;
        for i in 0..self.num_buckets() {
            let (b_lo, b_hi) = (self.bounds[i], self.bounds[i + 1]);
            let width = (b_hi - b_lo).max(f64::EPSILON);
            let overlap_lo = lo.max(b_lo);
            let overlap_hi = hi.min(b_hi);
            if overlap_hi >= overlap_lo {
                let frac = if b_hi == b_lo {
                    1.0
                } else {
                    ((overlap_hi - overlap_lo) / width).clamp(0.0, 1.0)
                };
                selected += frac * self.bucket_count;
            }
        }
        (selected / self.total as f64).clamp(0.0, 1.0)
    }

    /// Estimates the selectivity of an equality predicate `x = v`, assuming
    /// uniformity inside the bucket containing `v` and using `distinct` values
    /// for the per-value density when provided.
    pub fn equality_selectivity(&self, v: f64, distinct: Option<f64>) -> f64 {
        if self.total == 0 || self.bounds.len() < 2 {
            return 0.0;
        }
        if v < self.bounds[0] || v > *self.bounds.last().unwrap() {
            return 0.0;
        }
        match distinct {
            Some(d) if d > 0.0 => (1.0 / d).clamp(0.0, 1.0),
            _ => {
                // Fall back to one bucket's share spread over an assumed 10
                // distinct values per bucket.
                (self.bucket_count / self.total as f64 / 10.0).clamp(0.0, 1.0)
            }
        }
    }

    /// Estimates the number of rows satisfying `lo <= x <= hi`.
    pub fn estimate_range_rows(&self, lo: f64, hi: f64) -> f64 {
        self.range_selectivity(lo, hi) * self.total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_hist(n: u64, buckets: usize) -> EquiHeightHistogram {
        EquiHeightHistogram::from_values((0..n).map(|i| i as f64), buckets)
    }

    #[test]
    fn empty_histogram() {
        let h = EquiHeightHistogram::from_values(std::iter::empty(), 8);
        assert_eq!(h.total(), 0);
        assert_eq!(h.range_selectivity(0.0, 100.0), 0.0);
        assert_eq!(h.equality_selectivity(5.0, Some(10.0)), 0.0);
    }

    #[test]
    fn full_range_selectivity_is_one() {
        let h = uniform_hist(10_000, 32);
        let s = h.range_selectivity(f64::NEG_INFINITY, f64::INFINITY);
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn half_range_selectivity() {
        let h = uniform_hist(10_000, 64);
        let s = h.range_selectivity(0.0, 5_000.0);
        assert!((s - 0.5).abs() < 0.05, "selectivity {s} should be ~0.5");
    }

    #[test]
    fn narrow_range_selectivity() {
        let h = uniform_hist(100_000, 64);
        let s = h.range_selectivity(10_000.0, 11_000.0);
        assert!((s - 0.01).abs() < 0.01, "selectivity {s} should be ~0.01");
    }

    #[test]
    fn disjoint_range_has_zero_selectivity() {
        let h = uniform_hist(1_000, 16);
        assert_eq!(h.range_selectivity(5_000.0, 6_000.0), 0.0);
        assert_eq!(h.range_selectivity(-100.0, -1.0), 0.0);
    }

    #[test]
    fn inverted_range_is_zero() {
        let h = uniform_hist(1_000, 16);
        assert_eq!(h.range_selectivity(500.0, 100.0), 0.0);
    }

    #[test]
    fn equality_uses_distinct_count() {
        let h = uniform_hist(10_000, 64);
        let s = h.equality_selectivity(500.0, Some(10_000.0));
        assert!((s - 1.0 / 10_000.0).abs() < 1e-9);
        // Out-of-range equality is zero.
        assert_eq!(h.equality_selectivity(1e9, Some(10_000.0)), 0.0);
    }

    #[test]
    fn skewed_distribution_buckets_adapt() {
        // 90% of the mass at small values: the range covering them should report
        // ~90% selectivity even though it is narrow in value space.
        let values = (0..10_000u64).map(|i| {
            if i % 10 == 0 {
                1_000.0 + i as f64
            } else {
                i as f64 % 10.0
            }
        });
        let h = EquiHeightHistogram::from_values(values, 64);
        let s = h.range_selectivity(0.0, 9.0);
        assert!(s > 0.8, "selectivity {s} should capture the skewed mass");
    }

    #[test]
    fn estimate_rows_scales_with_total() {
        let h = uniform_hist(50_000, 64);
        let rows = h.estimate_range_rows(0.0, 25_000.0);
        assert!((rows - 25_000.0).abs() < 2_500.0);
    }

    #[test]
    fn min_max_reported() {
        let h = uniform_hist(1_000, 16);
        assert!(h.min().unwrap() <= 20.0);
        assert!(h.max().unwrap() >= 980.0);
        assert_eq!(h.num_buckets(), 16);
    }
}
