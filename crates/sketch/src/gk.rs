//! Greenwald–Khanna ε-approximate quantile sketch.
//!
//! The sketch maintains a summary of tuples `(v, g, Δ)` such that for any rank
//! query the returned value's true rank differs from the requested rank by at
//! most `ε·n`. The paper uses GK quantiles (via [Wang et al., SIGMOD'13]) to
//! derive the right borders of equi-height histogram buckets.

/// One entry of the GK summary.
#[derive(Debug, Clone, Copy, PartialEq)]
struct GkEntry {
    /// The sampled value.
    value: f64,
    /// Number of observations represented by this entry (gap to previous entry's
    /// minimum rank).
    g: u64,
    /// Uncertainty in the rank of this entry.
    delta: u64,
}

/// Greenwald–Khanna quantile sketch over `f64` observations.
#[derive(Debug, Clone)]
pub struct GkSketch {
    epsilon: f64,
    entries: Vec<GkEntry>,
    count: u64,
    /// Observations buffered since the last compress.
    buffer: Vec<f64>,
}

impl GkSketch {
    /// Creates a sketch with the given rank-error bound `epsilon` (e.g. 0.01 for
    /// 1% of n).
    pub fn new(epsilon: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0, 1)");
        Self {
            epsilon,
            entries: Vec::new(),
            count: 0,
            buffer: Vec::with_capacity(256),
        }
    }

    /// The configured error bound.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Number of observations inserted so far.
    pub fn count(&self) -> u64 {
        self.count + self.buffer.len() as u64
    }

    /// Inserts one observation.
    pub fn insert(&mut self, value: f64) {
        self.buffer.push(value);
        if self.buffer.len() >= 256 {
            self.flush();
        }
    }

    /// Inserts many observations.
    pub fn extend(&mut self, values: impl IntoIterator<Item = f64>) {
        for v in values {
            self.insert(v);
        }
    }

    fn flush(&mut self) {
        if self.buffer.is_empty() {
            return;
        }
        let mut buf = std::mem::take(&mut self.buffer);
        buf.sort_by(|a, b| a.total_cmp(b));
        for v in buf {
            self.insert_sorted(v);
        }
        self.compress();
    }

    fn insert_sorted(&mut self, value: f64) {
        self.count += 1;
        let delta = if self.entries.is_empty() {
            0
        } else {
            (2.0 * self.epsilon * self.count as f64).floor() as u64
        };
        // Find insertion point: first entry with value >= new value.
        let pos = self
            .entries
            .iter()
            .position(|e| e.value >= value)
            .unwrap_or(self.entries.len());
        let delta = if pos == 0 || pos == self.entries.len() {
            0
        } else {
            delta.saturating_sub(1)
        };
        self.entries.insert(pos, GkEntry { value, g: 1, delta });
    }

    fn compress(&mut self) {
        if self.entries.len() < 3 {
            return;
        }
        let threshold = (2.0 * self.epsilon * self.count as f64).floor() as u64;
        let mut compressed: Vec<GkEntry> = Vec::with_capacity(self.entries.len());
        // Keep the first entry always; try to merge each entry into its successor.
        for entry in self.entries.drain(..) {
            let can_merge = match compressed.last() {
                Some(last) if compressed.len() > 1 => last.g + entry.g + entry.delta <= threshold,
                _ => false,
            };
            if can_merge {
                let last = compressed.last_mut().expect("checked non-empty");
                *last = GkEntry {
                    value: entry.value,
                    g: last.g + entry.g,
                    delta: entry.delta,
                };
            } else {
                compressed.push(entry);
            }
        }
        self.entries = compressed;
    }

    /// Returns the ε-approximate `phi`-quantile (`phi` in `[0, 1]`).
    ///
    /// Returns `None` if the sketch is empty.
    pub fn quantile(&mut self, phi: f64) -> Option<f64> {
        self.flush();
        if self.entries.is_empty() {
            return None;
        }
        let phi = phi.clamp(0.0, 1.0);
        let rank = (phi * self.count as f64).ceil() as u64;
        let target = rank + (self.epsilon * self.count as f64) as u64;
        let mut rmin = 0u64;
        for entry in &self.entries {
            rmin += entry.g;
            if rmin + entry.delta >= target || rmin >= rank.max(1) {
                return Some(entry.value);
            }
        }
        self.entries.last().map(|e| e.value)
    }

    /// Returns `n + 1` quantile boundaries splitting the data into `n`
    /// (approximately) equal-height buckets: `[q(0), q(1/n), ..., q(1)]`.
    pub fn boundaries(&mut self, buckets: usize) -> Vec<f64> {
        assert!(buckets >= 1);
        self.flush();
        if self.entries.is_empty() {
            return Vec::new();
        }
        (0..=buckets)
            .map(|i| self.quantile(i as f64 / buckets as f64).expect("non-empty"))
            .collect()
    }

    /// Number of summary entries currently retained (after an explicit flush).
    pub fn summary_size(&mut self) -> usize {
        self.flush();
        self.entries.len()
    }

    /// Merges another sketch into this one. GK sketches are not natively
    /// mergeable without inflating ε, so — matching what a per-partition
    /// collection followed by a coordinator merge does in practice — we re-feed
    /// the other summary's values weighted by their `g` counts.
    pub fn merge(&mut self, other: &GkSketch) {
        let mut other = other.clone();
        other.flush();
        for entry in &other.entries {
            for _ in 0..entry.g {
                self.insert(entry.value);
            }
        }
        for v in &other.buffer {
            self.insert(*v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sketch_of(values: impl IntoIterator<Item = f64>, eps: f64) -> GkSketch {
        let mut s = GkSketch::new(eps);
        s.extend(values);
        s
    }

    #[test]
    fn empty_sketch_has_no_quantiles() {
        let mut s = GkSketch::new(0.01);
        assert_eq!(s.quantile(0.5), None);
        assert!(s.boundaries(4).is_empty());
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn single_value() {
        let mut s = sketch_of([42.0], 0.01);
        assert_eq!(s.quantile(0.0), Some(42.0));
        assert_eq!(s.quantile(0.5), Some(42.0));
        assert_eq!(s.quantile(1.0), Some(42.0));
    }

    #[test]
    fn median_of_uniform_sequence() {
        let n = 10_000;
        let mut s = sketch_of((0..n).map(|i| i as f64), 0.01);
        let med = s.quantile(0.5).unwrap();
        let err = (med - (n as f64) / 2.0).abs() / n as f64;
        assert!(err <= 0.02, "median rank error {err} too large");
    }

    #[test]
    fn extreme_quantiles() {
        let n = 5_000;
        let mut s = sketch_of((0..n).map(|i| i as f64), 0.01);
        assert!(s.quantile(0.0).unwrap() <= 100.0);
        assert!(s.quantile(1.0).unwrap() >= (n - 100) as f64);
    }

    #[test]
    fn quantiles_are_monotone() {
        let mut s = sketch_of((0..20_000).map(|i| ((i * 37) % 1000) as f64), 0.01);
        let qs: Vec<f64> = (0..=10)
            .map(|i| s.quantile(i as f64 / 10.0).unwrap())
            .collect();
        for w in qs.windows(2) {
            assert!(w[0] <= w[1], "quantiles must be non-decreasing: {qs:?}");
        }
    }

    #[test]
    fn summary_is_sublinear() {
        let mut s = sketch_of((0..50_000).map(|i| (i % 999) as f64), 0.01);
        assert!(
            s.summary_size() < 5_000,
            "summary size {} should be far below n",
            s.summary_size()
        );
    }

    #[test]
    fn boundaries_cover_range() {
        let mut s = sketch_of((0..1_000).map(|i| i as f64), 0.01);
        let b = s.boundaries(10);
        assert_eq!(b.len(), 11);
        assert!(b[0] <= 20.0);
        assert!(b[10] >= 980.0);
        for w in b.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = sketch_of((0..1000).map(|i| i as f64), 0.02);
        let b = sketch_of((1000..2000).map(|i| i as f64), 0.02);
        a.merge(&b);
        assert_eq!(a.count(), 2000);
        let med = a.quantile(0.5).unwrap();
        assert!((med - 1000.0).abs() <= 100.0, "merged median {med}");
    }

    #[test]
    fn skewed_data_quantiles() {
        // 90% of values are 0, 10% are 100.
        let mut s = GkSketch::new(0.01);
        for i in 0..10_000 {
            s.insert(if i % 10 == 0 { 100.0 } else { 0.0 });
        }
        assert_eq!(s.quantile(0.5).unwrap(), 0.0);
        assert_eq!(s.quantile(0.85).unwrap(), 0.0);
        assert_eq!(s.quantile(0.99).unwrap(), 100.0);
    }
}
