//! Statistical sketches used by the statistics-collection framework (Section 4
//! of the paper).
//!
//! Two sketch types are collected for every join-key field, both at ingestion
//! time for base datasets and at every Sink (materialization) point for
//! intermediate results:
//!
//! * **Quantile sketches** following the Greenwald–Khanna algorithm, from which
//!   equi-height histograms are extracted to estimate range/equality
//!   selectivities of local predicates.
//! * **HyperLogLog sketches** estimating the number of distinct values of a
//!   field, which feeds the System-R join-cardinality formula
//!   `|A ⋈ B| = S(A)·S(B) / max(U(A.k), U(B.k))`.

pub mod column;
pub mod dataset;
pub mod gk;
pub mod histogram;
pub mod hll;

pub use column::{ColumnStats, ColumnStatsBuilder};
pub use dataset::{DatasetStats, DatasetStatsBuilder, StatsCatalog};
pub use gk::GkSketch;
pub use histogram::EquiHeightHistogram;
pub use hll::HyperLogLog;
