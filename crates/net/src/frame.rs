//! Length-prefixed wire framing and the page-batch row encoding.
//!
//! Every message on a coordinator↔worker connection is one *frame*:
//!
//! ```text
//! frame := tag u8, len u32 (little-endian), payload len×u8
//! ```
//!
//! Row data travels as **page batches**: rows are encoded with the
//! [`rdo_spill::codec`] tuple codec into page-sized bodies, each body passed
//! through [`rdo_spill::compress::encode_page`] (so the wire reuses the spill
//! store's optional LZ page compression, flag byte included), and each page
//! shipped as one [`Tag::Page`] frame whose payload is the row count followed
//! by the page blob. A [`Tag::End`] frame closes the batch. The codec
//! roundtrip is exact — NULLs, NaN bit patterns and huge strings survive — so
//! rows that cross a socket compare bit-identical to rows that never left the
//! process.
//!
//! With `RDO_COLUMNAR` on, a sender frames each page in **both** layouts —
//! the row codec and the [`rdo_spill::colcodec`] column runs, whose
//! same-type value runs the LZ compressor squeezes much harder on tabular
//! data — and ships whichever blob is smaller. Page boundaries are identical
//! either way (decided by the row codec's size accounting), and the layout
//! travels purely in the frame-type byte: [`Tag::ColPage`]/[`Tag::ColBucket`]
//! for columnar bodies, the plain tags for row bodies. Every reader accepts
//! both families, so a columnar coordinator interoperates with a row-format
//! worker and vice versa.

use rdo_common::{RdoError, Result, Tuple};
use rdo_spill::codec::{decode_rows, encode_tuple};
use rdo_spill::compress::{decode_page, encode_page_with, LzScratch};
use std::io::{Read, Write};

/// Target page-body size for wire page batches. Smaller than a disk page
/// would amortize framing poorly; bigger delays streaming. 32 KiB mirrors a
/// typical exchange buffer.
pub const WIRE_PAGE_SIZE: usize = 32 * 1024;

/// Upper bound on a single frame's payload (corruption guard: a garbled
/// length prefix fails fast instead of attempting a multi-gigabyte read).
pub const MAX_FRAME_LEN: u32 = 1 << 30;

/// Frame tags of the exchange protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Tag {
    /// Coordinator → worker: run a repartition kernel over the page batch
    /// that follows. Payload: `key_index u32, from u32, num_partitions u32`.
    Repartition = 1,
    /// Coordinator → worker: receive a broadcast replica (page batch
    /// follows). Empty payload.
    Broadcast = 2,
    /// Coordinator → worker: round-trip one partition for result delivery
    /// (page batch follows, worker streams it back). Payload: `partition u32`.
    Gather = 3,
    /// Coordinator → worker: acknowledge and exit the serve loop. Empty
    /// payload.
    Shutdown = 4,
    /// One page of a row batch. Payload: `rows u32, page blob` (the blob is
    /// a [`rdo_spill::compress::encode_page`] output, flag byte included).
    Page = 5,
    /// Closes a page batch. Empty payload.
    End = 6,
    /// Worker → coordinator: repartition tally. Payload:
    /// `moved_rows u64, moved_bytes u64`.
    Tally = 7,
    /// Worker → coordinator: generic acknowledgement. Payload: `value u64`.
    Ack = 8,
    /// One page of one repartition output bucket. Payload:
    /// `to u32, rows u32, page blob`.
    Bucket = 9,
    /// Coordinator → worker: liveness probe during connect. Empty payload.
    Ping = 10,
    /// One page of a row batch in the columnar layout. Payload:
    /// `rows u32, page blob` where the decompressed body is a
    /// [`rdo_spill::colcodec`] batch. Batch framing (End termination)
    /// matches [`Tag::Page`].
    ColPage = 11,
    /// One page of one repartition output bucket in the columnar layout.
    /// Payload: `to u32, rows u32, page blob`. Batch framing matches
    /// [`Tag::Bucket`].
    ColBucket = 12,
}

impl Tag {
    fn from_u8(raw: u8) -> Result<Tag> {
        Ok(match raw {
            1 => Tag::Repartition,
            2 => Tag::Broadcast,
            3 => Tag::Gather,
            4 => Tag::Shutdown,
            5 => Tag::Page,
            6 => Tag::End,
            7 => Tag::Tally,
            8 => Tag::Ack,
            9 => Tag::Bucket,
            10 => Tag::Ping,
            11 => Tag::ColPage,
            12 => Tag::ColBucket,
            other => return Err(corrupt(&format!("unknown frame tag {other}"))),
        })
    }
}

fn corrupt(what: &str) -> RdoError {
    RdoError::Execution(format!("corrupt exchange frame: {what}"))
}

/// Writes one frame.
pub fn write_frame(w: &mut impl Write, tag: Tag, payload: &[u8]) -> Result<()> {
    if payload.len() as u64 > MAX_FRAME_LEN as u64 {
        return Err(corrupt("payload exceeds MAX_FRAME_LEN"));
    }
    w.write_all(&[tag as u8])?;
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    Ok(())
}

/// Reads one frame. Returns `None` on a clean end-of-stream (the peer closed
/// the connection between frames).
pub fn read_frame(r: &mut impl Read) -> Result<Option<(Tag, Vec<u8>)>> {
    let mut tag_byte = [0u8; 1];
    match r.read_exact(&mut tag_byte) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e.into()),
    }
    let tag = Tag::from_u8(tag_byte[0])?;
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME_LEN {
        return Err(corrupt("frame length exceeds MAX_FRAME_LEN"));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some((tag, payload)))
}

/// Reads one frame, erroring on end-of-stream (for protocol positions where
/// the peer closing the connection is a failure, not a clean finish).
pub fn expect_frame(r: &mut impl Read) -> Result<(Tag, Vec<u8>)> {
    read_frame(r)?.ok_or_else(|| corrupt("peer closed the connection mid-exchange"))
}

/// Little-endian scalar readers for frame payloads.
pub mod payload {
    use super::corrupt;
    use rdo_common::Result;

    /// Reads a `u32` at byte offset `at`.
    pub fn u32_at(bytes: &[u8], at: usize) -> Result<u32> {
        let b = bytes
            .get(at..at + 4)
            .ok_or_else(|| corrupt("truncated u32"))?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a `u64` at byte offset `at`.
    pub fn u64_at(bytes: &[u8], at: usize) -> Result<u64> {
        let b = bytes
            .get(at..at + 8)
            .ok_or_else(|| corrupt("truncated u64"))?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
}

/// Encodes `rows` into page frames on `w`, closing the batch with a
/// [`Tag::End`] frame when `tag` is [`Tag::Page`]. [`Tag::Bucket`] batches
/// are *not* End-terminated — several buckets share one response, and the
/// closing [`Tag::Tally`] frame is their terminator.
///
/// With `columnar` set, each page is framed in *both* layouts — the
/// [`rdo_spill::colcodec`] column runs and the row codec — and the smaller
/// blob goes on the wire under the matching frame-type byte
/// ([`Tag::ColPage`]/[`Tag::ColBucket`] for columnar bodies, the plain tags
/// for row bodies), so a columnar sender never ships more bytes than a row
/// sender. Page boundaries are decided by the row codec's size accounting
/// either way, and the receiver dispatches per frame, so the knob never has
/// to match between peers.
///
/// `header` prefixes every page payload (empty for plain [`Tag::Page`]
/// batches; the repartition response uses it to tag bucket pages with their
/// destination partition). Returns the number of pages written.
pub fn write_page_batch(
    w: &mut impl Write,
    tag: Tag,
    header: &[u8],
    rows: &[Tuple],
    compress: bool,
    columnar: bool,
    scratch: &mut LzScratch,
) -> Result<u64> {
    let col_tag = match tag {
        Tag::Page => Tag::ColPage,
        Tag::Bucket => Tag::ColBucket,
        other => other,
    };
    let mut body: Vec<u8> = Vec::new();
    let mut pages = 0u64;
    let mut flush =
        |body: &mut Vec<u8>, page_rows: &[Tuple], scratch: &mut LzScratch| -> Result<()> {
            let row_blob = encode_page_with(scratch, body, compress);
            let (wire_tag, blob) = if columnar {
                let width = page_rows.first().map_or(0, Tuple::len);
                let mut col_body = Vec::new();
                rdo_spill::colcodec::encode_rows(&mut col_body, width, page_rows);
                let col_blob = encode_page_with(scratch, &col_body, compress);
                if col_blob.len() < row_blob.len() {
                    (col_tag, col_blob)
                } else {
                    (tag, row_blob)
                }
            } else {
                (tag, row_blob)
            };
            let mut payload = Vec::with_capacity(header.len() + 4 + blob.len());
            payload.extend_from_slice(header);
            payload.extend_from_slice(&(page_rows.len() as u32).to_le_bytes());
            payload.extend_from_slice(&blob);
            write_frame(w, wire_tag, &payload)?;
            body.clear();
            Ok(())
        };
    // Page boundaries come from the row codec body size in both layouts, so
    // page counts and per-page row counts are layout-invariant.
    let mut page_start = 0usize;
    for (i, row) in rows.iter().enumerate() {
        encode_tuple(&mut body, row);
        if body.len() >= WIRE_PAGE_SIZE {
            flush(&mut body, &rows[page_start..=i], scratch)?;
            pages += 1;
            page_start = i + 1;
        }
    }
    if page_start < rows.len() {
        flush(&mut body, &rows[page_start..], scratch)?;
        pages += 1;
    }
    if tag == Tag::Page {
        write_frame(w, Tag::End, &[])?;
    }
    Ok(pages)
}

/// Decodes one page payload (`rows u32, page blob` at byte offset `at`) back
/// into tuples, dispatching the body layout on the frame tag it arrived
/// under: [`Tag::Page`]/[`Tag::Bucket`] bodies hold the row codec,
/// [`Tag::ColPage`]/[`Tag::ColBucket`] bodies hold the columnar codec.
pub fn decode_page_payload(tag: Tag, payload: &[u8], at: usize) -> Result<Vec<Tuple>> {
    let rows = payload::u32_at(payload, at)? as usize;
    let blob = payload
        .get(at + 4..)
        .ok_or_else(|| corrupt("truncated page blob"))?;
    let body = decode_page(blob)?;
    match tag {
        Tag::Page | Tag::Bucket => decode_rows(&body, rows),
        Tag::ColPage | Tag::ColBucket => rdo_spill::colcodec::decode_rows(&body, rows),
        other => Err(corrupt(&format!("{other:?} is not a page frame"))),
    }
}

/// Reads a page batch until [`Tag::End`], returning the decoded rows. Both
/// body layouts are accepted ([`Tag::Page`] and [`Tag::ColPage`] frames may
/// even be mixed within one batch), so a reader never needs to know the
/// sender's `RDO_COLUMNAR` setting.
pub fn read_page_batch(r: &mut impl Read) -> Result<Vec<Tuple>> {
    let mut rows = Vec::new();
    loop {
        let (tag, payload) = expect_frame(r)?;
        match tag {
            Tag::Page | Tag::ColPage => rows.extend(decode_page_payload(tag, &payload, 0)?),
            Tag::End => return Ok(rows),
            other => return Err(corrupt(&format!("expected Page/End, got {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdo_common::Value;

    fn rows(n: i64) -> Vec<Tuple> {
        (0..n)
            .map(|i| {
                Tuple::new(vec![
                    Value::Int64(i),
                    Value::Utf8(format!("row-{i}")),
                    if i % 7 == 0 {
                        Value::Null
                    } else {
                        Value::Float64(i as f64 / 3.0)
                    },
                ])
            })
            .collect()
    }

    #[test]
    fn frames_roundtrip_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, Tag::Gather, &7u32.to_le_bytes()).unwrap();
        write_frame(&mut buf, Tag::End, &[]).unwrap();
        let mut cursor = &buf[..];
        let (tag, payload) = expect_frame(&mut cursor).unwrap();
        assert_eq!(tag, Tag::Gather);
        assert_eq!(payload::u32_at(&payload, 0).unwrap(), 7);
        let (tag, payload) = expect_frame(&mut cursor).unwrap();
        assert_eq!(tag, Tag::End);
        assert!(payload.is_empty());
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn page_batches_roundtrip_compressed_and_raw() {
        // Enough rows that the batch spans multiple wire pages, in every
        // (compression, layout) combination.
        let data = rows(20_000);
        for compress in [true, false] {
            for columnar in [true, false] {
                let mut buf = Vec::new();
                let mut scratch = LzScratch::new();
                let pages = write_page_batch(
                    &mut buf,
                    Tag::Page,
                    &[],
                    &data,
                    compress,
                    columnar,
                    &mut scratch,
                )
                .unwrap();
                assert!(
                    pages > 1,
                    "multi-page batch (compress={compress} columnar={columnar})"
                );
                let mut cursor = &buf[..];
                let back = read_page_batch(&mut cursor).unwrap();
                assert_eq!(
                    back, data,
                    "exact roundtrip (compress={compress} columnar={columnar})"
                );
            }
        }
    }

    /// Rows shaped like the evaluation workloads: an id column, a low-
    /// cardinality categorical string and a derived float — the shape the
    /// columnar layout compresses decisively better.
    fn tabular(n: i64) -> Vec<Tuple> {
        (0..n)
            .map(|i| {
                Tuple::new(vec![
                    Value::Int64(i),
                    Value::Utf8(format!("payload-{:06}", i % 50)),
                    Value::Float64(i as f64 / 7.0),
                ])
            })
            .collect()
    }

    /// The layout knob moves only the frame-type byte and the body layout:
    /// page boundaries (page count) are decided by the row codec's size
    /// accounting either way, a columnar sender never ships a longer stream
    /// (each page keeps the smaller of the two framings), and a reader
    /// decodes mixed-layout streams.
    #[test]
    fn columnar_batches_keep_row_page_boundaries_and_interoperate() {
        let data = tabular(20_000);
        let mut scratch = LzScratch::new();
        let mut row_buf = Vec::new();
        let row_pages = write_page_batch(
            &mut row_buf,
            Tag::Page,
            &[],
            &data,
            true,
            false,
            &mut scratch,
        )
        .unwrap();
        let mut col_buf = Vec::new();
        let col_pages = write_page_batch(
            &mut col_buf,
            Tag::Page,
            &[],
            &data,
            true,
            true,
            &mut scratch,
        )
        .unwrap();
        assert_eq!(col_pages, row_pages, "page boundaries are layout-invariant");
        assert_eq!(row_buf[0], Tag::Page as u8);
        assert_eq!(
            col_buf[0],
            Tag::ColPage as u8,
            "tabular pages pick the columnar framing"
        );
        assert!(
            col_buf.len() < row_buf.len(),
            "columnar stream is smaller on tabular data: {} vs {}",
            col_buf.len(),
            row_buf.len()
        );
        let mut cursor = &col_buf[..];
        assert_eq!(read_page_batch(&mut cursor).unwrap(), data);

        // Data where the columnar layout has no edge (unique strings, NULL
        // holes): the per-page pick falls back to row framing, never worse.
        let awkward = rows(200);
        let mut awkward_row = Vec::new();
        write_page_batch(
            &mut awkward_row,
            Tag::Page,
            &[],
            &awkward,
            true,
            false,
            &mut scratch,
        )
        .unwrap();
        let mut awkward_col = Vec::new();
        write_page_batch(
            &mut awkward_col,
            Tag::Page,
            &[],
            &awkward,
            true,
            true,
            &mut scratch,
        )
        .unwrap();
        assert!(
            awkward_col.len() <= awkward_row.len(),
            "the columnar knob never costs wire bytes: {} vs {}",
            awkward_col.len(),
            awkward_row.len()
        );

        // A row-format batch concatenated with a columnar batch decodes as
        // one stream: the reader dispatches per frame, not per connection.
        let mut mixed = Vec::new();
        write_page_batch(
            &mut mixed,
            Tag::Page,
            &[],
            &data[..100],
            true,
            false,
            &mut scratch,
        )
        .unwrap();
        write_page_batch(
            &mut mixed,
            Tag::Page,
            &[],
            &data[100..200],
            true,
            true,
            &mut scratch,
        )
        .unwrap();
        let mut cursor = &mixed[..];
        assert_eq!(read_page_batch(&mut cursor).unwrap(), data[..100]);
        assert_eq!(read_page_batch(&mut cursor).unwrap(), data[100..200]);
    }

    #[test]
    fn empty_batches_are_a_bare_end_frame() {
        for columnar in [false, true] {
            let mut buf = Vec::new();
            let mut scratch = LzScratch::new();
            let pages =
                write_page_batch(&mut buf, Tag::Page, &[], &[], true, columnar, &mut scratch)
                    .unwrap();
            assert_eq!(pages, 0);
            let mut cursor = &buf[..];
            assert!(read_page_batch(&mut cursor).unwrap().is_empty());
        }
    }

    #[test]
    fn garbage_frames_error_out() {
        let mut cursor: &[u8] = &[99u8, 0, 0, 0, 0];
        assert!(read_frame(&mut cursor).is_err(), "unknown tag");
        // A length prefix past the corruption guard.
        let mut huge = vec![Tag::Page as u8];
        huge.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut cursor = &huge[..];
        assert!(read_frame(&mut cursor).is_err(), "oversized length");
        // Truncated mid-payload: an error, not a clean EOF.
        let mut buf = Vec::new();
        write_frame(&mut buf, Tag::Ack, &42u64.to_le_bytes()).unwrap();
        let mut cursor = &buf[..buf.len() - 2];
        assert!(read_frame(&mut cursor).is_err(), "truncated payload");
    }
}
