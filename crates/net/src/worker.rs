//! The worker-process side of the TCP exchange backend.
//!
//! A worker is a stateless exchange server for the partition range the
//! coordinator assigns it: it decodes incoming page batches, runs the shared
//! per-partition exchange kernels of [`rdo_exec::partition`] on them, and
//! streams the outputs back as framed page batches. Because the kernels and
//! the row codec are byte-exact, a worker's answers are bit-identical to the
//! in-process exchange — the coordinator never needs to know (or test) which
//! transport produced a result.
//!
//! Process mode: [`worker_main`] binds a listener (`RDO_NET_LISTEN`, default
//! `127.0.0.1:0`), announces the bound address on stdout and serves until a
//! shutdown frame arrives. [`maybe_worker`] is the re-exec hook harness
//! binaries call first thing in `main`, so one binary can play both
//! coordinator and worker (see `examples/distributed.rs`).

use crate::frame::{decode_page_payload, read_page_batch};
use crate::frame::{payload, read_frame, write_frame, write_page_batch, Tag};
use rdo_common::{RdoError, Result};
use rdo_exec::partition::repartition_partition;
use rdo_spill::compress::LzScratch;
use rdo_spill::SpillConfig;
use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};

/// Environment variable that flips a harness binary into worker mode (see
/// [`maybe_worker`]).
pub const WORKER_MODE_ENV: &str = "RDO_NET_WORKER";

/// Environment variable with the address a worker process binds
/// (`127.0.0.1:0` — any free localhost port — when unset).
pub const LISTEN_ENV: &str = "RDO_NET_LISTEN";

/// Prefix of the one stdout line a worker process prints to announce its
/// bound address to whoever spawned it.
pub const ADDR_ANNOUNCE_PREFIX: &str = "RDO_NET_WORKER_ADDR ";

/// What a served connection asked the worker to do next.
enum Served {
    /// Keep accepting connections (the coordinator closed this one).
    Continue,
    /// A shutdown frame arrived: leave the serve loop.
    Stop,
}

/// Runs one worker process to completion: binds `RDO_NET_LISTEN` (default
/// `127.0.0.1:0`), prints the [`ADDR_ANNOUNCE_PREFIX`] line on stdout so the
/// spawner can discover the port, and serves exchange connections until a
/// shutdown frame arrives. Returns `Ok(())` on a clean shutdown — the
/// process exit code is the harness's to choose.
pub fn worker_main() -> Result<()> {
    let listen = std::env::var(LISTEN_ENV).unwrap_or_else(|_| "127.0.0.1:0".to_string());
    let listener = TcpListener::bind(&listen)
        .map_err(|e| RdoError::Io(format!("worker bind {listen}: {e}")))?;
    let addr = listener.local_addr()?;
    println!("{ADDR_ANNOUNCE_PREFIX}{addr}");
    std::io::stdout().flush()?;
    serve(listener)
}

/// The re-exec hook: when [`WORKER_MODE_ENV`] is set, runs [`worker_main`]
/// and returns `true` (the caller's `main` should exit); otherwise returns
/// `false` and the caller proceeds as coordinator. Harness binaries (the
/// distributed example and test) call this first thing, so spawning
/// `current_exe` with the variable set turns the same binary into a worker.
pub fn maybe_worker() -> Result<bool> {
    if std::env::var_os(WORKER_MODE_ENV).is_none() {
        return Ok(false);
    }
    worker_main()?;
    Ok(true)
}

/// Serves exchange connections on `listener` until a shutdown frame arrives.
/// Each connection gets its own thread (the shutdown frame typically arrives
/// on a fresh connection while a coordinator's exchange connection is still
/// open); a connection-level protocol error is reported on stderr and the
/// worker keeps accepting — a crashed coordinator must not take the cluster
/// down with it.
pub fn serve(listener: TcpListener) -> Result<()> {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let stop = Arc::new(AtomicBool::new(false));
    let self_addr = listener.local_addr()?;
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) => {
                rdo_common::warn!("rdo-net worker: accept failed: {e}");
                continue;
            }
        };
        if stop.load(Ordering::Acquire) {
            return Ok(());
        }
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || match serve_connection(stream) {
            Ok(Served::Continue) => {}
            Ok(Served::Stop) => {
                // Acknowledged the shutdown: flag the accept loop and poke
                // it with a throwaway connection so it observes the flag.
                stop.store(true, Ordering::Release);
                let _ = TcpStream::connect(self_addr);
            }
            Err(e) => rdo_common::warn!("rdo-net worker: connection failed: {e}"),
        });
    }
}

/// Handles one coordinator connection: a sequence of command frames, each
/// followed by its page batch, until the peer disconnects or asks for
/// shutdown.
fn serve_connection(stream: TcpStream) -> Result<Served> {
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let spill_env = SpillConfig::from_env();
    let (compress, columnar) = (spill_env.compress, spill_env.columnar);
    let mut scratch = LzScratch::new();
    // Tracing in worker processes follows the same env knobs as the
    // coordinator (the cluster spawner passes the environment through). Each
    // repartition command traces into a fresh handle whose spans and metrics
    // ship back inside that command's tally frame, so the coordinator can
    // adopt them under its per-worker exchange span.
    let tracing = rdo_trace::TraceHandle::from_env().is_enabled();
    loop {
        let Some((tag, header)) = read_frame(&mut reader)? else {
            return Ok(Served::Continue);
        };
        match tag {
            Tag::Ping => {
                write_frame(&mut writer, Tag::Ack, &0u64.to_le_bytes())?;
                writer.flush()?;
            }
            Tag::Shutdown => {
                write_frame(&mut writer, Tag::Ack, &0u64.to_le_bytes())?;
                writer.flush()?;
                return Ok(Served::Stop);
            }
            Tag::Repartition => {
                let key_index = payload::u32_at(&header, 0)? as usize;
                let from = payload::u32_at(&header, 4)? as usize;
                let num_partitions = payload::u32_at(&header, 8)? as usize;
                let trace = if tracing {
                    rdo_trace::TraceHandle::enabled()
                } else {
                    rdo_trace::TraceHandle::disabled()
                };
                let (buckets, moved_rows, moved_bytes) = {
                    let _install = trace.install();
                    let mut span = rdo_trace::span("serve.repartition");
                    span.attr_u64("from", from as u64);
                    span.attr_u64("fanout", num_partitions as u64);
                    let rows = read_page_batch(&mut reader)?;
                    span.attr_u64("rows_in", rows.len() as u64);
                    // Shipped back in the tally frame and adopted by the
                    // coordinator, so `/progress` sees worker-side movement.
                    rdo_trace::counter("progress.rows_repartitioned", rows.len() as u64);
                    repartition_partition(&rows, key_index, from, num_partitions)
                };
                for (to, bucket) in buckets.iter().enumerate() {
                    if bucket.is_empty() {
                        continue;
                    }
                    let to_header = (to as u32).to_le_bytes();
                    write_page_batch(
                        &mut writer,
                        Tag::Bucket,
                        &to_header,
                        bucket,
                        compress,
                        columnar,
                        &mut scratch,
                    )?;
                }
                // The tally frame's fixed 16-byte prefix is followed by the
                // command's encoded trace update (absent when tracing is off;
                // old coordinators only read the prefix).
                let mut tally = Vec::with_capacity(16);
                tally.extend_from_slice(&moved_rows.to_le_bytes());
                tally.extend_from_slice(&moved_bytes.to_le_bytes());
                if tracing {
                    tally.extend_from_slice(&trace.encode_update());
                }
                write_frame(&mut writer, Tag::Tally, &tally)?;
                writer.flush()?;
            }
            Tag::Broadcast => {
                let rows = read_page_batch(&mut reader)?;
                write_frame(&mut writer, Tag::Ack, &(rows.len() as u64).to_le_bytes())?;
                writer.flush()?;
            }
            Tag::Gather => {
                // The partition index in the header is informational (it lets
                // a wire trace attribute traffic); the round-trip itself is
                // partition-agnostic.
                let _partition = payload::u32_at(&header, 0)?;
                let rows = read_page_batch(&mut reader)?;
                write_page_batch(
                    &mut writer,
                    Tag::Page,
                    &[],
                    &rows,
                    compress,
                    columnar,
                    &mut scratch,
                )?;
                writer.flush()?;
            }
            other => {
                return Err(RdoError::Execution(format!(
                    "rdo-net worker: unexpected command frame {other:?}"
                )))
            }
        }
    }
}

/// Reads a bucketed repartition response: [`Tag::Bucket`] pages routed into
/// `num_partitions` buckets, closed by a [`Tag::Tally`] frame. Returns the
/// buckets plus the kernel's `(moved_rows, moved_bytes)` tally. Shared by
/// the coordinator-side transport (it is the inverse of what
/// `serve_connection` emits for [`Tag::Repartition`]).
pub(crate) fn read_bucketed_response(
    reader: &mut impl std::io::Read,
    num_partitions: usize,
) -> Result<(Vec<Vec<rdo_common::Tuple>>, u64, u64)> {
    let mut buckets: Vec<Vec<rdo_common::Tuple>> = vec![Vec::new(); num_partitions];
    loop {
        let (tag, body) = crate::frame::expect_frame(reader)?;
        match tag {
            // Either body layout is fine — the worker picks per its own
            // RDO_COLUMNAR setting and the tag byte says which arrived.
            Tag::Bucket | Tag::ColBucket => {
                let to = payload::u32_at(&body, 0)? as usize;
                if to >= num_partitions {
                    return Err(RdoError::Execution(format!(
                        "corrupt exchange frame: bucket {to} out of range"
                    )));
                }
                buckets[to].extend(decode_page_payload(tag, &body, 4)?);
            }
            Tag::Tally => {
                let moved_rows = payload::u64_at(&body, 0)?;
                let moved_bytes = payload::u64_at(&body, 8)?;
                // Anything after the fixed prefix is the worker's encoded
                // trace update; merge it under the caller's current span
                // (the transport's per-worker exchange span).
                if body.len() > 16 {
                    rdo_trace::adopt_update(rdo_trace::wire::decode_update(&body[16..])?);
                }
                return Ok((buckets, moved_rows, moved_bytes));
            }
            other => {
                return Err(RdoError::Execution(format!(
                    "corrupt exchange frame: expected Bucket/Tally, got {other:?}"
                )))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdo_common::{Tuple, Value};

    fn rows(n: i64) -> Vec<Tuple> {
        (0..n)
            .map(|i| Tuple::new(vec![Value::Int64(i), Value::Int64(i % 5)]))
            .collect()
    }

    /// Drives one worker thread through the raw protocol: ping, a
    /// repartition command, a broadcast, a gather round-trip and a clean
    /// shutdown.
    #[test]
    fn worker_serves_the_raw_protocol() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || serve(listener));

        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        let mut scratch = LzScratch::new();

        write_frame(&mut writer, Tag::Ping, &[]).unwrap();
        writer.flush().unwrap();
        let (tag, _) = crate::frame::expect_frame(&mut reader).unwrap();
        assert_eq!(tag, Tag::Ack);

        // Repartition partition 0 of 4 on column 1: the worker's buckets and
        // tally must equal the local kernel's.
        let data = rows(500);
        let (expected_buckets, expected_rows, expected_bytes) =
            repartition_partition(&data, 1, 0, 4);
        let mut header = Vec::new();
        header.extend_from_slice(&1u32.to_le_bytes());
        header.extend_from_slice(&0u32.to_le_bytes());
        header.extend_from_slice(&4u32.to_le_bytes());
        write_frame(&mut writer, Tag::Repartition, &header).unwrap();
        // Ship this command's rows in the columnar layout: the worker's
        // reader dispatches on the tag byte, so the coordinator's knob never
        // has to match the worker's.
        write_page_batch(&mut writer, Tag::Page, &[], &data, true, true, &mut scratch).unwrap();
        writer.flush().unwrap();
        let (buckets, moved_rows, moved_bytes) = read_bucketed_response(&mut reader, 4).unwrap();
        assert_eq!(buckets, expected_buckets);
        assert_eq!((moved_rows, moved_bytes), (expected_rows, expected_bytes));

        // Broadcast: the ack carries the replica's row count.
        write_frame(&mut writer, Tag::Broadcast, &[]).unwrap();
        write_page_batch(
            &mut writer,
            Tag::Page,
            &[],
            &data,
            true,
            false,
            &mut scratch,
        )
        .unwrap();
        writer.flush().unwrap();
        let (tag, ack) = crate::frame::expect_frame(&mut reader).unwrap();
        assert_eq!(tag, Tag::Ack);
        assert_eq!(payload::u64_at(&ack, 0).unwrap(), data.len() as u64);

        // Gather: the partition comes back byte-exact.
        write_frame(&mut writer, Tag::Gather, &2u32.to_le_bytes()).unwrap();
        write_page_batch(&mut writer, Tag::Page, &[], &data, true, true, &mut scratch).unwrap();
        writer.flush().unwrap();
        assert_eq!(read_page_batch(&mut reader).unwrap(), data);

        write_frame(&mut writer, Tag::Shutdown, &[]).unwrap();
        writer.flush().unwrap();
        let (tag, _) = crate::frame::expect_frame(&mut reader).unwrap();
        assert_eq!(tag, Tag::Ack);
        handle.join().unwrap().unwrap();
    }

    /// A dropped connection does not stop the worker: it keeps serving the
    /// next coordinator until an explicit shutdown.
    #[test]
    fn worker_survives_disconnects() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || serve(listener));
        for _ in 0..3 {
            let stream = TcpStream::connect(addr).unwrap();
            drop(stream);
        }
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        write_frame(&mut writer, Tag::Shutdown, &[]).unwrap();
        writer.flush().unwrap();
        let (tag, _) = crate::frame::expect_frame(&mut reader).unwrap();
        assert_eq!(tag, Tag::Ack);
        handle.join().unwrap().unwrap();
    }
}
