//! Spawning and tearing down localhost worker processes.
//!
//! [`LocalCluster`] re-executes the current binary with
//! [`crate::worker::WORKER_MODE_ENV`] set, so any harness whose `main` calls
//! [`crate::maybe_worker`] first can serve as its own worker fleet — the
//! pattern `examples/distributed.rs` and the `distributed_equivalence` suite
//! use. Each worker announces its bound port on stdout; the cluster collects
//! the addresses, and [`LocalCluster::shutdown`] delivers the shutdown frame
//! and reaps every child, so a green run leaves no orphan processes behind.

use crate::frame::{expect_frame, write_frame, Tag};
use crate::worker::{ADDR_ANNOUNCE_PREFIX, WORKER_MODE_ENV};
use rdo_common::{RdoError, Result};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::{Child, Command, ExitStatus, Stdio};

/// A fleet of localhost worker processes spawned from the current binary.
#[derive(Debug)]
pub struct LocalCluster {
    children: Vec<Child>,
    addrs: Vec<SocketAddr>,
}

impl LocalCluster {
    /// Spawns `workers` copies of the current executable in worker mode
    /// (each binds a free localhost port and announces it on stdout) and
    /// waits until every one is reachable. The caller's `main` must route
    /// through [`crate::maybe_worker`] before doing anything else.
    pub fn spawn(workers: usize) -> Result<Self> {
        Self::spawn_with_env(workers, &[])
    }

    /// Like [`LocalCluster::spawn`], with extra environment variables set on
    /// each worker process (on top of the inherited environment). This is how
    /// a test pins a worker-side knob — e.g. `RDO_COLUMNAR` or
    /// `RDO_SPILL_COMPRESS` — to a value different from the coordinator's,
    /// without the in-process `set_var` hazards.
    pub fn spawn_with_env(workers: usize, env: &[(&str, &str)]) -> Result<Self> {
        let exe = std::env::current_exe().map_err(|e| RdoError::Io(format!("current_exe: {e}")))?;
        // Children are pushed into the cluster as they spawn, so any error
        // below drops the half-built cluster and its `Drop` kills and reaps
        // every worker started so far — a failed spawn must not leak the
        // successful ones as orphans.
        let mut cluster = Self {
            children: Vec::with_capacity(workers),
            addrs: Vec::with_capacity(workers),
        };
        for _ in 0..workers {
            let child = Command::new(&exe)
                .env(WORKER_MODE_ENV, "1")
                .envs(env.iter().copied())
                .stdout(Stdio::piped())
                .stderr(Stdio::inherit())
                .stdin(Stdio::null())
                .spawn()
                .map_err(|e| RdoError::Io(format!("spawn worker: {e}")))?;
            cluster.children.push(child);
            let stdout = cluster
                .children
                .last_mut()
                .expect("just pushed")
                .stdout
                .take()
                .ok_or_else(|| RdoError::Execution("worker child has no stdout".to_string()))?;
            let mut lines = BufReader::new(stdout).lines();
            let addr = loop {
                let Some(line) = lines.next() else {
                    return Err(RdoError::Execution(
                        "worker exited before announcing its address".to_string(),
                    ));
                };
                let line = line.map_err(|e| RdoError::Io(format!("worker stdout: {e}")))?;
                if let Some(raw) = line.strip_prefix(ADDR_ANNOUNCE_PREFIX) {
                    break raw.trim().parse::<SocketAddr>().map_err(|e| {
                        RdoError::Execution(format!("worker announced {raw:?}: {e}"))
                    })?;
                }
            };
            cluster.addrs.push(addr);
        }
        Ok(cluster)
    }

    /// Addresses of the spawned workers, in spawn order (pass to
    /// [`crate::TcpTransport::connect`] or export as `RDO_NET_WORKERS`).
    pub fn addrs(&self) -> &[SocketAddr] {
        &self.addrs
    }

    /// The `RDO_NET_WORKERS` value naming this cluster.
    pub fn addr_list(&self) -> String {
        self.addrs
            .iter()
            .map(|a| a.to_string())
            .collect::<Vec<_>>()
            .join(",")
    }

    /// Delivers the shutdown frame to every worker and reaps the processes,
    /// returning their exit statuses (in spawn order). Errors if a worker
    /// cannot be reached or exits unsuccessfully — a clean distributed run
    /// must leave no orphan processes behind.
    pub fn shutdown(mut self) -> Result<Vec<ExitStatus>> {
        shutdown_workers(&self.addrs)?;
        let mut statuses = Vec::with_capacity(self.children.len());
        for mut child in self.children.drain(..) {
            let status = child
                .wait()
                .map_err(|e| RdoError::Io(format!("wait worker: {e}")))?;
            if !status.success() {
                return Err(RdoError::Execution(format!(
                    "worker exited unsuccessfully: {status}"
                )));
            }
            statuses.push(status);
        }
        Ok(statuses)
    }
}

impl Drop for LocalCluster {
    fn drop(&mut self) {
        // Best effort: a cluster the test forgot (or failed) to shut down
        // must not leak processes past the harness.
        for child in &mut self.children {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Sends the shutdown frame to each worker address on a fresh connection and
/// waits for the acknowledgement. Usable against any worker, spawned locally
/// or not.
pub fn shutdown_workers(addrs: &[SocketAddr]) -> Result<()> {
    for addr in addrs {
        let stream = TcpStream::connect(addr)
            .map_err(|e| RdoError::Io(format!("connect worker {addr} for shutdown: {e}")))?;
        let mut reader = BufReader::new(stream.try_clone()?);
        let mut writer = BufWriter::new(stream);
        write_frame(&mut writer, Tag::Shutdown, &[])?;
        writer.flush()?;
        let (tag, _) = expect_frame(&mut reader)?;
        if tag != Tag::Ack {
            return Err(RdoError::Execution(format!(
                "worker {addr} answered shutdown with {tag:?}"
            )));
        }
    }
    Ok(())
}
