//! The coordinator-side TCP transport.
//!
//! [`TcpTransport`] implements the [`rdo_parallel::Transport`] seam over a
//! set of worker processes, one persistent connection per worker. Partitions
//! are assigned to workers as contiguous ranges (`owner(p) = p·W / n` for `n`
//! partitions over `W` workers), and every exchange moves its tuples as
//! framed page batches through the partition's owner:
//!
//! * **Repartition** — each source partition streams to its owner, the owner
//!   runs the shared bucketing kernel and streams the buckets back with the
//!   kernel's moved-rows/moved-bytes tally; the coordinator concatenates
//!   buckets in source-partition order, exactly like the in-process exchange.
//! * **Broadcast** — the full build side streams to *every* worker (the
//!   replication a real cluster pays); each worker acknowledges its replica's
//!   row count, and the reported metrics use the same logical
//!   `rows × partitions` charge as the in-process exchange.
//! * **Gather** — each partition round-trips through its owner so result
//!   delivery crosses the same links a real cluster's gather would, and the
//!   rows arrive back on the coordinator in partition order.
//!
//! Because the wire codec round-trip is exact and the kernels are shared,
//! results, plans and logical metrics are bit-identical to
//! [`rdo_parallel::InProcessTransport`] at every worker count — the
//! `distributed_equivalence` suite pins this.

use crate::frame::read_page_batch;
use crate::frame::{expect_frame, payload, write_frame, write_page_batch, Tag};
use crate::worker::read_bucketed_response;
use rdo_common::{RdoError, Relation, Result, Tuple};
use rdo_exec::PartitionedData;
use rdo_parallel::{
    default_transport, Broadcast, HashRepartition, ParallelConfig, Transport, TransportKind,
    WorkerPool,
};
use rdo_spill::compress::LzScratch;
use rdo_spill::SpillConfig;
use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Environment variable listing the worker addresses the TCP transport
/// connects to (comma-separated `host:port` pairs). Required when
/// `RDO_TRANSPORT=tcp`; when missing, the transport resolver warns and falls
/// back to in-process exchanges.
pub const WORKER_ADDRS_ENV: &str = "RDO_NET_WORKERS";

/// Wire-traffic counters of one [`TcpTransport`] (monotonic, in bytes).
/// Physical diagnostics only — never part of the logical
/// [`rdo_exec::ExecutionMetrics`], which stay transport-invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WireStats {
    /// Bytes written to worker sockets.
    pub bytes_sent: u64,
    /// Bytes read back from worker sockets.
    pub bytes_received: u64,
}

/// Byte-counting wrapper so the transport can report real wire volume.
struct Counting<T> {
    inner: T,
    counter: Arc<AtomicU64>,
}

impl<T: Read> Read for Counting<T> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.counter.fetch_add(n as u64, Ordering::Relaxed);
        Ok(n)
    }
}

impl<T: Write> Write for Counting<T> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.counter.fetch_add(n as u64, Ordering::Relaxed);
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// One worker connection (locked per exchange; a transport is driven from
/// the coordinator thread, the mutex makes sharing an `Arc<TcpTransport>`
/// across executors sound).
struct WorkerConn {
    reader: BufReader<Counting<TcpStream>>,
    writer: BufWriter<Counting<TcpStream>>,
    scratch: LzScratch,
}

impl WorkerConn {
    fn ping(&mut self) -> Result<()> {
        write_frame(&mut self.writer, Tag::Ping, &[])?;
        self.writer.flush()?;
        let (tag, _) = expect_frame(&mut self.reader)?;
        if tag != Tag::Ack {
            return Err(RdoError::Execution(format!(
                "worker handshake: expected Ack, got {tag:?}"
            )));
        }
        Ok(())
    }
}

/// The TCP implementation of the exchange [`Transport`] seam. See the module
/// docs for the wire topology of each exchange.
pub struct TcpTransport {
    addrs: Vec<SocketAddr>,
    conns: Vec<Mutex<WorkerConn>>,
    compress: bool,
    columnar: bool,
    bytes_sent: Arc<AtomicU64>,
    bytes_received: Arc<AtomicU64>,
}

impl std::fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpTransport")
            .field("workers", &self.addrs)
            .field("compress", &self.compress)
            .field("columnar", &self.columnar)
            .field("stats", &self.stats())
            .finish()
    }
}

impl TcpTransport {
    /// Connects to the given worker processes and verifies each one answers
    /// a liveness ping. Page compression on the wire follows the spill
    /// store's `RDO_SPILL_COMPRESS` default (the codec reads the flag byte,
    /// so mixed settings between coordinator and workers still interoperate),
    /// and the page body layout follows `RDO_COLUMNAR` the same way (the
    /// frame-type byte carries the layout, so readers never need the knob).
    pub fn connect(addrs: &[SocketAddr]) -> Result<Self> {
        if addrs.is_empty() {
            return Err(RdoError::Execution(
                "TcpTransport::connect: empty worker list".to_string(),
            ));
        }
        let bytes_sent = Arc::new(AtomicU64::new(0));
        let bytes_received = Arc::new(AtomicU64::new(0));
        let mut conns = Vec::with_capacity(addrs.len());
        for addr in addrs {
            let stream = TcpStream::connect(addr)
                .map_err(|e| RdoError::Io(format!("connect worker {addr}: {e}")))?;
            stream.set_nodelay(true)?;
            let mut conn = WorkerConn {
                reader: BufReader::new(Counting {
                    inner: stream.try_clone()?,
                    counter: Arc::clone(&bytes_received),
                }),
                writer: BufWriter::new(Counting {
                    inner: stream,
                    counter: Arc::clone(&bytes_sent),
                }),
                scratch: LzScratch::new(),
            };
            conn.ping()?;
            conns.push(Mutex::new(conn));
        }
        let spill_env = SpillConfig::from_env();
        Ok(Self {
            addrs: addrs.to_vec(),
            conns,
            compress: spill_env.compress,
            columnar: spill_env.columnar,
            bytes_sent,
            bytes_received,
        })
    }

    /// The worker addresses this transport talks to.
    pub fn worker_addrs(&self) -> &[SocketAddr] {
        &self.addrs
    }

    /// Number of worker processes behind the transport.
    pub fn num_workers(&self) -> usize {
        self.conns.len()
    }

    /// Wire-traffic counters accumulated so far.
    pub fn stats(&self) -> WireStats {
        WireStats {
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
        }
    }

    /// Records the wire bytes an exchange moved: as attributes on its span
    /// and as sum-merged counters (so the totals survive into the metrics
    /// exposition).
    fn record_wire_delta(&self, span: &mut rdo_trace::SpanGuard, before: WireStats) {
        let after = self.stats();
        let sent = after.bytes_sent.saturating_sub(before.bytes_sent);
        let received = after.bytes_received.saturating_sub(before.bytes_received);
        span.attr_u64("wire_sent", sent);
        span.attr_u64("wire_received", received);
        rdo_trace::counter("net.bytes_sent", sent);
        rdo_trace::counter("net.bytes_received", received);
    }

    /// The worker owning partition `p` of `n`: contiguous ranges, first
    /// partitions to the first worker.
    fn owner(&self, p: usize, n: usize) -> usize {
        debug_assert!(p < n);
        p * self.conns.len() / n.max(1)
    }

    /// Runs `task` once per worker on scoped threads, handing each its own
    /// locked connection and the list of partitions it owns. Results come
    /// back per worker; a failed worker yields its error. Partition-indexed
    /// outputs are returned tagged so callers can reassemble them in
    /// deterministic partition order regardless of thread interleaving.
    fn per_worker<T: Send>(
        &self,
        num_partitions: usize,
        task: impl Fn(&mut WorkerConn, &[usize]) -> Result<Vec<T>> + Sync,
    ) -> Result<Vec<T>> {
        let mut owned: Vec<Vec<usize>> = vec![Vec::new(); self.conns.len()];
        for p in 0..num_partitions {
            owned[self.owner(p, num_partitions)].push(p);
        }
        // Spans opened on the exchange threads (and updates adopted from the
        // workers' tally frames) stitch under the caller's exchange span.
        let trace_ctx = rdo_trace::TaskContext::capture();
        let results: Vec<Result<Vec<T>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .conns
                .iter()
                .zip(&owned)
                .zip(&self.addrs)
                .map(|((conn, partitions), addr)| {
                    let task = &task;
                    let trace_ctx = &trace_ctx;
                    scope.spawn(move || {
                        let _trace = trace_ctx.install();
                        let mut span = rdo_trace::span("net.worker");
                        span.attr_str("addr", &addr.to_string());
                        span.attr_u64("partitions", partitions.len() as u64);
                        let mut conn = conn.lock().map_err(|_| {
                            RdoError::Execution("worker connection poisoned".to_string())
                        })?;
                        task(&mut conn, partitions)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|_| {
                        Err(RdoError::Execution(
                            "worker exchange thread panicked".to_string(),
                        ))
                    })
                })
                .collect()
        });
        let mut out = Vec::new();
        for result in results {
            out.extend(result?);
        }
        Ok(out)
    }
}

impl Transport for TcpTransport {
    fn name(&self) -> &'static str {
        "tcp"
    }

    fn repartition(
        &self,
        exchange: &HashRepartition,
        data: &PartitionedData,
        _pool: &WorkerPool,
    ) -> Result<(PartitionedData, u64, u64)> {
        let n = data.num_partitions();
        let mut span = rdo_trace::span("net.repartition");
        span.attr_u64("partitions", n as u64);
        let wire_before = self.stats();
        /// One source partition's worker response: its output buckets plus
        /// the kernel's `(moved_rows, moved_bytes)` tally.
        type Bucketed = (Vec<Vec<Tuple>>, u64, u64);
        let tagged: Vec<(usize, Bucketed)> = self.per_worker(n, |conn, partitions| {
            let mut out = Vec::with_capacity(partitions.len());
            for &from in partitions {
                rdo_trace::counter("net.frames", 1);
                let mut header = Vec::with_capacity(12);
                header.extend_from_slice(&(exchange.key_index as u32).to_le_bytes());
                header.extend_from_slice(&(from as u32).to_le_bytes());
                header.extend_from_slice(&(n as u32).to_le_bytes());
                write_frame(&mut conn.writer, Tag::Repartition, &header)?;
                write_page_batch(
                    &mut conn.writer,
                    Tag::Page,
                    &[],
                    &data.partitions()[from],
                    self.compress,
                    self.columnar,
                    &mut conn.scratch,
                )?;
                conn.writer.flush()?;
                out.push((from, read_bucketed_response(&mut conn.reader, n)?));
            }
            Ok(out)
        })?;
        self.record_wire_delta(&mut span, wire_before);

        // Reassemble exactly like the in-process exchange: buckets
        // concatenated in source-partition order, so the output is
        // independent of worker interleaving.
        let mut bucketed: Vec<Option<Bucketed>> = (0..n).map(|_| None).collect();
        for (from, result) in tagged {
            bucketed[from] = Some(result);
        }
        let mut new_partitions: Vec<Vec<Tuple>> = vec![Vec::new(); n];
        let mut moved_rows = 0u64;
        let mut moved_bytes = 0u64;
        for slot in bucketed {
            let (buckets, rows, bytes) = slot.ok_or_else(|| {
                RdoError::Execution("repartition lost a source partition".to_string())
            })?;
            moved_rows += rows;
            moved_bytes += bytes;
            for (to, mut bucket) in buckets.into_iter().enumerate() {
                new_partitions[to].append(&mut bucket);
            }
        }
        let key_name = rdo_common::unqualified(&exchange.key_name).to_string();
        Ok((
            PartitionedData::new(data.schema().clone(), new_partitions, Some(key_name)),
            moved_rows,
            moved_bytes,
        ))
    }

    fn broadcast(
        &self,
        exchange: &Broadcast,
        data: &PartitionedData,
    ) -> Result<(Arc<Vec<Tuple>>, u64, u64)> {
        let rows = data.all_rows();
        let mut span = rdo_trace::span("net.broadcast");
        span.attr_u64("rows", rows.len() as u64);
        let wire_before = self.stats();
        // Ship a full replica to every worker; each acknowledges the row
        // count it decoded.
        let acks: Vec<u64> = self.per_worker(self.conns.len(), |conn, _| {
            rdo_trace::counter("net.frames", 1);
            write_frame(&mut conn.writer, Tag::Broadcast, &[])?;
            write_page_batch(
                &mut conn.writer,
                Tag::Page,
                &[],
                &rows,
                self.compress,
                self.columnar,
                &mut conn.scratch,
            )?;
            conn.writer.flush()?;
            let (tag, ack) = expect_frame(&mut conn.reader)?;
            if tag != Tag::Ack {
                return Err(RdoError::Execution(format!(
                    "broadcast: expected Ack, got {tag:?}"
                )));
            }
            Ok(vec![payload::u64_at(&ack, 0)?])
        })?;
        self.record_wire_delta(&mut span, wire_before);
        for ack in acks {
            if ack != rows.len() as u64 {
                return Err(RdoError::Execution(format!(
                    "broadcast replica mismatch: sent {} rows, worker decoded {ack}",
                    rows.len()
                )));
            }
        }
        // The logical charge is identical to the in-process exchange: a copy
        // per *partition*, not per worker process.
        let copies = exchange.target_partitions as u64;
        let replicated_rows = rows.len() as u64 * copies;
        let replicated_bytes = rows.iter().map(|r| r.approx_bytes() as u64).sum::<u64>() * copies;
        Ok((Arc::new(rows), replicated_rows, replicated_bytes))
    }

    fn gather(&self, data: &PartitionedData) -> Result<Relation> {
        let n = data.num_partitions();
        let mut span = rdo_trace::span("net.gather");
        span.attr_u64("partitions", n as u64);
        let wire_before = self.stats();
        let tagged: Vec<(usize, Vec<Tuple>)> = self.per_worker(n, |conn, partitions| {
            let mut out = Vec::with_capacity(partitions.len());
            for &p in partitions {
                rdo_trace::counter("net.frames", 1);
                write_frame(&mut conn.writer, Tag::Gather, &(p as u32).to_le_bytes())?;
                write_page_batch(
                    &mut conn.writer,
                    Tag::Page,
                    &[],
                    &data.partitions()[p],
                    self.compress,
                    self.columnar,
                    &mut conn.scratch,
                )?;
                conn.writer.flush()?;
                out.push((p, read_page_batch(&mut conn.reader)?));
            }
            Ok(out)
        })?;
        self.record_wire_delta(&mut span, wire_before);
        let mut by_partition: Vec<Option<Vec<Tuple>>> = (0..n).map(|_| None).collect();
        for (p, rows) in tagged {
            by_partition[p] = Some(rows);
        }
        let mut relation = Relation::empty(data.schema().clone());
        for slot in by_partition {
            let rows =
                slot.ok_or_else(|| RdoError::Execution("gather lost a partition".to_string()))?;
            for row in rows {
                relation.push(row);
            }
        }
        Ok(relation)
    }
}

/// Parses an `RDO_NET_WORKERS` value (comma-separated `host:port` pairs).
/// Returns the warning to print when any entry is not a socket address.
pub fn parse_worker_addrs(raw: &str) -> std::result::Result<Vec<SocketAddr>, String> {
    let mut addrs = Vec::new();
    for entry in raw.split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        match entry.parse::<SocketAddr>() {
            Ok(addr) => addrs.push(addr),
            Err(_) => {
                return Err(format!(
                    "warning: {WORKER_ADDRS_ENV} entry {entry:?} is not a socket address \
                     (host:port expected); exchanges stay in-process"
                ))
            }
        }
    }
    Ok(addrs)
}

/// Resolves a [`ParallelConfig`]'s [`TransportKind`] selection into a
/// concrete transport object:
///
/// * [`TransportKind::InProcess`] → the default in-process transport.
/// * [`TransportKind::Tcp`] → a [`TcpTransport`] over the workers listed in
///   [`WORKER_ADDRS_ENV`]. A missing/empty/invalid list warns on stderr and
///   falls back to in-process exchanges (matching the `RDO_*` knob
///   convention of never silently testing something else); an unreachable
///   worker in a *valid* list is a hard error, because the caller named a
///   concrete cluster.
pub fn transport_from_config(config: &ParallelConfig) -> Result<Arc<dyn Transport>> {
    match config.transport {
        TransportKind::InProcess => Ok(default_transport()),
        TransportKind::Tcp => {
            let Ok(raw) = std::env::var(WORKER_ADDRS_ENV) else {
                rdo_common::warn!(
                    "RDO_TRANSPORT=tcp but {WORKER_ADDRS_ENV} is unset; \
                     exchanges stay in-process"
                );
                return Ok(default_transport());
            };
            let addrs = match parse_worker_addrs(&raw) {
                Ok(addrs) => addrs,
                Err(warning) => {
                    let text = warning.strip_prefix("warning: ").unwrap_or(&warning);
                    rdo_common::warn!("{text}");
                    return Ok(default_transport());
                }
            };
            if addrs.is_empty() {
                rdo_common::warn!(
                    "RDO_TRANSPORT=tcp but {WORKER_ADDRS_ENV} lists no workers; \
                     exchanges stay in-process"
                );
                return Ok(default_transport());
            }
            Ok(Arc::new(TcpTransport::connect(&addrs)?))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdo_common::{DataType, Schema, Value};
    use rdo_parallel::InProcessTransport;
    use std::net::TcpListener;

    fn data(n: i64, partitions: usize) -> PartitionedData {
        let schema = Schema::for_dataset(
            "t",
            &[
                ("k", DataType::Int64),
                ("g", DataType::Int64),
                ("s", DataType::Utf8),
            ],
        );
        let mut parts = vec![Vec::new(); partitions];
        for i in 0..n {
            parts[(i % partitions as i64) as usize].push(Tuple::new(vec![
                Value::Int64(i),
                Value::Int64(i % 7),
                Value::Utf8(format!("row-{i}")),
            ]));
        }
        PartitionedData::new(schema, parts, None)
    }

    fn spawn_workers(n: usize) -> (Vec<SocketAddr>, Vec<std::thread::JoinHandle<Result<()>>>) {
        let mut addrs = Vec::new();
        let mut handles = Vec::new();
        for _ in 0..n {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            addrs.push(listener.local_addr().unwrap());
            handles.push(std::thread::spawn(move || crate::worker::serve(listener)));
        }
        (addrs, handles)
    }

    /// All three exchanges over in-thread workers are bit-identical to the
    /// in-process transport, at 1, 2 and 3 workers, and real bytes moved.
    #[test]
    fn tcp_exchanges_match_in_process_exchanges() {
        let input = data(400, 4);
        let pool = WorkerPool::new(2);
        let in_process = InProcessTransport;
        let exchange = HashRepartition::new(1, "t.g");
        let (expected_data, expected_rows, expected_bytes) =
            in_process.repartition(&exchange, &input, &pool).unwrap();
        let bcast = Broadcast::new(4);
        let (expected_replica, er, eb) = in_process.broadcast(&bcast, &input).unwrap();
        let expected_gather = in_process.gather(&input).unwrap();

        for workers in [1, 2, 3] {
            let (addrs, handles) = spawn_workers(workers);
            let transport = TcpTransport::connect(&addrs).unwrap();
            assert_eq!(transport.num_workers(), workers);
            assert_eq!(transport.name(), "tcp");

            let (actual, rows, bytes) = transport.repartition(&exchange, &input, &pool).unwrap();
            assert_eq!(actual.partitions(), expected_data.partitions());
            assert_eq!(actual.partition_key(), expected_data.partition_key());
            assert_eq!((rows, bytes), (expected_rows, expected_bytes));

            let (replica, rr, rb) = transport.broadcast(&bcast, &input).unwrap();
            assert_eq!(*replica, *expected_replica);
            assert_eq!((rr, rb), (er, eb));

            assert_eq!(transport.gather(&input).unwrap(), expected_gather);

            let stats = transport.stats();
            assert!(
                stats.bytes_sent > 0 && stats.bytes_received > 0,
                "tuples really crossed the sockets: {stats:?}"
            );

            crate::cluster::shutdown_workers(&addrs).unwrap();
            for handle in handles {
                handle.join().unwrap().unwrap();
            }
        }
    }

    #[test]
    fn worker_addr_lists_parse_or_warn() {
        assert_eq!(parse_worker_addrs(""), Ok(vec![]));
        let addrs = parse_worker_addrs("127.0.0.1:7001, 127.0.0.1:7002,").unwrap();
        assert_eq!(addrs.len(), 2);
        assert_eq!(addrs[1].port(), 7002);
        for invalid in ["localhost", "127.0.0.1", "nope:port", "1,2"] {
            let warning = parse_worker_addrs(invalid).expect_err(invalid);
            assert!(
                warning.contains("RDO_NET_WORKERS") && warning.contains("warning"),
                "{warning}"
            );
        }
    }

    #[test]
    fn connect_rejects_empty_and_unreachable_clusters() {
        assert!(TcpTransport::connect(&[]).is_err());
        // A port nothing listens on: bind then drop to find a free one.
        let addr = {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap()
        };
        assert!(TcpTransport::connect(&[addr]).is_err());
    }

    #[test]
    fn in_process_config_resolves_without_touching_the_network() {
        let transport = transport_from_config(&ParallelConfig::serial()).unwrap();
        assert_eq!(transport.name(), "in-process");
    }

    /// Ranges are contiguous and cover every partition for any worker count.
    #[test]
    fn owner_assignment_is_a_contiguous_cover() {
        let (addrs, handles) = spawn_workers(3);
        let transport = TcpTransport::connect(&addrs).unwrap();
        let n = 8;
        let owners: Vec<usize> = (0..n).map(|p| transport.owner(p, n)).collect();
        assert!(owners.windows(2).all(|w| w[0] <= w[1]), "{owners:?}");
        assert_eq!(owners[0], 0);
        assert_eq!(*owners.last().unwrap(), 2);
        crate::cluster::shutdown_workers(&addrs).unwrap();
        for handle in handles {
            handle.join().unwrap().unwrap();
        }
    }
}
