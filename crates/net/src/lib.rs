//! Distributed multi-process exchange backend for the simulated cluster.
//!
//! Four PRs of subsystems made the cluster's *data* model real (partitioned
//! storage, spillable intermediates, grace joins); this crate makes the
//! cluster's *network* real. It backs the exchange operators of
//! [`rdo_parallel::exchange`] — `HashRepartition`, `Broadcast`, `Gather` —
//! with a length-prefixed TCP protocol across OS processes, behind the
//! [`rdo_parallel::Transport`] seam:
//!
//! * The **coordinator** process plans, re-optimizes and runs the join
//!   kernels exactly as before; only the exchange data movements change
//!   route. [`TcpTransport`] implements the seam over one persistent
//!   connection per worker.
//! * Each **worker** process ([`worker_main`]) serves a contiguous partition
//!   range: it decodes incoming page batches, runs the shared bucketing
//!   kernel of [`rdo_exec::partition`], and streams results back. Workers
//!   are stateless between exchanges, so a worker crash costs a query, never
//!   the dataset.
//! * Tuples travel as **framed page batches** reusing the `rdo-spill` tuple
//!   page codec and its optional LZ page compression on the wire
//!   ([`frame`]), so a row that crosses a socket round-trips byte-exactly —
//!   NaN bit patterns and all.
//!
//! Selection is by configuration, not code: `RDO_TRANSPORT=tcp` plus a
//! worker list in `RDO_NET_WORKERS` routes every exchange through the
//! cluster ([`transport_from_config`]); the default stays in-process.
//! Results, plans and logical metrics are bit-identical either way — the
//! `distributed_equivalence` suite pins Q8/Q9/Q17/Q50 at 1/2/4 worker
//! processes, and `examples/distributed.rs` is a runnable harness.
//!
//! # Example
//!
//! Serve one worker on a background thread (processes work the same, see
//! [`LocalCluster`]) and run a repartition exchange through it:
//!
//! ```
//! use rdo_common::{DataType, Schema, Tuple, Value};
//! use rdo_exec::PartitionedData;
//! use rdo_net::{shutdown_workers, TcpTransport};
//! use rdo_parallel::{HashRepartition, InProcessTransport, Transport, WorkerPool};
//! use std::net::TcpListener;
//!
//! // A tiny 4-partition dataset, partitioned on nothing in particular.
//! let schema = Schema::for_dataset("t", &[("k", DataType::Int64)]);
//! let parts = (0..4)
//!     .map(|p| (0..50).map(|i| Tuple::new(vec![Value::Int64(p + 4 * i)])).collect())
//!     .collect();
//! let data = PartitionedData::new(schema, parts, None);
//!
//! // One worker, served from a thread.
//! let listener = TcpListener::bind("127.0.0.1:0").unwrap();
//! let addr = listener.local_addr().unwrap();
//! let worker = std::thread::spawn(move || rdo_net::serve(listener));
//!
//! // The same exchange through both transports is bit-identical.
//! let exchange = HashRepartition::new(0, "t.k");
//! let pool = WorkerPool::new(1);
//! let (expected, expected_rows, _) =
//!     InProcessTransport.repartition(&exchange, &data, &pool).unwrap();
//! let tcp = TcpTransport::connect(&[addr]).unwrap();
//! let (actual, rows, _) = tcp.repartition(&exchange, &data, &pool).unwrap();
//! assert_eq!(actual.partitions(), expected.partitions());
//! assert_eq!(rows, expected_rows);
//! assert!(tcp.stats().bytes_sent > 0, "tuples really used the socket");
//!
//! shutdown_workers(&[addr]).unwrap();
//! worker.join().unwrap().unwrap();
//! ```

#![warn(missing_docs)]

pub mod cluster;
pub mod frame;
pub mod transport;
pub mod worker;

pub use cluster::{shutdown_workers, LocalCluster};
pub use transport::{
    parse_worker_addrs, transport_from_config, TcpTransport, WireStats, WORKER_ADDRS_ENV,
};
pub use worker::{
    maybe_worker, serve, worker_main, ADDR_ANNOUNCE_PREFIX, LISTEN_ENV, WORKER_MODE_ENV,
};
