//! The persistent worker pool.
//!
//! Earlier revisions spawned scoped threads inside every `map_indexed` call —
//! one spawn/join per operator stage (each scan, each exchange side, each
//! join), which suppressed speedup on small stages. The pool is now
//! **long-lived**: `WorkerPool::new` spawns its threads once, `map_indexed`
//! publishes a job to them through a condvar-guarded dispatch slot, and the
//! threads are joined when the last clone of the pool drops. Cloning a pool is
//! an `Arc` bump, so one pool created per driver execution is shared by every
//! stage's `ParallelExecutor` and Sink barrier.
//!
//! Tasks are claimed through a shared atomic counter (cheap dynamic load
//! balancing: a worker that finishes a small partition immediately claims the
//! next one). Results land in per-task slots, so the returned vector is in
//! task order regardless of which worker ran what — the caller's fold over the
//! results is therefore deterministic.

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A lifetime-erased pointer to the current job's claim-and-run loop.
///
/// `map_indexed` publishes a `&'static`-transmuted reference to a stack
/// closure and blocks until every participating worker has finished with it
/// (`running == 0`) before returning, so the pointee always outlives its use;
/// a raw pointer (rather than the transmuted reference itself) is stored so a
/// worker holding a stale copy after the job completes is merely holding a
/// dangling pointer it will never dereference, not an invalid reference.
#[derive(Clone, Copy)]
struct JobRef(*const (dyn Fn() + Sync));

// SAFETY: the pointee is `Sync` (shared execution from many threads is the
// point) and the dispatch protocol above guarantees it is alive whenever a
// worker dereferences it.
unsafe impl Send for JobRef {}

struct Dispatch {
    /// Bumped once per published job; workers track the last epoch they saw.
    epoch: u64,
    /// The current job, cleared after completion.
    job: Option<JobRef>,
    /// Workers currently inside the job's run loop.
    running: usize,
    shutdown: bool,
}

struct Shared {
    workers: usize,
    dispatch: Mutex<Dispatch>,
    /// Signals workers: a new job was published, or shutdown.
    job_ready: Condvar,
    /// Signals the submitter: the last running worker left the job.
    job_done: Condvar,
}

impl Shared {
    fn worker_loop(&self) {
        let mut seen = 0u64;
        loop {
            let job = {
                let mut d = self.dispatch.lock().expect("pool dispatch lock");
                loop {
                    if d.shutdown {
                        return;
                    }
                    if d.epoch != seen {
                        seen = d.epoch;
                        if let Some(job) = d.job {
                            d.running += 1;
                            break job;
                        }
                        // The job completed before this worker woke; keep
                        // waiting for the next epoch.
                    }
                    d = self.job_ready.wait(d).expect("pool dispatch lock");
                }
            };
            // SAFETY: `running` was incremented under the lock while the job
            // was still published, so the submitter cannot return (and drop
            // the closure) before the decrement below.
            (unsafe { &*job.0 })();
            let mut d = self.dispatch.lock().expect("pool dispatch lock");
            d.running -= 1;
            if d.running == 0 {
                self.job_done.notify_all();
            }
        }
    }
}

/// Joins the worker threads when the last pool clone drops.
struct ThreadsGuard {
    shared: Arc<Shared>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl Drop for ThreadsGuard {
    fn drop(&mut self) {
        {
            let mut d = self.shared.dispatch.lock().expect("pool dispatch lock");
            d.shutdown = true;
        }
        self.shared.job_ready.notify_all();
        for handle in self.handles.lock().expect("pool handles lock").drain(..) {
            let _ = handle.join();
        }
    }
}

/// A pool of persistent worker threads executing indexed tasks.
///
/// Clones share the same threads; the threads are joined when the last clone
/// drops. With `workers <= 1` no threads are spawned at all and every
/// `map_indexed` runs inline — the single-worker pool is exactly the serial
/// code path.
#[derive(Clone)]
pub struct WorkerPool {
    shared: Arc<Shared>,
    _threads: Arc<ThreadsGuard>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.shared.workers)
            .finish()
    }
}

impl WorkerPool {
    /// A pool with `workers` threads (clamped to at least 1), spawned once and
    /// reused by every subsequent [`WorkerPool::map_indexed`] call.
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            workers,
            dispatch: Mutex::new(Dispatch {
                epoch: 0,
                job: None,
                running: 0,
                shutdown: false,
            }),
            job_ready: Condvar::new(),
            job_done: Condvar::new(),
        });
        let mut handles = Vec::new();
        if workers > 1 {
            // The submitting thread participates in every job, so `workers`
            // concurrent lanes need `workers - 1` pool threads.
            for _ in 0..workers - 1 {
                let shared = Arc::clone(&shared);
                handles.push(std::thread::spawn(move || shared.worker_loop()));
            }
        }
        Self {
            _threads: Arc::new(ThreadsGuard {
                shared: Arc::clone(&shared),
                handles: Mutex::new(handles),
            }),
            shared,
        }
    }

    /// Number of concurrent lanes (the submitting thread plus the pool
    /// threads).
    pub fn workers(&self) -> usize {
        self.shared.workers
    }

    /// Runs `f(0), f(1), …, f(tasks - 1)` across the pool and returns the
    /// results in task order. With one worker (or at most one task) the tasks
    /// run in a plain loop on the calling thread.
    ///
    /// A panicking task propagates its panic to the caller after the pool
    /// drains the remaining tasks.
    pub fn map_indexed<T, F>(&self, tasks: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if self.shared.workers <= 1 || tasks <= 1 {
            return (0..tasks).map(f).collect();
        }

        let slots: Vec<Mutex<Option<T>>> = (0..tasks).map(|_| Mutex::new(None)).collect();
        let panic_slot: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);
        let next = AtomicUsize::new(0);
        // Carry the submitter's trace onto the pool threads: spans opened
        // inside tasks stitch under the span that was live at submit time,
        // and the publish→first-claim latency feeds the queue-wait gauge.
        // With tracing disabled the capture is inert (one relaxed load).
        let trace_ctx = rdo_trace::TaskContext::capture();
        let published_at = trace_ctx.is_enabled().then(std::time::Instant::now);
        let run = || {
            let _trace = trace_ctx.install();
            if let Some(t0) = published_at {
                rdo_trace::gauge_max("pool.queue_wait_ns", t0.elapsed().as_nanos() as u64);
            }
            loop {
                let task = next.fetch_add(1, Ordering::Relaxed);
                if task >= tasks {
                    break;
                }
                match catch_unwind(AssertUnwindSafe(|| f(task))) {
                    Ok(value) => *slots[task].lock().expect("worker slot lock") = Some(value),
                    Err(payload) => {
                        panic_slot
                            .lock()
                            .expect("panic slot lock")
                            .get_or_insert(payload);
                    }
                }
            }
        };

        // Erase the closure's lifetime for the dispatch slot. SAFETY: this
        // function blocks below until `running == 0` and clears the job before
        // returning, so no worker touches `run` (or anything it borrows) after
        // the stack frame is gone.
        let run_ref: &(dyn Fn() + Sync) = &run;
        let run_static: &'static (dyn Fn() + Sync) = unsafe { std::mem::transmute(run_ref) };
        {
            let mut d = self.shared.dispatch.lock().expect("pool dispatch lock");
            d.epoch += 1;
            d.job = Some(JobRef(run_static as *const _));
        }
        self.shared.job_ready.notify_all();

        // The submitter is a full participant — on a machine with fewer free
        // cores than workers this alone guarantees progress.
        run();

        let mut d = self.shared.dispatch.lock().expect("pool dispatch lock");
        while d.running > 0 {
            d = self.shared.job_done.wait(d).expect("pool dispatch lock");
        }
        d.job = None;
        drop(d);

        if let Some(payload) = panic_slot.into_inner().expect("panic slot lock") {
            resume_unwind(payload);
        }
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("worker slot lock")
                    .expect("every task index below `tasks` was claimed and completed")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_are_in_task_order() {
        for workers in [1, 2, 4, 8] {
            let pool = WorkerPool::new(workers);
            let out = pool.map_indexed(37, |i| i * i);
            assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let pool = WorkerPool::new(4);
        pool.map_indexed(100, |_| counter.fetch_add(1, Ordering::Relaxed));
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn zero_tasks_is_fine() {
        let pool = WorkerPool::new(4);
        let out: Vec<usize> = pool.map_indexed(0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        assert_eq!(WorkerPool::new(0).workers(), 1);
    }

    #[test]
    fn pool_threads_persist_across_jobs() {
        let pool = WorkerPool::new(4);
        // Many back-to-back jobs reuse the same threads; correctness of the
        // epoch protocol shows as exact results on every round.
        for round in 0..200usize {
            let out = pool.map_indexed(9, |i| i + round);
            assert_eq!(out, (0..9).map(|i| i + round).collect::<Vec<_>>());
        }
    }

    #[test]
    fn clones_share_the_same_threads() {
        let pool = WorkerPool::new(3);
        let clone = pool.clone();
        assert_eq!(clone.workers(), 3);
        let a = pool.map_indexed(5, |i| i);
        let b = clone.map_indexed(5, |i| i * 2);
        assert_eq!(a, vec![0, 1, 2, 3, 4]);
        assert_eq!(b, vec![0, 2, 4, 6, 8]);
        drop(pool);
        // The surviving clone still works after the original drops.
        assert_eq!(clone.map_indexed(3, |i| i + 1), vec![1, 2, 3]);
    }

    #[test]
    fn concurrent_submitters_from_different_clones() {
        let pool = WorkerPool::new(4);
        let other = pool.clone();
        let handle = std::thread::spawn(move || other.map_indexed(50, |i| i * 3));
        let here = pool.map_indexed(50, |i| i * 5);
        let there = handle.join().unwrap();
        assert_eq!(here, (0..50).map(|i| i * 5).collect::<Vec<_>>());
        assert_eq!(there, (0..50).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn panics_propagate_to_the_submitter() {
        let pool = WorkerPool::new(4);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.map_indexed(20, |i| {
                if i == 13 {
                    panic!("boom at 13");
                }
                i
            })
        }));
        let payload = result.expect_err("panic must propagate");
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("unexpected payload");
        assert!(message.contains("boom"), "{message}");
        // The pool survives a panicked job.
        assert_eq!(pool.map_indexed(4, |i| i), vec![0, 1, 2, 3]);
    }
}
