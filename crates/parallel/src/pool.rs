//! The scoped-thread worker pool.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A pool of scoped worker threads executing indexed tasks.
///
/// Tasks are claimed through a shared atomic counter (cheap dynamic load
/// balancing: a worker that finishes a small partition immediately claims the
/// next one). Results land in per-task slots, so the returned vector is in
/// task order regardless of which worker ran what — the caller's fold over the
/// results is therefore deterministic.
#[derive(Debug, Clone, Copy)]
pub struct WorkerPool {
    workers: usize,
}

impl WorkerPool {
    /// A pool with `workers` threads (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `f(0), f(1), …, f(tasks - 1)` across the pool and returns the
    /// results in task order. With one worker (or at most one task) the tasks
    /// run in a plain loop on the calling thread — no threads are spawned, so
    /// the single-worker pool is exactly the serial code path.
    ///
    /// A panicking task propagates its panic to the caller after the scope
    /// joins the remaining workers.
    pub fn map_indexed<T, F>(&self, tasks: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if self.workers <= 1 || tasks <= 1 {
            return (0..tasks).map(f).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<T>>> = (0..tasks).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..self.workers.min(tasks) {
                scope.spawn(|| loop {
                    let task = next.fetch_add(1, Ordering::Relaxed);
                    if task >= tasks {
                        break;
                    }
                    let value = f(task);
                    *slots[task].lock().expect("worker slot lock") = Some(value);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("worker slot lock")
                    .expect("every task index below `tasks` was claimed and completed")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_are_in_task_order() {
        for workers in [1, 2, 4, 8] {
            let pool = WorkerPool::new(workers);
            let out = pool.map_indexed(37, |i| i * i);
            assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let pool = WorkerPool::new(4);
        pool.map_indexed(100, |_| counter.fetch_add(1, Ordering::Relaxed));
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn zero_tasks_is_fine() {
        let pool = WorkerPool::new(4);
        let out: Vec<usize> = pool.map_indexed(0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        assert_eq!(WorkerPool::new(0).workers(), 1);
    }
}
