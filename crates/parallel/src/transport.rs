//! The transport seam of the exchange layer.
//!
//! The exchange operators of [`crate::exchange`] describe *what* moves between
//! partitions (a re-shuffle, a replication, a result collection); a
//! [`Transport`] decides *how* the tuples travel. [`InProcessTransport`] — the
//! default — performs the movements as memory moves inside the coordinator
//! process, exactly as every executor did before the seam existed. The
//! `rdo-net` crate provides a TCP implementation that routes the same
//! exchanges through worker processes as framed page batches, so the executor
//! and the driver never care which side of a socket a tuple crossed.
//!
//! The contract every implementation must honor: results, partition order and
//! the reported movement tallies are **bit-identical** to
//! [`InProcessTransport`]. A transport is a physical routing decision, never a
//! semantic one — the equivalence suites pin this for the TCP backend at
//! every worker-process count.

use crate::exchange::{Broadcast, Gather, HashRepartition};
use crate::pool::WorkerPool;
use rdo_common::{Relation, Result, Tuple};
use rdo_exec::PartitionedData;
use std::sync::Arc;

/// How exchange operators move tuples between partitions.
///
/// Implementations must be deterministic and bit-identical to
/// [`InProcessTransport`]: same output partitions in the same order, same
/// moved-row/moved-byte tallies, same gathered relations.
pub trait Transport: std::fmt::Debug + Send + Sync {
    /// Short label for reports and logs (`"in-process"`, `"tcp"`).
    fn name(&self) -> &'static str;

    /// Runs a [`HashRepartition`] exchange over `data`, returning the
    /// re-partitioned data plus the rows and bytes that crossed partitions.
    fn repartition(
        &self,
        exchange: &HashRepartition,
        data: &PartitionedData,
        pool: &WorkerPool,
    ) -> Result<(PartitionedData, u64, u64)>;

    /// Runs a [`Broadcast`] exchange over `data`, returning the shared
    /// replica plus the replicated rows and bytes charged to the metrics.
    fn broadcast(
        &self,
        exchange: &Broadcast,
        data: &PartitionedData,
    ) -> Result<(Arc<Vec<Tuple>>, u64, u64)>;

    /// Runs the [`Gather`] exchange: collects every partition on the
    /// coordinator, in partition order.
    fn gather(&self, data: &PartitionedData) -> Result<Relation>;
}

/// The default transport: exchanges are in-process memory moves on the
/// coordinator, exactly the behavior the exchange operators had before the
/// [`Transport`] seam existed.
#[derive(Debug, Clone, Copy, Default)]
pub struct InProcessTransport;

impl Transport for InProcessTransport {
    fn name(&self) -> &'static str {
        "in-process"
    }

    fn repartition(
        &self,
        exchange: &HashRepartition,
        data: &PartitionedData,
        pool: &WorkerPool,
    ) -> Result<(PartitionedData, u64, u64)> {
        Ok(exchange.apply(data, pool))
    }

    fn broadcast(
        &self,
        exchange: &Broadcast,
        data: &PartitionedData,
    ) -> Result<(Arc<Vec<Tuple>>, u64, u64)> {
        Ok(exchange.apply(data))
    }

    fn gather(&self, data: &PartitionedData) -> Result<Relation> {
        Ok(Gather.apply(data))
    }
}

/// Returns the default transport (an [`InProcessTransport`] behind an `Arc`).
pub fn default_transport() -> Arc<dyn Transport> {
    Arc::new(InProcessTransport)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdo_common::{DataType, Schema, Value};

    fn data(n: i64, partitions: usize) -> PartitionedData {
        let schema = Schema::for_dataset("t", &[("k", DataType::Int64), ("g", DataType::Int64)]);
        let mut parts = vec![Vec::new(); partitions];
        for i in 0..n {
            parts[(i % partitions as i64) as usize]
                .push(Tuple::new(vec![Value::Int64(i), Value::Int64(i % 7)]));
        }
        PartitionedData::new(schema, parts, None)
    }

    /// The in-process transport is a transparent wrapper over the exchange
    /// operators' own `apply` methods.
    #[test]
    fn in_process_transport_matches_direct_exchange_application() {
        let input = data(200, 4);
        let pool = WorkerPool::new(2);
        let transport = InProcessTransport;
        assert_eq!(transport.name(), "in-process");

        let exchange = HashRepartition::new(1, "t.g");
        let (expected, er, eb) = exchange.apply(&input, &pool);
        let (actual, ar, ab) = transport.repartition(&exchange, &input, &pool).unwrap();
        assert_eq!(actual.partitions(), expected.partitions());
        assert_eq!((ar, ab), (er, eb));

        let bcast = Broadcast::new(4);
        let (expected_rows, er, eb) = bcast.apply(&input);
        let (actual_rows, ar, ab) = transport.broadcast(&bcast, &input).unwrap();
        assert_eq!(*actual_rows, *expected_rows);
        assert_eq!((ar, ab), (er, eb));

        assert_eq!(transport.gather(&input).unwrap(), input.gather());
    }
}
