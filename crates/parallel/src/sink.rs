//! The parallel Sink: the barrier at each re-optimization point.
//!
//! Algorithm 1 materializes the chosen join's result before re-planning; that
//! materialization is a natural barrier for the worker pool. Each worker
//! builds a [`DatasetStatsBuilder`] (GK + HLL sketches) over its partitions,
//! and the coordinator merges the per-partition partials **in partition
//! order** before registering the intermediate table — mirroring the paper's
//! per-partition Sink operators whose local statistics are combined when the
//! job finishes. The fixed merge order makes the registered statistics
//! identical for every worker count.
//!
//! Note the statistics semantics differ slightly from the serial
//! [`rdo_exec::materialize`], which observes the *gathered* relation row by
//! row on the coordinator: HyperLogLog merging is exact, but a GK sketch
//! merged from per-partition partials is a different (equally valid,
//! error-bounded) summary than one built sequentially. Both satisfy the same
//! accuracy guarantees; the dynamic driver uses this parallel Sink in all
//! configurations so its planning decisions never depend on the worker count.

use crate::exchange::Gather;
use crate::pool::WorkerPool;
use rdo_common::Result;
use rdo_exec::{ExecutionMetrics, MaterializeOutcome, PartitionedData};
use rdo_sketch::DatasetStatsBuilder;
use rdo_storage::Catalog;

/// Materializes `data` into the catalog as temporary table `name`,
/// hash-partitioned on `partition_key`, collecting online statistics on
/// `tracked_columns` (when `collect_stats` is true) from per-partition
/// partials merged at the barrier. Sketch building runs on the caller's
/// persistent `pool` (one pool per driver execution, shared by every stage).
///
/// When `data` is already hash-partitioned on `partition_key` with the
/// cluster's partition count, its layout is registered verbatim — re-hashing
/// the gathered relation on the coordinator would reproduce exactly the same
/// assignment, so the serial rebuild is skipped. The catalog's spill policy
/// then decides whether the table stays resident or goes to the paged disk
/// store; logical page writes land in the `spill_*` metrics.
#[allow(clippy::too_many_arguments)]
pub fn materialize(
    pool: &WorkerPool,
    catalog: &mut Catalog,
    name: &str,
    data: &PartitionedData,
    partition_key: Option<&str>,
    tracked_columns: &[String],
    collect_stats: bool,
    metrics: &mut ExecutionMetrics,
) -> Result<MaterializeOutcome> {
    let rows = data.row_count() as u64;
    let bytes = data.approx_bytes() as u64;
    let mut span = rdo_trace::span("sink.materialize");
    span.attr_str("table", name);
    span.attr_u64("rows", rows);
    span.attr_u64("bytes", bytes);

    // Statistics cost accounting, shared with the serial Sink: one
    // observation per tracked column actually present in the schema, per row.
    let stats_values = if collect_stats {
        rdo_exec::sink::tracked_columns_present(data.schema(), tracked_columns) * rows
    } else {
        0
    };

    // Per-partition sketch building on the pool, merged in partition order.
    let tracked: &[String] = if collect_stats { tracked_columns } else { &[] };
    let partials = pool.map_indexed(data.num_partitions(), |p| {
        let mut builder = DatasetStatsBuilder::new(data.schema(), tracked);
        for row in &data.partitions()[p] {
            builder.observe(row);
        }
        builder
    });
    let mut merged = DatasetStatsBuilder::new(data.schema(), tracked);
    for partial in &partials {
        merged.merge(partial);
    }

    let layout_matches = partition_key.is_some_and(|key| data.is_partitioned_on(key))
        && data.num_partitions() == catalog.num_partitions();
    let stored = if layout_matches {
        catalog.register_intermediate_partitioned(
            name,
            data.schema().clone(),
            data.partitions().to_vec(),
            partition_key,
            merged.build(),
        )?
    } else {
        let relation = Gather.apply(data);
        catalog.register_intermediate_prebuilt(name, relation, partition_key, merged.build())?
    };

    metrics.rows_materialized += rows;
    metrics.bytes_materialized += bytes;
    metrics.stats_values_observed += stats_values;
    metrics.spill_pages_written += stored.pages_written;
    metrics.spill_bytes_written += stored.bytes_written;
    metrics.spill_logical_bytes_written += stored.logical_bytes_written;

    Ok(MaterializeOutcome {
        table: name.to_string(),
        rows,
        bytes,
        stats_values,
        spilled: stored.spilled,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ParallelConfig;
    use crate::executor::ParallelExecutor;
    use rdo_common::{DataType, Relation, Schema, Tuple, Value};
    use rdo_exec::PhysicalPlan;
    use rdo_storage::IngestOptions;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new(4);
        let schema = Schema::for_dataset(
            "orders",
            &[
                ("o_orderkey", DataType::Int64),
                ("o_custkey", DataType::Int64),
            ],
        );
        let rows = (0..100)
            .map(|i| Tuple::new(vec![Value::Int64(i), Value::Int64(i % 10)]))
            .collect();
        cat.ingest(
            "orders",
            Relation::new(schema, rows).unwrap(),
            IngestOptions::partitioned_on("o_orderkey"),
        )
        .unwrap();
        cat
    }

    fn scan(cat: &Catalog, workers: usize) -> (PartitionedData, ExecutionMetrics) {
        let mut metrics = ExecutionMetrics::new();
        let exec = ParallelExecutor::new(cat, ParallelConfig::serial().with_workers(workers));
        let data = exec
            .execute(&PhysicalPlan::scan("orders"), &mut metrics)
            .unwrap();
        (data, metrics)
    }

    #[test]
    fn materialize_registers_table_and_merged_stats() {
        let mut cat = catalog();
        let (data, mut metrics) = scan(&cat, 4);
        let outcome = materialize(
            &WorkerPool::new(4),
            &mut cat,
            "I_1",
            &data,
            Some("o_custkey"),
            &["o_custkey".to_string()],
            true,
            &mut metrics,
        )
        .unwrap();
        assert_eq!(outcome.rows, 100);
        assert_eq!(outcome.stats_values, 100);
        assert_eq!(metrics.rows_materialized, 100);
        assert_eq!(metrics.stats_values_observed, 100);
        let stats = cat.stats().get("I_1").unwrap();
        assert_eq!(stats.row_count, 100);
        let column = stats.column("o_custkey").unwrap();
        assert!((column.distinct_nonzero() - 10.0).abs() < 2.0);
        assert!(cat.table("I_1").unwrap().is_partitioned_on("o_custkey"));
    }

    #[test]
    fn partitioned_fast_path_matches_the_gather_rehash_path() {
        // `I_key` goes through the fast path (data partitioned on o_orderkey,
        // the base table's partition key); `I_rehash` is forced through the
        // gather-and-rehash path by asking for a different partition key. A
        // third registration re-hashes the fast path's gathered rows on the
        // same key, proving the layouts are bit-identical.
        let mut cat = catalog();
        let (data, _) = scan(&cat, 2);
        assert!(data.is_partitioned_on("o_orderkey"));
        let pool = WorkerPool::new(2);
        let mut m = ExecutionMetrics::new();
        materialize(
            &pool,
            &mut cat,
            "I_key",
            &data,
            Some("o_orderkey"),
            &[],
            false,
            &mut m,
        )
        .unwrap();
        let fast = cat.table("I_key").unwrap();
        let rehashed = rdo_storage::Table::from_relation(
            "check",
            fast.gather(),
            cat.num_partitions(),
            Some("o_orderkey"),
        )
        .unwrap();
        for p in 0..cat.num_partitions() {
            assert_eq!(
                fast.partition_to_vec(p).unwrap(),
                rehashed.partition(p),
                "partition {p} layouts identical"
            );
        }
        assert!(fast.is_temporary() && fast.is_partitioned_on("o_orderkey"));
        assert_eq!(cat.stats().row_count("I_key"), Some(100));
    }

    #[test]
    fn materialize_spills_when_the_budget_is_exceeded() {
        use rdo_storage::SpillConfig;
        let mut cat = catalog();
        cat.configure_spill(SpillConfig::default().with_budget(1).with_page_size(512))
            .unwrap();
        let (data, _) = scan(&cat, 2);
        let pool = WorkerPool::new(2);
        let mut m = ExecutionMetrics::new();
        let outcome = materialize(
            &pool,
            &mut cat,
            "I_spill",
            &data,
            Some("o_orderkey"),
            &["o_custkey".to_string()],
            true,
            &mut m,
        )
        .unwrap();
        assert!(outcome.spilled);
        assert!(m.spill_pages_written > 0 && m.spill_bytes_written > 0);
        let table = cat.table("I_spill").unwrap();
        assert!(table.is_spilled());
        assert_eq!(table.row_count(), 100);
        // Statistics were merged from per-partition partials before spilling.
        assert_eq!(m.stats_values_observed, 100);
        assert!(cat
            .stats()
            .get("I_spill")
            .unwrap()
            .column("o_custkey")
            .is_some());
    }

    #[test]
    fn stats_are_identical_for_every_worker_count() {
        let reference = {
            let mut cat = catalog();
            let (data, mut m) = scan(&cat, 1);
            materialize(
                &WorkerPool::new(1),
                &mut cat,
                "I_1",
                &data,
                None,
                &["o_custkey".to_string()],
                true,
                &mut m,
            )
            .unwrap();
            cat.stats().get("I_1").unwrap().clone()
        };
        for workers in [2, 4, 8] {
            let mut cat = catalog();
            let (data, mut m) = scan(&cat, workers);
            materialize(
                &WorkerPool::new(workers),
                &mut cat,
                "I_1",
                &data,
                None,
                &["o_custkey".to_string()],
                true,
                &mut m,
            )
            .unwrap();
            let stats = cat.stats().get("I_1").unwrap();
            assert_eq!(stats.row_count, reference.row_count);
            let (a, b) = (
                stats.column("o_custkey").unwrap(),
                reference.column("o_custkey").unwrap(),
            );
            assert_eq!(
                a.distinct_nonzero(),
                b.distinct_nonzero(),
                "workers={workers}"
            );
        }
    }

    #[test]
    fn materialize_without_stats_counts_no_observations() {
        let mut cat = catalog();
        let (data, mut metrics) = scan(&cat, 2);
        let outcome = materialize(
            &WorkerPool::new(2),
            &mut cat,
            "I_last",
            &data,
            None,
            &["o_custkey".to_string()],
            false,
            &mut metrics,
        )
        .unwrap();
        assert_eq!(outcome.stats_values, 0);
        assert_eq!(cat.stats().row_count("I_last"), Some(100));
        assert!(cat.stats().get("I_last").unwrap().columns.is_empty());
    }
}
