//! Configuration of the partition-parallel executor.

/// Knobs of the partition-parallel executor, threaded through
/// `DynamicConfig` and the strategy runner so every strategy (dynamic,
/// cost-based, best/worst-order, pilot-run, INGRES-like) executes through the
/// same worker pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Number of worker threads. `1` runs every partition on the calling
    /// thread and is bit-identical to the serial executor; values above the
    /// partition count are harmless (excess workers find the task counter
    /// exhausted and exit).
    pub workers: usize,
    /// Number of partitions one task claims at a time (scheduling granularity,
    /// a coarse morsel). `1` gives the best balance; larger morsels reduce
    /// scheduling overhead when partitions are tiny.
    pub morsel_size: usize,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            morsel_size: 1,
        }
    }
}

impl ParallelConfig {
    /// Single-worker configuration (bit-identical to the serial executor).
    pub fn serial() -> Self {
        Self {
            workers: 1,
            morsel_size: 1,
        }
    }

    /// Builder-style worker-count override.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Builder-style morsel-size override.
    pub fn with_morsel_size(mut self, morsel_size: usize) -> Self {
        self.morsel_size = morsel_size.max(1);
        self
    }

    /// The default configuration with the `RDO_WORKERS` environment variable
    /// applied — the bench harness uses this so figures are reproducible on
    /// any machine by pinning the worker count. A set-but-invalid worker
    /// count silently falling back to the machine default would make a
    /// pinned CI leg test something else entirely; the shared
    /// [`rdo_common::env`] reader warns loudly instead (matching the
    /// RDO_SPILL_* parsers).
    pub fn from_env() -> Self {
        let config = Self::default();
        match rdo_common::env::read_env(
            WORKERS_ENV,
            "using the machine default",
            rdo_common::env::parse_env_positive_usize,
        ) {
            Some(workers) => config.with_workers(workers),
            None => config,
        }
    }
}

/// Environment variable pinning the worker count of the partition-parallel
/// executor.
pub const WORKERS_ENV: &str = "RDO_WORKERS";

/// Parses an `RDO_WORKERS` value through the shared warn-on-invalid helper of
/// [`rdo_common::env`]. Returns the warning to print when the value is not a
/// positive integer (`from_env` keeps the default in that case).
pub fn parse_workers(raw: &str) -> std::result::Result<usize, String> {
    rdo_common::env::parse_env_positive_usize(WORKERS_ENV, raw, "using the machine default")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_has_at_least_one_worker() {
        let config = ParallelConfig::default();
        assert!(config.workers >= 1);
        assert_eq!(config.morsel_size, 1);
    }

    #[test]
    fn serial_is_one_worker() {
        assert_eq!(ParallelConfig::serial().workers, 1);
    }

    #[test]
    fn builders_clamp_to_one() {
        let config = ParallelConfig::serial().with_workers(0).with_morsel_size(0);
        assert_eq!(config.workers, 1);
        assert_eq!(config.morsel_size, 1);
    }

    #[test]
    fn worker_env_values_parse_or_warn() {
        assert_eq!(parse_workers("4"), Ok(4));
        assert_eq!(parse_workers(" 8 "), Ok(8), "whitespace is tolerated");
        for invalid in ["", "0", "-2", "two", "1.5", "4 workers"] {
            let warning = parse_workers(invalid).expect_err(invalid);
            assert!(
                warning.contains("RDO_WORKERS") && warning.contains("warning"),
                "warning names the variable: {warning}"
            );
        }
    }
}
