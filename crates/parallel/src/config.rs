//! Configuration of the partition-parallel executor.

/// Which transport backs the exchange operators (see [`crate::transport`]).
///
/// The kind is a plain, copyable *selection*; resolving it into a concrete
/// [`crate::Transport`] object happens where the executors are built (the
/// `rdo-core` driver and runner, via `rdo-net` for the TCP backend), so this
/// crate never depends on the networking stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// Exchanges are in-process memory moves on the coordinator (the
    /// default, and the only behavior that existed before `rdo-net`).
    #[default]
    InProcess,
    /// Exchanges flow as framed page batches over TCP through the worker
    /// processes listed in `RDO_NET_WORKERS` (see `rdo_net`). Falls back to
    /// in-process execution, with a warning, when no workers are reachable.
    Tcp,
}

impl TransportKind {
    /// Short label used in reports and warnings.
    pub fn label(&self) -> &'static str {
        match self {
            TransportKind::InProcess => "in-process",
            TransportKind::Tcp => "tcp",
        }
    }

    /// The `RDO_TRANSPORT` selection, in-process when unset (set-but-invalid
    /// values warn and keep the default, like every other `RDO_*` knob).
    /// `DynamicConfig::default()`, the strategy runner and the bench harness
    /// all read this, so exporting the variable routes every driver-, runner-
    /// and figures-based execution through the selected transport.
    pub fn from_env() -> Self {
        rdo_common::env::read_env(TRANSPORT_ENV, "staying in-process", parse_transport_env)
            .unwrap_or_default()
    }
}

/// Knobs of the partition-parallel executor, threaded through
/// `DynamicConfig` and the strategy runner so every strategy (dynamic,
/// cost-based, best/worst-order, pilot-run, INGRES-like) executes through the
/// same worker pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Number of worker threads. `1` runs every partition on the calling
    /// thread and is bit-identical to the serial executor; values above the
    /// partition count are harmless (excess workers find the task counter
    /// exhausted and exit).
    pub workers: usize,
    /// Number of partitions one task claims at a time (scheduling granularity,
    /// a coarse morsel). `1` gives the best balance; larger morsels reduce
    /// scheduling overhead when partitions are tiny.
    pub morsel_size: usize,
    /// Transport backing the exchange operators. Results and metrics are
    /// bit-identical for every kind; only the physical route differs.
    pub transport: TransportKind,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            morsel_size: 1,
            transport: TransportKind::InProcess,
        }
    }
}

impl ParallelConfig {
    /// Single-worker configuration (bit-identical to the serial executor).
    pub fn serial() -> Self {
        Self {
            workers: 1,
            morsel_size: 1,
            transport: TransportKind::InProcess,
        }
    }

    /// Builder-style worker-count override.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Builder-style morsel-size override.
    pub fn with_morsel_size(mut self, morsel_size: usize) -> Self {
        self.morsel_size = morsel_size.max(1);
        self
    }

    /// Builder-style transport selection.
    pub fn with_transport(mut self, transport: TransportKind) -> Self {
        self.transport = transport;
        self
    }

    /// The default configuration with the `RDO_WORKERS` and `RDO_TRANSPORT`
    /// environment variables applied — the bench harness uses this so figures
    /// are reproducible on any machine by pinning the worker count. A
    /// set-but-invalid value silently falling back to a default would make a
    /// pinned CI leg test something else entirely; the shared
    /// [`rdo_common::env`] reader warns loudly instead (matching the
    /// RDO_SPILL_* parsers).
    pub fn from_env() -> Self {
        let mut config = Self::default();
        if let Some(workers) = rdo_common::env::read_env(
            WORKERS_ENV,
            "using the machine default",
            rdo_common::env::parse_env_positive_usize,
        ) {
            config = config.with_workers(workers);
        }
        config.with_transport(TransportKind::from_env())
    }
}

/// Environment variable pinning the worker count of the partition-parallel
/// executor.
pub const WORKERS_ENV: &str = "RDO_WORKERS";

/// Environment variable selecting the exchange transport (`inprocess` /
/// `tcp`). The TCP backend additionally needs worker addresses in
/// `RDO_NET_WORKERS` (see `rdo_net`).
pub const TRANSPORT_ENV: &str = "RDO_TRANSPORT";

/// Parses an `RDO_WORKERS` value through the shared warn-on-invalid helper of
/// [`rdo_common::env`]. Returns the warning to print when the value is not a
/// positive integer (`from_env` keeps the default in that case).
pub fn parse_workers(raw: &str) -> std::result::Result<usize, String> {
    rdo_common::env::parse_env_positive_usize(WORKERS_ENV, raw, "using the machine default")
}

/// Parses an `RDO_TRANSPORT` value: `inprocess`/`in-process`/`local` select
/// the default in-process transport, `tcp` selects the `rdo-net` TCP backend.
/// Anything else returns the warning to print (the caller keeps the default).
pub fn parse_transport_env(
    var: &str,
    raw: &str,
    fallback: &str,
) -> std::result::Result<TransportKind, String> {
    match raw.trim().to_ascii_lowercase().as_str() {
        "inprocess" | "in-process" | "local" => Ok(TransportKind::InProcess),
        "tcp" => Ok(TransportKind::Tcp),
        _ => Err(format!(
            "warning: {var}={raw:?} is not a transport \
             (inprocess or tcp expected); {fallback}"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_has_at_least_one_worker() {
        let config = ParallelConfig::default();
        assert!(config.workers >= 1);
        assert_eq!(config.morsel_size, 1);
    }

    #[test]
    fn serial_is_one_worker() {
        assert_eq!(ParallelConfig::serial().workers, 1);
    }

    #[test]
    fn builders_clamp_to_one() {
        let config = ParallelConfig::serial().with_workers(0).with_morsel_size(0);
        assert_eq!(config.workers, 1);
        assert_eq!(config.morsel_size, 1);
    }

    #[test]
    fn worker_env_values_parse_or_warn() {
        assert_eq!(parse_workers("4"), Ok(4));
        assert_eq!(parse_workers(" 8 "), Ok(8), "whitespace is tolerated");
        for invalid in ["", "0", "-2", "two", "1.5", "4 workers"] {
            let warning = parse_workers(invalid).expect_err(invalid);
            assert!(
                warning.contains("RDO_WORKERS") && warning.contains("warning"),
                "warning names the variable: {warning}"
            );
        }
    }

    #[test]
    fn transport_env_values_parse_or_warn() {
        for (raw, expected) in [
            ("tcp", TransportKind::Tcp),
            ("TCP", TransportKind::Tcp),
            ("inprocess", TransportKind::InProcess),
            ("in-process", TransportKind::InProcess),
            ("local", TransportKind::InProcess),
            (" tcp ", TransportKind::Tcp),
        ] {
            assert_eq!(
                parse_transport_env("RDO_TRANSPORT", raw, "staying in-process"),
                Ok(expected),
                "{raw}"
            );
        }
        for invalid in ["", "udp", "sockets", "1"] {
            let warning = parse_transport_env("RDO_TRANSPORT", invalid, "staying in-process")
                .expect_err(invalid);
            assert!(
                warning.contains("RDO_TRANSPORT") && warning.contains("staying in-process"),
                "{warning}"
            );
        }
        assert_eq!(TransportKind::default(), TransportKind::InProcess);
        assert_eq!(TransportKind::Tcp.label(), "tcp");
        assert_eq!(TransportKind::InProcess.label(), "in-process");
    }
}
