//! The partition-parallel plan executor.
//!
//! Executes the same [`PhysicalPlan`]s as the serial [`rdo_exec::Executor`],
//! but maps the per-partition kernels of [`rdo_exec::partition`] across a
//! [`WorkerPool`] and moves tuples between partitions through the explicit
//! exchange operators of [`crate::exchange`]. Results and metrics are
//! identical to the serial executor for every worker count; see the crate
//! docs for why.

use crate::config::ParallelConfig;
use crate::exchange::{Broadcast, HashRepartition};
use crate::pool::WorkerPool;
use crate::transport::{default_transport, Transport};
use rdo_common::{FieldRef, RdoError, Relation, Result, Tuple};
use rdo_exec::grace::{joined_partition, GraceContext, GraceTally};
use rdo_exec::partition::{indexed_join_partition, scan_batch, IndexJoinTally, ScanTally};
use rdo_exec::setup::{prepare_indexed_join, prepare_scan, resolve_keys};
use rdo_exec::{ExecutionMetrics, JoinAlgorithm, PartitionedData, PhysicalPlan, Predicate};
use rdo_storage::{Catalog, SpillReadTally};
use std::sync::Arc;

/// Executes physical plans against a catalog with one task per partition.
pub struct ParallelExecutor<'a> {
    catalog: &'a Catalog,
    config: ParallelConfig,
    pool: WorkerPool,
    transport: Arc<dyn Transport>,
}

impl<'a> ParallelExecutor<'a> {
    /// Creates an executor over the given catalog with its own worker pool.
    /// Callers executing many stages (the dynamic driver) should create one
    /// [`WorkerPool`] up front and use [`ParallelExecutor::with_pool`] so the
    /// persistent threads are spawned once, not per stage.
    pub fn new(catalog: &'a Catalog, config: ParallelConfig) -> Self {
        Self::with_pool(catalog, config, WorkerPool::new(config.workers))
    }

    /// Creates an executor sharing an existing worker pool (an `Arc` clone).
    pub fn with_pool(catalog: &'a Catalog, config: ParallelConfig, pool: WorkerPool) -> Self {
        Self {
            catalog,
            config,
            pool,
            transport: default_transport(),
        }
    }

    /// Routes the exchange operators through `transport` (builder style).
    /// The default is the in-process transport; note that
    /// [`ParallelConfig::transport`] is only a *selection* — resolving it
    /// into a concrete object is the caller's job (the `rdo-core` driver
    /// resolves it through `rdo-net`).
    pub fn with_transport(mut self, transport: Arc<dyn Transport>) -> Self {
        self.transport = transport;
        self
    }

    /// The executor's configuration.
    pub fn config(&self) -> ParallelConfig {
        self.config
    }

    /// The executor's worker pool.
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// The transport routing the executor's exchanges.
    pub fn transport(&self) -> &Arc<dyn Transport> {
        &self.transport
    }

    /// Executes a plan, returning the partitioned output.
    pub fn execute(
        &self,
        plan: &PhysicalPlan,
        metrics: &mut ExecutionMetrics,
    ) -> Result<PartitionedData> {
        match plan {
            PhysicalPlan::Scan {
                dataset,
                table,
                predicates,
                projection,
            } => self.execute_scan(dataset, table, predicates, projection.as_deref(), metrics),
            PhysicalPlan::Join {
                left,
                right,
                keys,
                algorithm,
            } => self.execute_join(left, right, keys, *algorithm, metrics),
        }
    }

    /// Executes a plan and gathers the result on the coordinator.
    pub fn execute_to_relation(
        &self,
        plan: &PhysicalPlan,
        metrics: &mut ExecutionMetrics,
    ) -> Result<Relation> {
        let data = self.execute(plan, metrics)?;
        let relation = self.transport.gather(&data)?;
        metrics.result_rows += relation.len() as u64;
        Ok(relation)
    }

    /// Maps a fallible per-partition task over `partitions` partitions,
    /// claiming `morsel_size` partitions per task, and returns the
    /// per-partition outputs in partition order. The error of the lowest
    /// failing partition wins, matching the serial executor's first-error
    /// behaviour.
    fn map_partitions<T: Send>(
        &self,
        partitions: usize,
        task: impl Fn(usize) -> Result<T> + Sync,
    ) -> Result<Vec<T>> {
        let morsel = self.config.morsel_size.max(1);
        let morsels = partitions.div_ceil(morsel);
        let chunks = self.pool.map_indexed(morsels, |m| {
            let start = m * morsel;
            let end = ((m + 1) * morsel).min(partitions);
            // One span per morsel, not per partition: the morsel count depends
            // only on (partitions, morsel_size), so the trace shape is the
            // same for every worker count.
            let mut span = rdo_trace::span("pool.morsel");
            span.attr_u64("morsel", m as u64);
            span.attr_u64("partitions", (end - start) as u64);
            (start..end).map(&task).collect::<Vec<Result<T>>>()
        });
        let mut out = Vec::with_capacity(partitions);
        for result in chunks.into_iter().flatten() {
            out.push(result?);
        }
        Ok(out)
    }

    fn execute_scan(
        &self,
        dataset: &str,
        table_name: &str,
        predicates: &[Predicate],
        projection: Option<&[FieldRef]>,
        metrics: &mut ExecutionMetrics,
    ) -> Result<PartitionedData> {
        let mut span = rdo_trace::span("exec.scan");
        span.attr_str("table", table_name);
        let table = self.catalog.table_handle(table_name)?;
        let setup = prepare_scan(&table, dataset, projection)?;

        // Each partition streams batch by batch through the columnar scan
        // kernel — columnar-backed tables hand over their stored batches with
        // no row conversion, memory-backed ones are chunked at the batch
        // size, spilled ones decode each page through the buffer pool.
        // Per-partition tallies fold in partition order, so metrics are
        // identical for every worker count and every backing.
        let results = self.map_partitions(table.num_partitions(), |p| {
            let mut out_rows: Vec<Tuple> = Vec::new();
            let mut partial = ScanTally::default();
            let page_tally = table.scan_batches(p, |batch| {
                let (out, page_partial) = scan_batch(
                    &setup.schema,
                    predicates,
                    setup.projection_indexes.as_deref(),
                    batch,
                )?;
                partial.add(&page_partial);
                out.extend_rows_into(&mut out_rows);
                Ok(true)
            })?;
            Ok((out_rows, partial, page_tally))
        })?;
        let mut partitions: Vec<Vec<Tuple>> = Vec::with_capacity(results.len());
        let mut tally = ScanTally::default();
        let mut spill_read = SpillReadTally::default();
        for (rows, partial, page_tally) in results {
            tally.add(&partial);
            spill_read.add(&page_tally);
            partitions.push(rows);
        }
        metrics.spill_pages_read += spill_read.pages;
        metrics.spill_bytes_read += spill_read.bytes;
        metrics.spill_logical_bytes_read += spill_read.logical_bytes;

        if table.is_temporary() {
            metrics.rows_intermediate_read += tally.scanned_rows;
            metrics.bytes_intermediate_read += tally.scanned_bytes;
        } else {
            metrics.rows_scanned += tally.scanned_rows;
            metrics.bytes_scanned += tally.scanned_bytes;
        }
        metrics.output_rows += tally.kept;
        span.attr_u64("rows_in", tally.scanned_rows);
        span.attr_u64("rows_out", tally.kept);
        span.attr_u64("predicates", predicates.len() as u64);
        rdo_trace::counter("progress.rows_produced", tally.kept);

        let mut data = PartitionedData::new(setup.out_schema, partitions, setup.partition_key);
        if predicates.is_empty() && projection.is_none() && !table.is_temporary() {
            data = data.with_base_table(table_name);
        }
        Ok(data)
    }

    fn execute_join(
        &self,
        left: &PhysicalPlan,
        right: &PhysicalPlan,
        keys: &[(FieldRef, FieldRef)],
        algorithm: JoinAlgorithm,
        metrics: &mut ExecutionMetrics,
    ) -> Result<PartitionedData> {
        if keys.is_empty() {
            return Err(RdoError::Execution("join without key pairs".to_string()));
        }
        match algorithm {
            JoinAlgorithm::Hash => {
                let left_data = self.execute(left, metrics)?;
                let right_data = self.execute(right, metrics)?;
                self.hash_join(left_data, right_data, keys, metrics)
            }
            JoinAlgorithm::Broadcast => {
                let left_data = self.execute(left, metrics)?;
                let right_data = self.execute(right, metrics)?;
                self.broadcast_join(left_data, right_data, keys, metrics)
            }
            JoinAlgorithm::IndexedNestedLoop => {
                let right_data = self.execute(right, metrics)?;
                self.indexed_nested_loop_join(left, right_data, keys, metrics)
            }
        }
    }

    /// Partitioned hash join: a [`HashRepartition`] exchange in front of every
    /// input not already partitioned on its join key, then one build/probe
    /// kernel per partition.
    fn hash_join(
        &self,
        left: PartitionedData,
        right: PartitionedData,
        keys: &[(FieldRef, FieldRef)],
        metrics: &mut ExecutionMetrics,
    ) -> Result<PartitionedData> {
        let (left_key_indexes, right_key_indexes) = resolve_keys(&left, &right, keys)?;
        let (first_left_key, first_right_key) = &keys[0];
        let mut span = rdo_trace::span("exec.join");
        span.attr_str("algo", "hash");
        let rows_in =
            |data: &PartitionedData| data.partitions().iter().map(Vec::len).sum::<usize>() as u64;
        span.attr_u64("rows_in", rows_in(&left) + rows_in(&right));

        let left = if left.is_partitioned_on(&first_left_key.field) {
            left
        } else {
            let exchange = HashRepartition::new(left_key_indexes[0], &first_left_key.field);
            let (data, moved_rows, moved_bytes) =
                self.transport.repartition(&exchange, &left, &self.pool)?;
            metrics.rows_shuffled += moved_rows;
            metrics.bytes_shuffled += moved_bytes;
            data
        };
        let right = if right.is_partitioned_on(&first_right_key.field) {
            right
        } else {
            let exchange = HashRepartition::new(right_key_indexes[0], &first_right_key.field);
            let (data, moved_rows, moved_bytes) =
                self.transport.repartition(&exchange, &right, &self.pool)?;
            metrics.rows_shuffled += moved_rows;
            metrics.bytes_shuffled += moved_bytes;
            data
        };

        let out_schema = left.schema().join(right.schema());
        let num_partitions = left.num_partitions().max(right.num_partitions());
        let empty: Vec<Tuple> = Vec::new();
        let grace = GraceContext::from_catalog(self.catalog);
        let results = self.map_partitions(num_partitions, |p| {
            let build_rows = right.partitions().get(p).unwrap_or(&empty);
            let probe_rows = left.partitions().get(p).unwrap_or(&empty);
            joined_partition(
                probe_rows,
                build_rows,
                &left_key_indexes,
                &right_key_indexes,
                grace.as_ref(),
            )
        })?;
        let mut out_partitions: Vec<Vec<Tuple>> = Vec::with_capacity(num_partitions);
        let mut tally = GraceTally::default();
        for (rows, partial) in results {
            tally.add(&partial);
            out_partitions.push(rows);
        }
        tally.record(metrics);
        let joined_rows = out_partitions.iter().map(Vec::len).sum::<usize>() as u64;
        span.attr_u64("rows_out", joined_rows);
        rdo_trace::counter("progress.rows_produced", joined_rows);

        let key_name = rdo_common::unqualified(&first_left_key.field).to_string();
        Ok(PartitionedData::new(
            out_schema,
            out_partitions,
            Some(key_name),
        ))
    }

    /// Broadcast join: a [`Broadcast`] exchange replicates the build side,
    /// then every probe partition builds its own hash table over the shared
    /// replica (each partition of the real cluster would do the same with its
    /// received copy).
    fn broadcast_join(
        &self,
        left: PartitionedData,
        right: PartitionedData,
        keys: &[(FieldRef, FieldRef)],
        metrics: &mut ExecutionMetrics,
    ) -> Result<PartitionedData> {
        let (left_key_indexes, right_key_indexes) = resolve_keys(&left, &right, keys)?;
        let mut span = rdo_trace::span("exec.join");
        span.attr_str("algo", "broadcast");
        let rows_in =
            |data: &PartitionedData| data.partitions().iter().map(Vec::len).sum::<usize>() as u64;
        span.attr_u64("rows_in", rows_in(&left) + rows_in(&right));

        let partitions_count = left.num_partitions();
        let (broadcast_rows, replicated_rows, replicated_bytes) = self
            .transport
            .broadcast(&Broadcast::new(partitions_count), &right)?;
        metrics.rows_broadcast += replicated_rows;
        metrics.bytes_broadcast += replicated_bytes;

        let out_schema = left.schema().join(right.schema());
        let grace = GraceContext::from_catalog(self.catalog);
        let results = self.map_partitions(partitions_count, |p| {
            joined_partition(
                &left.partitions()[p],
                &broadcast_rows,
                &left_key_indexes,
                &right_key_indexes,
                grace.as_ref(),
            )
        })?;
        let mut out_partitions: Vec<Vec<Tuple>> = Vec::with_capacity(partitions_count);
        let mut tally = GraceTally::default();
        for (rows, partial) in results {
            tally.add(&partial);
            out_partitions.push(rows);
        }
        tally.record(metrics);
        let joined_rows = out_partitions.iter().map(Vec::len).sum::<usize>() as u64;
        span.attr_u64("rows_out", joined_rows);
        rdo_trace::counter("progress.rows_produced", joined_rows);

        let partition_key = left.partition_key().map(|s| s.to_string());
        Ok(PartitionedData::new(
            out_schema,
            out_partitions,
            partition_key,
        ))
    }

    /// Indexed nested-loop join: the build input is broadcast and every
    /// partition probes its local secondary index (the indexed table is never
    /// scanned).
    fn indexed_nested_loop_join(
        &self,
        left: &PhysicalPlan,
        right: PartitionedData,
        keys: &[(FieldRef, FieldRef)],
        metrics: &mut ExecutionMetrics,
    ) -> Result<PartitionedData> {
        let PhysicalPlan::Scan {
            dataset,
            table: table_name,
            predicates,
            projection,
        } = left
        else {
            return Err(RdoError::Execution(
                "indexed nested-loop join requires its indexed input to be a base-table scan"
                    .to_string(),
            ));
        };
        let (first_left_key, _) = &keys[0];
        let mut span = rdo_trace::span("exec.join");
        span.attr_str("algo", "inl");
        let table = self.catalog.table_handle(table_name)?;
        let index = self
            .catalog
            .secondary_index(table_name, &first_left_key.field)
            .ok_or_else(|| {
                RdoError::Execution(format!(
                    "no secondary index on {table_name}.{} for indexed nested-loop join",
                    first_left_key.field
                ))
            })?;
        let setup =
            prepare_indexed_join(&table, dataset, projection.as_deref(), right.schema(), keys)?;

        let partitions_count = table.num_partitions();
        let (broadcast_rows, replicated_rows, replicated_bytes) = self
            .transport
            .broadcast(&Broadcast::new(partitions_count), &right)?;
        metrics.rows_broadcast += replicated_rows;
        metrics.bytes_broadcast += replicated_bytes;

        let results = self.map_partitions(partitions_count, |p| {
            indexed_join_partition(
                &broadcast_rows,
                index,
                p,
                table.partition(p),
                &setup.left_schema,
                predicates,
                setup.projection_indexes.as_deref(),
                &setup.left_key_indexes,
                &setup.right_key_indexes,
                setup.first_right_key_index,
            )
        })?;
        let mut out_partitions: Vec<Vec<Tuple>> = Vec::with_capacity(partitions_count);
        let mut tally = IndexJoinTally::default();
        for (rows, partial) in results {
            tally.add(&partial);
            out_partitions.push(rows);
        }
        metrics.index_lookups += tally.index_lookups;
        metrics.index_fetched_rows += tally.index_fetched_rows;
        metrics.output_rows += tally.output_rows;
        span.attr_u64("rows_out", tally.output_rows);
        rdo_trace::counter("progress.rows_produced", tally.output_rows);

        Ok(PartitionedData::new(
            setup.out_schema,
            out_partitions,
            setup.partition_key,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdo_common::{DataType, Relation, Schema, Value};
    use rdo_exec::{CmpOp, Executor};
    use rdo_storage::IngestOptions;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new(4);
        let orders_schema = Schema::for_dataset(
            "orders",
            &[
                ("o_orderkey", DataType::Int64),
                ("o_custkey", DataType::Int64),
            ],
        );
        let orders_rows = (0..200)
            .map(|i| Tuple::new(vec![Value::Int64(i), Value::Int64(i % 20)]))
            .collect();
        cat.ingest(
            "orders",
            Relation::new(orders_schema, orders_rows).unwrap(),
            IngestOptions::partitioned_on("o_orderkey").with_index("o_custkey"),
        )
        .unwrap();

        let cust_schema = Schema::for_dataset(
            "customer",
            &[("c_custkey", DataType::Int64), ("c_name", DataType::Utf8)],
        );
        let cust_rows = (0..20)
            .map(|i| Tuple::new(vec![Value::Int64(i), Value::Utf8(format!("cust{i}"))]))
            .collect();
        cat.ingest(
            "customer",
            Relation::new(cust_schema, cust_rows).unwrap(),
            IngestOptions::partitioned_on("c_custkey"),
        )
        .unwrap();
        cat
    }

    fn plans() -> Vec<PhysicalPlan> {
        let join = |algorithm| {
            PhysicalPlan::join(
                PhysicalPlan::scan("orders"),
                PhysicalPlan::scan("customer"),
                FieldRef::new("orders", "o_custkey"),
                FieldRef::new("customer", "c_custkey"),
                algorithm,
            )
        };
        vec![
            PhysicalPlan::scan("orders").with_predicates(vec![Predicate::compare(
                FieldRef::new("orders", "o_custkey"),
                CmpOp::Lt,
                7i64,
            )]),
            join(JoinAlgorithm::Hash),
            join(JoinAlgorithm::Broadcast),
            join(JoinAlgorithm::IndexedNestedLoop),
        ]
    }

    /// The core guarantee: identical partitions, partition keys and metrics to
    /// the serial executor, for every worker count and morsel size.
    #[test]
    fn matches_serial_executor_exactly() {
        let cat = catalog();
        let serial = Executor::new(&cat);
        for plan in plans() {
            let mut serial_metrics = ExecutionMetrics::new();
            let expected = serial.execute(&plan, &mut serial_metrics).unwrap();
            for workers in [1, 2, 4, 8] {
                for morsel_size in [1, 3] {
                    let config = ParallelConfig::serial()
                        .with_workers(workers)
                        .with_morsel_size(morsel_size);
                    let parallel = ParallelExecutor::new(&cat, config);
                    let mut metrics = ExecutionMetrics::new();
                    let data = parallel.execute(&plan, &mut metrics).unwrap();
                    assert_eq!(data.partitions(), expected.partitions());
                    assert_eq!(data.partition_key(), expected.partition_key());
                    assert_eq!(data.base_table(), expected.base_table());
                    assert_eq!(metrics, serial_metrics, "workers={workers}");
                }
            }
        }
    }

    #[test]
    fn gathered_relation_and_result_rows_match_serial() {
        let cat = catalog();
        let serial = Executor::new(&cat);
        let parallel = ParallelExecutor::new(&cat, ParallelConfig::serial().with_workers(4));
        for plan in plans() {
            let mut sm = ExecutionMetrics::new();
            let mut pm = ExecutionMetrics::new();
            let expected = serial.execute_to_relation(&plan, &mut sm).unwrap();
            let actual = parallel.execute_to_relation(&plan, &mut pm).unwrap();
            assert_eq!(actual, expected);
            assert_eq!(pm, sm);
        }
    }

    /// The grace path is worker-count invariant too: with a tiny join budget
    /// every partition's build side spills, and results, partitions and every
    /// metric counter (including the grace counters) still match the serial
    /// executor exactly.
    #[test]
    fn grace_join_matches_serial_executor_exactly() {
        let mut cat = catalog();
        cat.configure_spill(
            rdo_storage::SpillConfig::default()
                .with_join_budget(1)
                .with_page_size(512),
        )
        .unwrap();
        let serial = Executor::new(&cat);
        for plan in plans() {
            let mut serial_metrics = ExecutionMetrics::new();
            let expected = serial.execute(&plan, &mut serial_metrics).unwrap();
            for workers in [1, 2, 4, 8] {
                let config = ParallelConfig::serial().with_workers(workers);
                let parallel = ParallelExecutor::new(&cat, config);
                let mut metrics = ExecutionMetrics::new();
                let data = parallel.execute(&plan, &mut metrics).unwrap();
                assert_eq!(data.partitions(), expected.partitions());
                assert_eq!(metrics, serial_metrics, "workers={workers}");
            }
        }
        let dir = cat.spill_dir().expect("join budget configured");
        assert_eq!(
            std::fs::read_dir(&dir).unwrap().count(),
            0,
            "grace partition files are gone after the joins"
        );
    }

    #[test]
    fn errors_propagate_from_workers() {
        let cat = catalog();
        let parallel = ParallelExecutor::new(&cat, ParallelConfig::serial().with_workers(4));
        let mut metrics = ExecutionMetrics::new();
        assert!(parallel
            .execute(&PhysicalPlan::scan("missing"), &mut metrics)
            .is_err());
        let bad_join = PhysicalPlan::join(
            PhysicalPlan::scan("orders"),
            PhysicalPlan::scan("customer"),
            FieldRef::new("orders", "not_a_column"),
            FieldRef::new("customer", "c_custkey"),
            JoinAlgorithm::Hash,
        );
        assert!(parallel.execute(&bad_join, &mut metrics).is_err());
    }
}
