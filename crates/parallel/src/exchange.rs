//! Exchange operators: the explicit data movements between partitions.
//!
//! In the paper's Hyracks runtime these are the connectors between operator
//! instances; the serial executor performs them implicitly inside its join
//! loops. Here each movement is an explicit operator that runs its
//! per-partition half on the worker pool and reports the rows/bytes it moved,
//! so the cost model's network charges correspond to real, metered exchanges.

use crate::pool::WorkerPool;
use rdo_common::{Relation, Tuple};
use rdo_exec::partition::repartition_partition;
use rdo_exec::PartitionedData;
use std::sync::Arc;

/// Re-shuffles tuples so every row lives in the partition its key hashes to
/// (the exchange in front of each hash-join input that is not already
/// partitioned on its join key).
#[derive(Debug, Clone)]
pub struct HashRepartition {
    /// Index of the key column in the input schema.
    pub key_index: usize,
    /// (Possibly qualified) name of the key column; the output is tagged as
    /// partitioned on its unqualified form.
    pub key_name: String,
}

impl HashRepartition {
    /// Creates the exchange.
    pub fn new(key_index: usize, key_name: impl Into<String>) -> Self {
        Self {
            key_index,
            key_name: key_name.into(),
        }
    }

    /// Runs the exchange: each source partition is bucketed on the pool, then
    /// the buckets are concatenated in source-partition order (making the
    /// output independent of worker interleaving). Returns the re-partitioned
    /// data and the rows/bytes that crossed partitions.
    pub fn apply(&self, data: &PartitionedData, pool: &WorkerPool) -> (PartitionedData, u64, u64) {
        let n = data.num_partitions();
        let bucketed = pool.map_indexed(n, |from| {
            repartition_partition(&data.partitions()[from], self.key_index, from, n)
        });

        let mut new_partitions: Vec<Vec<Tuple>> = vec![Vec::new(); n];
        let mut moved_rows = 0u64;
        let mut moved_bytes = 0u64;
        for (buckets, rows, bytes) in bucketed {
            moved_rows += rows;
            moved_bytes += bytes;
            for (to, mut bucket) in buckets.into_iter().enumerate() {
                new_partitions[to].append(&mut bucket);
            }
        }

        let key_name = rdo_common::unqualified(&self.key_name).to_string();
        (
            PartitionedData::new(data.schema().clone(), new_partitions, Some(key_name)),
            moved_rows,
            moved_bytes,
        )
    }
}

/// Replicates an input to every one of `target_partitions` partitions (the
/// exchange in front of broadcast and indexed nested-loop joins). The rows are
/// shared behind an [`Arc`] — workers probe the same replica instead of each
/// cloning it, while the metrics still charge the full `rows × partitions`
/// replication the real cluster would pay.
#[derive(Debug, Clone, Copy)]
pub struct Broadcast {
    /// Number of partitions the input is replicated to.
    pub target_partitions: usize,
}

impl Broadcast {
    /// Creates the exchange.
    pub fn new(target_partitions: usize) -> Self {
        Self { target_partitions }
    }

    /// Runs the exchange: flattens the input into one shared row vector and
    /// returns it with the replication volume (rows, bytes) charged for
    /// shipping a copy to every target partition.
    pub fn apply(&self, data: &PartitionedData) -> (Arc<Vec<Tuple>>, u64, u64) {
        let rows = data.all_rows();
        let copies = self.target_partitions as u64;
        let replicated_rows = rows.len() as u64 * copies;
        let replicated_bytes = rows.iter().map(|r| r.approx_bytes() as u64).sum::<u64>() * copies;
        (Arc::new(rows), replicated_rows, replicated_bytes)
    }
}

/// Collects every partition on the coordinator, in partition order — result
/// delivery to the user (and the input to the Sink's table build).
#[derive(Debug, Clone, Copy, Default)]
pub struct Gather;

impl Gather {
    /// Runs the exchange.
    pub fn apply(&self, data: &PartitionedData) -> Relation {
        data.gather()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdo_common::{DataType, Schema, Value};
    use rdo_exec::data::partition_for;

    fn data(n: i64, partitions: usize) -> PartitionedData {
        let schema = Schema::for_dataset("t", &[("k", DataType::Int64), ("g", DataType::Int64)]);
        let mut parts = vec![Vec::new(); partitions];
        for i in 0..n {
            parts[(i % partitions as i64) as usize]
                .push(Tuple::new(vec![Value::Int64(i), Value::Int64(i % 7)]));
        }
        PartitionedData::new(schema, parts, None)
    }

    #[test]
    fn hash_repartition_matches_serial_repartition_for_any_worker_count() {
        let input = data(500, 8);
        let (expected, expected_rows, expected_bytes) = input.repartition(1, "t.g");
        for workers in [1, 2, 4, 8] {
            let pool = WorkerPool::new(workers);
            let (out, rows, bytes) = HashRepartition::new(1, "t.g").apply(&input, &pool);
            assert_eq!(out.partitions(), expected.partitions(), "workers={workers}");
            assert_eq!(rows, expected_rows);
            assert_eq!(bytes, expected_bytes);
            assert!(out.is_partitioned_on("g"));
            for (p, rows) in out.partitions().iter().enumerate() {
                for row in rows {
                    assert_eq!(partition_for(row.value(1), 8), p);
                }
            }
        }
    }

    #[test]
    fn broadcast_charges_replication_volume() {
        let input = data(30, 3);
        let (rows, replicated_rows, replicated_bytes) = Broadcast::new(4).apply(&input);
        assert_eq!(rows.len(), 30);
        assert_eq!(replicated_rows, 30 * 4);
        assert!(replicated_bytes > 0);
        // Shared, not copied: clones of the Arc point at the same rows.
        let other = Arc::clone(&rows);
        assert!(Arc::ptr_eq(&rows, &other));
    }

    #[test]
    fn gather_flattens_in_partition_order() {
        let input = data(10, 2);
        let relation = Gather.apply(&input);
        assert_eq!(relation.len(), 10);
        assert_eq!(relation, input.gather());
    }
}
