//! Partition-parallel execution for the simulated shared-nothing cluster.
//!
//! The storage layer models the cluster's data partitions faithfully
//! ([`rdo_storage::Catalog`] holds every table hash-partitioned across
//! `num_partitions` partitions), but the serial [`rdo_exec::Executor`] walks
//! those partitions one after another on a single thread. This crate executes
//! the *same* physical plans with one task per partition on a pool of scoped
//! worker threads, exchanging tuples between partitions through explicit
//! exchange operators — the role Hyracks' connectors play in the paper's
//! architecture.
//!
//! # Architecture
//!
//! ```text
//!             PhysicalPlan
//!                  │
//!          ParallelExecutor            (coordinator: recursion, planning of
//!                  │                    exchanges, metric folding)
//!      ┌───────────┼───────────┐
//!      ▼           ▼           ▼
//!  HashRepartition Broadcast  Gather   (exchange operators, rdo_parallel::exchange)
//!      │           │           │
//!      ▼           ▼           ▼
//!  ┌────────────────────────────────┐
//!  │           WorkerPool           │  (persistent threads, work-stealing by
//!  │  task = per-partition kernel   │   atomic partition counter)
//!  │  from rdo_exec::partition      │
//!  └────────────────────────────────┘
//! ```
//!
//! * **Worker pool** — [`WorkerPool`] spawns its threads **once** (per driver
//!   execution; `WorkerPool::new`) and feeds them jobs through a
//!   condvar-guarded dispatch slot, so per-stage spawn/join cost is gone;
//!   workers pull partition indexes from a shared atomic counter and run the
//!   per-partition kernels of [`rdo_exec::partition`]. With `workers = 1` the
//!   tasks run in a plain loop on the calling thread, which makes the
//!   single-worker configuration *bit-identical* to the serial executor by
//!   construction: both run the same kernels over the same partitions in the
//!   same order.
//! * **Exchange operators** — [`exchange::HashRepartition`] re-shuffles tuples
//!   to the partition their key hashes to, [`exchange::Broadcast`] replicates
//!   a (small) build side to every partition, [`exchange::Gather`] collects
//!   partitions on the coordinator for result delivery. The serial executor
//!   performs these data movements implicitly inside its join loops; here they
//!   are explicit, metered operators.
//! * **Deterministic merging** — every task returns per-partition
//!   [`rdo_exec::ExecutionMetrics`] partials folded in partition order with
//!   [`rdo_exec::ExecutionMetrics::merge`] (associative and commutative), and
//!   exchange outputs concatenate buckets in source-partition order, so
//!   results and metrics are identical for every worker count and every
//!   interleaving.
//! * **Barriers at re-optimization points** — the dynamic driver (Algorithm 1)
//!   materializes each chosen join before re-planning. [`sink::materialize`]
//!   is that barrier: workers build one `DatasetStatsBuilder` (GK + HLL) per
//!   partition and the coordinator merges the partials before registering the
//!   intermediate, mirroring the paper's per-partition Sink statistics.
//!
//! * **Transport seam** — each exchange routes through a [`Transport`]
//!   ([`transport`] module): [`InProcessTransport`] (the default) performs the
//!   movement as an in-process memory move, while the `rdo-net` crate's TCP
//!   backend ships the same tuples across worker processes as framed page
//!   batches. Both are bit-identical by contract; `RDO_TRANSPORT` selects
//!   the kind (see [`TransportKind`]).
//!
//! [`ParallelConfig::workers`] defaults to the machine's available
//! parallelism; `RDO_WORKERS` overrides it (see [`ParallelConfig::from_env`]),
//! which keeps benchmark figures reproducible on any core count.
//!
//! # Example
//!
//! Execute a tiny join plan partition-parallel and check it against the
//! serial executor:
//!
//! ```
//! use rdo_common::{DataType, FieldRef, Relation, Schema, Tuple, Value};
//! use rdo_exec::{ExecutionMetrics, Executor, JoinAlgorithm, PhysicalPlan};
//! use rdo_parallel::{ParallelConfig, ParallelExecutor};
//! use rdo_storage::{Catalog, IngestOptions};
//!
//! let mut catalog = Catalog::new(4);
//! for (name, rows) in [("orders", 60i64), ("customer", 12)] {
//!     let schema = Schema::for_dataset(name, &[("id", DataType::Int64)]);
//!     let data = (0..rows).map(|i| Tuple::new(vec![Value::Int64(i % 12)])).collect();
//!     catalog
//!         .ingest(name, Relation::new(schema, data).unwrap(), IngestOptions::default())
//!         .unwrap();
//! }
//! let plan = PhysicalPlan::join(
//!     PhysicalPlan::scan("orders"),
//!     PhysicalPlan::scan("customer"),
//!     FieldRef::new("orders", "id"),
//!     FieldRef::new("customer", "id"),
//!     JoinAlgorithm::Hash,
//! );
//!
//! let mut serial_metrics = ExecutionMetrics::new();
//! let expected = Executor::new(&catalog)
//!     .execute_to_relation(&plan, &mut serial_metrics)
//!     .unwrap();
//!
//! let executor = ParallelExecutor::new(&catalog, ParallelConfig::serial().with_workers(4));
//! let mut metrics = ExecutionMetrics::new();
//! let actual = executor.execute_to_relation(&plan, &mut metrics).unwrap();
//!
//! // Bit-identical results and metrics at any worker count.
//! assert_eq!(actual, expected);
//! assert_eq!(metrics, serial_metrics);
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod exchange;
pub mod executor;
pub mod pool;
pub mod sink;
pub mod transport;

pub use config::{
    parse_transport_env, parse_workers, ParallelConfig, TransportKind, TRANSPORT_ENV, WORKERS_ENV,
};
pub use exchange::{Broadcast, Gather, HashRepartition};
pub use executor::ParallelExecutor;
pub use pool::WorkerPool;
pub use sink::materialize;
pub use transport::{default_transport, InProcessTransport, Transport};
