//! Merge policies deciding when flushed components are compacted.
//!
//! AsterixDB ships a *prefix* merge policy (merge a prefix of the newest
//! components once too many small ones accumulate, never touching components
//! beyond a size budget) and a simpler *constant/tiered* policy. Both are
//! reproduced here plus a no-op policy used by tests and by the "one component
//! per load" configuration of the benchmark loader.

use crate::component::{Component, ComponentId};

/// What the policy wants done after a flush.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeDecision {
    /// Leave the components as they are.
    None,
    /// Merge the listed components (ordered oldest → newest) into one.
    Merge(Vec<ComponentId>),
}

/// A merge policy inspects the current disk components after every flush.
pub trait MergePolicy: std::fmt::Debug + Send + Sync {
    /// Decides whether (and which) components to merge. `components` is ordered
    /// oldest → newest.
    fn decide(&self, components: &[&Component]) -> MergeDecision;

    /// Policy name for reports.
    fn name(&self) -> &'static str;
}

/// Never merges.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoMergePolicy;

impl MergePolicy for NoMergePolicy {
    fn decide(&self, _components: &[&Component]) -> MergeDecision {
        MergeDecision::None
    }

    fn name(&self) -> &'static str {
        "no-merge"
    }
}

/// Tiered policy: once at least `max_components` components exist, merge them
/// all into one (AsterixDB's constant merge policy).
#[derive(Debug, Clone, Copy)]
pub struct TieredMergePolicy {
    /// Merge as soon as this many components accumulate.
    pub max_components: usize,
}

impl Default for TieredMergePolicy {
    fn default() -> Self {
        Self { max_components: 4 }
    }
}

impl MergePolicy for TieredMergePolicy {
    fn decide(&self, components: &[&Component]) -> MergeDecision {
        if components.len() >= self.max_components.max(2) {
            MergeDecision::Merge(components.iter().map(|c| c.id()).collect())
        } else {
            MergeDecision::None
        }
    }

    fn name(&self) -> &'static str {
        "tiered"
    }
}

/// Prefix policy (AsterixDB's default): merge the longest suffix of *small*
/// components (each below `max_component_bytes`) once more than
/// `max_tolerance_components` of them accumulate. Large, already-merged
/// components are never rewritten.
#[derive(Debug, Clone, Copy)]
pub struct PrefixMergePolicy {
    /// Components at or above this size are never merge inputs.
    pub max_component_bytes: usize,
    /// Number of small components tolerated before a merge is scheduled.
    pub max_tolerance_components: usize,
}

impl Default for PrefixMergePolicy {
    fn default() -> Self {
        Self {
            max_component_bytes: 1 << 20,
            max_tolerance_components: 5,
        }
    }
}

impl MergePolicy for PrefixMergePolicy {
    fn decide(&self, components: &[&Component]) -> MergeDecision {
        // Collect the suffix (newest components) that are still "small".
        let mut mergeable: Vec<ComponentId> = Vec::new();
        for component in components.iter().rev() {
            if component.approx_bytes() >= self.max_component_bytes {
                break;
            }
            mergeable.push(component.id());
        }
        if mergeable.len() > self.max_tolerance_components.max(1) {
            mergeable.reverse(); // back to oldest → newest
            MergeDecision::Merge(mergeable)
        } else {
            MergeDecision::None
        }
    }

    fn name(&self) -> &'static str {
        "prefix"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdo_common::{DataType, Schema, Tuple, Value};

    fn component(id: u64, rows: i64) -> Component {
        let schema = Schema::for_dataset("t", &[("id", DataType::Int64)]);
        let data = (0..rows)
            .map(|i| Tuple::new(vec![Value::Int64(id as i64 * 10_000 + i)]))
            .collect();
        Component::from_sorted_rows(ComponentId(id), 0, &schema, 0, data).unwrap()
    }

    #[test]
    fn no_merge_policy_never_merges() {
        let components: Vec<Component> = (0..10).map(|i| component(i, 10)).collect();
        let refs: Vec<&Component> = components.iter().collect();
        assert_eq!(NoMergePolicy.decide(&refs), MergeDecision::None);
        assert_eq!(NoMergePolicy.name(), "no-merge");
    }

    #[test]
    fn tiered_policy_merges_everything_at_threshold() {
        let policy = TieredMergePolicy { max_components: 3 };
        let components: Vec<Component> = (0..2).map(|i| component(i, 10)).collect();
        let refs: Vec<&Component> = components.iter().collect();
        assert_eq!(policy.decide(&refs), MergeDecision::None);

        let components: Vec<Component> = (0..3).map(|i| component(i, 10)).collect();
        let refs: Vec<&Component> = components.iter().collect();
        match policy.decide(&refs) {
            MergeDecision::Merge(ids) => assert_eq!(ids.len(), 3),
            other => panic!("expected a merge, got {other:?}"),
        }
        assert_eq!(policy.name(), "tiered");
    }

    #[test]
    fn prefix_policy_merges_only_the_small_suffix() {
        // One big (old) component and several small fresh flushes.
        let big = component(0, 5_000);
        let policy = PrefixMergePolicy {
            max_component_bytes: big.approx_bytes(), // the big one is excluded
            max_tolerance_components: 2,
        };
        let smalls: Vec<Component> = (1..=3).map(|i| component(i, 10)).collect();
        let mut refs: Vec<&Component> = vec![&big];
        refs.extend(smalls.iter());
        match policy.decide(&refs) {
            MergeDecision::Merge(ids) => {
                assert_eq!(ids, vec![ComponentId(1), ComponentId(2), ComponentId(3)]);
            }
            other => panic!("expected a merge, got {other:?}"),
        }
        assert_eq!(policy.name(), "prefix");
    }

    #[test]
    fn prefix_policy_tolerates_a_few_small_components() {
        let policy = PrefixMergePolicy {
            max_component_bytes: usize::MAX,
            max_tolerance_components: 5,
        };
        let components: Vec<Component> = (0..4).map(|i| component(i, 10)).collect();
        let refs: Vec<&Component> = components.iter().collect();
        assert_eq!(policy.decide(&refs), MergeDecision::None);
    }

    #[test]
    fn default_policies_have_sane_parameters() {
        assert!(PrefixMergePolicy::default().max_tolerance_components >= 2);
        assert!(TieredMergePolicy::default().max_components >= 2);
    }
}
