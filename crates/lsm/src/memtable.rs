//! The in-memory write buffer of an LSM dataset.
//!
//! AsterixDB ingests records into a per-dataset in-memory component that is
//! flushed to disk as an immutable LSM component when it fills up. The
//! [`MemTable`] reproduces that buffer: rows are kept sorted by primary key,
//! inserting an existing key replaces the previous version (upsert semantics),
//! and `drain_sorted` hands the content to a flush.

use rdo_common::{RdoError, Result, Schema, Tuple, Value};
use std::collections::BTreeMap;

/// The in-memory component of an LSM dataset.
#[derive(Debug, Clone)]
pub struct MemTable {
    schema: Schema,
    key_column: String,
    key_index: usize,
    rows: BTreeMap<Value, Tuple>,
    capacity: usize,
    bytes: usize,
}

impl MemTable {
    /// Creates an empty memtable keyed on `key_column` that flushes after
    /// `capacity` rows.
    pub fn new(schema: Schema, key_column: &str, capacity: usize) -> Result<Self> {
        let key_index = schema.index_of_unqualified(key_column)?;
        Ok(Self {
            schema,
            key_column: key_column.to_string(),
            key_index,
            rows: BTreeMap::new(),
            capacity: capacity.max(1),
            bytes: 0,
        })
    }

    /// The schema rows must conform to.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The primary-key column name.
    pub fn key_column(&self) -> &str {
        &self.key_column
    }

    /// Index of the primary-key column in the schema.
    pub fn key_index(&self) -> usize {
        self.key_index
    }

    /// Inserts (or upserts) one row. Returns the replaced previous version of
    /// the row, if any.
    pub fn insert(&mut self, tuple: Tuple) -> Result<Option<Tuple>> {
        if tuple.len() != self.schema.len() {
            return Err(RdoError::Execution(format!(
                "row arity {} does not match schema arity {}",
                tuple.len(),
                self.schema.len()
            )));
        }
        let key = tuple.value(self.key_index).clone();
        if key.is_null() {
            return Err(RdoError::Execution(format!(
                "primary key `{}` must not be NULL",
                self.key_column
            )));
        }
        self.bytes += tuple.approx_bytes();
        let previous = self.rows.insert(key, tuple);
        if let Some(prev) = &previous {
            self.bytes = self.bytes.saturating_sub(prev.approx_bytes());
        }
        Ok(previous)
    }

    /// Looks up the current version of a key.
    pub fn get(&self, key: &Value) -> Option<&Tuple> {
        self.rows.get(key)
    }

    /// Number of (distinct-key) rows buffered.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Approximate buffered bytes.
    pub fn approx_bytes(&self) -> usize {
        self.bytes
    }

    /// True once the memtable reached its flush threshold.
    pub fn is_full(&self) -> bool {
        self.rows.len() >= self.capacity
    }

    /// The flush threshold in rows.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Iterates over the buffered rows in primary-key order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.rows.values()
    }

    /// Empties the memtable, returning its rows sorted by primary key.
    pub fn drain_sorted(&mut self) -> Vec<Tuple> {
        self.bytes = 0;
        std::mem::take(&mut self.rows).into_values().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdo_common::DataType;

    fn schema() -> Schema {
        Schema::for_dataset(
            "orders",
            &[
                ("o_orderkey", DataType::Int64),
                ("o_total", DataType::Int64),
            ],
        )
    }

    fn row(key: i64, total: i64) -> Tuple {
        Tuple::new(vec![Value::Int64(key), Value::Int64(total)])
    }

    #[test]
    fn inserts_keep_rows_sorted_by_key() {
        let mut mt = MemTable::new(schema(), "o_orderkey", 100).unwrap();
        for key in [5i64, 1, 9, 3] {
            mt.insert(row(key, key * 10)).unwrap();
        }
        let drained = mt.drain_sorted();
        let keys: Vec<i64> = drained
            .iter()
            .map(|t| t.value(0).as_i64().unwrap())
            .collect();
        assert_eq!(keys, vec![1, 3, 5, 9]);
        assert!(mt.is_empty());
        assert_eq!(mt.approx_bytes(), 0);
    }

    #[test]
    fn upsert_replaces_previous_version() {
        let mut mt = MemTable::new(schema(), "o_orderkey", 100).unwrap();
        assert!(mt.insert(row(1, 10)).unwrap().is_none());
        let previous = mt.insert(row(1, 20)).unwrap().expect("replaced");
        assert_eq!(previous.value(1), &Value::Int64(10));
        assert_eq!(mt.len(), 1);
        assert_eq!(
            mt.get(&Value::Int64(1)).unwrap().value(1),
            &Value::Int64(20)
        );
    }

    #[test]
    fn capacity_controls_is_full() {
        let mut mt = MemTable::new(schema(), "o_orderkey", 3).unwrap();
        assert_eq!(mt.capacity(), 3);
        for key in 0..3 {
            assert!(!mt.is_full());
            mt.insert(row(key, 0)).unwrap();
        }
        assert!(mt.is_full());
    }

    #[test]
    fn rejects_bad_rows_and_keys() {
        let mut mt = MemTable::new(schema(), "o_orderkey", 10).unwrap();
        assert!(mt.insert(Tuple::new(vec![Value::Int64(1)])).is_err());
        assert!(mt
            .insert(Tuple::new(vec![Value::Null, Value::Int64(1)]))
            .is_err());
        assert!(MemTable::new(schema(), "missing_key", 10).is_err());
    }

    #[test]
    fn byte_accounting_tracks_inserts() {
        let mut mt = MemTable::new(schema(), "o_orderkey", 10).unwrap();
        mt.insert(row(1, 10)).unwrap();
        let after_one = mt.approx_bytes();
        assert!(after_one > 0);
        mt.insert(row(2, 20)).unwrap();
        assert!(mt.approx_bytes() > after_one);
        // Upserting the same key keeps the byte count roughly constant.
        let before_upsert = mt.approx_bytes();
        mt.insert(row(2, 30)).unwrap();
        assert_eq!(mt.approx_bytes(), before_upsert);
    }

    #[test]
    fn key_metadata_exposed() {
        let mt = MemTable::new(schema(), "o_orderkey", 10).unwrap();
        assert_eq!(mt.key_column(), "o_orderkey");
        assert_eq!(mt.key_index(), 0);
        assert_eq!(mt.schema().len(), 2);
    }
}
