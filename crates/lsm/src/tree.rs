//! The LSM dataset: memtable + immutable components + merge policy.
//!
//! This is the stand-in for AsterixDB's per-dataset LSM storage used during
//! data loading. Its role in the reproduction is twofold:
//!
//! 1. it provides the ingestion path through which base data arrives (insert →
//!    flush → merge), with write-amplification accounting;
//! 2. it demonstrates the paper's claim that the *initial* statistics come "for
//!    free" from the ingestion pipeline: every component carries its own
//!    sketches, and [`LsmDataset::merged_stats`] combines them without
//!    rescanning the data. [`LsmDataset::load_into_catalog`] registers the
//!    gathered table *and* those statistics with the cluster catalog.

use crate::component::{Component, ComponentId};
use crate::memtable::MemTable;
use crate::policy::{MergeDecision, MergePolicy, PrefixMergePolicy};
use rdo_common::{RdoError, Relation, Result, Schema, Tuple, Value};
use rdo_sketch::{DatasetStats, DatasetStatsBuilder};
use rdo_storage::{Catalog, IngestOptions};
use std::collections::BTreeMap;

/// Configuration of an LSM dataset.
#[derive(Debug, Clone, Copy)]
pub struct LsmOptions {
    /// Rows buffered in the memtable before a flush.
    pub memtable_capacity: usize,
}

impl Default for LsmOptions {
    fn default() -> Self {
        Self {
            memtable_capacity: 4_096,
        }
    }
}

/// Counters describing what the ingestion pipeline did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestionMetrics {
    /// Rows handed to [`LsmDataset::insert`].
    pub rows_ingested: u64,
    /// Flushes of the memtable into a new component.
    pub flushes: u64,
    /// Merges executed by the policy.
    pub merges: u64,
    /// Rows written to components (flush + merge rewrites) — the numerator of
    /// write amplification.
    pub rows_written: u64,
    /// Components created over the dataset's lifetime.
    pub components_created: u64,
}

impl IngestionMetrics {
    /// Write amplification: component rows written per ingested row.
    pub fn write_amplification(&self) -> f64 {
        if self.rows_ingested == 0 {
            0.0
        } else {
            self.rows_written as f64 / self.rows_ingested as f64
        }
    }
}

/// An LSM-managed dataset.
#[derive(Debug)]
pub struct LsmDataset {
    name: String,
    schema: Schema,
    key_column: String,
    key_index: usize,
    memtable: MemTable,
    components: Vec<Component>,
    policy: Box<dyn MergePolicy>,
    options: LsmOptions,
    metrics: IngestionMetrics,
    next_component: u64,
}

impl LsmDataset {
    /// Creates an empty dataset keyed on `key_column` with the default prefix
    /// merge policy.
    pub fn new(
        name: impl Into<String>,
        schema: Schema,
        key_column: &str,
        options: LsmOptions,
    ) -> Result<Self> {
        Self::with_policy(
            name,
            schema,
            key_column,
            options,
            Box::new(PrefixMergePolicy::default()),
        )
    }

    /// Creates an empty dataset with an explicit merge policy.
    pub fn with_policy(
        name: impl Into<String>,
        schema: Schema,
        key_column: &str,
        options: LsmOptions,
        policy: Box<dyn MergePolicy>,
    ) -> Result<Self> {
        let memtable = MemTable::new(schema.clone(), key_column, options.memtable_capacity)?;
        let key_index = memtable.key_index();
        Ok(Self {
            name: name.into(),
            schema,
            key_column: key_column.to_string(),
            key_index,
            memtable,
            components: Vec::new(),
            policy,
            options,
            metrics: IngestionMetrics::default(),
            next_component: 0,
        })
    }

    /// Dataset name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Dataset schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Primary-key column.
    pub fn key_column(&self) -> &str {
        &self.key_column
    }

    /// The merge policy in use.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// The ingestion configuration.
    pub fn options(&self) -> LsmOptions {
        self.options
    }

    /// Ingestion counters.
    pub fn metrics(&self) -> IngestionMetrics {
        self.metrics
    }

    /// The immutable components, oldest → newest.
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// Inserts one row, flushing and merging as needed.
    pub fn insert(&mut self, tuple: Tuple) -> Result<()> {
        self.memtable.insert(tuple)?;
        self.metrics.rows_ingested += 1;
        if self.memtable.is_full() {
            self.flush()?;
        }
        Ok(())
    }

    /// Inserts every row of a relation (schemas must match by arity).
    pub fn insert_relation(&mut self, relation: &Relation) -> Result<()> {
        for row in relation.rows() {
            self.insert(row.clone())?;
        }
        Ok(())
    }

    /// Flushes the memtable into a new component (no-op when empty), then lets
    /// the merge policy react.
    pub fn flush(&mut self) -> Result<Option<ComponentId>> {
        if self.memtable.is_empty() {
            return Ok(None);
        }
        let rows = self.memtable.drain_sorted();
        let id = ComponentId(self.next_component);
        self.next_component += 1;
        let component = Component::from_sorted_rows(id, 0, &self.schema, self.key_index, rows)?;
        self.metrics.flushes += 1;
        self.metrics.components_created += 1;
        self.metrics.rows_written += component.len() as u64;
        self.components.push(component);
        self.maybe_merge()?;
        Ok(Some(id))
    }

    fn maybe_merge(&mut self) -> Result<()> {
        loop {
            let refs: Vec<&Component> = self.components.iter().collect();
            let decision = self.policy.decide(&refs);
            match decision {
                MergeDecision::None => return Ok(()),
                MergeDecision::Merge(ids) => {
                    if ids.len() < 2 {
                        return Ok(());
                    }
                    let inputs: Vec<&Component> = self
                        .components
                        .iter()
                        .filter(|c| ids.contains(&c.id()))
                        .collect();
                    if inputs.len() != ids.len() {
                        return Err(RdoError::Execution(format!(
                            "merge policy `{}` selected unknown components",
                            self.policy.name()
                        )));
                    }
                    let id = ComponentId(self.next_component);
                    self.next_component += 1;
                    let merged = Component::merge_of(id, &self.schema, self.key_index, &inputs)?;
                    self.metrics.merges += 1;
                    self.metrics.components_created += 1;
                    self.metrics.rows_written += merged.len() as u64;
                    // Replace the inputs with the merged component, keeping the
                    // position of the oldest input so ordering stays oldest → newest.
                    let first_pos = self
                        .components
                        .iter()
                        .position(|c| ids.contains(&c.id()))
                        .expect("inputs exist");
                    self.components.retain(|c| !ids.contains(&c.id()));
                    self.components
                        .insert(first_pos.min(self.components.len()), merged);
                }
            }
        }
    }

    /// Point lookup: memtable first, then components newest → oldest.
    pub fn get(&self, key: &Value) -> Option<Tuple> {
        if let Some(row) = self.memtable.get(key) {
            return Some(row.clone());
        }
        for component in self.components.iter().rev() {
            if let Some(row) = component.get(key) {
                return Some(row.clone());
            }
        }
        None
    }

    /// Number of live (distinct-key) rows.
    pub fn row_count(&self) -> usize {
        self.merged_view().len()
    }

    /// A merged, newest-version-wins view of the dataset, sorted by key.
    pub fn scan(&self) -> Relation {
        let rows: Vec<Tuple> = self.merged_view().into_values().collect();
        Relation::new(self.schema.clone(), rows).expect("schema matches stored rows")
    }

    fn merged_view(&self) -> BTreeMap<Value, Tuple> {
        // Newest first: memtable, then components newest → oldest; the first
        // version seen for a key wins.
        let mut view: BTreeMap<Value, Tuple> = BTreeMap::new();
        let consider = |row: &Tuple, view: &mut BTreeMap<Value, Tuple>| {
            let key = row.value(self.key_index).clone();
            view.entry(key).or_insert_with(|| row.clone());
        };
        for row in self.memtable.iter() {
            consider(row, &mut view);
        }
        for component in self.components.iter().rev() {
            for row in component.rows() {
                consider(row, &mut view);
            }
        }
        view
    }

    /// Dataset-level statistics derived purely by merging the per-component
    /// sketches (no rescan). Rows that were overwritten by a later upsert and
    /// not yet compacted away are counted once per stored version — the same
    /// slight overcount a real LSM ingestion pipeline exhibits.
    ///
    /// Unflushed memtable rows are not covered; call [`Self::flush`] first (or
    /// use [`Self::load_into_catalog`], which does).
    pub fn merged_stats(&self) -> DatasetStats {
        let mut combined: Option<DatasetStatsBuilder> = None;
        for component in &self.components {
            match combined.as_mut() {
                None => combined = Some(component.stats_builder().clone()),
                Some(builder) => builder.merge(component.stats_builder()),
            }
        }
        combined
            .map(|b| b.build())
            .unwrap_or_else(|| DatasetStatsBuilder::all_columns(&self.schema).build())
    }

    /// Flushes any remaining rows, registers the merged view as a table in the
    /// cluster catalog, and registers the *component-derived* statistics with
    /// the statistics catalog — the paper's "statistics collected during LSM
    /// ingestion" short-cut.
    pub fn load_into_catalog(&mut self, catalog: &mut Catalog) -> Result<()> {
        self.flush()?;
        let relation = self.scan();
        let options = IngestOptions::partitioned_on(self.key_column.clone()).without_stats();
        catalog.ingest(self.name.clone(), relation, options)?;
        catalog
            .stats_mut()
            .register(self.name.clone(), self.merged_stats());
        Ok(())
    }

    /// Convenience: build an LSM dataset from a relation and the memtable
    /// capacity, returning the dataset (used by benches and the equivalence
    /// tests).
    pub fn from_relation(
        name: impl Into<String>,
        relation: &Relation,
        key_column: &str,
        options: LsmOptions,
    ) -> Result<Self> {
        let mut dataset = Self::new(name, relation.schema().clone(), key_column, options)?;
        dataset.insert_relation(relation)?;
        Ok(dataset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{NoMergePolicy, TieredMergePolicy};
    use rdo_common::DataType;

    fn schema() -> Schema {
        Schema::for_dataset(
            "orders",
            &[
                ("o_orderkey", DataType::Int64),
                ("o_custkey", DataType::Int64),
            ],
        )
    }

    fn row(key: i64) -> Tuple {
        Tuple::new(vec![Value::Int64(key), Value::Int64(key % 50)])
    }

    fn dataset(capacity: usize, policy: Box<dyn MergePolicy>) -> LsmDataset {
        LsmDataset::with_policy(
            "orders",
            schema(),
            "o_orderkey",
            LsmOptions {
                memtable_capacity: capacity,
            },
            policy,
        )
        .unwrap()
    }

    #[test]
    fn inserts_flush_when_memtable_fills() {
        let mut ds = dataset(100, Box::new(NoMergePolicy));
        for key in 0..1_000 {
            ds.insert(row(key)).unwrap();
        }
        assert_eq!(ds.metrics().flushes, 10);
        assert_eq!(ds.components().len(), 10);
        assert_eq!(ds.row_count(), 1_000);
        assert_eq!(ds.metrics().rows_ingested, 1_000);
        assert!((ds.metrics().write_amplification() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn tiered_merges_reduce_component_count_and_raise_write_amplification() {
        let mut ds = dataset(100, Box::new(TieredMergePolicy { max_components: 4 }));
        for key in 0..2_000 {
            ds.insert(row(key)).unwrap();
        }
        ds.flush().unwrap();
        assert!(
            ds.components().len() < 20,
            "merges keep the component count low"
        );
        assert!(ds.metrics().merges > 0);
        assert!(ds.metrics().write_amplification() > 1.0);
        assert_eq!(ds.row_count(), 2_000);
    }

    #[test]
    fn upserts_are_shadowed_by_newest_version() {
        let mut ds = dataset(10, Box::new(NoMergePolicy));
        for key in 0..50 {
            ds.insert(row(key)).unwrap();
        }
        // Overwrite key 7 with a different payload after it has been flushed.
        ds.insert(Tuple::new(vec![Value::Int64(7), Value::Int64(999)]))
            .unwrap();
        assert_eq!(
            ds.get(&Value::Int64(7)).unwrap().value(1),
            &Value::Int64(999)
        );
        assert_eq!(ds.row_count(), 50);
        let scanned = ds.scan();
        assert_eq!(scanned.len(), 50);
        let seven = scanned
            .rows()
            .iter()
            .find(|r| r.value(0) == &Value::Int64(7))
            .unwrap();
        assert_eq!(seven.value(1), &Value::Int64(999));
    }

    #[test]
    fn point_lookup_checks_memtable_then_components() {
        let mut ds = dataset(10, Box::new(NoMergePolicy));
        for key in 0..25 {
            ds.insert(row(key)).unwrap();
        }
        // 20..25 are still in the memtable.
        assert!(ds.get(&Value::Int64(22)).is_some());
        assert!(ds.get(&Value::Int64(3)).is_some());
        assert!(ds.get(&Value::Int64(1_000)).is_none());
    }

    #[test]
    fn merged_stats_match_a_direct_scan_within_sketch_error() {
        let mut ds = dataset(128, Box::new(TieredMergePolicy { max_components: 3 }));
        for key in 0..5_000 {
            ds.insert(row(key)).unwrap();
        }
        ds.flush().unwrap();
        let lsm_stats = ds.merged_stats();

        let mut direct = DatasetStatsBuilder::all_columns(&schema());
        direct.observe_relation(&ds.scan());
        let reference = direct.build();

        assert_eq!(lsm_stats.row_count, reference.row_count);
        for column in ["o_orderkey", "o_custkey"] {
            let lsm_distinct = lsm_stats.column(column).unwrap().distinct as f64;
            let reference_distinct = reference.column(column).unwrap().distinct as f64;
            let relative = (lsm_distinct - reference_distinct).abs() / reference_distinct.max(1.0);
            assert!(
                relative < 0.1,
                "{column}: component-merged distinct {lsm_distinct} vs direct {reference_distinct}"
            );
        }
    }

    #[test]
    fn empty_dataset_behaviour() {
        let mut ds = dataset(10, Box::new(NoMergePolicy));
        assert_eq!(ds.flush().unwrap(), None);
        assert_eq!(ds.row_count(), 0);
        assert_eq!(ds.merged_stats().row_count, 0);
        assert_eq!(ds.scan().len(), 0);
        assert_eq!(ds.metrics().write_amplification(), 0.0);
    }

    #[test]
    fn load_into_catalog_registers_table_and_component_stats() {
        let mut ds = dataset(64, Box::new(TieredMergePolicy { max_components: 3 }));
        for key in 0..1_000 {
            ds.insert(row(key)).unwrap();
        }
        let mut catalog = Catalog::new(4);
        ds.load_into_catalog(&mut catalog).unwrap();
        assert!(catalog.has_table("orders"));
        assert_eq!(catalog.table("orders").unwrap().row_count(), 1_000);
        let stats = catalog.stats().get("orders").expect("stats registered");
        assert_eq!(stats.row_count, 1_000);
        assert!(stats.column("o_custkey").is_some());
        assert!(catalog
            .table("orders")
            .unwrap()
            .is_partitioned_on("o_orderkey"));
    }

    #[test]
    fn from_relation_round_trips() {
        let rows: Vec<Tuple> = (0..200).map(row).collect();
        let relation = Relation::new(schema(), rows).unwrap();
        let ds = LsmDataset::from_relation(
            "orders",
            &relation,
            "o_orderkey",
            LsmOptions {
                memtable_capacity: 50,
            },
        )
        .unwrap();
        assert_eq!(ds.row_count(), 200);
        assert_eq!(ds.policy_name(), "prefix");
        assert_eq!(ds.options().memtable_capacity, 50);
        assert_eq!(ds.name(), "orders");
        assert_eq!(ds.key_column(), "o_orderkey");
        assert_eq!(ds.schema().len(), 2);
    }

    #[test]
    fn bad_key_column_is_rejected() {
        assert!(LsmDataset::new("t", schema(), "missing", LsmOptions::default()).is_err());
    }
}
