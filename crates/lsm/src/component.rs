//! Immutable LSM components.
//!
//! A component is the unit AsterixDB's LSM storage writes on flush and rewrites
//! on merge: an immutable run of rows sorted by primary key, together with the
//! statistical sketches collected while it was written. The paper exploits
//! exactly this property — "we exploit AsterixDB's LSM ingestion process to get
//! initial statistics for base datasets" — so every [`Component`] carries its
//! own [`DatasetStats`] and the corresponding mergeable builder.

use rdo_common::{RdoError, Result, Schema, Tuple, Value};
use rdo_sketch::{DatasetStats, DatasetStatsBuilder};
use std::fmt;

/// Identifier of a component within one LSM dataset (monotonically increasing;
/// higher ids contain newer data).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ComponentId(pub u64);

impl fmt::Display for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// An immutable sorted run of rows plus its ingestion-time statistics.
#[derive(Debug, Clone)]
pub struct Component {
    id: ComponentId,
    /// How many merges produced this component (0 = flushed directly).
    generation: usize,
    key_index: usize,
    rows: Vec<Tuple>,
    min_key: Value,
    max_key: Value,
    bytes: usize,
    stats_builder: DatasetStatsBuilder,
    stats: DatasetStats,
}

impl Component {
    /// Builds a component from rows already sorted by the key column and with
    /// unique keys (the memtable guarantees both). Statistics over every column
    /// are collected while the component is written, exactly once per row.
    pub fn from_sorted_rows(
        id: ComponentId,
        generation: usize,
        schema: &Schema,
        key_index: usize,
        rows: Vec<Tuple>,
    ) -> Result<Self> {
        if rows.is_empty() {
            return Err(RdoError::Execution(
                "refusing to create an empty LSM component".into(),
            ));
        }
        debug_assert!(
            rows.windows(2)
                .all(|w| w[0].value(key_index) < w[1].value(key_index)),
            "component rows must be sorted by unique key"
        );
        let mut builder = DatasetStatsBuilder::all_columns(schema);
        let mut bytes = 0usize;
        for row in &rows {
            builder.observe(row);
            bytes += row.approx_bytes();
        }
        let stats = builder.clone().build();
        let min_key = rows.first().expect("non-empty").value(key_index).clone();
        let max_key = rows.last().expect("non-empty").value(key_index).clone();
        Ok(Self {
            id,
            generation,
            key_index,
            rows,
            min_key,
            max_key,
            bytes,
            stats_builder: builder,
            stats,
        })
    }

    /// Merges older components into one new component. `inputs` must be ordered
    /// oldest → newest; when the same key appears in several inputs the newest
    /// version wins (LSM shadowing).
    pub fn merge_of(
        id: ComponentId,
        schema: &Schema,
        key_index: usize,
        inputs: &[&Component],
    ) -> Result<Self> {
        if inputs.is_empty() {
            return Err(RdoError::Execution("cannot merge zero components".into()));
        }
        // Newest versions win: walk the inputs from newest to oldest and keep
        // the first occurrence of each key.
        let mut merged: std::collections::BTreeMap<Value, Tuple> =
            std::collections::BTreeMap::new();
        for component in inputs.iter().rev() {
            for row in &component.rows {
                let key = row.value(key_index).clone();
                merged.entry(key).or_insert_with(|| row.clone());
            }
        }
        let generation = inputs.iter().map(|c| c.generation).max().unwrap_or(0) + 1;
        Self::from_sorted_rows(
            id,
            generation,
            schema,
            key_index,
            merged.into_values().collect(),
        )
    }

    /// Component identifier.
    pub fn id(&self) -> ComponentId {
        self.id
    }

    /// Merge generation (0 for a flush).
    pub fn generation(&self) -> usize {
        self.generation
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the component holds no rows (never constructed, kept for API symmetry).
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Approximate bytes of the component.
    pub fn approx_bytes(&self) -> usize {
        self.bytes
    }

    /// The rows, sorted by key.
    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    /// The smallest and largest key in the component.
    pub fn key_range(&self) -> (&Value, &Value) {
        (&self.min_key, &self.max_key)
    }

    /// True if the key ranges of two components overlap.
    pub fn overlaps(&self, other: &Component) -> bool {
        !(self.max_key < other.min_key || other.max_key < self.min_key)
    }

    /// Point lookup by primary key (binary search over the sorted run).
    pub fn get(&self, key: &Value) -> Option<&Tuple> {
        if key < &self.min_key || key > &self.max_key {
            return None;
        }
        self.rows
            .binary_search_by(|row| row.value(self.key_index).cmp(key))
            .ok()
            .map(|idx| &self.rows[idx])
    }

    /// The component's ingestion-time statistics.
    pub fn stats(&self) -> &DatasetStats {
        &self.stats
    }

    /// The mergeable statistics builder (used to derive dataset-level
    /// statistics without rescanning the data).
    pub fn stats_builder(&self) -> &DatasetStatsBuilder {
        &self.stats_builder
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdo_common::DataType;

    fn schema() -> Schema {
        Schema::for_dataset("t", &[("id", DataType::Int64), ("v", DataType::Int64)])
    }

    fn rows(range: std::ops::Range<i64>, v_offset: i64) -> Vec<Tuple> {
        range
            .map(|i| Tuple::new(vec![Value::Int64(i), Value::Int64(i + v_offset)]))
            .collect()
    }

    #[test]
    fn component_collects_stats_and_key_range() {
        let c =
            Component::from_sorted_rows(ComponentId(1), 0, &schema(), 0, rows(0..100, 0)).unwrap();
        assert_eq!(c.len(), 100);
        assert_eq!(c.key_range(), (&Value::Int64(0), &Value::Int64(99)));
        assert_eq!(c.stats().row_count, 100);
        assert!(c.stats().column("id").is_some());
        assert!(c.approx_bytes() > 0);
        assert_eq!(c.generation(), 0);
        assert_eq!(c.id().to_string(), "c1");
        assert!(!c.is_empty());
    }

    #[test]
    fn empty_component_rejected() {
        assert!(Component::from_sorted_rows(ComponentId(1), 0, &schema(), 0, vec![]).is_err());
    }

    #[test]
    fn point_lookup_hits_and_misses() {
        let c =
            Component::from_sorted_rows(ComponentId(1), 0, &schema(), 0, rows(10..20, 5)).unwrap();
        assert_eq!(
            c.get(&Value::Int64(12)).unwrap().value(1),
            &Value::Int64(17)
        );
        assert!(c.get(&Value::Int64(9)).is_none());
        assert!(c.get(&Value::Int64(25)).is_none());
    }

    #[test]
    fn overlap_detection() {
        let a =
            Component::from_sorted_rows(ComponentId(1), 0, &schema(), 0, rows(0..10, 0)).unwrap();
        let b =
            Component::from_sorted_rows(ComponentId(2), 0, &schema(), 0, rows(5..15, 0)).unwrap();
        let c =
            Component::from_sorted_rows(ComponentId(3), 0, &schema(), 0, rows(20..30, 0)).unwrap();
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn merge_keeps_newest_version_of_duplicate_keys() {
        let old =
            Component::from_sorted_rows(ComponentId(1), 0, &schema(), 0, rows(0..10, 0)).unwrap();
        let new =
            Component::from_sorted_rows(ComponentId(2), 0, &schema(), 0, rows(5..15, 100)).unwrap();
        let merged = Component::merge_of(ComponentId(3), &schema(), 0, &[&old, &new]).unwrap();
        assert_eq!(merged.len(), 15);
        assert_eq!(merged.generation(), 1);
        // Key 7 exists in both; the newer component's value (7 + 100) wins.
        assert_eq!(
            merged.get(&Value::Int64(7)).unwrap().value(1),
            &Value::Int64(107)
        );
        // Key 2 only exists in the old component.
        assert_eq!(
            merged.get(&Value::Int64(2)).unwrap().value(1),
            &Value::Int64(2)
        );
    }

    #[test]
    fn merge_of_nothing_is_an_error() {
        assert!(Component::merge_of(ComponentId(1), &schema(), 0, &[]).is_err());
    }

    #[test]
    fn merged_component_stats_cover_all_rows() {
        let a =
            Component::from_sorted_rows(ComponentId(1), 0, &schema(), 0, rows(0..500, 0)).unwrap();
        let b = Component::from_sorted_rows(ComponentId(2), 0, &schema(), 0, rows(500..1000, 0))
            .unwrap();
        let merged = Component::merge_of(ComponentId(3), &schema(), 0, &[&a, &b]).unwrap();
        assert_eq!(merged.stats().row_count, 1000);
        let distinct = merged.stats().column("id").unwrap().distinct as f64;
        assert!(
            (distinct - 1000.0).abs() / 1000.0 < 0.05,
            "distinct {distinct}"
        );
    }
}
