//! LSM-style ingestion substrate with component-level statistics collection.
//!
//! AsterixDB stores every dataset in LSM trees and, crucially for the paper,
//! collects the initial statistical sketches *while loading data* — "we exploit
//! AsterixDB's LSM ingestion process to get initial statistics for base
//! datasets ... thereby we avoid the extra overhead of pilot runs". This crate
//! reproduces that ingestion substrate:
//!
//! * a per-dataset [`MemTable`] write buffer with upsert semantics;
//! * immutable, sorted [`Component`]s created by flushes and merges, each
//!   carrying its own GK/HLL sketches;
//! * pluggable [`MergePolicy`] implementations (AsterixDB's prefix policy, a
//!   tiered policy and a no-op policy);
//! * [`LsmDataset`], which ties the pieces together, tracks ingestion metrics
//!   (flushes, merges, write amplification), and can register the loaded table
//!   *plus its component-derived statistics* with the cluster
//!   [`rdo_storage::Catalog`].

pub mod component;
pub mod memtable;
pub mod policy;
pub mod tree;

pub use component::{Component, ComponentId};
pub use memtable::MemTable;
pub use policy::{MergeDecision, MergePolicy, NoMergePolicy, PrefixMergePolicy, TieredMergePolicy};
pub use tree::{IngestionMetrics, LsmDataset, LsmOptions};
