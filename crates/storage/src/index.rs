//! Per-partition secondary indexes.
//!
//! The paper's Indexed Nested-Loop join requires "a base dataset with an index
//! on the join key(s)"; the broadcast side probes the local index of each
//! partition. A [`SecondaryIndex`] therefore holds one hash index per partition,
//! mapping key values to local row offsets — intermediate results never have
//! secondary indexes, which is exactly why the cost-based and pilot-run
//! baselines lose INL opportunities in Figure 8 of the paper.

use crate::table::Table;
use rdo_common::{FieldRef, RdoError, Result, Value};
use std::collections::HashMap;

/// A secondary index on one column of a table.
#[derive(Debug, Clone)]
pub struct SecondaryIndex {
    table: String,
    column: String,
    /// One hash index per partition: key value → row offsets within the
    /// partition.
    partitions: Vec<HashMap<Value, Vec<usize>>>,
}

impl SecondaryIndex {
    /// Builds the index by scanning every partition of `table`.
    pub fn build(table: &Table, column: &str) -> Result<Self> {
        let unqualified = rdo_common::unqualified(column);
        let idx = table
            .schema()
            .index_of_unqualified(unqualified)
            .or_else(|_| FieldRef::parse(column).and_then(|f| table.schema().resolve(&f)))
            .map_err(|_| RdoError::UnknownField(column.to_string()))?;
        let mut partitions = Vec::with_capacity(table.num_partitions());
        for p in table.partitions() {
            let mut index: HashMap<Value, Vec<usize>> = HashMap::with_capacity(p.len());
            for (offset, row) in p.iter().enumerate() {
                index
                    .entry(row.value(idx).clone())
                    .or_default()
                    .push(offset);
            }
            partitions.push(index);
        }
        Ok(Self {
            table: table.name().to_string(),
            column: unqualified.to_string(),
            partitions,
        })
    }

    /// Name of the indexed table.
    pub fn table(&self) -> &str {
        &self.table
    }

    /// Name of the indexed column.
    pub fn column(&self) -> &str {
        &self.column
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Looks up the row offsets matching `key` in the given partition.
    pub fn probe(&self, partition: usize, key: &Value) -> &[usize] {
        self.partitions[partition]
            .get(key)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Number of distinct keys in a partition (index size proxy for the cost
    /// model).
    pub fn partition_keys(&self, partition: usize) -> usize {
        self.partitions[partition].len()
    }

    /// Total number of indexed entries.
    pub fn total_entries(&self) -> usize {
        self.partitions
            .iter()
            .map(|p| p.values().map(|v| v.len()).sum::<usize>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdo_common::{DataType, Relation, Schema, Tuple};

    fn table(n: i64, partitions: usize) -> Table {
        let schema = Schema::for_dataset(
            "lineitem",
            &[
                ("l_orderkey", DataType::Int64),
                ("l_partkey", DataType::Int64),
            ],
        );
        let rows = (0..n)
            .map(|i| Tuple::new(vec![Value::Int64(i), Value::Int64(i % 50)]))
            .collect();
        let rel = Relation::new(schema, rows).unwrap();
        Table::from_relation("lineitem", rel, partitions, Some("l_orderkey")).unwrap()
    }

    #[test]
    fn build_and_probe() {
        let t = table(1000, 4);
        let idx = SecondaryIndex::build(&t, "l_partkey").unwrap();
        assert_eq!(idx.table(), "lineitem");
        assert_eq!(idx.column(), "l_partkey");
        assert_eq!(idx.num_partitions(), 4);
        // Every probe result must actually contain the key.
        let key = Value::Int64(7);
        let mut matches = 0;
        for p in 0..4 {
            for &offset in idx.probe(p, &key) {
                assert_eq!(t.partition(p)[offset].value(1), &key);
                matches += 1;
            }
        }
        assert_eq!(
            matches, 20,
            "1000 rows with 50 distinct part keys → 20 matches"
        );
    }

    #[test]
    fn probe_missing_key_is_empty() {
        let t = table(100, 2);
        let idx = SecondaryIndex::build(&t, "l_partkey").unwrap();
        assert!(idx.probe(0, &Value::Int64(999)).is_empty());
        assert!(idx.probe(1, &Value::Int64(-1)).is_empty());
    }

    #[test]
    fn qualified_column_name_accepted() {
        let t = table(10, 2);
        let idx = SecondaryIndex::build(&t, "lineitem.l_partkey").unwrap();
        assert_eq!(idx.column(), "l_partkey");
    }

    #[test]
    fn unknown_column_errors() {
        let t = table(10, 2);
        assert!(SecondaryIndex::build(&t, "nope").is_err());
    }

    #[test]
    fn total_entries_matches_rows() {
        let t = table(500, 3);
        let idx = SecondaryIndex::build(&t, "l_partkey").unwrap();
        assert_eq!(idx.total_entries(), 500);
        let keys: usize = (0..3).map(|p| idx.partition_keys(p)).sum();
        assert!(keys >= 50, "at least 50 distinct keys overall, got {keys}");
    }
}
