//! Partitioned storage for the simulated shared-nothing cluster.
//!
//! AsterixDB hash-partitions every dataset across the nodes of the cluster and
//! collects statistical sketches while ingesting (its LSM load pipeline). This
//! crate reproduces that substrate: a [`Table`] is a set of hash partitions
//! (memory-resident, or spilled to the paged disk store of `rdo-spill`), a
//! [`Catalog`] owns tables, their secondary indexes and the ingestion-time
//! [`rdo_sketch::StatsCatalog`], and intermediate results produced at
//! re-optimization points
//! are registered as temporary tables — kept resident or spilled to disk
//! according to the catalog's memory budget ([`Catalog::configure_spill`],
//! `RDO_SPILL_BUDGET`).

pub mod catalog;
pub mod index;
pub mod table;

pub use catalog::{Catalog, IngestOptions, StoredIntermediate};
pub use index::SecondaryIndex;
pub use table::Table;

// Spill-layer types surfaced through the storage API so downstream crates
// need no direct `rdo-spill` dependency.
pub use rdo_spill::{
    PoolDiagnostics, SpillConfig, SpillManager, SpillPartitionWriter, SpillReadTally,
    SpillWriteTally, SpilledPartitions, JOIN_BUDGET_ENV, SPILL_BUDGET_ENV, SPILL_COMPRESS_ENV,
    SPILL_PREFETCH_ENV,
};
