//! Partitioned in-memory storage for the simulated shared-nothing cluster.
//!
//! AsterixDB hash-partitions every dataset across the nodes of the cluster and
//! collects statistical sketches while ingesting (its LSM load pipeline). This
//! crate reproduces that substrate: a [`Table`] is a set of hash partitions, a
//! [`Catalog`] owns tables, their secondary indexes and the ingestion-time
//! [`StatsCatalog`], and intermediate results produced at re-optimization points
//! are registered as temporary tables.

pub mod catalog;
pub mod index;
pub mod table;

pub use catalog::{Catalog, IngestOptions};
pub use index::SecondaryIndex;
pub use table::Table;
