//! The cluster catalog: tables, secondary indexes and ingestion-time statistics.

use crate::index::SecondaryIndex;
use crate::table::Table;
use rdo_common::{RdoError, Relation, Result, Schema, Tuple};
use rdo_sketch::{DatasetStats, DatasetStatsBuilder, StatsCatalog};
use rdo_spill::{SpillConfig, SpillManager};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

/// Options controlling dataset ingestion.
#[derive(Debug, Clone)]
pub struct IngestOptions {
    /// Column on which the dataset is hash-partitioned (usually the primary
    /// key). `None` distributes rows round-robin.
    pub partition_key: Option<String>,
    /// Whether to collect ingestion-time statistics (GK + HLL sketches on every
    /// column). The paper collects these during AsterixDB's LSM load; its cost
    /// was shown to be negligible relative to load time.
    pub collect_stats: bool,
    /// Columns for which to build secondary indexes (enables Indexed
    /// Nested-Loop joins, Figure 8 of the paper).
    pub secondary_indexes: Vec<String>,
}

impl Default for IngestOptions {
    fn default() -> Self {
        Self {
            partition_key: None,
            collect_stats: true,
            secondary_indexes: Vec::new(),
        }
    }
}

impl IngestOptions {
    /// Options for a dataset partitioned on its primary key.
    pub fn partitioned_on(key: impl Into<String>) -> Self {
        Self {
            partition_key: Some(key.into()),
            ..Default::default()
        }
    }

    /// Adds a secondary index.
    pub fn with_index(mut self, column: impl Into<String>) -> Self {
        self.secondary_indexes.push(column.into());
        self
    }

    /// Disables ingestion-time statistics collection.
    pub fn without_stats(mut self) -> Self {
        self.collect_stats = false;
        self
    }
}

/// What registering an intermediate result did: where it landed and the
/// logical page-write volume if it was spilled. The Sink copies these into
/// `ExecutionMetrics` so spilled bytes become measured cost-model inputs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoredIntermediate {
    /// True if the table went to the paged disk store.
    pub spilled: bool,
    /// Pages written to the spill store (zero when resident).
    pub pages_written: u64,
    /// Stored bytes written to the spill store (zero when resident;
    /// compressed size when page compression is on).
    pub bytes_written: u64,
    /// Uncompressed serialized bytes behind `bytes_written`.
    pub logical_bytes_written: u64,
}

/// The catalog of the simulated cluster: every node sees the same metadata, the
/// data itself lives in the per-table partitions.
///
/// Tables are held behind [`Arc`] so the partition-parallel executor can hand
/// cheap read-only handles to its workers; a shared `&Catalog` is `Send + Sync`
/// (asserted at compile time below).
///
/// When a spill budget is configured ([`Catalog::configure_spill`]), newly
/// registered intermediate results that would push the resident working set
/// past the budget are written to the paged disk store instead of staying in
/// memory; base datasets always stay resident. Catalog clones share the same
/// [`SpillManager`] (and its buffer pool and temp directory).
#[derive(Debug, Clone)]
pub struct Catalog {
    num_partitions: usize,
    tables: HashMap<String, Arc<Table>>,
    indexes: HashMap<(String, String), SecondaryIndex>,
    stats: StatsCatalog,
    spill: Option<Arc<SpillManager>>,
    /// Store resident intermediates as columnar batch runs (`RDO_COLUMNAR`,
    /// on by default; [`Catalog::configure_spill`] overrides it from the
    /// run's `SpillConfig`). Base datasets always stay row-backed — the
    /// secondary indexes and the indexed nested-loop join borrow their row
    /// slices.
    columnar: bool,
}

/// Compile-time guarantee that catalog reads can be shared across the worker
/// pool's scoped threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Catalog>();
    assert_send_sync::<Table>();
    assert_send_sync::<SecondaryIndex>();
};

impl Catalog {
    /// Creates a catalog for a cluster with `num_partitions` partitions (the
    /// paper uses a 10-node cluster with 4 cores each; partitions model the
    /// per-core data partitions of Hyracks).
    ///
    /// A cluster cannot have zero partitions: `num_partitions == 0` is
    /// **clamped to 1** (a single-partition, effectively serial cluster)
    /// rather than rejected, so sweeps like `for p in 0..k` keep working.
    /// After construction `num_partitions() >= 1` always holds, and every
    /// ingested table has exactly `num_partitions()` partitions.
    pub fn new(num_partitions: usize) -> Self {
        let catalog = Self {
            num_partitions: num_partitions.max(1),
            tables: HashMap::new(),
            indexes: HashMap::new(),
            stats: StatsCatalog::new(),
            spill: None,
            columnar: rdo_common::columnar_default(),
        };
        debug_assert!(catalog.num_partitions >= 1, "partition count clamp failed");
        catalog
    }

    /// Number of partitions in the cluster.
    pub fn num_partitions(&self) -> usize {
        self.num_partitions
    }

    /// Applies a spill configuration. A disabled config (no budget) detaches
    /// the manager — already-spilled tables keep working, their files and the
    /// spill directory live until the last table drops. An enabled config
    /// keeps the current manager when its knobs are identical (so repeated
    /// driver executions reuse one directory and buffer pool) and otherwise
    /// creates a fresh manager.
    pub fn configure_spill(&mut self, config: SpillConfig) -> Result<()> {
        // The columnar at-rest knob rides on the spill config so one
        // `DynamicConfig` axis controls every layer; it applies to resident
        // intermediates whether or not a budget is set.
        self.columnar = config.columnar;
        if !config.enabled() {
            self.spill = None;
            return Ok(());
        }
        if self.spill.as_ref().map(|m| m.config()) != Some(config) {
            let manager = SpillManager::create(config)?;
            // Seed the budget with intermediates that are already resident
            // (e.g. checkpoints surviving a failed run, registered under a
            // previous manager or none), so the new manager's accounting
            // matches the releases `drop_table` will issue later and the
            // budget sees the true working set.
            for table in self.tables.values() {
                if table.is_temporary() && !table.is_spilled() {
                    manager.retain(table.approx_bytes() as u64);
                }
            }
            self.spill = Some(manager);
        }
        Ok(())
    }

    /// The active spill manager, if a budget is configured.
    pub fn spill_manager(&self) -> Option<&Arc<SpillManager>> {
        self.spill.as_ref()
    }

    /// The directory spilled intermediates are written to, if spilling is on.
    pub fn spill_dir(&self) -> Option<PathBuf> {
        self.spill.as_ref().map(|m| m.dir().to_path_buf())
    }

    /// Ingests a base dataset: partitions it, collects statistics and builds the
    /// requested secondary indexes.
    pub fn ingest(
        &mut self,
        name: impl Into<String>,
        relation: Relation,
        options: IngestOptions,
    ) -> Result<()> {
        let name = name.into();
        if options.collect_stats {
            let mut builder = DatasetStatsBuilder::all_columns(relation.schema());
            builder.observe_relation(&relation);
            self.stats.register(name.clone(), builder.build());
        }
        let table = Table::from_relation(
            name.clone(),
            relation,
            self.num_partitions,
            options.partition_key.as_deref(),
        )?;
        debug_assert_eq!(
            table.num_partitions(),
            self.num_partitions,
            "ingested table must match the cluster partition count"
        );
        for column in &options.secondary_indexes {
            let index = SecondaryIndex::build(&table, column)?;
            self.indexes
                .insert((name.clone(), index.column().to_string()), index);
        }
        self.tables.insert(name, Arc::new(table));
        Ok(())
    }

    /// Registers a materialized intermediate result as a temporary table
    /// partitioned on `partition_key`, collecting statistics only on
    /// `tracked_columns` (the attributes that participate in later join stages,
    /// per Section 5.3 "Online Statistics").
    pub fn register_intermediate(
        &mut self,
        name: impl Into<String>,
        relation: Relation,
        partition_key: Option<&str>,
        tracked_columns: &[String],
        collect_stats: bool,
    ) -> Result<StoredIntermediate> {
        let name = name.into();
        if collect_stats {
            let mut builder = DatasetStatsBuilder::new(relation.schema(), tracked_columns);
            builder.observe_relation(&relation);
            self.stats.register(name.clone(), builder.build());
        } else {
            // Even without sketches the row count is known after materialization.
            let mut builder = DatasetStatsBuilder::new(relation.schema(), &[]);
            builder.observe_relation(&relation);
            self.stats.register(name.clone(), builder.build());
        }
        let table =
            Table::from_relation(name.clone(), relation, self.num_partitions, partition_key)?
                .into_temporary();
        self.store_intermediate(name, table)
    }

    /// Registers a materialized intermediate result whose statistics were
    /// already built elsewhere — the partition-parallel Sink builds one
    /// [`DatasetStatsBuilder`] per partition and merges the partials at the
    /// re-optimization barrier, then hands the merged [`DatasetStats`] in here
    /// instead of re-observing the gathered relation on the coordinator.
    pub fn register_intermediate_prebuilt(
        &mut self,
        name: impl Into<String>,
        relation: Relation,
        partition_key: Option<&str>,
        stats: DatasetStats,
    ) -> Result<StoredIntermediate> {
        let name = name.into();
        self.stats.register(name.clone(), stats);
        let table =
            Table::from_relation(name.clone(), relation, self.num_partitions, partition_key)?
                .into_temporary();
        self.store_intermediate(name, table)
    }

    /// Registers an intermediate whose data is *already* hash-partitioned on
    /// `partition_key` with the cluster's partition count, skipping the
    /// gather-and-rehash of the relation-based paths (the parallel Sink's fast
    /// path). The layout is taken verbatim, which is exactly what re-hashing
    /// would reproduce for a matching key.
    pub fn register_intermediate_partitioned(
        &mut self,
        name: impl Into<String>,
        schema: Schema,
        partitions: Vec<Vec<Tuple>>,
        partition_key: Option<&str>,
        stats: DatasetStats,
    ) -> Result<StoredIntermediate> {
        let name = name.into();
        if partitions.len() != self.num_partitions {
            return Err(RdoError::Execution(format!(
                "partitioned intermediate `{name}` has {} partitions, cluster has {}",
                partitions.len(),
                self.num_partitions
            )));
        }
        self.stats.register(name.clone(), stats);
        let table = Table::from_partitions(name.clone(), schema, partitions, partition_key)?
            .into_temporary();
        self.store_intermediate(name, table)
    }

    /// Applies the spill policy and stores a freshly built temporary table.
    fn store_intermediate(&mut self, name: String, table: Table) -> Result<StoredIntermediate> {
        debug_assert!(table.is_temporary(), "only intermediates go through here");
        let outcome = match &self.spill {
            Some(manager) if manager.wants_spill(table.approx_bytes() as u64) => {
                let (spilled, tally) = table.into_spilled(manager)?;
                self.tables.insert(name, Arc::new(spilled));
                StoredIntermediate {
                    spilled: true,
                    pages_written: tally.pages,
                    bytes_written: tally.bytes,
                    logical_bytes_written: tally.logical_bytes,
                }
            }
            manager => {
                if let Some(manager) = manager {
                    manager.retain(table.approx_bytes() as u64);
                }
                // Resident intermediates rest columnar by default: the batch
                // kernels consume the stored chunks with no row conversion.
                // Accounting (`approx_bytes`) is backing-invariant, so the
                // budget arithmetic above and the release in `drop_table`
                // agree regardless of the layout.
                let table = if self.columnar {
                    table.into_columnar()
                } else {
                    table
                };
                self.tables.insert(name, Arc::new(table));
                StoredIntermediate::default()
            }
        };
        Ok(outcome)
    }

    /// Drops a temporary table (after the final result has been delivered).
    pub fn drop_table(&mut self, name: &str) {
        if let Some(table) = self.tables.remove(name) {
            if table.is_temporary() && !table.is_spilled() {
                if let Some(manager) = &self.spill {
                    manager.release(table.approx_bytes() as u64);
                }
            }
        }
        self.stats.remove(name);
        self.indexes.retain(|(t, _), _| t != name);
    }

    /// Returns a table by name.
    pub fn table(&self, name: &str) -> Result<&Table> {
        self.tables
            .get(name)
            .map(|t| t.as_ref())
            .ok_or_else(|| RdoError::UnknownDataset(name.to_string()))
    }

    /// Returns a shared handle to a table, for handing to worker threads
    /// without borrowing the catalog.
    pub fn table_handle(&self, name: &str) -> Result<Arc<Table>> {
        self.tables
            .get(name)
            .cloned()
            .ok_or_else(|| RdoError::UnknownDataset(name.to_string()))
    }

    /// True if the catalog has a table of that name.
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Returns a secondary index on `table.column` if one exists.
    pub fn secondary_index(&self, table: &str, column: &str) -> Option<&SecondaryIndex> {
        let unqualified = rdo_common::unqualified(column);
        self.indexes
            .get(&(table.to_string(), unqualified.to_string()))
    }

    /// True if `table.column` has a secondary index.
    pub fn has_secondary_index(&self, table: &str, column: &str) -> bool {
        self.secondary_index(table, column).is_some()
    }

    /// The statistics catalog.
    pub fn stats(&self) -> &StatsCatalog {
        &self.stats
    }

    /// Mutable access to the statistics catalog (the dynamic driver updates it
    /// after predicate push-down and each materialized join).
    pub fn stats_mut(&mut self) -> &mut StatsCatalog {
        &mut self.stats
    }

    /// Names of all registered tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.keys().cloned().collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdo_common::{DataType, Schema, Tuple, Value};

    fn relation(n: i64) -> Relation {
        let schema = Schema::for_dataset(
            "orders",
            &[
                ("o_orderkey", DataType::Int64),
                ("o_custkey", DataType::Int64),
            ],
        );
        let rows = (0..n)
            .map(|i| Tuple::new(vec![Value::Int64(i), Value::Int64(i % 10)]))
            .collect();
        Relation::new(schema, rows).unwrap()
    }

    #[test]
    fn ingest_registers_table_and_stats() {
        let mut cat = Catalog::new(4);
        cat.ingest(
            "orders",
            relation(100),
            IngestOptions::partitioned_on("o_orderkey"),
        )
        .unwrap();
        assert!(cat.has_table("orders"));
        assert_eq!(cat.table("orders").unwrap().row_count(), 100);
        assert_eq!(cat.stats().row_count("orders"), Some(100));
        assert_eq!(cat.table_names(), vec!["orders".to_string()]);
    }

    #[test]
    fn ingest_without_stats() {
        let mut cat = Catalog::new(2);
        cat.ingest(
            "orders",
            relation(10),
            IngestOptions::partitioned_on("o_orderkey").without_stats(),
        )
        .unwrap();
        assert!(cat.stats().get("orders").is_none());
    }

    #[test]
    fn secondary_index_lookup() {
        let mut cat = Catalog::new(2);
        cat.ingest(
            "orders",
            relation(100),
            IngestOptions::partitioned_on("o_orderkey").with_index("o_custkey"),
        )
        .unwrap();
        assert!(cat.has_secondary_index("orders", "o_custkey"));
        assert!(cat.has_secondary_index("orders", "orders.o_custkey"));
        assert!(!cat.has_secondary_index("orders", "o_orderkey"));
        let idx = cat.secondary_index("orders", "o_custkey").unwrap();
        assert_eq!(idx.total_entries(), 100);
    }

    #[test]
    fn intermediate_registration_tracks_requested_columns() {
        let mut cat = Catalog::new(2);
        cat.register_intermediate(
            "I_1",
            relation(50),
            Some("o_custkey"),
            &["o_custkey".into()],
            true,
        )
        .unwrap();
        let table = cat.table("I_1").unwrap();
        assert!(table.is_temporary());
        assert!(table.is_partitioned_on("o_custkey"));
        let stats = cat.stats().get("I_1").unwrap();
        assert_eq!(stats.row_count, 50);
        assert!(stats.column("o_custkey").is_some());
        assert!(stats.column("o_orderkey").is_none());
    }

    #[test]
    fn intermediate_without_online_stats_still_has_rowcount() {
        let mut cat = Catalog::new(2);
        cat.register_intermediate("I_1", relation(25), None, &[], false)
            .unwrap();
        assert_eq!(cat.stats().row_count("I_1"), Some(25));
        assert!(cat.stats().get("I_1").unwrap().columns.is_empty());
    }

    #[test]
    fn drop_table_removes_everything() {
        let mut cat = Catalog::new(2);
        cat.ingest(
            "orders",
            relation(10),
            IngestOptions::partitioned_on("o_orderkey").with_index("o_custkey"),
        )
        .unwrap();
        cat.drop_table("orders");
        assert!(!cat.has_table("orders"));
        assert!(cat.stats().get("orders").is_none());
        assert!(!cat.has_secondary_index("orders", "o_custkey"));
    }

    #[test]
    fn unknown_table_errors() {
        let cat = Catalog::new(2);
        assert!(matches!(
            cat.table("missing"),
            Err(RdoError::UnknownDataset(_))
        ));
    }

    #[test]
    fn zero_partitions_clamps_to_one() {
        let mut cat = Catalog::new(0);
        assert_eq!(cat.num_partitions(), 1, "zero partitions clamps to 1");
        cat.ingest(
            "orders",
            relation(10),
            IngestOptions::partitioned_on("o_orderkey"),
        )
        .unwrap();
        assert_eq!(cat.table("orders").unwrap().num_partitions(), 1);
    }

    #[test]
    fn every_ingested_table_matches_cluster_partition_count() {
        for partitions in [1usize, 2, 7] {
            let mut cat = Catalog::new(partitions);
            cat.ingest("orders", relation(30), IngestOptions::default())
                .unwrap();
            cat.register_intermediate("I_1", relation(5), None, &[], false)
                .unwrap();
            for name in cat.table_names() {
                assert_eq!(cat.table(&name).unwrap().num_partitions(), partitions);
            }
        }
    }

    #[test]
    fn table_handles_are_shared_not_copied() {
        let mut cat = Catalog::new(2);
        cat.ingest("orders", relation(10), IngestOptions::default())
            .unwrap();
        let a = cat.table_handle("orders").unwrap();
        let b = cat.table_handle("orders").unwrap();
        assert!(std::sync::Arc::ptr_eq(&a, &b));
        assert!(cat.table_handle("missing").is_err());
    }

    #[test]
    fn spill_policy_spills_over_budget_intermediates_and_cleans_up() {
        let mut cat = Catalog::new(2);
        cat.configure_spill(SpillConfig::default().with_budget(1).with_page_size(512))
            .unwrap();
        let dir = cat.spill_dir().expect("spill enabled");
        cat.ingest(
            "orders",
            relation(100),
            IngestOptions::partitioned_on("o_orderkey"),
        )
        .unwrap();
        assert!(
            !cat.table("orders").unwrap().is_spilled(),
            "base datasets never spill"
        );

        let stored = cat
            .register_intermediate("I_1", relation(200), Some("o_custkey"), &[], false)
            .unwrap();
        assert!(stored.spilled, "1-byte budget spills everything");
        assert!(stored.pages_written > 0 && stored.bytes_written > 0);
        let table = cat.table("I_1").unwrap();
        assert!(table.is_spilled() && table.is_temporary());
        assert_eq!(table.row_count(), 200);
        assert_eq!(table.gather().sorted(), relation(200).sorted());
        assert_eq!(cat.stats().row_count("I_1"), Some(200));
        assert!(
            std::fs::read_dir(&dir).unwrap().count() > 0,
            "spill file exists while the table is registered"
        );

        cat.drop_table("I_1");
        assert_eq!(
            std::fs::read_dir(&dir).unwrap().count(),
            0,
            "spill file removed with the table"
        );
        drop(cat);
        assert!(!dir.exists(), "spill dir removed with the manager");
    }

    #[test]
    fn resident_intermediates_count_against_the_budget() {
        let mut cat = Catalog::new(2);
        let small = relation(10).approx_bytes() as u64;
        cat.configure_spill(SpillConfig::default().with_budget(3 * small))
            .unwrap();
        for i in 0..3 {
            let stored = cat
                .register_intermediate(format!("I_{i}"), relation(10), None, &[], false)
                .unwrap();
            assert!(!stored.spilled, "I_{i} fits in the budget");
        }
        let stored = cat
            .register_intermediate("I_over", relation(10), None, &[], false)
            .unwrap();
        assert!(stored.spilled, "fourth intermediate exceeds the budget");
        // Dropping a resident intermediate frees budget for the next one.
        cat.drop_table("I_0");
        let stored = cat
            .register_intermediate("I_again", relation(10), None, &[], false)
            .unwrap();
        assert!(!stored.spilled, "released budget is reusable");
    }

    #[test]
    fn partitioned_registration_matches_rehash_path() {
        let mut cat = Catalog::new(4);
        let rel = relation(120);
        let mut builder = DatasetStatsBuilder::new(rel.schema(), &[]);
        builder.observe_relation(&rel);
        cat.register_intermediate("via_rehash", rel.clone(), Some("o_custkey"), &[], false)
            .unwrap();
        let rehash = cat.table("via_rehash").unwrap();
        let expected: Vec<Vec<Tuple>> = (0..rehash.num_partitions())
            .map(|p| rehash.partition_to_vec(p).unwrap())
            .collect();

        let stored = cat
            .register_intermediate_partitioned(
                "via_parts",
                rel.schema().clone(),
                expected.clone(),
                Some("o_custkey"),
                builder.build(),
            )
            .unwrap();
        assert!(!stored.spilled);
        let direct = cat.table("via_parts").unwrap();
        for (p, part) in expected.iter().enumerate() {
            assert_eq!(&direct.partition_to_vec(p).unwrap(), part);
        }
        assert!(direct.is_temporary() && direct.is_partitioned_on("o_custkey"));
        assert_eq!(cat.stats().row_count("via_parts"), Some(120));

        // Wrong partition count is rejected.
        let mut builder = DatasetStatsBuilder::new(rel.schema(), &[]);
        builder.observe_relation(&rel);
        assert!(cat
            .register_intermediate_partitioned(
                "bad",
                rel.schema().clone(),
                vec![Vec::new(); 3],
                None,
                builder.build(),
            )
            .is_err());
    }

    #[test]
    fn intermediates_rest_columnar_and_base_tables_stay_row_backed() {
        let mut cat = Catalog::new(4);
        assert_eq!(
            cat.columnar,
            rdo_common::columnar_default(),
            "a fresh catalog seeds the process-wide rest format"
        );
        // Pin columnar on explicitly: the suite also runs under CI legs
        // that export RDO_COLUMNAR=0 for the whole process.
        cat.configure_spill(SpillConfig::disabled().with_columnar(true))
            .unwrap();
        cat.ingest(
            "orders",
            relation(100),
            IngestOptions::partitioned_on("o_orderkey"),
        )
        .unwrap();
        assert!(
            !cat.table("orders").unwrap().is_columnar(),
            "base datasets keep borrowable row partitions"
        );
        cat.register_intermediate("I_col", relation(60), Some("o_custkey"), &[], false)
            .unwrap();
        let table = cat.table("I_col").unwrap();
        assert!(table.is_columnar() && table.is_temporary());
        assert_eq!(table.gather().sorted(), relation(60).sorted());

        // The knob rides on the spill config: a row-layout run converts
        // nothing.
        cat.configure_spill(SpillConfig::disabled().with_columnar(false))
            .unwrap();
        cat.register_intermediate("I_row", relation(60), Some("o_custkey"), &[], false)
            .unwrap();
        let row = cat.table("I_row").unwrap();
        assert!(!row.is_columnar());
        assert_eq!(
            row.gather().sorted(),
            cat.table("I_col").unwrap().gather().sorted()
        );
    }

    #[test]
    fn configure_spill_is_idempotent_and_detachable() {
        let mut cat = Catalog::new(2);
        let config = SpillConfig::default().with_budget(1_000);
        cat.configure_spill(config).unwrap();
        let dir = cat.spill_dir().unwrap();
        cat.configure_spill(config).unwrap();
        assert_eq!(cat.spill_dir().unwrap(), dir, "same config keeps manager");
        cat.configure_spill(SpillConfig::default().with_budget(2_000))
            .unwrap();
        assert_ne!(cat.spill_dir().unwrap(), dir, "new config, new manager");
        cat.configure_spill(SpillConfig::disabled()).unwrap();
        assert!(cat.spill_dir().is_none());
        assert!(cat.spill_manager().is_none());
    }

    #[test]
    fn prebuilt_stats_registration() {
        use rdo_sketch::DatasetStatsBuilder;
        let mut cat = Catalog::new(2);
        let rel = relation(40);
        let mut builder = DatasetStatsBuilder::new(rel.schema(), &["o_custkey".into()]);
        builder.observe_relation(&rel);
        cat.register_intermediate_prebuilt("I_1", rel, Some("o_custkey"), builder.build())
            .unwrap();
        assert!(cat.table("I_1").unwrap().is_temporary());
        assert_eq!(cat.stats().row_count("I_1"), Some(40));
        assert!(cat
            .stats()
            .get("I_1")
            .unwrap()
            .column("o_custkey")
            .is_some());
    }
}
