//! The cluster catalog: tables, secondary indexes and ingestion-time statistics.

use crate::index::SecondaryIndex;
use crate::table::Table;
use rdo_common::{RdoError, Relation, Result};
use rdo_sketch::{DatasetStats, DatasetStatsBuilder, StatsCatalog};
use std::collections::HashMap;
use std::sync::Arc;

/// Options controlling dataset ingestion.
#[derive(Debug, Clone)]
pub struct IngestOptions {
    /// Column on which the dataset is hash-partitioned (usually the primary
    /// key). `None` distributes rows round-robin.
    pub partition_key: Option<String>,
    /// Whether to collect ingestion-time statistics (GK + HLL sketches on every
    /// column). The paper collects these during AsterixDB's LSM load; its cost
    /// was shown to be negligible relative to load time.
    pub collect_stats: bool,
    /// Columns for which to build secondary indexes (enables Indexed
    /// Nested-Loop joins, Figure 8 of the paper).
    pub secondary_indexes: Vec<String>,
}

impl Default for IngestOptions {
    fn default() -> Self {
        Self {
            partition_key: None,
            collect_stats: true,
            secondary_indexes: Vec::new(),
        }
    }
}

impl IngestOptions {
    /// Options for a dataset partitioned on its primary key.
    pub fn partitioned_on(key: impl Into<String>) -> Self {
        Self {
            partition_key: Some(key.into()),
            ..Default::default()
        }
    }

    /// Adds a secondary index.
    pub fn with_index(mut self, column: impl Into<String>) -> Self {
        self.secondary_indexes.push(column.into());
        self
    }

    /// Disables ingestion-time statistics collection.
    pub fn without_stats(mut self) -> Self {
        self.collect_stats = false;
        self
    }
}

/// The catalog of the simulated cluster: every node sees the same metadata, the
/// data itself lives in the per-table partitions.
///
/// Tables are held behind [`Arc`] so the partition-parallel executor can hand
/// cheap read-only handles to its workers; a shared `&Catalog` is `Send + Sync`
/// (asserted at compile time below).
#[derive(Debug, Clone)]
pub struct Catalog {
    num_partitions: usize,
    tables: HashMap<String, Arc<Table>>,
    indexes: HashMap<(String, String), SecondaryIndex>,
    stats: StatsCatalog,
}

/// Compile-time guarantee that catalog reads can be shared across the worker
/// pool's scoped threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Catalog>();
    assert_send_sync::<Table>();
    assert_send_sync::<SecondaryIndex>();
};

impl Catalog {
    /// Creates a catalog for a cluster with `num_partitions` partitions (the
    /// paper uses a 10-node cluster with 4 cores each; partitions model the
    /// per-core data partitions of Hyracks).
    ///
    /// A cluster cannot have zero partitions: `num_partitions == 0` is
    /// **clamped to 1** (a single-partition, effectively serial cluster)
    /// rather than rejected, so sweeps like `for p in 0..k` keep working.
    /// After construction `num_partitions() >= 1` always holds, and every
    /// ingested table has exactly `num_partitions()` partitions.
    pub fn new(num_partitions: usize) -> Self {
        let catalog = Self {
            num_partitions: num_partitions.max(1),
            tables: HashMap::new(),
            indexes: HashMap::new(),
            stats: StatsCatalog::new(),
        };
        debug_assert!(catalog.num_partitions >= 1, "partition count clamp failed");
        catalog
    }

    /// Number of partitions in the cluster.
    pub fn num_partitions(&self) -> usize {
        self.num_partitions
    }

    /// Ingests a base dataset: partitions it, collects statistics and builds the
    /// requested secondary indexes.
    pub fn ingest(
        &mut self,
        name: impl Into<String>,
        relation: Relation,
        options: IngestOptions,
    ) -> Result<()> {
        let name = name.into();
        if options.collect_stats {
            let mut builder = DatasetStatsBuilder::all_columns(relation.schema());
            builder.observe_relation(&relation);
            self.stats.register(name.clone(), builder.build());
        }
        let table = Table::from_relation(
            name.clone(),
            relation,
            self.num_partitions,
            options.partition_key.as_deref(),
        )?;
        debug_assert_eq!(
            table.num_partitions(),
            self.num_partitions,
            "ingested table must match the cluster partition count"
        );
        for column in &options.secondary_indexes {
            let index = SecondaryIndex::build(&table, column)?;
            self.indexes
                .insert((name.clone(), index.column().to_string()), index);
        }
        self.tables.insert(name, Arc::new(table));
        Ok(())
    }

    /// Registers a materialized intermediate result as a temporary table
    /// partitioned on `partition_key`, collecting statistics only on
    /// `tracked_columns` (the attributes that participate in later join stages,
    /// per Section 5.3 "Online Statistics").
    pub fn register_intermediate(
        &mut self,
        name: impl Into<String>,
        relation: Relation,
        partition_key: Option<&str>,
        tracked_columns: &[String],
        collect_stats: bool,
    ) -> Result<()> {
        let name = name.into();
        if collect_stats {
            let mut builder = DatasetStatsBuilder::new(relation.schema(), tracked_columns);
            builder.observe_relation(&relation);
            self.stats.register(name.clone(), builder.build());
        } else {
            // Even without sketches the row count is known after materialization.
            let mut builder = DatasetStatsBuilder::new(relation.schema(), &[]);
            builder.observe_relation(&relation);
            self.stats.register(name.clone(), builder.build());
        }
        let table =
            Table::from_relation(name.clone(), relation, self.num_partitions, partition_key)?
                .into_temporary();
        self.tables.insert(name, Arc::new(table));
        Ok(())
    }

    /// Registers a materialized intermediate result whose statistics were
    /// already built elsewhere — the partition-parallel Sink builds one
    /// [`DatasetStatsBuilder`] per partition and merges the partials at the
    /// re-optimization barrier, then hands the merged [`DatasetStats`] in here
    /// instead of re-observing the gathered relation on the coordinator.
    pub fn register_intermediate_prebuilt(
        &mut self,
        name: impl Into<String>,
        relation: Relation,
        partition_key: Option<&str>,
        stats: DatasetStats,
    ) -> Result<()> {
        let name = name.into();
        self.stats.register(name.clone(), stats);
        let table =
            Table::from_relation(name.clone(), relation, self.num_partitions, partition_key)?
                .into_temporary();
        self.tables.insert(name, Arc::new(table));
        Ok(())
    }

    /// Drops a temporary table (after the final result has been delivered).
    pub fn drop_table(&mut self, name: &str) {
        self.tables.remove(name);
        self.stats.remove(name);
        self.indexes.retain(|(t, _), _| t != name);
    }

    /// Returns a table by name.
    pub fn table(&self, name: &str) -> Result<&Table> {
        self.tables
            .get(name)
            .map(|t| t.as_ref())
            .ok_or_else(|| RdoError::UnknownDataset(name.to_string()))
    }

    /// Returns a shared handle to a table, for handing to worker threads
    /// without borrowing the catalog.
    pub fn table_handle(&self, name: &str) -> Result<Arc<Table>> {
        self.tables
            .get(name)
            .cloned()
            .ok_or_else(|| RdoError::UnknownDataset(name.to_string()))
    }

    /// True if the catalog has a table of that name.
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Returns a secondary index on `table.column` if one exists.
    pub fn secondary_index(&self, table: &str, column: &str) -> Option<&SecondaryIndex> {
        let unqualified = rdo_common::unqualified(column);
        self.indexes
            .get(&(table.to_string(), unqualified.to_string()))
    }

    /// True if `table.column` has a secondary index.
    pub fn has_secondary_index(&self, table: &str, column: &str) -> bool {
        self.secondary_index(table, column).is_some()
    }

    /// The statistics catalog.
    pub fn stats(&self) -> &StatsCatalog {
        &self.stats
    }

    /// Mutable access to the statistics catalog (the dynamic driver updates it
    /// after predicate push-down and each materialized join).
    pub fn stats_mut(&mut self) -> &mut StatsCatalog {
        &mut self.stats
    }

    /// Names of all registered tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.keys().cloned().collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdo_common::{DataType, Schema, Tuple, Value};

    fn relation(n: i64) -> Relation {
        let schema = Schema::for_dataset(
            "orders",
            &[
                ("o_orderkey", DataType::Int64),
                ("o_custkey", DataType::Int64),
            ],
        );
        let rows = (0..n)
            .map(|i| Tuple::new(vec![Value::Int64(i), Value::Int64(i % 10)]))
            .collect();
        Relation::new(schema, rows).unwrap()
    }

    #[test]
    fn ingest_registers_table_and_stats() {
        let mut cat = Catalog::new(4);
        cat.ingest(
            "orders",
            relation(100),
            IngestOptions::partitioned_on("o_orderkey"),
        )
        .unwrap();
        assert!(cat.has_table("orders"));
        assert_eq!(cat.table("orders").unwrap().row_count(), 100);
        assert_eq!(cat.stats().row_count("orders"), Some(100));
        assert_eq!(cat.table_names(), vec!["orders".to_string()]);
    }

    #[test]
    fn ingest_without_stats() {
        let mut cat = Catalog::new(2);
        cat.ingest(
            "orders",
            relation(10),
            IngestOptions::partitioned_on("o_orderkey").without_stats(),
        )
        .unwrap();
        assert!(cat.stats().get("orders").is_none());
    }

    #[test]
    fn secondary_index_lookup() {
        let mut cat = Catalog::new(2);
        cat.ingest(
            "orders",
            relation(100),
            IngestOptions::partitioned_on("o_orderkey").with_index("o_custkey"),
        )
        .unwrap();
        assert!(cat.has_secondary_index("orders", "o_custkey"));
        assert!(cat.has_secondary_index("orders", "orders.o_custkey"));
        assert!(!cat.has_secondary_index("orders", "o_orderkey"));
        let idx = cat.secondary_index("orders", "o_custkey").unwrap();
        assert_eq!(idx.total_entries(), 100);
    }

    #[test]
    fn intermediate_registration_tracks_requested_columns() {
        let mut cat = Catalog::new(2);
        cat.register_intermediate(
            "I_1",
            relation(50),
            Some("o_custkey"),
            &["o_custkey".into()],
            true,
        )
        .unwrap();
        let table = cat.table("I_1").unwrap();
        assert!(table.is_temporary());
        assert!(table.is_partitioned_on("o_custkey"));
        let stats = cat.stats().get("I_1").unwrap();
        assert_eq!(stats.row_count, 50);
        assert!(stats.column("o_custkey").is_some());
        assert!(stats.column("o_orderkey").is_none());
    }

    #[test]
    fn intermediate_without_online_stats_still_has_rowcount() {
        let mut cat = Catalog::new(2);
        cat.register_intermediate("I_1", relation(25), None, &[], false)
            .unwrap();
        assert_eq!(cat.stats().row_count("I_1"), Some(25));
        assert!(cat.stats().get("I_1").unwrap().columns.is_empty());
    }

    #[test]
    fn drop_table_removes_everything() {
        let mut cat = Catalog::new(2);
        cat.ingest(
            "orders",
            relation(10),
            IngestOptions::partitioned_on("o_orderkey").with_index("o_custkey"),
        )
        .unwrap();
        cat.drop_table("orders");
        assert!(!cat.has_table("orders"));
        assert!(cat.stats().get("orders").is_none());
        assert!(!cat.has_secondary_index("orders", "o_custkey"));
    }

    #[test]
    fn unknown_table_errors() {
        let cat = Catalog::new(2);
        assert!(matches!(
            cat.table("missing"),
            Err(RdoError::UnknownDataset(_))
        ));
    }

    #[test]
    fn zero_partitions_clamps_to_one() {
        let mut cat = Catalog::new(0);
        assert_eq!(cat.num_partitions(), 1, "zero partitions clamps to 1");
        cat.ingest(
            "orders",
            relation(10),
            IngestOptions::partitioned_on("o_orderkey"),
        )
        .unwrap();
        assert_eq!(cat.table("orders").unwrap().num_partitions(), 1);
    }

    #[test]
    fn every_ingested_table_matches_cluster_partition_count() {
        for partitions in [1usize, 2, 7] {
            let mut cat = Catalog::new(partitions);
            cat.ingest("orders", relation(30), IngestOptions::default())
                .unwrap();
            cat.register_intermediate("I_1", relation(5), None, &[], false)
                .unwrap();
            for name in cat.table_names() {
                assert_eq!(cat.table(&name).unwrap().num_partitions(), partitions);
            }
        }
    }

    #[test]
    fn table_handles_are_shared_not_copied() {
        let mut cat = Catalog::new(2);
        cat.ingest("orders", relation(10), IngestOptions::default())
            .unwrap();
        let a = cat.table_handle("orders").unwrap();
        let b = cat.table_handle("orders").unwrap();
        assert!(std::sync::Arc::ptr_eq(&a, &b));
        assert!(cat.table_handle("missing").is_err());
    }

    #[test]
    fn prebuilt_stats_registration() {
        use rdo_sketch::DatasetStatsBuilder;
        let mut cat = Catalog::new(2);
        let rel = relation(40);
        let mut builder = DatasetStatsBuilder::new(rel.schema(), &["o_custkey".into()]);
        builder.observe_relation(&rel);
        cat.register_intermediate_prebuilt("I_1", rel, Some("o_custkey"), builder.build())
            .unwrap();
        assert!(cat.table("I_1").unwrap().is_temporary());
        assert_eq!(cat.stats().row_count("I_1"), Some(40));
        assert!(cat
            .stats()
            .get("I_1")
            .unwrap()
            .column("o_custkey")
            .is_some());
    }
}
