//! Hash-partitioned tables: memory-resident or spilled to the paged disk
//! store of `rdo-spill`.

use rdo_common::{
    batch_size, unqualified, Batch, FieldRef, RdoError, Relation, Result, Schema, Tuple, Value,
};
use rdo_sketch::hll::hash_value;
use rdo_spill::{
    SpillManager, SpillPartitionWriter, SpillReadTally, SpillWriteTally, SpilledPartitions,
};
use std::sync::Arc;

/// Where a table's partitions live.
///
/// Base datasets are always [`Backing::Memory`] (the paper keeps them in the
/// LSM storage of the cluster nodes; the secondary indexes and the indexed
/// nested-loop join borrow their row slices). Materialized intermediates are
/// [`Backing::Columnar`] by default (`RDO_COLUMNAR`) — each partition a run
/// of [`Batch`] chunks the batch kernels consume without any row
/// conversion — or [`Backing::Spilled`] when the catalog's spill policy
/// decides the working set exceeds the memory budget.
#[derive(Debug, Clone)]
enum Backing {
    Memory(Vec<Vec<Tuple>>),
    Columnar(Vec<Vec<Batch>>),
    Spilled(Arc<SpilledPartitions>),
}

/// A dataset hash-partitioned across the simulated cluster nodes.
///
/// Partitioning follows AsterixDB: base datasets are hash-partitioned on their
/// primary key; intermediate results are partitioned on the join key that
/// produced them, which lets a later join on the same key skip the re-partition
/// exchange (and its network cost).
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Schema,
    backing: Backing,
    num_partitions: usize,
    /// Column (unqualified name) on which the table is hash-partitioned, if any.
    partition_key: Option<String>,
    /// True for materialized intermediate results (the paper's temporary files).
    temporary: bool,
}

impl Table {
    /// Builds a table by hash-partitioning `relation` on `partition_key` into
    /// `num_partitions` partitions. With no partition key rows are distributed
    /// round-robin (AsterixDB's behaviour for external data without a key).
    pub fn from_relation(
        name: impl Into<String>,
        relation: Relation,
        num_partitions: usize,
        partition_key: Option<&str>,
    ) -> Result<Self> {
        let name = name.into();
        let num_partitions = num_partitions.max(1);
        let schema = relation.schema().clone();
        let key_index = match partition_key {
            Some(key) => Some(resolve_key(&schema, key)?),
            None => None,
        };
        let mut partitions = vec![Vec::new(); num_partitions];
        for (i, row) in relation.into_rows().into_iter().enumerate() {
            let p = match key_index {
                Some(idx) => partition_of(row.value(idx), num_partitions),
                None => i % num_partitions,
            };
            partitions[p].push(row);
        }
        Ok(Self {
            name,
            schema,
            backing: Backing::Memory(partitions),
            num_partitions,
            partition_key: partition_key.map(|k| unqualified(k).to_string()),
            temporary: false,
        })
    }

    /// Builds a table directly from already-partitioned data, skipping the
    /// gather-and-rehash of [`Table::from_relation`]. The caller guarantees
    /// the rows are hash-partitioned on `partition_key` (the parallel Sink
    /// uses this when the materialized data's partitioning already matches).
    pub fn from_partitions(
        name: impl Into<String>,
        schema: Schema,
        partitions: Vec<Vec<Tuple>>,
        partition_key: Option<&str>,
    ) -> Result<Self> {
        if partitions.is_empty() {
            return Err(RdoError::Execution(
                "a table needs at least one partition".to_string(),
            ));
        }
        if let Some(key) = partition_key {
            // The key must exist in the schema, same as from_relation.
            resolve_key(&schema, key)?;
        }
        let num_partitions = partitions.len();
        Ok(Self {
            name: name.into(),
            schema,
            backing: Backing::Memory(partitions),
            num_partitions,
            partition_key: partition_key.map(|k| unqualified(k).to_string()),
            temporary: false,
        })
    }

    /// Marks the table as a temporary (intermediate) result.
    pub fn into_temporary(mut self) -> Self {
        self.temporary = true;
        self
    }

    /// Re-chunks a memory-backed table into the columnar at-rest format:
    /// each partition becomes a run of [`Batch`]es of at most
    /// [`batch_size()`] rows, which the batch kernels consume with no row
    /// materialization. Columnar and spilled tables are returned unchanged.
    pub fn into_columnar(self) -> Self {
        let Backing::Memory(partitions) = self.backing else {
            return self;
        };
        let width = self.schema.len();
        let chunk = batch_size();
        let columnar = partitions
            .into_iter()
            .map(|rows| {
                rows.chunks(chunk)
                    .map(|c| Batch::from_rows(width, c))
                    .collect()
            })
            .collect();
        Self {
            backing: Backing::Columnar(columnar),
            ..self
        }
    }

    /// Moves a memory- or columnar-backed table into the paged disk store of
    /// `manager`, returning the spilled table and the logical page-write
    /// volume. A table that is already spilled is returned unchanged with a
    /// zero tally.
    pub fn into_spilled(self, manager: &Arc<SpillManager>) -> Result<(Self, SpillWriteTally)> {
        let (store, tally) = match self.backing {
            Backing::Memory(ref partitions) => {
                SpilledPartitions::write(Arc::clone(manager), partitions)?
            }
            Backing::Columnar(ref partitions) => {
                // Stream batch by batch — never materializes a partition.
                let mut writer = SpillPartitionWriter::new(Arc::clone(manager), partitions.len())?;
                for (p, batches) in partitions.iter().enumerate() {
                    for batch in batches {
                        for row in batch.to_rows() {
                            writer.append(p, &row)?;
                        }
                    }
                }
                writer.finish()?
            }
            Backing::Spilled(_) => return Ok((self, SpillWriteTally::default())),
        };
        Ok((
            Self {
                backing: Backing::Spilled(Arc::new(store)),
                ..self
            },
            tally,
        ))
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.num_partitions
    }

    /// True if the partitions live in the paged disk store.
    pub fn is_spilled(&self) -> bool {
        matches!(self.backing, Backing::Spilled(_))
    }

    /// True if the partitions are stored as columnar [`Batch`] runs.
    pub fn is_columnar(&self) -> bool {
        matches!(self.backing, Backing::Columnar(_))
    }

    /// Rows of one partition of a **memory-backed** table.
    ///
    /// # Panics
    /// Panics for columnar and spilled tables, whose partitions have no
    /// borrowable row slice — use [`Table::scan_batches`] /
    /// [`Table::scan_pages`] (streaming) or [`Table::partition_to_vec`]
    /// instead. Only base datasets are required to be memory-backed (secondary
    /// indexes and the indexed nested-loop join rely on this accessor).
    pub fn partition(&self, index: usize) -> &[Tuple] {
        match &self.backing {
            Backing::Memory(partitions) => &partitions[index],
            Backing::Columnar(_) => {
                panic!(
                    "table `{}` is columnar; stream it with scan_batches",
                    self.name
                )
            }
            Backing::Spilled(_) => {
                panic!(
                    "table `{}` is spilled; stream it with scan_pages",
                    self.name
                )
            }
        }
    }

    /// All partitions of a **memory-backed** table.
    ///
    /// # Panics
    /// Panics for columnar and spilled tables (see [`Table::partition`]).
    pub fn partitions(&self) -> &[Vec<Tuple>] {
        match &self.backing {
            Backing::Memory(partitions) => partitions,
            Backing::Columnar(_) => {
                panic!(
                    "table `{}` is columnar; stream it with scan_batches",
                    self.name
                )
            }
            Backing::Spilled(_) => {
                panic!(
                    "table `{}` is spilled; stream it with scan_pages",
                    self.name
                )
            }
        }
    }

    /// Streams partition `index` through `f` in storage order, one page of
    /// rows at a time. Memory-backed tables deliver the whole partition as a
    /// single page and report a zero read tally; spilled tables fetch pages
    /// through the buffer pool and report the logical pages/bytes fetched.
    /// `f` returns whether to keep going (early stop charges only what was
    /// read).
    pub fn scan_pages<F>(&self, index: usize, mut f: F) -> Result<SpillReadTally>
    where
        F: FnMut(&[Tuple]) -> Result<bool>,
    {
        match &self.backing {
            Backing::Memory(partitions) => {
                f(&partitions[index])?;
                Ok(SpillReadTally::default())
            }
            Backing::Columnar(partitions) => {
                for batch in &partitions[index] {
                    if !f(&batch.to_rows())? {
                        break;
                    }
                }
                Ok(SpillReadTally::default())
            }
            Backing::Spilled(store) => store.scan_pages(index, f),
        }
    }

    /// Streams partition `index` through `f` as [`Batch`]es in storage order
    /// — the batch-native twin of [`Table::scan_pages`], with the same
    /// early-stop and tally contract. Columnar partitions hand out their
    /// stored batches with no conversion; memory partitions are chunked at
    /// [`batch_size()`] rows; spilled partitions decode each page (columnar
    /// pages straight into their column representation).
    pub fn scan_batches<F>(&self, index: usize, mut f: F) -> Result<SpillReadTally>
    where
        F: FnMut(&Batch) -> Result<bool>,
    {
        match &self.backing {
            Backing::Memory(partitions) => {
                let width = self.schema.len();
                for chunk in partitions[index].chunks(batch_size().max(1)) {
                    if !f(&Batch::from_rows(width, chunk))? {
                        break;
                    }
                }
                Ok(SpillReadTally::default())
            }
            Backing::Columnar(partitions) => {
                for batch in &partitions[index] {
                    if !f(batch)? {
                        break;
                    }
                }
                Ok(SpillReadTally::default())
            }
            Backing::Spilled(store) => store.scan_batches(index, f),
        }
    }

    /// Materializes one partition into an owned vector (works for every
    /// backing; prefer [`Table::scan_batches`] / [`Table::scan_pages`] on hot
    /// paths).
    pub fn partition_to_vec(&self, index: usize) -> Result<Vec<Tuple>> {
        match &self.backing {
            Backing::Memory(partitions) => Ok(partitions[index].clone()),
            Backing::Columnar(partitions) => {
                let mut out = Vec::with_capacity(self.partition_len(index));
                for batch in &partitions[index] {
                    out.extend(batch.to_rows());
                }
                Ok(out)
            }
            Backing::Spilled(store) => store.read_partition(index),
        }
    }

    /// Number of rows in one partition.
    pub fn partition_len(&self, index: usize) -> usize {
        match &self.backing {
            Backing::Memory(partitions) => partitions[index].len(),
            Backing::Columnar(partitions) => partitions[index].iter().map(Batch::num_rows).sum(),
            Backing::Spilled(store) => store.partition_rows(index),
        }
    }

    /// The column on which the table is hash-partitioned, if any.
    pub fn partition_key(&self) -> Option<&str> {
        self.partition_key.as_deref()
    }

    /// True if this is a materialized intermediate result.
    pub fn is_temporary(&self) -> bool {
        self.temporary
    }

    /// Total number of rows across partitions.
    pub fn row_count(&self) -> usize {
        match &self.backing {
            Backing::Memory(partitions) => partitions.iter().map(|p| p.len()).sum(),
            Backing::Columnar(partitions) => partitions
                .iter()
                .flat_map(|p| p.iter())
                .map(Batch::num_rows)
                .sum(),
            Backing::Spilled(store) => store.row_count(),
        }
    }

    /// Approximate total size in bytes (tuple-model accounting, identical for
    /// both backings so cost inputs never depend on where the table lives).
    pub fn approx_bytes(&self) -> usize {
        match &self.backing {
            Backing::Memory(partitions) => partitions
                .iter()
                .flat_map(|p| p.iter())
                .map(|t| t.approx_bytes())
                .sum(),
            // `Batch::approx_bytes` matches the tuple-model accounting
            // slot for slot, so the figure is backing-invariant.
            Backing::Columnar(partitions) => partitions
                .iter()
                .flat_map(|p| p.iter())
                .map(Batch::approx_bytes)
                .sum(),
            Backing::Spilled(store) => store.approx_bytes(),
        }
    }

    /// Exact serialized bytes on disk (zero for memory-resident tables).
    pub fn spilled_bytes(&self) -> u64 {
        match &self.backing {
            Backing::Memory(_) | Backing::Columnar(_) => 0,
            Backing::Spilled(store) => store.serialized_bytes(),
        }
    }

    /// Materializes all partitions back into a single relation, surfacing
    /// spill-read errors (a spilled table's pages live on disk and the read
    /// can fail). Memory-backed tables are infallible.
    pub fn try_gather(&self) -> Result<Relation> {
        let mut rel = Relation::empty(self.schema.clone());
        for p in 0..self.num_partitions {
            self.scan_pages(p, |rows| {
                for row in rows {
                    rel.push(row.clone());
                }
                Ok(true)
            })?;
        }
        Ok(rel)
    }

    /// Materializes all partitions back into a single relation (coordinator-side
    /// gather; used by result delivery and tests).
    ///
    /// # Panics
    /// Panics if a spilled table's pages cannot be read back; spill-capable
    /// call sites should prefer [`Table::try_gather`].
    pub fn gather(&self) -> Relation {
        self.try_gather()
            .expect("gather of a spilled table failed; use try_gather to handle the error")
    }

    /// True if the table is hash-partitioned on the given (possibly qualified)
    /// column, meaning a join on that column needs no re-partitioning of this
    /// side.
    pub fn is_partitioned_on(&self, column: &str) -> bool {
        match &self.partition_key {
            Some(key) => key == unqualified(column),
            None => false,
        }
    }
}

/// Maps a value to a partition id.
pub fn partition_of(value: &Value, num_partitions: usize) -> usize {
    (hash_value(value) % num_partitions as u64) as usize
}

fn resolve_key(schema: &Schema, key: &str) -> Result<usize> {
    if let Ok(field) = FieldRef::parse(key) {
        if let Ok(idx) = schema.resolve(&field) {
            return Ok(idx);
        }
    }
    schema
        .index_of_unqualified(unqualified(key))
        .map_err(|_| RdoError::UnknownField(key.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdo_common::DataType;
    use rdo_spill::SpillConfig;

    fn relation(n: i64) -> Relation {
        let schema = Schema::for_dataset("t", &[("k", DataType::Int64), ("v", DataType::Utf8)]);
        let rows = (0..n)
            .map(|i| Tuple::new(vec![Value::Int64(i), Value::Utf8(format!("row{i}"))]))
            .collect();
        Relation::new(schema, rows).unwrap()
    }

    #[test]
    fn partitioning_preserves_all_rows() {
        let t = Table::from_relation("t", relation(1000), 8, Some("k")).unwrap();
        assert_eq!(t.num_partitions(), 8);
        assert_eq!(t.row_count(), 1000);
        assert_eq!(t.gather().len(), 1000);
    }

    #[test]
    fn same_key_lands_in_same_partition() {
        let t = Table::from_relation("t", relation(500), 4, Some("k")).unwrap();
        // Re-derive each row's partition and check it matches its location.
        for (p, rows) in t.partitions().iter().enumerate() {
            for row in rows {
                assert_eq!(partition_of(row.value(0), 4), p);
            }
        }
    }

    #[test]
    fn round_robin_without_key() {
        let t = Table::from_relation("t", relation(100), 4, None).unwrap();
        assert!(t.partition_key().is_none());
        let sizes: Vec<usize> = t.partitions().iter().map(|p| p.len()).collect();
        assert_eq!(sizes, vec![25, 25, 25, 25]);
    }

    #[test]
    fn partition_balance_is_reasonable() {
        let t = Table::from_relation("t", relation(10_000), 10, Some("k")).unwrap();
        let sizes: Vec<usize> = t.partitions().iter().map(|p| p.len()).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(min > 700 && max < 1300, "unbalanced partitions: {sizes:?}");
    }

    #[test]
    fn qualified_partition_key_accepted() {
        let t = Table::from_relation("t", relation(10), 2, Some("t.k")).unwrap();
        assert!(t.is_partitioned_on("k"));
        assert!(t.is_partitioned_on("t.k"));
        assert!(!t.is_partitioned_on("v"));
    }

    #[test]
    fn unknown_partition_key_errors() {
        assert!(Table::from_relation("t", relation(10), 2, Some("missing")).is_err());
    }

    #[test]
    fn single_partition_cluster() {
        let t = Table::from_relation("t", relation(10), 0, Some("k")).unwrap();
        assert_eq!(t.num_partitions(), 1);
        assert_eq!(t.partition(0).len(), 10);
    }

    #[test]
    fn temporary_flag() {
        let t = Table::from_relation("t", relation(1), 1, None).unwrap();
        assert!(!t.is_temporary());
        assert!(t.into_temporary().is_temporary());
    }

    #[test]
    fn approx_bytes_positive() {
        let t = Table::from_relation("t", relation(10), 2, Some("k")).unwrap();
        assert!(t.approx_bytes() > 0);
    }

    #[test]
    fn from_partitions_reuses_layout_verbatim() {
        let source = Table::from_relation("t", relation(200), 4, Some("k")).unwrap();
        let cloned: Vec<Vec<Tuple>> = source.partitions().to_vec();
        let direct =
            Table::from_partitions("t2", source.schema().clone(), cloned, Some("k")).unwrap();
        assert_eq!(direct.num_partitions(), 4);
        assert_eq!(direct.partitions(), source.partitions());
        assert!(direct.is_partitioned_on("k"));
        assert!(Table::from_partitions(
            "bad",
            source.schema().clone(),
            vec![Vec::new()],
            Some("missing")
        )
        .is_err());
        assert!(
            Table::from_partitions("empty", source.schema().clone(), Vec::new(), None).is_err()
        );
    }

    #[test]
    fn spilled_table_is_equivalent_to_memory_table() {
        let manager =
            SpillManager::create(SpillConfig::default().with_budget(1).with_page_size(512))
                .unwrap();
        let memory = Table::from_relation("t", relation(777), 4, Some("k"))
            .unwrap()
            .into_temporary();
        let expected_gather = memory.gather();
        let expected_parts: Vec<Vec<Tuple>> = memory.partitions().to_vec();
        let approx = memory.approx_bytes();

        let (spilled, tally) = memory.into_spilled(&manager).unwrap();
        assert!(spilled.is_spilled());
        assert!(tally.pages > 0 && tally.bytes > 0);
        assert_eq!(spilled.spilled_bytes(), tally.bytes);
        assert_eq!(spilled.row_count(), 777);
        assert_eq!(spilled.approx_bytes(), approx);
        assert!(spilled.is_temporary() && spilled.is_partitioned_on("k"));
        assert_eq!(spilled.gather(), expected_gather);
        for (p, expected) in expected_parts.iter().enumerate() {
            assert_eq!(&spilled.partition_to_vec(p).unwrap(), expected);
            assert_eq!(spilled.partition_len(p), expected.len());
            let mut streamed = Vec::new();
            let read = spilled
                .scan_pages(p, |rows| {
                    streamed.extend_from_slice(rows);
                    Ok(true)
                })
                .unwrap();
            assert_eq!(&streamed, expected);
            assert!(read.pages > 0 || expected.is_empty());
        }
        // Spilling an already-spilled table is a no-op.
        let (again, zero) = spilled.into_spilled(&manager).unwrap();
        assert!(again.is_spilled());
        assert_eq!(zero, SpillWriteTally::default());
    }

    #[test]
    fn columnar_table_is_equivalent_to_memory_table() {
        let memory = Table::from_relation("t", relation(777), 4, Some("k"))
            .unwrap()
            .into_temporary();
        let expected_gather = memory.gather();
        let expected_parts: Vec<Vec<Tuple>> = memory.partitions().to_vec();
        let approx = memory.approx_bytes();

        let columnar = memory.into_columnar();
        assert!(columnar.is_columnar() && !columnar.is_spilled());
        assert_eq!(columnar.row_count(), 777);
        assert_eq!(
            columnar.approx_bytes(),
            approx,
            "accounting is backing-invariant"
        );
        assert_eq!(columnar.spilled_bytes(), 0);
        assert!(columnar.is_temporary() && columnar.is_partitioned_on("k"));
        assert_eq!(columnar.gather(), expected_gather);
        for (p, expected) in expected_parts.iter().enumerate() {
            assert_eq!(&columnar.partition_to_vec(p).unwrap(), expected);
            assert_eq!(columnar.partition_len(p), expected.len());
            let mut streamed = Vec::new();
            let pages = columnar
                .scan_pages(p, |rows| {
                    streamed.extend_from_slice(rows);
                    Ok(true)
                })
                .unwrap();
            assert_eq!(&streamed, expected);
            assert_eq!(pages, SpillReadTally::default(), "no spill traffic");
            let mut batched = Vec::new();
            columnar
                .scan_batches(p, |batch| {
                    assert!(batch.num_rows() <= rdo_common::batch_size());
                    batched.extend(batch.to_rows());
                    Ok(true)
                })
                .unwrap();
            assert_eq!(&batched, expected);
        }
        // Columnar → spilled streams without materializing, roundtrips.
        let manager =
            SpillManager::create(SpillConfig::default().with_budget(1).with_page_size(512))
                .unwrap();
        let (spilled, tally) = columnar.into_spilled(&manager).unwrap();
        assert!(spilled.is_spilled() && tally.pages > 0);
        assert_eq!(spilled.gather(), expected_gather);
        // Converting non-memory backings is a no-op.
        assert!(spilled.clone().into_columnar().is_spilled());
    }

    #[test]
    fn memory_scan_batches_chunks_at_batch_size() {
        let t = Table::from_relation("t", relation(100), 1, None).unwrap();
        let mut rows_seen = 0usize;
        let mut batches = 0usize;
        t.scan_batches(0, |batch| {
            assert!(batch.num_rows() <= rdo_common::batch_size());
            assert_eq!(batch.num_columns(), 2);
            rows_seen += batch.num_rows();
            batches += 1;
            Ok(true)
        })
        .unwrap();
        assert_eq!(rows_seen, 100);
        assert!(batches >= 1);
    }

    #[test]
    #[should_panic(expected = "columnar")]
    fn borrowing_partitions_of_a_columnar_table_panics() {
        let t = Table::from_relation("t", relation(10), 2, Some("k"))
            .unwrap()
            .into_columnar();
        let _ = t.partitions();
    }

    #[test]
    #[should_panic(expected = "spilled")]
    fn borrowing_partitions_of_a_spilled_table_panics() {
        let manager = SpillManager::create(SpillConfig::default().with_budget(1)).unwrap();
        let (spilled, _) = Table::from_relation("t", relation(10), 2, Some("k"))
            .unwrap()
            .into_spilled(&manager)
            .unwrap();
        let _ = spilled.partitions();
    }

    #[test]
    fn memory_scan_pages_reports_zero_tally() {
        let t = Table::from_relation("t", relation(30), 2, Some("k")).unwrap();
        let mut seen = 0usize;
        let tally = t
            .scan_pages(0, |rows| {
                seen += rows.len();
                Ok(true)
            })
            .unwrap();
        assert_eq!(seen, t.partition_len(0));
        assert_eq!(tally, SpillReadTally::default());
        assert_eq!(t.spilled_bytes(), 0);
    }
}
