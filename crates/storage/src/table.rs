//! Hash-partitioned in-memory tables.

use rdo_common::{unqualified, FieldRef, RdoError, Relation, Result, Schema, Tuple, Value};
use rdo_sketch::hll::hash_value;

/// A dataset hash-partitioned across the simulated cluster nodes.
///
/// Partitioning follows AsterixDB: base datasets are hash-partitioned on their
/// primary key; intermediate results are partitioned on the join key that
/// produced them, which lets a later join on the same key skip the re-partition
/// exchange (and its network cost).
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Schema,
    partitions: Vec<Vec<Tuple>>,
    /// Column (unqualified name) on which the table is hash-partitioned, if any.
    partition_key: Option<String>,
    /// True for materialized intermediate results (the paper's temporary files).
    temporary: bool,
}

impl Table {
    /// Builds a table by hash-partitioning `relation` on `partition_key` into
    /// `num_partitions` partitions. With no partition key rows are distributed
    /// round-robin (AsterixDB's behaviour for external data without a key).
    pub fn from_relation(
        name: impl Into<String>,
        relation: Relation,
        num_partitions: usize,
        partition_key: Option<&str>,
    ) -> Result<Self> {
        let name = name.into();
        let num_partitions = num_partitions.max(1);
        let schema = relation.schema().clone();
        let key_index = match partition_key {
            Some(key) => Some(resolve_key(&schema, key)?),
            None => None,
        };
        let mut partitions = vec![Vec::new(); num_partitions];
        for (i, row) in relation.into_rows().into_iter().enumerate() {
            let p = match key_index {
                Some(idx) => partition_of(row.value(idx), num_partitions),
                None => i % num_partitions,
            };
            partitions[p].push(row);
        }
        Ok(Self {
            name,
            schema,
            partitions,
            partition_key: partition_key.map(|k| unqualified(k).to_string()),
            temporary: false,
        })
    }

    /// Marks the table as a temporary (intermediate) result.
    pub fn into_temporary(mut self) -> Self {
        self.temporary = true;
        self
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Rows of one partition.
    pub fn partition(&self, index: usize) -> &[Tuple] {
        &self.partitions[index]
    }

    /// All partitions.
    pub fn partitions(&self) -> &[Vec<Tuple>] {
        &self.partitions
    }

    /// The column on which the table is hash-partitioned, if any.
    pub fn partition_key(&self) -> Option<&str> {
        self.partition_key.as_deref()
    }

    /// True if this is a materialized intermediate result.
    pub fn is_temporary(&self) -> bool {
        self.temporary
    }

    /// Total number of rows across partitions.
    pub fn row_count(&self) -> usize {
        self.partitions.iter().map(|p| p.len()).sum()
    }

    /// Approximate total size in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.partitions
            .iter()
            .flat_map(|p| p.iter())
            .map(|t| t.approx_bytes())
            .sum()
    }

    /// Materializes all partitions back into a single relation (coordinator-side
    /// gather; used by result delivery and tests).
    pub fn gather(&self) -> Relation {
        let mut rel = Relation::empty(self.schema.clone());
        for p in &self.partitions {
            for row in p {
                rel.push(row.clone());
            }
        }
        rel
    }

    /// True if the table is hash-partitioned on the given (possibly qualified)
    /// column, meaning a join on that column needs no re-partitioning of this
    /// side.
    pub fn is_partitioned_on(&self, column: &str) -> bool {
        match &self.partition_key {
            Some(key) => key == unqualified(column),
            None => false,
        }
    }
}

/// Maps a value to a partition id.
pub fn partition_of(value: &Value, num_partitions: usize) -> usize {
    (hash_value(value) % num_partitions as u64) as usize
}

fn resolve_key(schema: &Schema, key: &str) -> Result<usize> {
    if let Ok(field) = FieldRef::parse(key) {
        if let Ok(idx) = schema.resolve(&field) {
            return Ok(idx);
        }
    }
    schema
        .index_of_unqualified(unqualified(key))
        .map_err(|_| RdoError::UnknownField(key.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdo_common::DataType;

    fn relation(n: i64) -> Relation {
        let schema = Schema::for_dataset("t", &[("k", DataType::Int64), ("v", DataType::Utf8)]);
        let rows = (0..n)
            .map(|i| Tuple::new(vec![Value::Int64(i), Value::Utf8(format!("row{i}"))]))
            .collect();
        Relation::new(schema, rows).unwrap()
    }

    #[test]
    fn partitioning_preserves_all_rows() {
        let t = Table::from_relation("t", relation(1000), 8, Some("k")).unwrap();
        assert_eq!(t.num_partitions(), 8);
        assert_eq!(t.row_count(), 1000);
        assert_eq!(t.gather().len(), 1000);
    }

    #[test]
    fn same_key_lands_in_same_partition() {
        let t = Table::from_relation("t", relation(500), 4, Some("k")).unwrap();
        // Re-derive each row's partition and check it matches its location.
        for (p, rows) in t.partitions().iter().enumerate() {
            for row in rows {
                assert_eq!(partition_of(row.value(0), 4), p);
            }
        }
    }

    #[test]
    fn round_robin_without_key() {
        let t = Table::from_relation("t", relation(100), 4, None).unwrap();
        assert!(t.partition_key().is_none());
        let sizes: Vec<usize> = t.partitions().iter().map(|p| p.len()).collect();
        assert_eq!(sizes, vec![25, 25, 25, 25]);
    }

    #[test]
    fn partition_balance_is_reasonable() {
        let t = Table::from_relation("t", relation(10_000), 10, Some("k")).unwrap();
        let sizes: Vec<usize> = t.partitions().iter().map(|p| p.len()).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(min > 700 && max < 1300, "unbalanced partitions: {sizes:?}");
    }

    #[test]
    fn qualified_partition_key_accepted() {
        let t = Table::from_relation("t", relation(10), 2, Some("t.k")).unwrap();
        assert!(t.is_partitioned_on("k"));
        assert!(t.is_partitioned_on("t.k"));
        assert!(!t.is_partitioned_on("v"));
    }

    #[test]
    fn unknown_partition_key_errors() {
        assert!(Table::from_relation("t", relation(10), 2, Some("missing")).is_err());
    }

    #[test]
    fn single_partition_cluster() {
        let t = Table::from_relation("t", relation(10), 0, Some("k")).unwrap();
        assert_eq!(t.num_partitions(), 1);
        assert_eq!(t.partition(0).len(), 10);
    }

    #[test]
    fn temporary_flag() {
        let t = Table::from_relation("t", relation(1), 1, None).unwrap();
        assert!(!t.is_temporary());
        assert!(t.into_temporary().is_temporary());
    }

    #[test]
    fn approx_bytes_positive() {
        let t = Table::from_relation("t", relation(10), 2, Some("k")).unwrap();
        assert!(t.approx_bytes() > 0);
    }
}
