//! Schemas and field references.
//!
//! Fields are addressed by a qualified name `dataset.field`. When a join is
//! materialized into an intermediate dataset (the paper's `I_AB`), the
//! intermediate relation keeps the *original* qualified names of the surviving
//! columns so that query reconstruction (Section 5.4 of the paper) can simply
//! re-point join predicates at the new dataset.

use crate::error::{RdoError, Result};
use crate::value::DataType;
use std::fmt;

/// A reference to a field of a dataset, e.g. `lineitem.l_orderkey`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FieldRef {
    /// The dataset (or intermediate-result) name.
    pub dataset: String,
    /// The column name.
    pub field: String,
}

impl FieldRef {
    /// Creates a new field reference.
    pub fn new(dataset: impl Into<String>, field: impl Into<String>) -> Self {
        Self {
            dataset: dataset.into(),
            field: field.into(),
        }
    }

    /// Parses a `dataset.field` string.
    pub fn parse(qualified: &str) -> Result<Self> {
        match qualified.split_once('.') {
            Some((d, f)) if !d.is_empty() && !f.is_empty() => Ok(Self::new(d, f)),
            _ => Err(RdoError::UnknownField(qualified.to_string())),
        }
    }

    /// Returns the `dataset.field` form.
    pub fn qualified(&self) -> String {
        format!("{}.{}", self.dataset, self.field)
    }
}

impl fmt::Display for FieldRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.dataset, self.field)
    }
}

/// Strips the dataset qualifier from a (possibly qualified) column name:
/// `"lineitem.l_orderkey"` → `"l_orderkey"`, `"l_orderkey"` → itself.
///
/// This is *the* name-resolution rule partition-key matching relies on
/// (`Table::is_partitioned_on`, `PartitionedData::is_partitioned_on`, the
/// exchange operators); every layer must unqualify the same way, so they all
/// call this one helper.
pub fn unqualified(column: &str) -> &str {
    column.rsplit('.').next().unwrap_or(column)
}

/// A single column of a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Qualified name of the column.
    pub name: FieldRef,
    /// Column type.
    pub data_type: DataType,
}

impl Field {
    /// Creates a new field.
    pub fn new(name: FieldRef, data_type: DataType) -> Self {
        Self { name, data_type }
    }
}

/// An ordered list of fields.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Creates a schema from a list of fields.
    pub fn new(fields: Vec<Field>) -> Self {
        Self { fields }
    }

    /// Convenience constructor: all fields belong to `dataset`.
    pub fn for_dataset(dataset: &str, columns: &[(&str, DataType)]) -> Self {
        Self {
            fields: columns
                .iter()
                .map(|(name, dt)| Field::new(FieldRef::new(dataset, *name), *dt))
                .collect(),
        }
    }

    /// The fields of the schema, in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True if the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of a field by exact qualified reference.
    pub fn index_of(&self, field: &FieldRef) -> Result<usize> {
        self.fields
            .iter()
            .position(|f| &f.name == field)
            .ok_or_else(|| RdoError::UnknownField(field.qualified()))
    }

    /// Index of a field by unqualified column name. Errors if ambiguous or
    /// missing.
    pub fn index_of_unqualified(&self, column: &str) -> Result<usize> {
        let mut matches = self
            .fields
            .iter()
            .enumerate()
            .filter(|(_, f)| f.name.field == column);
        match (matches.next(), matches.next()) {
            (Some((i, _)), None) => Ok(i),
            (Some(_), Some(_)) => Err(RdoError::InvalidQuery(format!(
                "ambiguous column name: {column}"
            ))),
            _ => Err(RdoError::UnknownField(column.to_string())),
        }
    }

    /// Looks a field up by qualified reference, falling back to the unqualified
    /// column name. The fallback is what lets reconstructed queries address a
    /// column of `I_AB` via its original `B.c` reference.
    pub fn resolve(&self, field: &FieldRef) -> Result<usize> {
        if let Ok(i) = self.index_of(field) {
            return Ok(i);
        }
        self.index_of_unqualified(&field.field)
    }

    /// Returns the field at `index`.
    pub fn field(&self, index: usize) -> &Field {
        &self.fields[index]
    }

    /// True if the schema contains the field (qualified or by column name).
    pub fn contains(&self, field: &FieldRef) -> bool {
        self.resolve(field).is_ok()
    }

    /// Concatenates two schemas (used when joining two inputs).
    pub fn join(&self, other: &Schema) -> Schema {
        let mut fields = self.fields.clone();
        fields.extend(other.fields.iter().cloned());
        Schema::new(fields)
    }

    /// Builds a projected schema out of the given column indexes.
    pub fn project(&self, indexes: &[usize]) -> Schema {
        Schema::new(indexes.iter().map(|&i| self.fields[i].clone()).collect())
    }

    /// Renames every field to belong to `dataset`, keeping column names. Used
    /// when a materialized intermediate result is registered as a new dataset
    /// but consumers may still use original qualified names via [`Self::resolve`].
    pub fn with_dataset(&self, dataset: &str) -> Schema {
        Schema::new(
            self.fields
                .iter()
                .map(|f| Field::new(FieldRef::new(dataset, f.name.field.clone()), f.data_type))
                .collect(),
        )
    }

    /// Qualified names of all columns.
    pub fn qualified_names(&self) -> Vec<String> {
        self.fields.iter().map(|f| f.name.qualified()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::for_dataset(
            "lineitem",
            &[
                ("l_orderkey", DataType::Int64),
                ("l_partkey", DataType::Int64),
                ("l_price", DataType::Float64),
            ],
        )
    }

    #[test]
    fn field_ref_parse() {
        let f = FieldRef::parse("a.b").unwrap();
        assert_eq!(f, FieldRef::new("a", "b"));
        assert!(FieldRef::parse("ab").is_err());
        assert!(FieldRef::parse(".b").is_err());
        assert!(FieldRef::parse("a.").is_err());
    }

    #[test]
    fn qualified_display() {
        let f = FieldRef::new("orders", "o_orderkey");
        assert_eq!(f.qualified(), "orders.o_orderkey");
        assert_eq!(f.to_string(), "orders.o_orderkey");
    }

    #[test]
    fn index_of_qualified_and_unqualified() {
        let s = sample();
        assert_eq!(
            s.index_of(&FieldRef::new("lineitem", "l_partkey")).unwrap(),
            1
        );
        assert_eq!(s.index_of_unqualified("l_price").unwrap(), 2);
        assert!(s.index_of(&FieldRef::new("orders", "l_partkey")).is_err());
        assert!(s.index_of_unqualified("nope").is_err());
    }

    #[test]
    fn resolve_falls_back_to_unqualified() {
        let s = sample().with_dataset("I_ab");
        // The original qualified name no longer matches exactly but resolves by
        // column name.
        assert_eq!(s.resolve(&FieldRef::new("lineitem", "l_price")).unwrap(), 2);
        assert_eq!(s.resolve(&FieldRef::new("I_ab", "l_orderkey")).unwrap(), 0);
    }

    #[test]
    fn ambiguous_unqualified_lookup_errors() {
        let a = Schema::for_dataset("a", &[("k", DataType::Int64)]);
        let b = Schema::for_dataset("b", &[("k", DataType::Int64)]);
        let joined = a.join(&b);
        assert!(matches!(
            joined.index_of_unqualified("k"),
            Err(RdoError::InvalidQuery(_))
        ));
        // But exact qualified lookup still works.
        assert_eq!(joined.index_of(&FieldRef::new("b", "k")).unwrap(), 1);
    }

    #[test]
    fn join_concatenates() {
        let a = sample();
        let b = Schema::for_dataset("orders", &[("o_orderkey", DataType::Int64)]);
        let j = a.join(&b);
        assert_eq!(j.len(), 4);
        assert_eq!(j.field(3).name.qualified(), "orders.o_orderkey");
    }

    #[test]
    fn project_selects_columns() {
        let s = sample();
        let p = s.project(&[2, 0]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.field(0).name.field, "l_price");
        assert_eq!(p.field(1).name.field, "l_orderkey");
    }

    #[test]
    fn with_dataset_renames() {
        let s = sample().with_dataset("I_1");
        assert!(s.fields().iter().all(|f| f.name.dataset == "I_1"));
        assert_eq!(s.field(0).name.field, "l_orderkey");
    }

    #[test]
    fn qualified_names_list() {
        let s = sample();
        assert_eq!(
            s.qualified_names(),
            vec![
                "lineitem.l_orderkey".to_string(),
                "lineitem.l_partkey".to_string(),
                "lineitem.l_price".to_string()
            ]
        );
    }
}
