//! Shared warn-on-invalid environment-variable parsers.
//!
//! Every `RDO_*` knob reads through these helpers. A set-but-invalid value
//! silently falling back to a default would make a CI leg that exports the
//! variable test something else entirely (a spill-exercising job testing
//! nothing, a pinned worker count testing the machine default), so each parser
//! returns the warning to print instead of swallowing the mistake, and
//! [`read_env`] prints it loudly before keeping the default.

/// Parses a byte count / plain `u64` value. `fallback` names what happens when
/// the value is invalid (e.g. `"spilling stays disabled"`).
pub fn parse_env_u64(var: &str, raw: &str, fallback: &str) -> Result<u64, String> {
    raw.trim().parse::<u64>().map_err(|_| {
        format!(
            "warning: {var}={raw:?} is not a byte count \
             (plain integer expected); {fallback}"
        )
    })
}

/// Parses a count that must be at least 1 (worker counts and the like).
pub fn parse_env_positive_usize(var: &str, raw: &str, fallback: &str) -> Result<usize, String> {
    match raw.trim().parse::<usize>() {
        Ok(value) if value >= 1 => Ok(value),
        _ => Err(format!(
            "warning: {var}={raw:?} is not a count \
             (plain integer >= 1 expected); {fallback}"
        )),
    }
}

/// Parses a count where zero is meaningful (lookahead depths: 0 disables).
pub fn parse_env_usize(var: &str, raw: &str, fallback: &str) -> Result<usize, String> {
    raw.trim().parse::<usize>().map_err(|_| {
        format!(
            "warning: {var}={raw:?} is not a count \
             (plain integer >= 0 expected); {fallback}"
        )
    })
}

/// Parses an on/off switch: `1`/`true`/`on` and `0`/`false`/`off`
/// (case-insensitive).
pub fn parse_env_bool(var: &str, raw: &str, fallback: &str) -> Result<bool, String> {
    match raw.trim().to_ascii_lowercase().as_str() {
        "1" | "true" | "on" => Ok(true),
        "0" | "false" | "off" => Ok(false),
        _ => Err(format!(
            "warning: {var}={raw:?} is not a switch \
             (0/1, true/false or on/off expected); {fallback}"
        )),
    }
}

/// Applies one of the parsers above to an already-read value, emitting the
/// warning through [`crate::log`] and returning `None` on garbage (the caller
/// keeps its default). Split from [`read_env`] so configuration code can be
/// tested without mutating the process environment.
pub fn parse_or_warn<T>(
    var: &str,
    raw: &str,
    fallback: &str,
    parse: fn(&str, &str, &str) -> Result<T, String>,
) -> Option<T> {
    match parse(var, raw, fallback) {
        Ok(value) => Some(value),
        Err(warning) => {
            // The parser messages already start with "warning:"; strip the
            // prefix so the level tag is not doubled in the rendered line.
            let text = warning.strip_prefix("warning: ").unwrap_or(&warning);
            crate::warn!("{text}");
            None
        }
    }
}

/// Reads `var` from the environment and parses it with one of the helpers
/// above. Unset returns `None` silently; set-but-invalid prints the parser's
/// warning to stderr and returns `None` (the caller keeps its default).
pub fn read_env<T>(
    var: &str,
    fallback: &str,
    parse: fn(&str, &str, &str) -> Result<T, String>,
) -> Option<T> {
    let raw = std::env::var(var).ok()?;
    parse_or_warn(var, &raw, fallback, parse)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_values_parse_or_warn() {
        assert_eq!(parse_env_u64("RDO_X", "1048576", "off"), Ok(1_048_576));
        assert_eq!(parse_env_u64("RDO_X", " 42 ", "off"), Ok(42));
        for invalid in ["", "-1", "1MB", "1.5", "lots"] {
            let warning = parse_env_u64("RDO_X", invalid, "X stays disabled").expect_err(invalid);
            assert!(
                warning.contains("warning") && warning.contains("RDO_X"),
                "warning names the variable: {warning}"
            );
            assert!(warning.contains("X stays disabled"), "{warning}");
        }
    }

    #[test]
    fn positive_usize_rejects_zero() {
        assert_eq!(parse_env_positive_usize("RDO_W", "4", "default"), Ok(4));
        for invalid in ["0", "-2", "two", ""] {
            let warning = parse_env_positive_usize("RDO_W", invalid, "default").expect_err(invalid);
            assert!(warning.contains("RDO_W") && warning.contains("warning"));
        }
    }

    #[test]
    fn plain_usize_accepts_zero() {
        assert_eq!(parse_env_usize("RDO_P", "0", "default"), Ok(0));
        assert_eq!(parse_env_usize("RDO_P", "8", "default"), Ok(8));
        assert!(parse_env_usize("RDO_P", "-1", "default").is_err());
        assert!(parse_env_usize("RDO_P", "many", "default").is_err());
    }

    #[test]
    fn bool_switch_values_parse_or_warn() {
        for (raw, expected) in [
            ("1", true),
            ("true", true),
            ("ON", true),
            ("0", false),
            ("false", false),
            ("Off", false),
            (" 1 ", true),
        ] {
            assert_eq!(
                parse_env_bool("RDO_C", raw, "default"),
                Ok(expected),
                "{raw}"
            );
        }
        for invalid in ["", "yes", "2", "enabled"] {
            let warning =
                parse_env_bool("RDO_C", invalid, "compression stays on").expect_err(invalid);
            assert!(
                warning.contains("RDO_C") && warning.contains("compression stays on"),
                "{warning}"
            );
        }
    }

    #[test]
    fn read_env_returns_none_for_unset_variables() {
        // Read-only env access (no set_var: concurrent setenv/getenv is
        // undefined behaviour on glibc, so tests never mutate the
        // environment — the parse path is covered via parse_or_warn).
        assert_eq!(
            read_env("RDO_ENV_HELPER_TEST_UNSET", "default", parse_env_u64),
            None
        );
    }

    #[test]
    fn parse_or_warn_keeps_defaults_on_garbage() {
        assert_eq!(
            parse_or_warn("RDO_X", "7", "default", parse_env_u64),
            Some(7)
        );
        assert_eq!(
            parse_or_warn("RDO_X", "sideways", "default", parse_env_u64),
            None,
            "invalid values warn and keep the default"
        );
        assert_eq!(
            parse_or_warn("RDO_C", "on", "default", parse_env_bool),
            Some(true)
        );
    }
}
