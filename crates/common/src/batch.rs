//! Columnar batches: typed column arrays with null bitmaps.
//!
//! A [`Batch`] is the unit the execution kernels operate on since the
//! columnar redesign: each column holds one contiguous typed array
//! ([`Column`]) plus a validity bitmap ([`NullBitmap`]), in the style of
//! RisingLight's array executors. Kernels iterate a typed slice per column
//! instead of matching a [`Value`] enum per cell, which keeps the hot loops
//! (predicate evaluation, partition hashing, join key extraction)
//! monomorphic and SIMD-friendly.
//!
//! The row-oriented [`Tuple`] API stays as the *view/conversion layer at the
//! edges* — SQL binder output, result rendering, the spill tuple codec and
//! the wire frames — so [`Batch::from_rows`] / [`Batch::to_rows`] are exact
//! inverses: the roundtrip preserves every value bit-for-bit, including NaN
//! payloads, `-0.0`, empty strings and the `Int64` vs `Date` distinction
//! (they hash and compare alike but render differently).
//!
//! Column typing is *inferred from the data*, not declared: a column starts
//! typed after its first non-null value and is promoted to the row-fallback
//! [`Column::Mixed`] representation on the first value of a different
//! variant. The promotion rule is deterministic in the input rows, so every
//! executor (serial, parallel, distributed) building a batch from the same
//! rows builds the identical representation.

use crate::env::{parse_env_bool, parse_env_positive_usize, read_env};
use crate::tuple::{Relation, Tuple};
use crate::value::{DataType, Value};
use std::sync::OnceLock;

/// Environment variable selecting the number of rows per kernel batch.
pub const BATCH_SIZE_ENV: &str = "RDO_BATCH_SIZE";

/// Default rows per kernel batch when `RDO_BATCH_SIZE` is unset or invalid.
pub const DEFAULT_BATCH_SIZE: usize = 1024;

/// The process-wide kernel batch size: `RDO_BATCH_SIZE` (integer >= 1,
/// warn-on-invalid) or [`DEFAULT_BATCH_SIZE`]. Read once per process and
/// cached; results are batch-size invariant, so the knob only trades
/// per-batch overhead against cache footprint. Tests that sweep sizes use
/// the explicit `*_chunked` kernel variants instead of mutating the
/// environment.
pub fn batch_size() -> usize {
    static BATCH_SIZE: OnceLock<usize> = OnceLock::new();
    *BATCH_SIZE.get_or_init(|| {
        read_env(
            BATCH_SIZE_ENV,
            "the default batch size (1024) stays",
            parse_env_positive_usize,
        )
        .unwrap_or(DEFAULT_BATCH_SIZE)
    })
}

/// Environment variable selecting whether data at rest (resident intermediate
/// partitions, spill pages, wire frames) uses the columnar [`Batch`] layout.
pub const COLUMNAR_ENV: &str = "RDO_COLUMNAR";

/// The process-wide at-rest format default: `RDO_COLUMNAR` (0/1 switch,
/// warn-on-invalid) or `true`. Columnar at rest is an optimization, never a
/// semantic change — results, plans and logical metrics are identical either
/// way — so the knob exists for A/B measurement and as an escape hatch.
pub fn columnar_default() -> bool {
    static COLUMNAR: OnceLock<bool> = OnceLock::new();
    *COLUMNAR.get_or_init(|| {
        read_env(
            COLUMNAR_ENV,
            "the columnar at-rest format stays on",
            parse_env_bool,
        )
        .unwrap_or(true)
    })
}

/// A validity bitmap: one bit per row, set when the slot holds a (non-NULL)
/// value. Bits are packed into `u64` words; trailing bits of the last word
/// are always zero, so derived equality is exact.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NullBitmap {
    words: Vec<u64>,
    len: usize,
}

impl NullBitmap {
    /// Creates an empty bitmap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty bitmap with room for `rows` bits.
    pub fn with_capacity(rows: usize) -> Self {
        Self {
            words: Vec::with_capacity(rows.div_ceil(64)),
            len: 0,
        }
    }

    /// Appends one bit.
    pub fn push(&mut self, valid: bool) {
        let word = self.len / 64;
        if word == self.words.len() {
            self.words.push(0);
        }
        if valid {
            self.words[word] |= 1u64 << (self.len % 64);
        }
        self.len += 1;
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the bitmap has no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True if bit `i` is set (the slot holds a value).
    pub fn is_valid(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of set bits.
    pub fn count_valid(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if every slot holds a value (kernels use this to skip the
    /// per-row validity check entirely).
    pub fn all_valid(&self) -> bool {
        self.count_valid() == self.len
    }
}

/// One typed column array of a [`Batch`].
///
/// Null slots of the typed variants carry a default payload (`0`, `0.0`, the
/// empty string, `false`) behind an unset validity bit, so comparing two
/// columns built from the same rows is exact. [`Column::Mixed`] is the
/// row-fallback representation for columns whose values span more than one
/// variant (or are entirely NULL); kernels fall back to per-value dispatch
/// for it.
#[derive(Debug, Clone)]
pub enum Column {
    /// 64-bit integers.
    Int64 {
        /// Payloads (0 for null slots).
        values: Vec<i64>,
        /// Validity bitmap.
        validity: NullBitmap,
    },
    /// 64-bit floats. Equality compares IEEE-754 bit patterns, matching the
    /// engine's NaN-aware total order.
    Float64 {
        /// Payloads (0.0 for null slots).
        values: Vec<f64>,
        /// Validity bitmap.
        validity: NullBitmap,
    },
    /// UTF-8 strings in one contiguous buffer with `len + 1` offsets
    /// (null slots are zero-length).
    Utf8 {
        /// Byte offsets: string `i` is `bytes[offsets[i]..offsets[i + 1]]`.
        offsets: Vec<usize>,
        /// Concatenated string bytes.
        bytes: Vec<u8>,
        /// Validity bitmap.
        validity: NullBitmap,
    },
    /// Booleans.
    Bool {
        /// Payloads (false for null slots).
        values: Vec<bool>,
        /// Validity bitmap.
        validity: NullBitmap,
    },
    /// Dates as days since epoch. Kept distinct from [`Column::Int64`] so
    /// the roundtrip preserves the rendered form (`d5` vs `5`), even though
    /// the two hash and compare identically.
    Date {
        /// Payloads (0 for null slots).
        values: Vec<i64>,
        /// Validity bitmap.
        validity: NullBitmap,
    },
    /// Row-fallback representation: heterogeneous or all-NULL columns.
    Mixed {
        /// The values, one per row.
        values: Vec<Value>,
    },
}

impl Column {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int64 { values, .. } | Column::Date { values, .. } => values.len(),
            Column::Float64 { values, .. } => values.len(),
            Column::Utf8 { offsets, .. } => offsets.len() - 1,
            Column::Bool { values, .. } => values.len(),
            Column::Mixed { values } => values.len(),
        }
    }

    /// True if the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The declared element type of a typed column, `None` for
    /// [`Column::Mixed`].
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Column::Int64 { .. } => Some(DataType::Int64),
            Column::Float64 { .. } => Some(DataType::Float64),
            Column::Utf8 { .. } => Some(DataType::Utf8),
            Column::Bool { .. } => Some(DataType::Bool),
            Column::Date { .. } => Some(DataType::Date),
            Column::Mixed { .. } => None,
        }
    }

    /// True if slot `i` is NULL.
    pub fn is_null(&self, i: usize) -> bool {
        match self {
            Column::Int64 { validity, .. }
            | Column::Float64 { validity, .. }
            | Column::Utf8 { validity, .. }
            | Column::Bool { validity, .. }
            | Column::Date { validity, .. } => !validity.is_valid(i),
            Column::Mixed { values } => values[i].is_null(),
        }
    }

    /// Materializes slot `i` as a [`Value`] (the conversion edge back to the
    /// row world).
    pub fn value(&self, i: usize) -> Value {
        match self {
            Column::Int64 { values, validity } => {
                if validity.is_valid(i) {
                    Value::Int64(values[i])
                } else {
                    Value::Null
                }
            }
            Column::Float64 { values, validity } => {
                if validity.is_valid(i) {
                    Value::Float64(values[i])
                } else {
                    Value::Null
                }
            }
            Column::Utf8 {
                offsets,
                bytes,
                validity,
            } => {
                if validity.is_valid(i) {
                    let s = &bytes[offsets[i]..offsets[i + 1]];
                    Value::Utf8(String::from_utf8_lossy(s).into_owned())
                } else {
                    Value::Null
                }
            }
            Column::Bool { values, validity } => {
                if validity.is_valid(i) {
                    Value::Bool(values[i])
                } else {
                    Value::Null
                }
            }
            Column::Date { values, validity } => {
                if validity.is_valid(i) {
                    Value::Date(values[i])
                } else {
                    Value::Null
                }
            }
            Column::Mixed { values } => values[i].clone(),
        }
    }

    /// Borrowed string at slot `i` of a [`Column::Utf8`] (`None` for null
    /// slots or non-string columns). The zero-copy path string kernels use.
    pub fn str_at(&self, i: usize) -> Option<&str> {
        match self {
            Column::Utf8 {
                offsets,
                bytes,
                validity,
            } if validity.is_valid(i) => {
                std::str::from_utf8(&bytes[offsets[i]..offsets[i + 1]]).ok()
            }
            Column::Mixed { values } => values[i].as_str(),
            _ => None,
        }
    }

    /// Approximate byte size of slot `i`, exactly matching the row-side
    /// accounting ([`Tuple::approx_bytes`]): `16 + len` for a non-null
    /// string, `8` for everything else including NULL.
    pub fn approx_value_bytes(&self, i: usize) -> usize {
        match self {
            Column::Utf8 {
                offsets, validity, ..
            } if validity.is_valid(i) => 16 + (offsets[i + 1] - offsets[i]),
            Column::Mixed { values } => match &values[i] {
                Value::Utf8(s) => 16 + s.len(),
                _ => 8,
            },
            _ => 8,
        }
    }

    /// Total approximate bytes of the column (sums
    /// [`Column::approx_value_bytes`] over every slot).
    pub fn approx_bytes(&self) -> usize {
        match self {
            Column::Utf8 {
                offsets, validity, ..
            } => {
                let n = offsets.len() - 1;
                let mut total = 8 * n;
                for i in 0..n {
                    if validity.is_valid(i) {
                        // 16 + len instead of the 8 already counted.
                        total += 8 + (offsets[i + 1] - offsets[i]);
                    }
                }
                total
            }
            Column::Mixed { values } => values
                .iter()
                .map(|v| match v {
                    Value::Utf8(s) => 16 + s.len(),
                    _ => 8,
                })
                .sum(),
            _ => 8 * self.len(),
        }
    }

    /// Keeps the slots whose mask bit is true, preserving order.
    pub fn filter(&self, mask: &[bool]) -> Column {
        debug_assert_eq!(mask.len(), self.len());
        let kept: Vec<u32> = mask
            .iter()
            .enumerate()
            .filter(|(_, &keep)| keep)
            .map(|(i, _)| i as u32)
            .collect();
        self.take(&kept)
    }

    /// Gathers the slots at `indices`, in index order (join output
    /// assembly; indices may repeat).
    pub fn take(&self, indices: &[u32]) -> Column {
        match self {
            Column::Int64 { values, validity } => Column::Int64 {
                values: indices.iter().map(|&i| values[i as usize]).collect(),
                validity: take_bitmap(validity, indices),
            },
            Column::Float64 { values, validity } => Column::Float64 {
                values: indices.iter().map(|&i| values[i as usize]).collect(),
                validity: take_bitmap(validity, indices),
            },
            Column::Utf8 {
                offsets,
                bytes,
                validity,
            } => {
                let mut out_offsets = Vec::with_capacity(indices.len() + 1);
                let mut out_bytes = Vec::new();
                out_offsets.push(0);
                for &i in indices {
                    let i = i as usize;
                    out_bytes.extend_from_slice(&bytes[offsets[i]..offsets[i + 1]]);
                    out_offsets.push(out_bytes.len());
                }
                Column::Utf8 {
                    offsets: out_offsets,
                    bytes: out_bytes,
                    validity: take_bitmap(validity, indices),
                }
            }
            Column::Bool { values, validity } => Column::Bool {
                values: indices.iter().map(|&i| values[i as usize]).collect(),
                validity: take_bitmap(validity, indices),
            },
            Column::Date { values, validity } => Column::Date {
                values: indices.iter().map(|&i| values[i as usize]).collect(),
                validity: take_bitmap(validity, indices),
            },
            Column::Mixed { values } => Column::Mixed {
                values: indices
                    .iter()
                    .map(|&i| values[i as usize].clone())
                    .collect(),
            },
        }
    }
}

fn take_bitmap(validity: &NullBitmap, indices: &[u32]) -> NullBitmap {
    let mut out = NullBitmap::with_capacity(indices.len());
    for &i in indices {
        out.push(validity.is_valid(i as usize));
    }
    out
}

impl PartialEq for Column {
    fn eq(&self, other: &Self) -> bool {
        use Column::*;
        match (self, other) {
            (
                Int64 {
                    values: a,
                    validity: va,
                },
                Int64 {
                    values: b,
                    validity: vb,
                },
            )
            | (
                Date {
                    values: a,
                    validity: va,
                },
                Date {
                    values: b,
                    validity: vb,
                },
            ) => a == b && va == vb,
            (
                Float64 {
                    values: a,
                    validity: va,
                },
                Float64 {
                    values: b,
                    validity: vb,
                },
            ) => {
                // Bit-pattern comparison: NaN slots of equal payload compare
                // equal, matching the engine's total order on values.
                va == vb
                    && a.len() == b.len()
                    && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
            }
            (
                Utf8 {
                    offsets: oa,
                    bytes: ba,
                    validity: va,
                },
                Utf8 {
                    offsets: ob,
                    bytes: bb,
                    validity: vb,
                },
            ) => oa == ob && ba == bb && va == vb,
            (
                Bool {
                    values: a,
                    validity: va,
                },
                Bool {
                    values: b,
                    validity: vb,
                },
            ) => a == b && va == vb,
            (Mixed { values: a }, Mixed { values: b }) => a == b,
            _ => false,
        }
    }
}

/// Incremental column constructor used by [`Batch::from_rows`]: starts
/// untyped, adopts the variant of the first non-null value, and promotes the
/// whole column to [`Column::Mixed`] on the first mismatch. Deterministic in
/// the pushed values.
enum ColumnBuilder {
    /// Only NULLs so far.
    Untyped {
        nulls: usize,
    },
    Typed(Column),
}

impl ColumnBuilder {
    fn new() -> Self {
        ColumnBuilder::Untyped { nulls: 0 }
    }

    fn push(&mut self, value: &Value) {
        match self {
            ColumnBuilder::Untyped { nulls } => {
                if value.is_null() {
                    *nulls += 1;
                    return;
                }
                let mut column = typed_column_with_nulls(value, *nulls);
                push_typed(&mut column, value);
                *self = ColumnBuilder::Typed(column);
            }
            ColumnBuilder::Typed(column) => {
                let accepts = match column.data_type() {
                    // Already promoted: Mixed accepts every value.
                    None => true,
                    Some(dt) => value.is_null() || value.data_type() == dt,
                };
                if accepts {
                    push_typed(column, value);
                } else {
                    // Promote: materialize what we have and fall back to rows.
                    let mut values: Vec<Value> =
                        (0..column.len()).map(|i| column.value(i)).collect();
                    values.push(value.clone());
                    *self = ColumnBuilder::Typed(Column::Mixed { values });
                }
            }
        }
    }

    fn finish(self) -> Column {
        match self {
            // An all-NULL (or empty) column has no variant to adopt: the
            // row-fallback representation roundtrips it exactly.
            ColumnBuilder::Untyped { nulls } => Column::Mixed {
                values: vec![Value::Null; nulls],
            },
            ColumnBuilder::Typed(column) => column,
        }
    }
}

/// A fresh typed column matching `value`'s variant, pre-filled with `nulls`
/// null slots.
fn typed_column_with_nulls(value: &Value, nulls: usize) -> Column {
    let mut validity = NullBitmap::with_capacity(nulls + 1);
    for _ in 0..nulls {
        validity.push(false);
    }
    match value {
        Value::Int64(_) => Column::Int64 {
            values: vec![0; nulls],
            validity,
        },
        Value::Float64(_) => Column::Float64 {
            values: vec![0.0; nulls],
            validity,
        },
        Value::Utf8(_) => Column::Utf8 {
            offsets: vec![0; nulls + 1],
            bytes: Vec::new(),
            validity,
        },
        Value::Bool(_) => Column::Bool {
            values: vec![false; nulls],
            validity,
        },
        Value::Date(_) => Column::Date {
            values: vec![0; nulls],
            validity,
        },
        Value::Null => unreachable!("caller handles NULL"),
    }
}

/// Appends `value` (NULL or the column's own variant) to a typed column.
fn push_typed(column: &mut Column, value: &Value) {
    match (column, value) {
        (Column::Int64 { values, validity }, Value::Int64(v))
        | (Column::Date { values, validity }, Value::Date(v)) => {
            values.push(*v);
            validity.push(true);
        }
        (Column::Float64 { values, validity }, Value::Float64(v)) => {
            values.push(*v);
            validity.push(true);
        }
        (
            Column::Utf8 {
                offsets,
                bytes,
                validity,
            },
            Value::Utf8(s),
        ) => {
            bytes.extend_from_slice(s.as_bytes());
            offsets.push(bytes.len());
            validity.push(true);
        }
        (Column::Bool { values, validity }, Value::Bool(v)) => {
            values.push(*v);
            validity.push(true);
        }
        (Column::Int64 { values, validity }, Value::Null)
        | (Column::Date { values, validity }, Value::Null) => {
            values.push(0);
            validity.push(false);
        }
        (Column::Float64 { values, validity }, Value::Null) => {
            values.push(0.0);
            validity.push(false);
        }
        (
            Column::Utf8 {
                offsets, validity, ..
            },
            Value::Null,
        ) => {
            offsets.push(*offsets.last().unwrap());
            validity.push(false);
        }
        (Column::Bool { values, validity }, Value::Null) => {
            values.push(false);
            validity.push(false);
        }
        (Column::Mixed { values }, v) => values.push(v.clone()),
        _ => unreachable!("caller checked the variant"),
    }
}

/// A batch of rows in columnar form: one [`Column`] per schema position,
/// all of the same length.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    columns: Vec<Column>,
    rows: usize,
}

impl Batch {
    /// An empty batch with `width` (empty) columns.
    pub fn empty(width: usize) -> Self {
        Self {
            columns: (0..width)
                .map(|_| Column::Mixed { values: Vec::new() })
                .collect(),
            rows: 0,
        }
    }

    /// Builds a batch from rows (the conversion edge from the tuple world).
    /// Every row must have exactly `width` values. Column typing is inferred
    /// deterministically — see the module docs.
    pub fn from_rows(width: usize, rows: &[Tuple]) -> Self {
        let mut builders: Vec<ColumnBuilder> = (0..width).map(|_| ColumnBuilder::new()).collect();
        for row in rows {
            debug_assert_eq!(row.len(), width, "row arity must match the batch width");
            for (builder, value) in builders.iter_mut().zip(row.values()) {
                builder.push(value);
            }
        }
        Self {
            columns: builders.into_iter().map(ColumnBuilder::finish).collect(),
            rows: rows.len(),
        }
    }

    /// Builds a batch from a relation's rows.
    pub fn from_relation(relation: &Relation) -> Self {
        Self::from_rows(relation.schema().len(), relation.rows())
    }

    /// Assembles a batch directly from columns (the decode edge of the
    /// columnar storage/spill/wire codecs). Every column must have the same
    /// length; that length becomes the row count.
    pub fn from_columns(columns: Vec<Column>) -> crate::Result<Self> {
        let rows = columns.first().map_or(0, Column::len);
        if columns.iter().any(|c| c.len() != rows) {
            return Err(crate::RdoError::Execution(
                "batch columns have mismatched lengths".to_string(),
            ));
        }
        Ok(Self { columns, rows })
    }

    /// Materializes every row (the conversion edge back to the tuple world).
    /// Exact inverse of [`Batch::from_rows`].
    pub fn to_rows(&self) -> Vec<Tuple> {
        let mut out = Vec::with_capacity(self.rows);
        self.extend_rows_into(&mut out);
        out
    }

    /// Appends every row to `out` (streaming variant of [`Batch::to_rows`]).
    pub fn extend_rows_into(&self, out: &mut Vec<Tuple>) {
        out.reserve(self.rows);
        for r in 0..self.rows {
            out.push(self.row(r));
        }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// True if the batch has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// The columns.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Column at position `c`.
    pub fn column(&self, c: usize) -> &Column {
        &self.columns[c]
    }

    /// Materializes the value at row `r`, column `c`.
    pub fn value(&self, r: usize, c: usize) -> Value {
        self.columns[c].value(r)
    }

    /// Materializes row `r` as a [`Tuple`].
    pub fn row(&self, r: usize) -> Tuple {
        Tuple::new(self.columns.iter().map(|c| c.value(r)).collect())
    }

    /// Approximate byte size of row `r`, identical to
    /// [`Tuple::approx_bytes`] of the materialized row.
    pub fn row_bytes(&self, r: usize) -> usize {
        self.columns.iter().map(|c| c.approx_value_bytes(r)).sum()
    }

    /// Total approximate bytes of the batch.
    pub fn approx_bytes(&self) -> usize {
        self.columns.iter().map(|c| c.approx_bytes()).sum()
    }

    /// Keeps the rows whose mask bit is true, preserving order.
    pub fn filter(&self, mask: &[bool]) -> Batch {
        debug_assert_eq!(mask.len(), self.rows);
        let kept = mask.iter().filter(|&&k| k).count();
        Batch {
            columns: self.columns.iter().map(|c| c.filter(mask)).collect(),
            rows: kept,
        }
    }

    /// Gathers the rows at `indices`, in index order (indices may repeat).
    pub fn take(&self, indices: &[u32]) -> Batch {
        Batch {
            columns: self.columns.iter().map(|c| c.take(indices)).collect(),
            rows: indices.len(),
        }
    }

    /// Keeps the columns at `indexes`, in that order (projection).
    pub fn project(&self, indexes: &[usize]) -> Batch {
        Batch {
            columns: indexes.iter().map(|&i| self.columns[i].clone()).collect(),
            rows: self.rows,
        }
    }

    /// Concatenates the columns of two batches with the same row count
    /// (join output: `probe ++ build`).
    pub fn hstack(&self, other: &Batch) -> Batch {
        debug_assert_eq!(self.rows, other.rows, "hstack needs equal row counts");
        let mut columns = self.columns.clone();
        columns.extend(other.columns.iter().cloned());
        Batch {
            columns,
            rows: self.rows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixed_rows() -> Vec<Tuple> {
        vec![
            Tuple::new(vec![
                Value::Int64(1),
                Value::Float64(1.5),
                Value::from("alpha"),
                Value::Bool(true),
                Value::Date(10),
                Value::Null,
            ]),
            Tuple::new(vec![
                Value::Null,
                Value::Float64(f64::NAN),
                Value::Null,
                Value::Null,
                Value::Date(20),
                Value::Null,
            ]),
            Tuple::new(vec![
                Value::Int64(-7),
                Value::Float64(-0.0),
                Value::from(""),
                Value::Bool(false),
                Value::Null,
                Value::Null,
            ]),
        ]
    }

    #[test]
    fn roundtrip_is_exact() {
        let rows = mixed_rows();
        let batch = Batch::from_rows(6, &rows);
        assert_eq!(batch.num_rows(), 3);
        assert_eq!(batch.num_columns(), 6);
        let back = batch.to_rows();
        assert_eq!(back.len(), 3);
        for (a, b) in rows.iter().zip(&back) {
            for (x, y) in a.values().iter().zip(b.values()) {
                // Bit-exact for floats (Value::eq already treats NaN == NaN,
                // but -0.0 != 0.0 under the total order; check both paths).
                match (x, y) {
                    (Value::Float64(f), Value::Float64(g)) => {
                        assert_eq!(f.to_bits(), g.to_bits())
                    }
                    _ => assert_eq!(x, y),
                }
            }
        }
    }

    #[test]
    fn typed_columns_are_inferred() {
        let batch = Batch::from_rows(6, &mixed_rows());
        assert_eq!(batch.column(0).data_type(), Some(DataType::Int64));
        assert_eq!(batch.column(1).data_type(), Some(DataType::Float64));
        assert_eq!(batch.column(2).data_type(), Some(DataType::Utf8));
        assert_eq!(batch.column(3).data_type(), Some(DataType::Bool));
        assert_eq!(batch.column(4).data_type(), Some(DataType::Date));
        assert_eq!(batch.column(5).data_type(), None, "all-NULL stays Mixed");
    }

    #[test]
    fn heterogeneous_columns_promote_to_mixed() {
        let rows = vec![
            Tuple::new(vec![Value::Int64(1)]),
            Tuple::new(vec![Value::from("two")]),
            Tuple::new(vec![Value::Int64(3)]),
        ];
        let batch = Batch::from_rows(1, &rows);
        assert_eq!(batch.column(0).data_type(), None);
        assert_eq!(batch.to_rows(), rows);
    }

    #[test]
    fn int_and_date_stay_distinct() {
        let rows = vec![Tuple::new(vec![Value::Int64(5), Value::Date(5)])];
        let batch = Batch::from_rows(2, &rows);
        assert_eq!(batch.column(0).data_type(), Some(DataType::Int64));
        assert_eq!(batch.column(1).data_type(), Some(DataType::Date));
        assert_eq!(batch.to_rows()[0].value(1).to_string(), "d5");
    }

    #[test]
    fn byte_accounting_matches_tuples() {
        let rows = mixed_rows();
        let batch = Batch::from_rows(6, &rows);
        for (r, row) in rows.iter().enumerate() {
            assert_eq!(batch.row_bytes(r), row.approx_bytes());
        }
        assert_eq!(
            batch.approx_bytes(),
            rows.iter().map(Tuple::approx_bytes).sum::<usize>()
        );
    }

    #[test]
    fn filter_take_project_hstack() {
        let rows = mixed_rows();
        let batch = Batch::from_rows(6, &rows);
        let filtered = batch.filter(&[true, false, true]);
        assert_eq!(filtered.to_rows(), vec![rows[0].clone(), rows[2].clone()]);
        let taken = batch.take(&[2, 0, 0]);
        assert_eq!(
            taken.to_rows(),
            vec![rows[2].clone(), rows[0].clone(), rows[0].clone()]
        );
        let projected = batch.project(&[4, 0]);
        assert_eq!(projected.to_rows()[0], rows[0].project(&[4, 0]));
        let wide = batch.project(&[0]).hstack(&batch.project(&[2]));
        assert_eq!(wide.num_columns(), 2);
        assert_eq!(wide.to_rows()[0], rows[0].project(&[0, 2]));
    }

    #[test]
    fn empty_batches_roundtrip() {
        let batch = Batch::from_rows(3, &[]);
        assert!(batch.is_empty());
        assert_eq!(batch.to_rows(), Vec::<Tuple>::new());
        assert_eq!(batch.approx_bytes(), 0);
        let empty = Batch::empty(2);
        assert_eq!(empty.num_columns(), 2);
        assert!(empty.filter(&[]).is_empty());
        assert!(empty.take(&[]).is_empty());
    }

    #[test]
    fn bitmap_packs_across_words() {
        let mut bm = NullBitmap::new();
        for i in 0..130 {
            bm.push(i % 3 == 0);
        }
        assert_eq!(bm.len(), 130);
        assert_eq!(bm.count_valid(), (0..130).filter(|i| i % 3 == 0).count());
        assert!(bm.is_valid(129) && !bm.is_valid(128));
        assert!(!bm.all_valid());
    }

    #[test]
    fn str_at_borrows_from_the_buffer() {
        let rows = vec![
            Tuple::new(vec![Value::from("hello")]),
            Tuple::new(vec![Value::Null]),
        ];
        let batch = Batch::from_rows(1, &rows);
        assert_eq!(batch.column(0).str_at(0), Some("hello"));
        assert_eq!(batch.column(0).str_at(1), None);
    }

    #[test]
    fn batch_equality_is_bit_exact_for_floats() {
        let rows = vec![Tuple::new(vec![Value::Float64(f64::NAN)])];
        let a = Batch::from_rows(1, &rows);
        let b = Batch::from_rows(1, &rows);
        assert_eq!(a, b, "identical NaN payloads compare equal");
    }
}
