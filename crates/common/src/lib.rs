//! Common data-model types shared by every crate of the reproduction.
//!
//! The paper's substrate (AsterixDB) stores semi-structured ADM records; for the
//! reproduction we use a flat relational model — every dataset is a relation with
//! a [`Schema`] and rows of [`Value`]s — which is sufficient for the join-centric
//! workloads evaluated in the paper (TPC-H Q8/Q9, TPC-DS Q17/Q50).

pub mod batch;
pub mod env;
pub mod error;
pub mod log;
pub mod schema;
pub mod tuple;
pub mod value;

pub use batch::{
    batch_size, columnar_default, Batch, Column, NullBitmap, BATCH_SIZE_ENV, COLUMNAR_ENV,
    DEFAULT_BATCH_SIZE,
};
pub use error::{RdoError, Result};
pub use schema::{unqualified, Field, FieldRef, Schema};
pub use tuple::{Relation, Tuple};
pub use value::{DataType, Value};
