//! Minimal leveled logging shared by every crate.
//!
//! The engine used to scatter bare `eprintln!` calls for its warnings (invalid
//! env knobs, transport fallbacks, worker-side errors). They all route through
//! here now: one [`emit`] entry point behind the [`crate::warn!`] /
//! [`crate::info!`] / [`crate::debug!`] macros, filtered by the `RDO_LOG`
//! environment variable (`error`, `warn`, `info` — the default — or `debug`)
//! and capturable in tests without touching the process environment.
//!
//! The filter level is read once per process. Tests never call `set_var`
//! (concurrent `setenv`/`getenv` is undefined behaviour on glibc); instead
//! [`capture`] installs an in-memory sink with its own level override and
//! returns everything emitted inside the closure.

use std::fmt;
use std::sync::{Mutex, OnceLock};

/// Severity of one log line, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable or data-affecting problems.
    Error,
    /// Something is misconfigured or degraded but execution continues.
    Warn,
    /// High-level progress messages (default filter level).
    Info,
    /// Verbose diagnostics for debugging runs.
    Debug,
}

impl Level {
    /// Parses a level name (case-insensitive). Used for `RDO_LOG`.
    pub fn parse(raw: &str) -> Option<Level> {
        match raw.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }

    fn tag(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

struct CaptureState {
    lines: Vec<String>,
    level: Level,
}

/// Active in-memory sink, if a [`capture`] is in flight.
static CAPTURE: Mutex<Option<CaptureState>> = Mutex::new(None);
/// Serializes concurrent captures so parallel tests do not interleave.
static CAPTURE_TURN: Mutex<()> = Mutex::new(());

fn env_level() -> Level {
    static LEVEL: OnceLock<Level> = OnceLock::new();
    *LEVEL.get_or_init(|| match std::env::var("RDO_LOG") {
        Ok(raw) => Level::parse(&raw).unwrap_or_else(|| {
            // Self-hosted warning: an invalid filter must not pass silently,
            // mirroring the warn-on-invalid convention of `crate::env`.
            eprintln!("warning: RDO_LOG={raw:?} is not a level (error/warn/info/debug expected); the filter stays at info");
            Level::Info
        }),
        Err(_) => Level::Info,
    })
}

/// Whether a line at `level` would currently be emitted.
pub fn enabled(level: Level) -> bool {
    if let Some(state) = CAPTURE.lock().unwrap_or_else(|p| p.into_inner()).as_ref() {
        return level <= state.level;
    }
    level <= env_level()
}

/// Formats and emits one log line (to the active capture buffer, or stderr).
/// Callers go through the [`crate::warn!`]-family macros, which pass their
/// `module_path!` as the source tag.
pub fn emit(level: Level, module: &str, args: fmt::Arguments<'_>) {
    let mut capture = CAPTURE.lock().unwrap_or_else(|p| p.into_inner());
    let filter = match capture.as_ref() {
        Some(state) => state.level,
        None => env_level(),
    };
    if level > filter {
        return;
    }
    let line = format!("[{} {module}] {args}", level.tag());
    match capture.as_mut() {
        Some(state) => state.lines.push(line),
        None => eprintln!("{line}"),
    }
}

/// Runs `f` with log output redirected to an in-memory buffer filtered at
/// `level`, returning `f`'s result and the captured lines. Captures are
/// serialized process-wide, so concurrent tests see only their own lines.
pub fn capture<R>(level: Level, f: impl FnOnce() -> R) -> (R, Vec<String>) {
    let _turn = CAPTURE_TURN.lock().unwrap_or_else(|p| p.into_inner());
    *CAPTURE.lock().unwrap_or_else(|p| p.into_inner()) = Some(CaptureState {
        lines: Vec::new(),
        level,
    });
    let result = f();
    let state = CAPTURE
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .take()
        .expect("capture state installed above");
    (result, state.lines)
}

/// Emits a [`Level::Error`] line through the shared log filter.
#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => {
        $crate::log::emit($crate::log::Level::Error, module_path!(), format_args!($($arg)*))
    };
}

/// Emits a [`Level::Warn`] line through the shared log filter.
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {
        $crate::log::emit($crate::log::Level::Warn, module_path!(), format_args!($($arg)*))
    };
}

/// Emits a [`Level::Info`] line through the shared log filter.
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        $crate::log::emit($crate::log::Level::Info, module_path!(), format_args!($($arg)*))
    };
}

/// Emits a [`Level::Debug`] line (filtered out unless `RDO_LOG=debug`).
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => {
        $crate::log::emit($crate::log::Level::Debug, module_path!(), format_args!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_parse_case_insensitively() {
        assert_eq!(Level::parse("WARN"), Some(Level::Warn));
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse(" debug "), Some(Level::Debug));
        assert_eq!(Level::parse("Info"), Some(Level::Info));
        assert_eq!(Level::parse("error"), Some(Level::Error));
        assert_eq!(Level::parse("verbose"), None);
        assert_eq!(Level::parse(""), None);
    }

    #[test]
    fn levels_order_by_severity() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
    }

    #[test]
    fn capture_collects_lines_at_or_above_the_filter() {
        let ((), lines) = capture(Level::Info, || {
            crate::warn!("knob {} looks wrong", "RDO_X");
            crate::info!("progress: {} rows", 42);
            crate::debug!("this is filtered out");
        });
        assert_eq!(lines.len(), 2, "{lines:?}");
        assert!(lines[0].contains("[warn ") && lines[0].contains("RDO_X looks wrong"));
        assert!(lines[1].contains("[info ") && lines[1].contains("42 rows"));
    }

    #[test]
    fn capture_at_debug_sees_debug_lines() {
        let ((), lines) = capture(Level::Debug, || {
            crate::debug!("verbose detail");
        });
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("[debug ") && lines[0].contains("verbose detail"));
    }

    #[test]
    fn capture_returns_the_closure_result() {
        let (value, lines) = capture(Level::Warn, || {
            crate::error!("bad");
            crate::info!("suppressed at warn");
            7
        });
        assert_eq!(value, 7);
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("[error "));
    }

    #[test]
    fn lines_carry_the_emitting_module_path() {
        let ((), lines) = capture(Level::Warn, || {
            crate::warn!("tagged");
        });
        assert!(
            lines[0].contains("rdo_common::log::tests"),
            "module path names the call site: {lines:?}"
        );
    }

    #[test]
    fn env_parser_warnings_are_capturable() {
        let (value, lines) = capture(Level::Warn, || {
            crate::env::parse_or_warn(
                "RDO_T",
                "garbage",
                "default kept",
                crate::env::parse_env_u64,
            )
        });
        assert_eq!(value, None);
        assert_eq!(lines.len(), 1);
        assert!(
            lines[0].contains("RDO_T") && lines[0].contains("default kept"),
            "{lines:?}"
        );
    }
}
