//! Error type shared across the workspace.

use std::fmt;

/// Result alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, RdoError>;

/// Errors raised by the storage, execution and planning layers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RdoError {
    /// A schema lookup failed (unknown field or dataset).
    UnknownField(String),
    /// A dataset was not found in the catalog.
    UnknownDataset(String),
    /// A value had an unexpected type for the requested operation.
    TypeMismatch { expected: String, found: String },
    /// The query specification is malformed (e.g. disconnected join graph).
    InvalidQuery(String),
    /// The planner could not produce a plan.
    Planning(String),
    /// The executor hit an unrecoverable condition.
    Execution(String),
    /// Statistics were requested for a field that has none.
    MissingStatistics(String),
    /// A disk I/O operation of the spill subsystem failed. Carries the
    /// rendered `std::io::Error` so the error type stays `Clone + PartialEq`.
    Io(String),
}

impl fmt::Display for RdoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RdoError::UnknownField(name) => write!(f, "unknown field: {name}"),
            RdoError::UnknownDataset(name) => write!(f, "unknown dataset: {name}"),
            RdoError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            RdoError::InvalidQuery(msg) => write!(f, "invalid query: {msg}"),
            RdoError::Planning(msg) => write!(f, "planning error: {msg}"),
            RdoError::Execution(msg) => write!(f, "execution error: {msg}"),
            RdoError::MissingStatistics(msg) => write!(f, "missing statistics: {msg}"),
            RdoError::Io(msg) => write!(f, "io error: {msg}"),
        }
    }
}

impl std::error::Error for RdoError {}

impl From<std::io::Error> for RdoError {
    fn from(e: std::io::Error) -> Self {
        RdoError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_unknown_field() {
        let e = RdoError::UnknownField("l_orderkey".into());
        assert_eq!(e.to_string(), "unknown field: l_orderkey");
    }

    #[test]
    fn display_type_mismatch() {
        let e = RdoError::TypeMismatch {
            expected: "Int64".into(),
            found: "Utf8".into(),
        };
        assert!(e.to_string().contains("expected Int64"));
        assert!(e.to_string().contains("found Utf8"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&RdoError::Planning("x".into()));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            RdoError::UnknownDataset("a".into()),
            RdoError::UnknownDataset("a".into())
        );
        assert_ne!(
            RdoError::UnknownDataset("a".into()),
            RdoError::UnknownDataset("b".into())
        );
    }
}
