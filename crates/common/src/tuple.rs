//! Tuples and in-memory relations.

use crate::error::{RdoError, Result};
use crate::schema::{FieldRef, Schema};
use crate::value::Value;

/// A row of values, positionally aligned with a [`Schema`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    /// Creates a tuple from values.
    pub fn new(values: Vec<Value>) -> Self {
        Self { values }
    }

    /// The values of the tuple.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the tuple has no columns.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Value at position `index`.
    pub fn value(&self, index: usize) -> &Value {
        &self.values[index]
    }

    /// Concatenates two tuples (join output).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut values = Vec::with_capacity(self.values.len() + other.values.len());
        values.extend(self.values.iter().cloned());
        values.extend(other.values.iter().cloned());
        Tuple::new(values)
    }

    /// Projects the tuple onto the given column indexes.
    pub fn project(&self, indexes: &[usize]) -> Tuple {
        Tuple::new(indexes.iter().map(|&i| self.values[i].clone()).collect())
    }

    /// Rough size of the tuple in bytes, used by the cost model to charge I/O
    /// and network proportionally to data width, like the paper's byte-based
    /// accounting of intermediate results.
    pub fn approx_bytes(&self) -> usize {
        self.values
            .iter()
            .map(|v| match v {
                Value::Utf8(s) => 16 + s.len(),
                _ => 8,
            })
            .sum()
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

/// A schema plus rows: the unit exchanged between operators and materialized at
/// re-optimization points.
#[derive(Debug, Clone, PartialEq)]
pub struct Relation {
    schema: Schema,
    rows: Vec<Tuple>,
}

impl Relation {
    /// Creates a relation. Every row must match the schema arity.
    pub fn new(schema: Schema, rows: Vec<Tuple>) -> Result<Self> {
        if let Some(bad) = rows.iter().find(|r| r.len() != schema.len()) {
            return Err(RdoError::Execution(format!(
                "row arity {} does not match schema arity {}",
                bad.len(),
                schema.len()
            )));
        }
        Ok(Self { schema, rows })
    }

    /// Creates an empty relation with the given schema.
    pub fn empty(schema: Schema) -> Self {
        Self {
            schema,
            rows: Vec::new(),
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The rows.
    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends a row (no arity check; used by operators that already validated).
    pub fn push(&mut self, row: Tuple) {
        self.rows.push(row);
    }

    /// Consumes the relation and returns its rows.
    pub fn into_rows(self) -> Vec<Tuple> {
        self.rows
    }

    /// Extracts the column `field` as a vector of values.
    pub fn column(&self, field: &FieldRef) -> Result<Vec<Value>> {
        let idx = self.schema.resolve(field)?;
        Ok(self.rows.iter().map(|r| r.value(idx).clone()).collect())
    }

    /// Total approximate bytes of the relation.
    pub fn approx_bytes(&self) -> usize {
        self.rows.iter().map(|r| r.approx_bytes()).sum()
    }

    /// Sorts rows (used by tests comparing result multisets deterministically).
    pub fn sorted(mut self) -> Relation {
        self.rows.sort();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    fn schema() -> Schema {
        Schema::for_dataset("t", &[("a", DataType::Int64), ("b", DataType::Utf8)])
    }

    fn row(a: i64, b: &str) -> Tuple {
        Tuple::new(vec![Value::Int64(a), Value::from(b)])
    }

    #[test]
    fn relation_checks_arity() {
        let ok = Relation::new(schema(), vec![row(1, "x")]);
        assert!(ok.is_ok());
        let bad = Relation::new(schema(), vec![Tuple::new(vec![Value::Int64(1)])]);
        assert!(bad.is_err());
    }

    #[test]
    fn tuple_concat_and_project() {
        let t = row(1, "x").concat(&row(2, "y"));
        assert_eq!(t.len(), 4);
        let p = t.project(&[3, 0]);
        assert_eq!(p.values(), &[Value::from("y"), Value::Int64(1)]);
    }

    #[test]
    fn column_extraction() {
        let rel = Relation::new(schema(), vec![row(1, "x"), row(2, "y")]).unwrap();
        let col = rel.column(&FieldRef::new("t", "a")).unwrap();
        assert_eq!(col, vec![Value::Int64(1), Value::Int64(2)]);
        assert!(rel.column(&FieldRef::new("t", "zzz")).is_err());
    }

    #[test]
    fn approx_bytes_counts_strings() {
        let t = row(1, "hello");
        assert_eq!(t.approx_bytes(), 8 + 16 + 5);
        let rel = Relation::new(schema(), vec![row(1, "hello"), row(2, "")]).unwrap();
        assert_eq!(rel.approx_bytes(), (8 + 21) + (8 + 16));
    }

    #[test]
    fn sorted_orders_rows() {
        let rel = Relation::new(schema(), vec![row(2, "y"), row(1, "x")]).unwrap();
        let sorted = rel.sorted();
        assert_eq!(sorted.rows()[0], row(1, "x"));
    }

    #[test]
    fn empty_relation() {
        let rel = Relation::empty(schema());
        assert!(rel.is_empty());
        assert_eq!(rel.len(), 0);
        assert_eq!(rel.approx_bytes(), 0);
    }

    #[test]
    fn push_appends() {
        let mut rel = Relation::empty(schema());
        rel.push(row(5, "z"));
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.into_rows(), vec![row(5, "z")]);
    }
}
