//! Scalar values and their types.
//!
//! Values are the unit of data flowing through the simulated engine. They need a
//! total order (for quantile sketches and sort-based operations) and a stable
//! hash (for hash partitioning, hash joins and HyperLogLog), so floats are
//! compared and hashed through their IEEE-754 bit pattern with a NaN-last total
//! order.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// The type of a [`Value`]. Mirrors the subset of AsterixDB/ADM types exercised
/// by the paper's workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer (keys, quantities, date surrogate keys).
    Int64,
    /// 64-bit IEEE float (prices, discounts).
    Float64,
    /// UTF-8 string (names, types, brands, flags).
    Utf8,
    /// Boolean.
    Bool,
    /// Date stored as days since epoch.
    Date,
    /// The null type (only produced by missing data).
    Null,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int64 => "Int64",
            DataType::Float64 => "Float64",
            DataType::Utf8 => "Utf8",
            DataType::Bool => "Bool",
            DataType::Date => "Date",
            DataType::Null => "Null",
        };
        f.write_str(s)
    }
}

/// A scalar value.
#[derive(Debug, Clone)]
pub enum Value {
    /// 64-bit signed integer.
    Int64(i64),
    /// 64-bit float.
    Float64(f64),
    /// UTF-8 string.
    Utf8(String),
    /// Boolean.
    Bool(bool),
    /// Date as days since epoch.
    Date(i64),
    /// SQL NULL.
    Null,
}

impl Value {
    /// Returns the [`DataType`] of this value.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Int64(_) => DataType::Int64,
            Value::Float64(_) => DataType::Float64,
            Value::Utf8(_) => DataType::Utf8,
            Value::Bool(_) => DataType::Bool,
            Value::Date(_) => DataType::Date,
            Value::Null => DataType::Null,
        }
    }

    /// True if the value is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Returns the integer payload if the value is an `Int64` or `Date`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int64(v) | Value::Date(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the float payload, widening integers.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float64(v) => Some(*v),
            Value::Int64(v) | Value::Date(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Returns the string payload if the value is `Utf8`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Utf8(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Returns the boolean payload if the value is `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// A numeric rank used by sketches and histograms: integers and dates map to
    /// themselves, floats to their value, strings to a prefix-based rank, bools
    /// to 0/1 and nulls to `f64::NEG_INFINITY` (so they sort first, matching the
    /// comparison order below).
    pub fn numeric_rank(&self) -> f64 {
        match self {
            Value::Int64(v) | Value::Date(v) => *v as f64,
            Value::Float64(v) => *v,
            Value::Bool(b) => {
                if *b {
                    1.0
                } else {
                    0.0
                }
            }
            Value::Utf8(s) => string_rank(s),
            Value::Null => f64::NEG_INFINITY,
        }
    }

    /// Variant index used to order values of different types consistently.
    fn type_order(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int64(_) => 2,
            Value::Float64(_) => 2, // numerics compare against each other
            Value::Date(_) => 3,
            Value::Utf8(_) => 4,
        }
    }
}

/// Maps a string to a float preserving lexicographic order on the first eight
/// bytes. Used only for histogram bucketing of string columns.
fn string_rank(s: &str) -> f64 {
    let mut bytes = [0u8; 8];
    for (i, b) in s.as_bytes().iter().take(8).enumerate() {
        bytes[i] = *b;
    }
    u64::from_be_bytes(bytes) as f64
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Int64(a), Int64(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            (Utf8(a), Utf8(b)) => a.cmp(b),
            (Float64(a), Float64(b)) => total_f64_cmp(*a, *b),
            (Int64(a), Float64(b)) => total_f64_cmp(*a as f64, *b),
            (Float64(a), Int64(b)) => total_f64_cmp(*a, *b as f64),
            (Int64(a), Date(b)) | (Date(a), Int64(b)) => a.cmp(b),
            _ => self.type_order().cmp(&other.type_order()),
        }
    }
}

fn total_f64_cmp(a: f64, b: f64) -> Ordering {
    a.total_cmp(&b)
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            // Int64 and Date hash identically so that key/foreign-key joins on a
            // date surrogate key behave the same whichever type the generator used.
            Value::Int64(v) | Value::Date(v) => {
                state.write_u8(1);
                v.hash(state);
            }
            Value::Float64(v) => {
                state.write_u8(2);
                v.to_bits().hash(state);
            }
            Value::Utf8(s) => {
                state.write_u8(3);
                s.hash(state);
            }
            Value::Bool(b) => {
                state.write_u8(4);
                b.hash(state);
            }
            Value::Null => state.write_u8(0),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int64(v) => write!(f, "{v}"),
            Value::Float64(v) => write!(f, "{v}"),
            Value::Utf8(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Date(v) => write!(f, "d{v}"),
            Value::Null => f.write_str("NULL"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float64(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Utf8(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Utf8(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn data_type_roundtrip() {
        assert_eq!(Value::Int64(3).data_type(), DataType::Int64);
        assert_eq!(Value::Float64(1.5).data_type(), DataType::Float64);
        assert_eq!(Value::from("x").data_type(), DataType::Utf8);
        assert_eq!(Value::Bool(true).data_type(), DataType::Bool);
        assert_eq!(Value::Date(10).data_type(), DataType::Date);
        assert_eq!(Value::Null.data_type(), DataType::Null);
    }

    #[test]
    fn int_and_date_hash_identically() {
        assert_eq!(hash_of(&Value::Int64(42)), hash_of(&Value::Date(42)));
    }

    #[test]
    fn equal_values_hash_equal() {
        assert_eq!(hash_of(&Value::from("abc")), hash_of(&Value::from("abc")));
        assert_eq!(hash_of(&Value::Float64(2.5)), hash_of(&Value::Float64(2.5)));
    }

    #[test]
    fn ordering_within_types() {
        assert!(Value::Int64(1) < Value::Int64(2));
        assert!(Value::from("a") < Value::from("b"));
        assert!(Value::Float64(1.0) < Value::Float64(1.5));
        assert!(Value::Date(5) < Value::Date(9));
    }

    #[test]
    fn mixed_numeric_ordering() {
        assert!(Value::Int64(1) < Value::Float64(1.5));
        assert!(Value::Float64(0.5) < Value::Int64(1));
        assert_eq!(Value::Int64(2), Value::Float64(2.0));
    }

    #[test]
    fn null_sorts_first() {
        assert!(Value::Null < Value::Int64(i64::MIN));
        assert!(Value::Null < Value::from(""));
    }

    #[test]
    fn numeric_rank_monotone_for_strings() {
        assert!(Value::from("apple").numeric_rank() < Value::from("banana").numeric_rank());
        assert!(Value::from("a").numeric_rank() < Value::from("ab").numeric_rank());
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int64(7).as_i64(), Some(7));
        assert_eq!(Value::Date(7).as_i64(), Some(7));
        assert_eq!(Value::Float64(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Int64(2).as_f64(), Some(2.0));
        assert_eq!(Value::from("s").as_str(), Some("s"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Null.as_i64(), None);
        assert!(Value::Null.is_null());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Int64(3).to_string(), "3");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Date(4).to_string(), "d4");
    }
}
