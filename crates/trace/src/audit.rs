//! The optimizer audit trail: estimate-vs-actual cardinality records and
//! re-optimization decision explanations.
//!
//! The paper's central claim is that *measured* cardinalities beat estimated
//! ones — this module records both sides of that comparison so a run can show
//! the estimation error that justified (or should have vetoed) every
//! re-optimization. The driver appends an [`EstimateRecord`] per executed
//! stage (what the planner estimated at plan time, what the sink actually
//! materialized) and a [`ReoptDecision`] per re-optimization point (the stage
//! whose actual just corrected a wrong estimate, the join the refreshed
//! statistics picked, the runner-up it rejected, and the cost advantage it
//! believed).
//!
//! Everything in an [`AuditLog`] derives from deterministic, coordinator-side
//! quantities — sketch-based estimates and materialized row counts — so the
//! log is bit-identical across worker counts and transports, the same
//! invariance law the results and metrics already obey.

/// Q-error of one estimate: `max(est/act, act/est)`, the standard symmetric
/// cardinality-error measure (≥ 1, with 1 = exact). Zero sides are clamped to
/// one row so an empty-result stage yields a finite error.
pub fn q_error(estimated_rows: f64, actual_rows: u64) -> f64 {
    let est = estimated_rows.max(1.0);
    let act = (actual_rows as f64).max(1.0);
    (est / act).max(act / est)
}

/// One stage's estimate-vs-actual cardinality record.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimateRecord {
    /// Which stage produced the record (`pushdown:<alias>`, `reopt#<k>`,
    /// `final`).
    pub stage: String,
    /// Signature of the physical plan the stage executed.
    pub operator: String,
    /// The planner's cardinality estimate at plan time. `None` when the stage
    /// was planned by a component that reports no single-number estimate
    /// (the budget-exhausted static final plan).
    pub estimated_rows: Option<f64>,
    /// Rows the stage actually produced (materialized or returned).
    pub actual_rows: u64,
}

impl EstimateRecord {
    /// The record's Q-error, when an estimate exists.
    pub fn q_error(&self) -> Option<f64> {
        self.estimated_rows
            .map(|est| q_error(est, self.actual_rows))
    }
}

/// One re-optimization decision, recorded at the moment the planner picked
/// the next join with freshly measured statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ReoptDecision {
    /// Re-optimization point number (1-based).
    pub point: u32,
    /// The estimate the execution just corrected — the most recent stage's
    /// [`EstimateRecord`], i.e. the wrong number this decision reacts to.
    /// `None` at the first point of a run without a push-down stage.
    pub trigger: Option<EstimateRecord>,
    /// Signature of the join the planner chose (the *new* plan fragment).
    pub chosen: String,
    /// Estimated result cardinality of the chosen join.
    pub chosen_cardinality: f64,
    /// Score under which the chosen join won.
    pub chosen_score: f64,
    /// Signature of the best alternative join order/algorithm the planner
    /// rejected, with its score. `None` when only one join was plannable.
    pub runner_up: Option<(String, f64)>,
}

impl ReoptDecision {
    /// Q-error of the triggering estimate, if there was one.
    pub fn trigger_q_error(&self) -> Option<f64> {
        self.trigger.as_ref().and_then(|t| t.q_error())
    }

    /// The cost advantage the re-optimizer believed it gained by picking
    /// `chosen` over the runner-up (non-negative by construction).
    pub fn believed_delta(&self) -> Option<f64> {
        self.runner_up
            .as_ref()
            .map(|(_, score)| (score - self.chosen_score).max(0.0))
    }
}

/// The full audit trail of one dynamic execution: per-stage estimate records
/// plus one decision explanation per re-optimization point.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AuditLog {
    /// Estimate-vs-actual records, in stage execution order.
    pub estimates: Vec<EstimateRecord>,
    /// Re-optimization decisions, in point order.
    pub decisions: Vec<ReoptDecision>,
}

impl AuditLog {
    /// Whether the log recorded anything (static strategies record nothing).
    pub fn is_empty(&self) -> bool {
        self.estimates.is_empty() && self.decisions.is_empty()
    }

    /// The largest Q-error over all estimate records, or 1.0 when no record
    /// carries an estimate — the run-level estimation-accuracy number the
    /// bench gate tracks.
    pub fn max_q_error(&self) -> f64 {
        self.estimates
            .iter()
            .filter_map(|e| e.q_error())
            .fold(1.0, f64::max)
    }

    /// Renders the estimate table and the decision explanations. The output
    /// uses fixed decimal formatting only, so two logs with equal contents
    /// render bit-identically (the invariance suites compare this string).
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.estimates.is_empty() {
            out.push_str("no audit records\n");
            return out;
        }
        out.push_str("estimate audit (per stage):\n");
        out.push_str(&format!(
            "  {:<16} {:>14} {:>12} {:>9}  operator\n",
            "stage", "estimated", "actual", "q-error"
        ));
        for record in &self.estimates {
            let estimated = match record.estimated_rows {
                Some(est) => format!("{est:.1}"),
                None => "-".to_string(),
            };
            let q = match record.q_error() {
                Some(q) => format!("{q:.2}"),
                None => "-".to_string(),
            };
            out.push_str(&format!(
                "  {:<16} {:>14} {:>12} {:>9}  {}\n",
                record.stage, estimated, record.actual_rows, q, record.operator
            ));
        }
        if !self.decisions.is_empty() {
            out.push_str("re-optimization decisions:\n");
            for decision in &self.decisions {
                out.push_str(&format!("  point {}:", decision.point));
                match &decision.trigger {
                    Some(trigger) => {
                        let est = match trigger.estimated_rows {
                            Some(est) => format!("{est:.1}"),
                            None => "-".to_string(),
                        };
                        let q = match trigger.q_error() {
                            Some(q) => format!("{q:.2}"),
                            None => "-".to_string(),
                        };
                        out.push_str(&format!(
                            " after {} (estimated {est}, actual {}, q-error {q})\n",
                            trigger.stage, trigger.actual_rows
                        ));
                    }
                    None => out.push_str(" no prior stage measured\n"),
                }
                out.push_str(&format!(
                    "    chose {} [score {:.1}, est {:.1} rows]",
                    decision.chosen, decision.chosen_score, decision.chosen_cardinality
                ));
                match &decision.runner_up {
                    Some((plan, score)) => out.push_str(&format!(
                        "; rejected {} [score {:.1}]; believed advantage {:.1}\n",
                        plan,
                        score,
                        decision.believed_delta().unwrap_or(0.0)
                    )),
                    None => out.push_str("; no alternative join was plannable\n"),
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(stage: &str, est: Option<f64>, act: u64) -> EstimateRecord {
        EstimateRecord {
            stage: stage.to_string(),
            operator: format!("σ({stage})"),
            estimated_rows: est,
            actual_rows: act,
        }
    }

    #[test]
    fn q_error_is_symmetric_and_clamped() {
        assert_eq!(q_error(100.0, 100), 1.0);
        assert_eq!(q_error(200.0, 100), 2.0);
        assert_eq!(q_error(50.0, 100), 2.0);
        // Zero actuals clamp to one row instead of dividing by zero.
        assert_eq!(q_error(8.0, 0), 8.0);
        assert_eq!(q_error(0.0, 4), 4.0);
    }

    #[test]
    fn max_q_error_skips_estimate_free_records() {
        let log = AuditLog {
            estimates: vec![
                record("pushdown:a", Some(10.0), 40),
                record("final", None, 7),
            ],
            decisions: vec![],
        };
        assert_eq!(log.max_q_error(), 4.0);
        assert!(!log.is_empty());
        assert_eq!(AuditLog::default().max_q_error(), 1.0);
    }

    #[test]
    fn render_shows_estimates_decisions_and_dashes() {
        let log = AuditLog {
            estimates: vec![
                record("pushdown:a", Some(10.0), 40),
                record("reopt#1", Some(1000.0), 900),
                record("final", None, 7),
            ],
            decisions: vec![ReoptDecision {
                point: 1,
                trigger: Some(record("pushdown:a", Some(10.0), 40)),
                chosen: "(a ⋈b b)".to_string(),
                chosen_cardinality: 1000.0,
                chosen_score: 1000.0,
                runner_up: Some(("(a ⋈ c)".to_string(), 5000.0)),
            }],
        };
        let text = log.render();
        assert!(text.contains("estimate audit (per stage):"), "{text}");
        assert!(text.contains("pushdown:a"), "{text}");
        assert!(text.contains("4.00"), "q-error column: {text}");
        assert!(text.contains(" - "), "dash for missing estimate: {text}");
        assert!(
            text.contains("after pushdown:a (estimated 10.0, actual 40, q-error 4.00)"),
            "{text}"
        );
        assert!(
            text.contains("chose (a ⋈b b) [score 1000.0, est 1000.0 rows]"),
            "{text}"
        );
        assert!(
            text.contains("rejected (a ⋈ c) [score 5000.0]; believed advantage 4000.0"),
            "{text}"
        );
        // Deterministic: rendering twice is bit-identical.
        assert_eq!(text, log.render());
    }

    #[test]
    fn decision_without_alternatives_renders() {
        let d = ReoptDecision {
            point: 2,
            trigger: None,
            chosen: "(x ⋈ y)".to_string(),
            chosen_cardinality: 5.0,
            chosen_score: 5.0,
            runner_up: None,
        };
        assert_eq!(d.believed_delta(), None);
        assert_eq!(d.trigger_q_error(), None);
        let log = AuditLog {
            estimates: vec![record("reopt#2", Some(5.0), 5)],
            decisions: vec![d],
        };
        let text = log.render();
        assert!(text.contains("no prior stage measured"), "{text}");
        assert!(text.contains("no alternative join was plannable"), "{text}");
    }
}
