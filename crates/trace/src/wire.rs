//! Binary codec for shipping a trace across the wire.
//!
//! Remote workers trace into their own collectors; when a request finishes,
//! the worker encodes its spans + metrics with [`encode_update`] and appends
//! the blob to the tally frame it already sends. The coordinator decodes with
//! [`decode_update`] and merges via `TraceHandle::adopt`. The format is
//! little-endian and length-prefixed throughout, matching the net crate's
//! frame conventions; a decoder that reads past the end returns an error
//! instead of panicking, so a truncated or foreign payload degrades to "no
//! remote trace" rather than killing the exchange.

use crate::{AttrValue, Histogram, SpanRecord, HISTOGRAM_BOUNDS};
use rdo_common::{RdoError, Result};
use std::collections::BTreeMap;

/// A decoded remote trace: spans plus counter/gauge/histogram maps, ready for
/// adoption.
#[derive(Debug, Clone, Default)]
pub struct Update {
    /// Spans in the remote collector's id/time space.
    pub spans: Vec<SpanRecord>,
    /// Sum-merged counters.
    pub counters: BTreeMap<String, u64>,
    /// Max-merged gauges.
    pub gauges: BTreeMap<String, u64>,
    /// Bucket-wise sum-merged latency histograms.
    pub histograms: BTreeMap<String, Histogram>,
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Encodes spans and metric maps into one self-delimiting blob.
pub fn encode_update(
    spans: &[SpanRecord],
    counters: &BTreeMap<String, u64>,
    gauges: &BTreeMap<String, u64>,
    histograms: &BTreeMap<String, Histogram>,
) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32(&mut out, spans.len() as u32);
    for span in spans {
        put_u64(&mut out, span.id);
        put_u64(&mut out, span.parent);
        put_u64(&mut out, span.thread);
        put_u64(&mut out, span.start_ns);
        put_u64(&mut out, span.duration_ns);
        put_str(&mut out, &span.name);
        put_u32(&mut out, span.attrs.len() as u32);
        for (key, value) in &span.attrs {
            put_str(&mut out, key);
            match value {
                AttrValue::U64(v) => {
                    out.push(0);
                    put_u64(&mut out, *v);
                }
                AttrValue::Str(s) => {
                    out.push(1);
                    put_str(&mut out, s);
                }
            }
        }
    }
    for map in [counters, gauges] {
        put_u32(&mut out, map.len() as u32);
        for (name, value) in map {
            put_str(&mut out, name);
            put_u64(&mut out, *value);
        }
    }
    put_u32(&mut out, histograms.len() as u32);
    for (name, histogram) in histograms {
        put_str(&mut out, name);
        put_u64(&mut out, histogram.sum_ns());
        put_u64(&mut out, histogram.count());
        // The bucket count travels with the payload so a decoder with
        // different boundaries rejects the histogram instead of mis-binning.
        put_u32(&mut out, histogram.bucket_counts().len() as u32);
        for bucket in histogram.bucket_counts() {
            put_u64(&mut out, *bucket);
        }
    }
    out
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| RdoError::Execution("truncated trace update payload".to_string()))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn string(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        String::from_utf8(self.take(len)?.to_vec())
            .map_err(|_| RdoError::Execution("trace update string is not UTF-8".to_string()))
    }
}

/// Decodes a blob produced by [`encode_update`].
pub fn decode_update(buf: &[u8]) -> Result<Update> {
    let mut r = Reader { buf, pos: 0 };
    let span_count = r.u32()? as usize;
    let mut spans = Vec::with_capacity(span_count.min(1 << 16));
    for _ in 0..span_count {
        let id = r.u64()?;
        let parent = r.u64()?;
        let thread = r.u64()?;
        let start_ns = r.u64()?;
        let duration_ns = r.u64()?;
        let name = r.string()?;
        let attr_count = r.u32()? as usize;
        let mut attrs = Vec::with_capacity(attr_count.min(64));
        for _ in 0..attr_count {
            let key = r.string()?;
            let value = match r.u8()? {
                0 => AttrValue::U64(r.u64()?),
                1 => AttrValue::Str(r.string()?),
                kind => {
                    return Err(RdoError::Execution(format!(
                        "unknown trace attribute kind {kind}"
                    )))
                }
            };
            attrs.push((key, value));
        }
        spans.push(SpanRecord {
            id,
            parent,
            name,
            thread,
            start_ns,
            duration_ns,
            attrs,
        });
    }
    let mut maps = [BTreeMap::new(), BTreeMap::new()];
    for map in &mut maps {
        let entries = r.u32()? as usize;
        for _ in 0..entries {
            let name = r.string()?;
            let value = r.u64()?;
            map.insert(name, value);
        }
    }
    let [counters, gauges] = maps;
    let mut histograms = BTreeMap::new();
    let entries = r.u32()? as usize;
    for _ in 0..entries {
        let name = r.string()?;
        let sum = r.u64()?;
        let count = r.u64()?;
        let buckets = r.u32()? as usize;
        if buckets != HISTOGRAM_BOUNDS + 1 {
            return Err(RdoError::Execution(format!(
                "trace histogram has {buckets} buckets, expected {}",
                HISTOGRAM_BOUNDS + 1
            )));
        }
        let mut counts = Vec::with_capacity(buckets);
        for _ in 0..buckets {
            counts.push(r.u64()?);
        }
        let histogram = Histogram::from_parts(&counts, sum, count)
            .ok_or_else(|| RdoError::Execution("trace histogram bucket mismatch".to_string()))?;
        histograms.insert(name, histogram);
    }
    Ok(Update {
        spans,
        counters,
        gauges,
        histograms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spans() -> Vec<SpanRecord> {
        vec![
            SpanRecord {
                id: 1,
                parent: 0,
                name: "serve.repartition".to_string(),
                thread: 2,
                start_ns: 100,
                duration_ns: 5_000,
                attrs: vec![
                    ("frames".to_string(), AttrValue::U64(7)),
                    (
                        "peer".to_string(),
                        AttrValue::Str("127.0.0.1:9".to_string()),
                    ),
                ],
            },
            SpanRecord {
                id: 2,
                parent: 1,
                name: "serve.route".to_string(),
                thread: 2,
                start_ns: 150,
                duration_ns: 4_000,
                attrs: Vec::new(),
            },
        ]
    }

    fn sample_histograms() -> BTreeMap<String, Histogram> {
        let mut h = Histogram::new();
        h.observe(900);
        h.observe(5_000);
        h.observe(u64::MAX / 2);
        BTreeMap::from([("serve.repartition".to_string(), h)])
    }

    #[test]
    fn roundtrips_spans_and_metrics() {
        let spans = sample_spans();
        let counters = BTreeMap::from([("net.frames".to_string(), 9u64)]);
        let gauges = BTreeMap::from([("net.peak".to_string(), 321u64)]);
        let histograms = sample_histograms();
        let blob = encode_update(&spans, &counters, &gauges, &histograms);
        let update = decode_update(&blob).unwrap();
        assert_eq!(update.spans, spans);
        assert_eq!(update.counters, counters);
        assert_eq!(update.gauges, gauges);
        assert_eq!(update.histograms, histograms);
    }

    #[test]
    fn empty_update_is_tiny_and_roundtrips() {
        let blob = encode_update(&[], &BTreeMap::new(), &BTreeMap::new(), &BTreeMap::new());
        assert_eq!(blob.len(), 16, "four zero counts");
        let update = decode_update(&blob).unwrap();
        assert!(update.spans.is_empty() && update.counters.is_empty() && update.gauges.is_empty());
        assert!(update.histograms.is_empty());
    }

    #[test]
    fn truncation_errors_instead_of_panicking() {
        let blob = encode_update(
            &sample_spans(),
            &BTreeMap::new(),
            &BTreeMap::new(),
            &sample_histograms(),
        );
        for cut in [0, 3, 10, blob.len() / 2, blob.len() - 1] {
            assert!(decode_update(&blob[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn foreign_histogram_bucket_count_is_rejected() {
        let mut blob = encode_update(
            &[],
            &BTreeMap::new(),
            &BTreeMap::new(),
            &sample_histograms(),
        );
        // The bucket-count u32 sits right after name + sum + count.
        let name_len = "serve.repartition".len();
        let pos = 16 + 4 + name_len + 8 + 8;
        blob[pos] = (HISTOGRAM_BOUNDS + 2) as u8;
        assert!(decode_update(&blob).is_err());
    }

    #[test]
    fn unknown_attr_kind_is_rejected() {
        let spans = sample_spans();
        let mut blob = encode_update(&spans, &BTreeMap::new(), &BTreeMap::new(), &BTreeMap::new());
        // Flip the first attribute kind byte (0 → 9): find it right after the
        // first attr key "frames".
        let key_pos = blob
            .windows(6)
            .position(|w| w == b"frames")
            .expect("key present");
        blob[key_pos + 6] = 9;
        assert!(decode_update(&blob).is_err());
    }
}
