//! The live scrape endpoint: a tiny dependency-free HTTP listener serving
//! `/metrics` (Prometheus text exposition merged across every in-flight
//! collector) and `/progress` (per-query rows-produced / pages-scanned /
//! current-stage JSON), so long distributed runs can be watched while they
//! execute.
//!
//! The listener is plain `std::net::TcpListener` — one short-lived thread, a
//! minimal request-line parser, `Connection: close` responses — because the
//! offline build bakes in no HTTP dependency and none is needed for a scrape
//! protocol this small. Queries register their [`TraceHandle`]s in a global
//! registry of weak references; a scrape upgrades whatever is still alive and
//! merges counters (sum), gauges (max) and histograms (bucket-wise sum) under
//! the same laws in-process and cross-process accumulation already use, so
//! the exposition is consistent mid-run. Worker-side counters arrive through
//! the tally frames ([`crate::wire`]) and are merged into the coordinator
//! collectors before a scrape ever sees them.
//!
//! `RDO_METRICS_ADDR=host:port` starts the process-global listener on first
//! driver use (see [`ensure_started_from_env`]); embedders can run their own
//! with [`MetricsServer::bind`].

use crate::{Collector, Histogram, Profile, TraceHandle};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};
use std::time::Duration;

/// The `RDO_METRICS_ADDR` knob: when set to a non-empty `host:port`, the
/// first driver execution starts the process-global scrape listener there.
pub fn metrics_addr() -> Option<String> {
    rdo_common::env::read_env(
        "RDO_METRICS_ADDR",
        "metrics endpoint stays disabled",
        |_, raw, _| Ok(raw.trim().to_string()),
    )
    .filter(|addr| !addr.is_empty())
}

/// One registered query: its name and a weak reference to its collector, so
/// a finished query whose handles were dropped falls out of the scrape
/// output instead of pinning memory.
struct Registered {
    query: String,
    collector: Weak<Collector>,
}

fn registry() -> &'static Mutex<Vec<Registered>> {
    static REGISTRY: OnceLock<Mutex<Vec<Registered>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Registers a query's trace for the live endpoints. Re-registering the same
/// collector (a re-run under the same handle) is de-duplicated; disabled
/// handles register nothing. Dead entries are pruned on every call and every
/// scrape.
pub fn register_query(query: &str, handle: &TraceHandle) {
    let Some(collector) = &handle.inner else {
        return;
    };
    let mut entries = registry().lock().unwrap_or_else(|p| p.into_inner());
    entries.retain(|e| e.collector.strong_count() > 0);
    if entries
        .iter()
        .any(|e| e.collector.as_ptr() == Arc::as_ptr(collector))
    {
        return;
    }
    entries.push(Registered {
        query: query.to_string(),
        collector: Arc::downgrade(collector),
    });
}

/// Snapshot of the live registry: `(query name, collector)` pairs.
fn live_collectors() -> Vec<(String, Arc<Collector>)> {
    let mut entries = registry().lock().unwrap_or_else(|p| p.into_inner());
    entries.retain(|e| e.collector.strong_count() > 0);
    entries
        .iter()
        .filter_map(|e| e.collector.upgrade().map(|c| (e.query.clone(), c)))
        .collect()
}

/// The `/metrics` body: every live collector's counters, gauges and
/// histograms merged under their respective laws (sum / max / bucket-wise
/// sum) and rendered as one Prometheus text exposition.
pub fn metrics_body() -> String {
    let mut counters: BTreeMap<String, u64> = BTreeMap::new();
    let mut gauges: BTreeMap<String, u64> = BTreeMap::new();
    let mut histograms: BTreeMap<String, Histogram> = BTreeMap::new();
    for (_, collector) in live_collectors() {
        let handle = TraceHandle {
            inner: Some(collector),
        };
        for (name, value) in handle.counters() {
            *counters.entry(name).or_insert(0) += value;
        }
        for (name, value) in handle.gauges() {
            let entry = gauges.entry(name).or_insert(0);
            *entry = (*entry).max(value);
        }
        for (name, histogram) in handle.histograms() {
            histograms.entry(name).or_default().merge(&histogram);
        }
    }
    Profile::new(Vec::new(), counters, gauges)
        .with_histograms(histograms)
        .metrics_text()
}

/// The `/progress` body: one JSON object per live query with its current
/// stage note, progress counters and span count.
pub fn progress_body() -> String {
    let mut out = String::from("{\"queries\":[");
    for (index, (query, collector)) in live_collectors().into_iter().enumerate() {
        let handle = TraceHandle {
            inner: Some(collector),
        };
        if index > 0 {
            out.push(',');
        }
        let counters = handle.counters();
        let stage = handle.notes().get("stage").cloned().unwrap_or_default();
        out.push_str(&format!(
            "{{\"query\":{},\"stage\":{},\"rows_produced\":{},\"pages_scanned\":{},\"spans\":{}}}",
            crate::profile::json_string(&query),
            crate::profile::json_string(&stage),
            counters.get("progress.rows_produced").copied().unwrap_or(0),
            counters.get("progress.pages_scanned").copied().unwrap_or(0),
            handle.spans().len(),
        ));
    }
    out.push_str("]}");
    out
}

/// A running scrape listener. Stops (and joins its thread) on drop.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:9464`; port 0 picks a free port) and
    /// starts serving `/metrics` and `/progress` on a background thread.
    pub fn bind(addr: &str) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("rdo-metrics".to_string())
            .spawn(move || serve_loop(listener, stop_flag))?;
        Ok(Self {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

fn serve_loop(listener: TcpListener, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => handle_connection(stream),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(15));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(15)),
        }
    }
}

fn handle_connection(mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_nodelay(true);
    // Read until the end of the request head (or the buffer fills); only the
    // request line matters for a two-route scrape server.
    let mut buf = [0u8; 2048];
    let mut len = 0usize;
    while len < buf.len() {
        match stream.read(&mut buf[len..]) {
            Ok(0) => break,
            Ok(n) => {
                len += n;
                if buf[..len].windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let head = String::from_utf8_lossy(&buf[..len]);
    let path = head
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .unwrap_or("");
    let (status, content_type, body) = match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            metrics_body(),
        ),
        "/progress" => ("200 OK", "application/json", progress_body()),
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "try /metrics or /progress\n".to_string(),
        ),
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

/// Starts the process-global listener on `RDO_METRICS_ADDR` exactly once.
/// Called by the driver at the top of every execution; without the knob (or
/// after a bind failure, which warns once) this is a cheap no-op. The global
/// server lives until process exit.
pub fn ensure_started_from_env() {
    static STARTED: OnceLock<Option<&'static MetricsServer>> = OnceLock::new();
    STARTED.get_or_init(|| {
        let addr = metrics_addr()?;
        match MetricsServer::bind(&addr) {
            Ok(server) => {
                rdo_common::info!(
                    "metrics endpoint listening on http://{}/metrics",
                    server.local_addr()
                );
                Some(Box::leak(Box::new(server)))
            }
            Err(e) => {
                rdo_common::warn!("RDO_METRICS_ADDR={addr} bind failed: {e}");
                None
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn http_get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
            .unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_metrics_and_progress_for_registered_queries() {
        let handle = TraceHandle::enabled();
        {
            let _guard = handle.install();
            let _span = crate::span("stage.reopt");
            crate::counter("progress.rows_produced", 42);
            crate::counter("progress.pages_scanned", 3);
            crate::note("stage", "reopt#1");
        }
        register_query("serve-test-q", &handle);
        let server = MetricsServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr();

        let metrics = http_get(addr, "/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200 OK"), "{metrics}");
        assert!(metrics.contains("rdo_progress_rows_produced"), "{metrics}");
        assert!(
            metrics.contains("rdo_stage_reopt_duration_ns_bucket{le=\"+Inf\"} 1"),
            "{metrics}"
        );

        let progress = http_get(addr, "/progress");
        assert!(
            progress.contains("\"query\":\"serve-test-q\""),
            "{progress}"
        );
        assert!(progress.contains("\"stage\":\"reopt#1\""), "{progress}");
        assert!(progress.contains("\"rows_produced\":42"), "{progress}");
        assert!(progress.contains("\"pages_scanned\":3"), "{progress}");

        let missing = http_get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
        drop(handle);
    }

    #[test]
    fn dead_queries_are_pruned_from_the_registry() {
        let handle = TraceHandle::enabled();
        handle.counter("progress.rows_produced", 7);
        register_query("serve-pruned-q", &handle);
        assert!(progress_body().contains("serve-pruned-q"));
        drop(handle);
        assert!(!progress_body().contains("serve-pruned-q"));
    }

    #[test]
    fn register_is_idempotent_per_collector() {
        let handle = TraceHandle::enabled();
        register_query("serve-idem-q", &handle);
        register_query("serve-idem-q", &handle);
        let hits = progress_body().matches("serve-idem-q").count();
        assert_eq!(hits, 1);
        register_query("ignored", &TraceHandle::disabled());
        drop(handle);
    }
}
