#![warn(missing_docs)]
//! Structured tracing and metrics for the whole engine.
//!
//! The paper's argument is about *where time goes mid-query* — planning and
//! materialization overhead at each re-optimization point traded against
//! better join orders — so the reproduction needs per-phase timing, not just
//! one wall-clock number per run. This crate is that substrate:
//!
//! * [`span`] opens a RAII-guarded span (name, attributes, monotonic
//!   start/duration, parent id, thread id) recorded into a lock-sharded
//!   [`Collector`];
//! * [`counter`] / [`gauge_max`] / [`timer`] accumulate named metrics beside
//!   the spans (counters sum-merge, gauges max-merge — the same two merge
//!   laws `ExecutionMetrics` uses); every finished span additionally feeds a
//!   per-name latency [`Histogram`] (fixed log buckets, bucket-wise sum
//!   merge), so per-operator and per-stage p50/p90/p99 come for free;
//! * [`audit`] carries the optimizer audit trail (estimate-vs-actual Q-error
//!   records and re-optimization decision explanations) the driver fills in;
//! * [`serve`] is the live scrape endpoint (`RDO_METRICS_ADDR`): `/metrics`
//!   and `/progress` over a dependency-free HTTP listener;
//! * [`TaskContext`] carries the active trace across thread boundaries (the
//!   worker pool, net transport threads, the spill prefetcher), so spans
//!   started on other threads stitch under the submitting span;
//! * [`Profile`] renders the collected data three ways: an
//!   `EXPLAIN ANALYZE`-style tree, a Chrome `trace_event` JSON file, and a
//!   Prometheus text exposition.
//!
//! **Disabled cost.** Tracing is off unless a [`TraceHandle`] is installed on
//! the current thread. Every instrumentation entry point first performs one
//! relaxed atomic load of a global install count and returns immediately when
//! it is zero — no lock, no allocation, no thread-local access — so the
//! equivalence suites and the bench gate run the exact seed code path.
//!
//! **Distributed runs.** Remote workers trace into their own collectors and
//! ship the encoded spans back inside the existing tally frames
//! ([`wire::encode_update`]); the coordinator [`TraceHandle::adopt`]s them
//! under its per-worker exchange spans, so one merged tree covers the whole
//! cluster.

pub mod audit;
pub mod profile;
pub mod serve;
pub mod wire;

pub use profile::Profile;

use std::borrow::Cow;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Number of span shards in a collector: threads append to
/// `shard[thread_id % SHARDS]`, so concurrent workers rarely contend.
const SHARDS: usize = 16;

/// Count of enabled trace contexts currently installed across all threads.
/// Zero means tracing is off everywhere; the disabled fast path of every
/// entry point is a single relaxed load of this counter.
static ACTIVE: AtomicUsize = AtomicUsize::new(0);

/// One attribute value attached to a span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttrValue {
    /// An unsigned integer (row counts, byte volumes, fanouts, levels).
    U64(u64),
    /// A free-form string (table names, worker addresses).
    Str(String),
}

impl std::fmt::Display for AttrValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttrValue::U64(v) => write!(f, "{v}"),
            AttrValue::Str(s) => write!(f, "{s}"),
        }
    }
}

/// One finished span, as stored in the collector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Unique id within the owning collector (never 0).
    pub id: u64,
    /// Id of the enclosing span, or 0 for a root.
    pub parent: u64,
    /// Span name (`"stage.reopt"`, `"exec.grace"`, …).
    pub name: String,
    /// Small per-process thread number (lane grouping in the Chrome export).
    pub thread: u64,
    /// Start, in nanoseconds since the collector's epoch.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub duration_ns: u64,
    /// Key/value attributes recorded on the span.
    pub attrs: Vec<(String, AttrValue)>,
}

/// Number of finite bucket boundaries in a [`Histogram`]: boundary `i` is
/// `2^(10+i)` nanoseconds, spanning ~1 µs to ~36 minutes; one extra overflow
/// bucket catches everything beyond the last boundary.
pub const HISTOGRAM_BOUNDS: usize = 32;

/// A fixed-boundary log-bucketed latency histogram.
///
/// Every histogram shares the same boundaries, so merging two of them is a
/// bucket-wise sum (plus summing `sum` and `count`) — an associative and
/// commutative law like the counter (sum) and gauge (max) laws, which is what
/// keeps the merged exposition worker-count and transport invariant. The
/// collector records one histogram per span name automatically when a span
/// guard drops, giving per-operator and per-stage wall-latency distributions
/// for free.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; HISTOGRAM_BOUNDS + 1],
    sum: u64,
    count: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            counts: [0; HISTOGRAM_BOUNDS + 1],
            sum: 0,
            count: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// The upper bound (inclusive) of finite bucket `index`, in nanoseconds.
    pub fn bound_ns(index: usize) -> u64 {
        1u64 << (10 + index as u32)
    }

    /// Index of the bucket whose range `(bound(i-1), bound(i)]` contains
    /// `value_ns`; values past the last boundary land in the overflow bucket.
    fn bucket_index(value_ns: u64) -> usize {
        if value_ns <= Self::bound_ns(0) {
            return 0;
        }
        let log2 = 63 - value_ns.leading_zeros() as usize;
        let mut index = log2 - 10;
        if (1u64 << log2) < value_ns {
            index += 1;
        }
        index.min(HISTOGRAM_BOUNDS)
    }

    /// Records one observation.
    pub fn observe(&mut self, value_ns: u64) {
        self.counts[Self::bucket_index(value_ns)] += 1;
        self.sum = self.sum.saturating_add(value_ns);
        self.count += 1;
    }

    /// Merges another histogram in: bucket-wise count sum. Associative and
    /// commutative, so the order workers report in never changes the result.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.sum = self.sum.saturating_add(other.sum);
        self.count += other.count;
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed values, in nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.sum
    }

    /// Per-bucket (non-cumulative) counts; the last entry is the overflow
    /// bucket.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Reassembles a histogram from its parts (the wire decoder). `None` when
    /// the bucket count does not match this build's boundaries.
    pub fn from_parts(bucket_counts: &[u64], sum: u64, count: u64) -> Option<Self> {
        let counts: [u64; HISTOGRAM_BOUNDS + 1] = bucket_counts.try_into().ok()?;
        Some(Self { counts, sum, count })
    }

    /// The `q`-quantile as a bucket upper bound in nanoseconds: the smallest
    /// boundary at which the cumulative count reaches `ceil(q · count)`.
    /// Returns 0 for an empty histogram; observations in the overflow bucket
    /// report twice the last finite boundary.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (index, bucket) in self.counts.iter().enumerate() {
            cumulative += bucket;
            if cumulative >= target {
                return if index < HISTOGRAM_BOUNDS {
                    Self::bound_ns(index)
                } else {
                    2 * Self::bound_ns(HISTOGRAM_BOUNDS - 1)
                };
            }
        }
        2 * Self::bound_ns(HISTOGRAM_BOUNDS - 1)
    }
}

/// The shared span + metrics store behind a [`TraceHandle`].
///
/// Spans land in one of 16 mutex-guarded shard vectors keyed by thread id;
/// counters and gauges live in two small maps. All timestamps are relative to
/// the collector's creation instant, so records from different threads of one
/// process share a timeline.
#[derive(Debug)]
pub struct Collector {
    epoch: Instant,
    next_id: AtomicU64,
    shards: Vec<Mutex<Vec<SpanRecord>>>,
    counters: Mutex<BTreeMap<String, u64>>,
    gauges: Mutex<BTreeMap<String, u64>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
    notes: Mutex<BTreeMap<String, String>>,
}

impl Collector {
    fn new() -> Self {
        Self {
            epoch: Instant::now(),
            next_id: AtomicU64::new(1),
            shards: (0..SHARDS).map(|_| Mutex::new(Vec::new())).collect(),
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            notes: Mutex::new(BTreeMap::new()),
        }
    }

    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn alloc_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    fn push(&self, record: SpanRecord) {
        let shard = (record.thread as usize) % SHARDS;
        self.shards[shard]
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(record);
    }

    fn add_counter(&self, name: &str, delta: u64) {
        let mut map = self.counters.lock().unwrap_or_else(|p| p.into_inner());
        match map.get_mut(name) {
            Some(value) => *value += delta,
            None => {
                map.insert(name.to_string(), delta);
            }
        }
    }

    fn gauge_max(&self, name: &str, value: u64) {
        let mut map = self.gauges.lock().unwrap_or_else(|p| p.into_inner());
        match map.get_mut(name) {
            Some(current) => *current = (*current).max(value),
            None => {
                map.insert(name.to_string(), value);
            }
        }
    }

    fn observe(&self, name: &str, value_ns: u64) {
        let mut map = self.histograms.lock().unwrap_or_else(|p| p.into_inner());
        match map.get_mut(name) {
            Some(histogram) => histogram.observe(value_ns),
            None => {
                let mut histogram = Histogram::new();
                histogram.observe(value_ns);
                map.insert(name.to_string(), histogram);
            }
        }
    }

    fn merge_histogram(&self, name: &str, other: &Histogram) {
        let mut map = self.histograms.lock().unwrap_or_else(|p| p.into_inner());
        match map.get_mut(name) {
            Some(histogram) => histogram.merge(other),
            None => {
                map.insert(name.to_string(), other.clone());
            }
        }
    }

    fn set_note(&self, key: &str, value: &str) {
        let mut map = self.notes.lock().unwrap_or_else(|p| p.into_inner());
        map.insert(key.to_string(), value.to_string());
    }

    fn snapshot_spans(&self) -> Vec<SpanRecord> {
        let mut all = Vec::new();
        for shard in &self.shards {
            all.extend_from_slice(&shard.lock().unwrap_or_else(|p| p.into_inner()));
        }
        all.sort_by_key(|s| (s.start_ns, s.id));
        all
    }
}

thread_local! {
    /// The thread's active trace context: which collector spans record into,
    /// and the stack of open span ids (top = current parent).
    static CTX: RefCell<Option<ThreadCtx>> = const { RefCell::new(None) };
}

struct ThreadCtx {
    collector: Arc<Collector>,
    stack: Vec<u64>,
}

fn current_thread_id() -> u64 {
    static NEXT_THREAD: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
    }
    TID.with(|cell| {
        if cell.get() == 0 {
            cell.set(NEXT_THREAD.fetch_add(1, Ordering::Relaxed));
        }
        cell.get()
    })
}

/// A clonable reference to one query's trace. `disabled()` handles carry no
/// collector and cost nothing; cloning either flavour is an `Arc` bump (or a
/// `None` copy).
#[derive(Debug, Clone, Default)]
pub struct TraceHandle {
    inner: Option<Arc<Collector>>,
}

impl TraceHandle {
    /// A handle that records nothing. Installing it is a no-op.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// A handle backed by a fresh collector.
    pub fn enabled() -> Self {
        Self {
            inner: Some(Arc::new(Collector::new())),
        }
    }

    /// Builds a handle from the environment: enabled when `RDO_TRACE_SPANS`
    /// is truthy or `RDO_TRACE` names an export path (both parsed through the
    /// shared warn-on-invalid helpers), disabled otherwise.
    pub fn from_env() -> Self {
        let spans = rdo_common::env::read_env(
            "RDO_TRACE_SPANS",
            "tracing stays disabled",
            rdo_common::env::parse_env_bool,
        )
        .unwrap_or(false);
        // A scrape endpoint needs something to scrape: RDO_METRICS_ADDR alone
        // enables collection too, so /metrics and /progress have live data
        // without also setting RDO_TRACE_SPANS.
        if spans || export_path().is_some() || serve::metrics_addr().is_some() {
            Self::enabled()
        } else {
            Self::disabled()
        }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Installs this trace on the current thread for the guard's lifetime:
    /// spans, counters and timers opened on this thread record into the
    /// handle's collector. Disabled handles install nothing (an enclosing
    /// installed trace, if any, stays active).
    pub fn install(&self) -> InstallGuard {
        install_ctx(self.inner.clone(), Vec::new())
    }

    /// Adds `delta` to a named counter directly on the handle (no thread
    /// context needed).
    pub fn counter(&self, name: &str, delta: u64) {
        if let Some(collector) = &self.inner {
            collector.add_counter(name, delta);
        }
    }

    /// Raises a named max-merged gauge directly on the handle.
    pub fn gauge_max(&self, name: &str, value: u64) {
        if let Some(collector) = &self.inner {
            collector.gauge_max(name, value);
        }
    }

    /// Snapshot of every finished span so far, ordered by start time.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.inner
            .as_ref()
            .map(|c| c.snapshot_spans())
            .unwrap_or_default()
    }

    /// Snapshot of the counter map.
    pub fn counters(&self) -> BTreeMap<String, u64> {
        self.inner
            .as_ref()
            .map(|c| c.counters.lock().unwrap_or_else(|p| p.into_inner()).clone())
            .unwrap_or_default()
    }

    /// Snapshot of the gauge map.
    pub fn gauges(&self) -> BTreeMap<String, u64> {
        self.inner
            .as_ref()
            .map(|c| c.gauges.lock().unwrap_or_else(|p| p.into_inner()).clone())
            .unwrap_or_default()
    }

    /// Records one latency observation into the named histogram directly on
    /// the handle (no thread context needed).
    pub fn observe(&self, name: &str, value_ns: u64) {
        if let Some(collector) = &self.inner {
            collector.observe(name, value_ns);
        }
    }

    /// Snapshot of the histogram map (one latency histogram per span name,
    /// recorded automatically as span guards drop).
    pub fn histograms(&self) -> BTreeMap<String, Histogram> {
        self.inner
            .as_ref()
            .map(|c| {
                c.histograms
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .clone()
            })
            .unwrap_or_default()
    }

    /// Sets a last-write-wins progress note (e.g. the stage the driver is
    /// currently executing) directly on the handle.
    pub fn note(&self, key: &str, value: &str) {
        if let Some(collector) = &self.inner {
            collector.set_note(key, value);
        }
    }

    /// Snapshot of the note map. Notes are local diagnostics for the live
    /// `/progress` endpoint; they do not ship across the wire.
    pub fn notes(&self) -> BTreeMap<String, String> {
        self.inner
            .as_ref()
            .map(|c| c.notes.lock().unwrap_or_else(|p| p.into_inner()).clone())
            .unwrap_or_default()
    }

    /// Builds a [`Profile`] from everything collected so far. Callable any
    /// number of times; spans still open are not included.
    pub fn profile(&self) -> Profile {
        Profile::new(self.spans(), self.counters(), self.gauges())
            .with_histograms(self.histograms())
    }

    /// Merges spans and metrics collected elsewhere (typically decoded from a
    /// remote worker's tally frame) into this trace, under the span
    /// `parent_id`. Imported span/thread ids are offset past this collector's,
    /// root parents are re-pointed at `parent_id`, and the imported timeline
    /// is shifted so it *ends* at the adoption instant — right after the
    /// coordinator finished waiting on the worker, which is when adoption
    /// runs. Counters sum-merge and gauges max-merge, preserving the same
    /// laws local accumulation uses.
    pub fn adopt(&self, update: wire::Update, parent_id: u64) {
        let Some(collector) = &self.inner else { return };
        let wire::Update {
            spans,
            counters,
            gauges,
            histograms,
        } = update;
        if !spans.is_empty() {
            let max_id = spans.iter().map(|s| s.id).max().unwrap_or(0);
            // Reserve max_id + 1 fresh ids: adopted ids land in
            // (offset, offset + max_id] and the next local span takes
            // offset + max_id + 1, so the two ranges can never collide.
            let id_offset = collector.next_id.fetch_add(max_id + 1, Ordering::Relaxed);
            let thread_offset = spans.iter().map(|s| s.thread).max().unwrap_or(0);
            let min_start = spans.iter().map(|s| s.start_ns).min().unwrap_or(0);
            let max_end = spans
                .iter()
                .map(|s| s.start_ns.saturating_add(s.duration_ns))
                .max()
                .unwrap_or(0);
            let window = max_end.saturating_sub(min_start);
            let base = collector.now_ns().saturating_sub(window);
            for mut span in spans {
                span.id += id_offset;
                span.parent = if span.parent == 0 {
                    parent_id
                } else {
                    span.parent + id_offset
                };
                // Imported thread lanes get their own range so they never
                // collide with local lanes in the Chrome export.
                span.thread += id_offset.max(thread_offset);
                span.start_ns = base + (span.start_ns - min_start);
                collector.push(span);
            }
        }
        for (name, delta) in counters {
            collector.add_counter(&name, delta);
        }
        for (name, value) in gauges {
            collector.gauge_max(&name, value);
        }
        // Adopted spans are pushed directly (not via a guard drop), so the
        // remote histograms — which already contain those spans' latencies,
        // observed where the guards actually dropped — are merged explicitly.
        for (name, histogram) in histograms {
            collector.merge_histogram(&name, &histogram);
        }
    }

    /// Encodes everything collected so far for shipment to another process
    /// (the worker side of [`TraceHandle::adopt`]).
    pub fn encode_update(&self) -> Vec<u8> {
        wire::encode_update(
            &self.spans(),
            &self.counters(),
            &self.gauges(),
            &self.histograms(),
        )
    }
}

/// Merges a remote [`wire::Update`] into the thread's installed trace, under
/// the thread's current span — the coordinator-side counterpart of a worker's
/// [`TraceHandle::encode_update`], callable from deep inside a transport
/// without threading a handle through. A no-op when tracing is disabled.
pub fn adopt_update(update: wire::Update) {
    if ACTIVE.load(Ordering::Relaxed) == 0 {
        return;
    }
    CTX.with(|ctx| {
        if let Some(t) = ctx.borrow().as_ref() {
            let parent = t.stack.last().copied().unwrap_or(0);
            let handle = TraceHandle {
                inner: Some(Arc::clone(&t.collector)),
            };
            handle.adopt(update, parent);
        }
    });
}

/// Export path from the `RDO_TRACE` knob: when set (to a non-empty string),
/// the driver writes a Chrome `trace_event` JSON file there after each run.
pub fn export_path() -> Option<String> {
    match std::env::var("RDO_TRACE") {
        Ok(path) if !path.trim().is_empty() => Some(path),
        _ => None,
    }
}

/// Restores the thread's previous trace context when dropped.
pub struct InstallGuard {
    prev: Option<ThreadCtx>,
    installed: bool,
    _not_send: PhantomData<*const ()>,
}

fn install_ctx(collector: Option<Arc<Collector>>, stack: Vec<u64>) -> InstallGuard {
    match collector {
        Some(collector) => {
            ACTIVE.fetch_add(1, Ordering::Relaxed);
            let prev = CTX.with(|ctx| ctx.replace(Some(ThreadCtx { collector, stack })));
            InstallGuard {
                prev,
                installed: true,
                _not_send: PhantomData,
            }
        }
        None => InstallGuard {
            prev: None,
            installed: false,
            _not_send: PhantomData,
        },
    }
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        if self.installed {
            CTX.with(|ctx| ctx.replace(self.prev.take()));
            ACTIVE.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

/// A captured trace context that can cross a thread boundary: created on the
/// submitting thread, installed on a worker so spans opened there stitch
/// under the submitter's current span. Capturing with tracing disabled yields
/// an inert context whose `install` is a no-op.
#[derive(Debug, Clone, Default)]
pub struct TaskContext {
    inner: Option<(Arc<Collector>, u64)>,
}

impl TaskContext {
    /// Captures the calling thread's collector and current span id.
    pub fn capture() -> Self {
        if ACTIVE.load(Ordering::Relaxed) == 0 {
            return Self { inner: None };
        }
        CTX.with(|ctx| {
            let borrowed = ctx.borrow();
            let Some(t) = borrowed.as_ref() else {
                return Self { inner: None };
            };
            Self {
                inner: Some((
                    Arc::clone(&t.collector),
                    t.stack.last().copied().unwrap_or(0),
                )),
            }
        })
    }

    /// Whether the captured context carries a live trace.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Installs the captured context on the current thread: new spans become
    /// children of the span that was open at capture time.
    pub fn install(&self) -> InstallGuard {
        match &self.inner {
            Some((collector, parent)) => install_ctx(Some(Arc::clone(collector)), vec![*parent]),
            None => install_ctx(None, Vec::new()),
        }
    }
}

/// Finishes its span when dropped. Obtained from [`span`]; inert when tracing
/// is disabled.
pub struct SpanGuard {
    inner: Option<ActiveSpan>,
    _not_send: PhantomData<*const ()>,
}

struct ActiveSpan {
    collector: Arc<Collector>,
    id: u64,
    parent: u64,
    name: &'static str,
    start_ns: u64,
    attrs: Vec<(Cow<'static, str>, AttrValue)>,
}

impl SpanGuard {
    const NOOP: SpanGuard = SpanGuard {
        inner: None,
        _not_send: PhantomData,
    };

    /// This span's id (0 when tracing is disabled). Remote adoption points
    /// worker roots at this id.
    pub fn id(&self) -> u64 {
        self.inner.as_ref().map(|s| s.id).unwrap_or(0)
    }

    /// Attaches an integer attribute (row counts, byte volumes, levels).
    pub fn attr_u64(&mut self, key: &'static str, value: u64) {
        if let Some(span) = &mut self.inner {
            span.attrs.push((Cow::Borrowed(key), AttrValue::U64(value)));
        }
    }

    /// Attaches a string attribute. The value is only materialized when the
    /// span is live, so pass `&format!(..)` results freely.
    pub fn attr_str(&mut self, key: &'static str, value: &str) {
        if let Some(span) = &mut self.inner {
            span.attrs
                .push((Cow::Borrowed(key), AttrValue::Str(value.to_string())));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.inner.take() else {
            return;
        };
        let end = active.collector.now_ns();
        // Pop this span off the thread's parent stack. The guard is !Send and
        // guards nest lexically, so the top of the stack is this span unless
        // the install guard already dropped (then there is nothing to pop).
        CTX.with(|ctx| {
            if let Some(t) = ctx.borrow_mut().as_mut() {
                if t.stack.last() == Some(&active.id) {
                    t.stack.pop();
                }
            }
        });
        let duration_ns = end.saturating_sub(active.start_ns);
        // Every finished span feeds the latency histogram keyed by its name,
        // so per-operator and per-stage percentiles come for free.
        active.collector.observe(active.name, duration_ns);
        active.collector.push(SpanRecord {
            id: active.id,
            parent: active.parent,
            name: active.name.to_string(),
            thread: current_thread_id(),
            start_ns: active.start_ns,
            duration_ns,
            attrs: active
                .attrs
                .into_iter()
                .map(|(k, v)| (k.into_owned(), v))
                .collect(),
        });
    }
}

/// Opens a span named `name` under the thread's current span. Returns an
/// inert guard (one relaxed load, nothing else) when no trace is installed.
pub fn span(name: &'static str) -> SpanGuard {
    if ACTIVE.load(Ordering::Relaxed) == 0 {
        return SpanGuard::NOOP;
    }
    CTX.with(|ctx| {
        let mut borrowed = ctx.borrow_mut();
        let Some(t) = borrowed.as_mut() else {
            return SpanGuard::NOOP;
        };
        let id = t.collector.alloc_id();
        let parent = t.stack.last().copied().unwrap_or(0);
        t.stack.push(id);
        SpanGuard {
            inner: Some(ActiveSpan {
                collector: Arc::clone(&t.collector),
                id,
                parent,
                name,
                start_ns: t.collector.now_ns(),
                attrs: Vec::new(),
            }),
            _not_send: PhantomData,
        }
    })
}

/// Adds `delta` to the named counter of the thread's installed trace.
/// Counters sum-merge across threads and processes.
pub fn counter(name: &'static str, delta: u64) {
    if ACTIVE.load(Ordering::Relaxed) == 0 {
        return;
    }
    CTX.with(|ctx| {
        if let Some(t) = ctx.borrow().as_ref() {
            t.collector.add_counter(name, delta);
        }
    });
}

/// Raises the named gauge of the thread's installed trace to at least
/// `value`. Gauges max-merge (peak semantics), mirroring
/// `grace_peak_transient_bytes` in the execution metrics.
pub fn gauge_max(name: &'static str, value: u64) {
    if ACTIVE.load(Ordering::Relaxed) == 0 {
        return;
    }
    CTX.with(|ctx| {
        if let Some(t) = ctx.borrow().as_ref() {
            t.collector.gauge_max(name, value);
        }
    });
}

/// Sets a last-write-wins progress note on the thread's installed trace —
/// free-form current-state strings (the stage the driver is executing) read
/// back by the live `/progress` endpoint. A no-op when tracing is disabled.
pub fn note(key: &str, value: &str) {
    if ACTIVE.load(Ordering::Relaxed) == 0 {
        return;
    }
    CTX.with(|ctx| {
        if let Some(t) = ctx.borrow().as_ref() {
            t.collector.set_note(key, value);
        }
    });
}

/// Accumulates elapsed wall time into a `..._ns` counter when dropped.
/// Obtained from [`timer`]; inert when tracing is disabled.
pub struct TimerGuard {
    inner: Option<(Arc<Collector>, &'static str, Instant)>,
    _not_send: PhantomData<*const ()>,
}

impl Drop for TimerGuard {
    fn drop(&mut self) {
        if let Some((collector, name, start)) = self.inner.take() {
            collector.add_counter(name, start.elapsed().as_nanos() as u64);
        }
    }
}

/// Starts a timer that adds its elapsed nanoseconds to counter `name` when
/// dropped — for hot, flat costs (compression, prefetch waits) where a span
/// per call would drown the tree.
pub fn timer(name: &'static str) -> TimerGuard {
    if ACTIVE.load(Ordering::Relaxed) == 0 {
        return TimerGuard {
            inner: None,
            _not_send: PhantomData,
        };
    }
    CTX.with(|ctx| TimerGuard {
        inner: ctx
            .borrow()
            .as_ref()
            .map(|t| (Arc::clone(&t.collector), name, Instant::now())),
        _not_send: PhantomData,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing() {
        let handle = TraceHandle::disabled();
        let _guard = handle.install();
        {
            let mut s = span("never");
            s.attr_u64("x", 1);
        }
        counter("never.count", 3);
        gauge_max("never.gauge", 9);
        drop(timer("never.timer_ns"));
        assert!(!handle.is_enabled());
        assert!(handle.spans().is_empty());
        assert!(handle.counters().is_empty());
        assert!(handle.gauges().is_empty());
    }

    #[test]
    fn spans_nest_under_the_enclosing_guard() {
        let handle = TraceHandle::enabled();
        let _guard = handle.install();
        let root_id;
        {
            let root = span("root");
            root_id = root.id();
            {
                let mut child = span("child");
                child.attr_u64("rows", 42);
                let _grand = span("grandchild");
            }
            let _sibling = span("sibling");
        }
        let spans = handle.spans();
        assert_eq!(spans.len(), 4);
        let by_name = |n: &str| spans.iter().find(|s| s.name == n).unwrap();
        assert_eq!(by_name("root").parent, 0);
        assert_eq!(by_name("child").parent, root_id);
        assert_eq!(by_name("grandchild").parent, by_name("child").id);
        assert_eq!(by_name("sibling").parent, root_id);
        assert_eq!(
            by_name("child").attrs,
            vec![("rows".to_string(), AttrValue::U64(42))]
        );
    }

    #[test]
    fn task_context_stitches_spans_across_threads() {
        let handle = TraceHandle::enabled();
        let _guard = handle.install();
        let parent_id;
        {
            let parent = span("submit");
            parent_id = parent.id();
            let ctx = TaskContext::capture();
            assert!(ctx.is_enabled());
            std::thread::scope(|scope| {
                for _ in 0..3 {
                    let ctx = ctx.clone();
                    scope.spawn(move || {
                        let _guard = ctx.install();
                        let _w = span("worker.task");
                        counter("tasks", 1);
                    });
                }
            });
        }
        let spans = handle.spans();
        let workers: Vec<_> = spans.iter().filter(|s| s.name == "worker.task").collect();
        assert_eq!(workers.len(), 3);
        for w in &workers {
            assert_eq!(w.parent, parent_id, "worker span stitches under submit");
        }
        let threads: std::collections::BTreeSet<u64> = workers.iter().map(|s| s.thread).collect();
        assert_eq!(threads.len(), 3, "each worker kept its own thread id");
        assert_eq!(handle.counters().get("tasks"), Some(&3));
    }

    #[test]
    fn counters_sum_and_gauges_max() {
        let handle = TraceHandle::enabled();
        let _guard = handle.install();
        counter("c", 2);
        counter("c", 5);
        gauge_max("g", 7);
        gauge_max("g", 3);
        handle.counter("c", 1);
        handle.gauge_max("g", 10);
        assert_eq!(handle.counters().get("c"), Some(&8));
        assert_eq!(handle.gauges().get("g"), Some(&10));
    }

    #[test]
    fn adoption_merges_remote_updates_under_a_parent() {
        // "Worker" side: its own collector, two nested spans + metrics.
        let worker = TraceHandle::enabled();
        {
            let _guard = worker.install();
            let _outer = span("serve.repartition");
            let _inner = span("serve.route");
            counter("net.frames", 4);
            worker.gauge_max("net.peak", 100);
        }
        let blob = worker.encode_update();

        // Coordinator side: adopt under a live exchange span.
        let coord = TraceHandle::enabled();
        let parent_id;
        {
            let _guard = coord.install();
            let exchange = span("net.exchange");
            parent_id = exchange.id();
            coord.counter("net.frames", 1);
            coord.gauge_max("net.peak", 40);
            coord.adopt(wire::decode_update(&blob).unwrap(), parent_id);
        }
        let spans = coord.spans();
        let outer = spans
            .iter()
            .find(|s| s.name == "serve.repartition")
            .unwrap();
        let inner = spans.iter().find(|s| s.name == "serve.route").unwrap();
        assert_eq!(
            outer.parent, parent_id,
            "remote root hangs off the exchange"
        );
        assert_eq!(inner.parent, outer.id, "remote nesting preserved");
        let local_ids: std::collections::BTreeSet<u64> = spans.iter().map(|s| s.id).collect();
        assert_eq!(local_ids.len(), spans.len(), "re-iding avoided collisions");
        // Merge laws: counters sum, gauges max.
        assert_eq!(coord.counters().get("net.frames"), Some(&5));
        assert_eq!(coord.gauges().get("net.peak"), Some(&100));
    }

    #[test]
    fn timers_accumulate_elapsed_nanoseconds() {
        let handle = TraceHandle::enabled();
        let _guard = handle.install();
        for _ in 0..2 {
            let _t = timer("work_ns");
        }
        let counters = handle.counters();
        assert!(counters.contains_key("work_ns"));
    }

    #[test]
    fn histogram_buckets_are_log_spaced_and_merge_is_bucketwise() {
        let mut a = Histogram::new();
        a.observe(1); // bucket 0 (≤ 1024)
        a.observe(1024); // bucket 0 boundary is inclusive
        a.observe(1025); // bucket 1
        a.observe(u64::MAX); // overflow bucket
        assert_eq!(a.count(), 4);
        assert_eq!(a.bucket_counts()[0], 2);
        assert_eq!(a.bucket_counts()[1], 1);
        assert_eq!(a.bucket_counts()[HISTOGRAM_BOUNDS], 1);

        let mut b = Histogram::new();
        b.observe(2048);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge is commutative");
        assert_eq!(ab.count(), 5);
        assert_eq!(ab.bucket_counts()[1], 2, "2048 lands in bucket 1 too");
    }

    #[test]
    fn histogram_quantiles_are_bucket_upper_bounds() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.observe(1000); // bucket 0 → bound 1024
        }
        h.observe(1 << 20); // bucket 10
        assert_eq!(h.quantile_ns(0.5), 1024);
        assert_eq!(h.quantile_ns(0.99), 1024);
        assert_eq!(h.quantile_ns(1.0), 1 << 20);
        assert_eq!(Histogram::new().quantile_ns(0.5), 0);
    }

    #[test]
    fn spans_feed_their_latency_histogram_automatically() {
        let handle = TraceHandle::enabled();
        {
            let _guard = handle.install();
            for _ in 0..3 {
                let _s = span("exec.join");
            }
            let _other = span("stage.final");
        }
        let histograms = handle.histograms();
        assert_eq!(histograms.get("exec.join").map(|h| h.count()), Some(3));
        assert_eq!(histograms.get("stage.final").map(|h| h.count()), Some(1));
    }

    #[test]
    fn adoption_merges_histograms_without_double_counting() {
        let worker = TraceHandle::enabled();
        {
            let _guard = worker.install();
            let _s = span("serve.repartition");
        }
        let blob = worker.encode_update();
        let coord = TraceHandle::enabled();
        {
            let _guard = coord.install();
            let exchange = span("net.exchange");
            coord.adopt(wire::decode_update(&blob).unwrap(), exchange.id());
        }
        let histograms = coord.histograms();
        assert_eq!(
            histograms.get("serve.repartition").map(|h| h.count()),
            Some(1),
            "adopted spans do not re-observe; the shipped histogram carries them"
        );
        assert_eq!(histograms.get("net.exchange").map(|h| h.count()), Some(1));
    }

    #[test]
    fn notes_are_last_write_wins() {
        let handle = TraceHandle::enabled();
        {
            let _guard = handle.install();
            note("stage", "pushdown:part");
            note("stage", "reopt#1");
        }
        handle.note("extra", "x");
        assert_eq!(
            handle.notes().get("stage").map(String::as_str),
            Some("reopt#1")
        );
        assert_eq!(handle.notes().get("extra").map(String::as_str), Some("x"));
        let disabled = TraceHandle::disabled();
        disabled.note("stage", "ignored");
        assert!(disabled.notes().is_empty());
    }

    #[test]
    fn install_restores_the_previous_context() {
        let outer = TraceHandle::enabled();
        let inner = TraceHandle::enabled();
        let _outer_guard = outer.install();
        {
            let _inner_guard = inner.install();
            let _s = span("inner.only");
        }
        {
            let _s = span("outer.only");
        }
        assert_eq!(inner.spans().len(), 1);
        assert_eq!(inner.spans()[0].name, "inner.only");
        assert_eq!(outer.spans().len(), 1);
        assert_eq!(outer.spans()[0].name, "outer.only");
    }
}
