//! Rendering sinks over a collected trace: the `EXPLAIN ANALYZE`-style tree,
//! the Chrome `trace_event` JSON exporter and the Prometheus text exposition.

use crate::{AttrValue, Histogram, SpanRecord};
use std::collections::BTreeMap;

/// Span names with these prefixes describe *physical* execution mechanics
/// (thread pools, wire transport, remote serving) rather than the logical
/// query: they are excluded from [`Profile::logical_shape`], which must be
/// identical across worker counts and transports.
const PHYSICAL_PREFIXES: &[&str] = &["pool.", "net.", "serve.", "worker."];

/// An immutable snapshot of one query's trace: finished spans plus the
/// counter and gauge maps. Produced by `TraceHandle::profile`.
#[derive(Debug, Clone, Default)]
pub struct Profile {
    spans: Vec<SpanRecord>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Profile {
    /// Wraps collected data (spans are re-sorted by start time).
    pub fn new(
        mut spans: Vec<SpanRecord>,
        counters: BTreeMap<String, u64>,
        gauges: BTreeMap<String, u64>,
    ) -> Self {
        spans.sort_by_key(|s| (s.start_ns, s.id));
        Self {
            spans,
            counters,
            gauges,
            histograms: BTreeMap::new(),
        }
    }

    /// Attaches the per-span-name latency histograms (builder style).
    pub fn with_histograms(mut self, histograms: BTreeMap<String, Histogram>) -> Self {
        self.histograms = histograms;
        self
    }

    /// The finished spans, ordered by start time.
    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }

    /// The sum-merged counters.
    pub fn counters(&self) -> &BTreeMap<String, u64> {
        &self.counters
    }

    /// The max-merged gauges.
    pub fn gauges(&self) -> &BTreeMap<String, u64> {
        &self.gauges
    }

    /// The bucket-wise sum-merged latency histograms, keyed by span name.
    pub fn histograms(&self) -> &BTreeMap<String, Histogram> {
        &self.histograms
    }

    /// The named latency histogram, if any spans with that name finished.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Total wall time of the named span (summed over occurrences), in
    /// seconds. Useful for per-stage aggregation across repetitions.
    pub fn total_seconds(&self, name: &str) -> f64 {
        self.spans
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.duration_ns as f64 / 1e9)
            .sum()
    }

    /// Children of `parent` (0 = roots), in start order. Spans whose parent
    /// id is unknown (a dangling import) are treated as roots too.
    fn children_of(&self, parent: u64) -> Vec<&SpanRecord> {
        let known: std::collections::BTreeSet<u64> = self.spans.iter().map(|s| s.id).collect();
        self.spans
            .iter()
            .filter(|s| {
                if parent == 0 {
                    s.parent == 0 || !known.contains(&s.parent)
                } else {
                    s.parent == parent
                }
            })
            .collect()
    }

    /// Renders the span tree in `EXPLAIN ANALYZE` style: one row per span
    /// with wall time and attributes, indented by depth, followed by the
    /// counter/gauge table.
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        for root in self.children_of(0) {
            self.render_node(root, 0, &mut out);
        }
        if !self.counters.is_empty() || !self.gauges.is_empty() {
            out.push_str("metrics:\n");
            for (name, value) in &self.counters {
                out.push_str(&format!("  {name} = {value}\n"));
            }
            for (name, value) in &self.gauges {
                out.push_str(&format!("  {name} (peak) = {value}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("latency (ms):\n");
            for (name, histogram) in &self.histograms {
                out.push_str(&format!(
                    "  {name}: n={} p50={:.3} p90={:.3} p99={:.3}\n",
                    histogram.count(),
                    histogram.quantile_ns(0.50) as f64 / 1e6,
                    histogram.quantile_ns(0.90) as f64 / 1e6,
                    histogram.quantile_ns(0.99) as f64 / 1e6,
                ));
            }
        }
        out
    }

    fn render_node(&self, span: &SpanRecord, depth: usize, out: &mut String) {
        let ms = span.duration_ns as f64 / 1e6;
        out.push_str(&"  ".repeat(depth));
        out.push_str(&format!("{} ({ms:.3} ms)", span.name));
        for (key, value) in &span.attrs {
            out.push_str(&format!(" {key}={value}"));
        }
        out.push('\n');
        for child in self.children_of(span.id) {
            self.render_node(child, depth + 1, out);
        }
    }

    /// Serializes the spans as Chrome `trace_event` JSON (complete events,
    /// `ph:"X"`), loadable in `chrome://tracing` / Perfetto. Hand-rolled —
    /// the offline `serde_json` shim only covers what the bench tooling
    /// needs, and the format is a flat array of small objects anyway.
    pub fn chrome_trace_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        for (i, span) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":{},\"cat\":\"rdo\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}",
                json_string(&span.name),
                span.start_ns / 1_000,
                (span.duration_ns / 1_000).max(1),
                span.thread,
            ));
            if !span.attrs.is_empty() {
                out.push_str(",\"args\":{");
                for (j, (key, value)) in span.attrs.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push_str(&json_string(key));
                    out.push(':');
                    match value {
                        AttrValue::U64(v) => out.push_str(&v.to_string()),
                        AttrValue::Str(s) => out.push_str(&json_string(s)),
                    }
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Renders the counters and gauges in Prometheus text exposition format.
    /// Metric names are sanitized (`.` and `-` become `_`) and prefixed with
    /// `rdo_`.
    pub fn metrics_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let metric = prometheus_name(name);
            out.push_str(&format!("# TYPE {metric} counter\n{metric} {value}\n"));
        }
        for (name, value) in &self.gauges {
            let metric = prometheus_name(name);
            out.push_str(&format!("# TYPE {metric} gauge\n{metric} {value}\n"));
        }
        out.push_str(&self.histograms_text());
        out
    }

    /// The latency histograms alone in Prometheus text exposition format:
    /// cumulative `_bucket{le="..."}` series (finite boundaries with at least
    /// one observation, plus the mandatory `+Inf`), `_sum` and `_count`. Each
    /// span name `x.y` becomes the family `rdo_x_y_duration_ns`.
    pub fn histograms_text(&self) -> String {
        let mut out = String::new();
        for (name, histogram) in &self.histograms {
            let metric = format!("{}_duration_ns", prometheus_name(name));
            out.push_str(&format!("# TYPE {metric} histogram\n"));
            let mut cumulative = 0u64;
            let buckets = histogram.bucket_counts();
            for (index, bucket) in buckets.iter().enumerate() {
                cumulative += bucket;
                if index == buckets.len() - 1 {
                    out.push_str(&format!("{metric}_bucket{{le=\"+Inf\"}} {cumulative}\n"));
                } else if *bucket > 0 {
                    out.push_str(&format!(
                        "{metric}_bucket{{le=\"{}\"}} {cumulative}\n",
                        Histogram::bound_ns(index)
                    ));
                }
            }
            out.push_str(&format!("{metric}_sum {}\n", histogram.sum_ns()));
            out.push_str(&format!("{metric}_count {}\n", histogram.count()));
        }
        out
    }

    /// A canonical, duration-free rendering of the *logical* span tree:
    /// physical spans (pool/net/serve/worker) are elided — their children are
    /// re-attached to the nearest logical ancestor — and siblings are sorted
    /// by name and attributes. Two runs of the same query must produce the
    /// same shape regardless of worker count or transport; the equivalence
    /// tests assert exactly that.
    pub fn logical_shape(&self) -> String {
        let by_id: BTreeMap<u64, &SpanRecord> = self.spans.iter().map(|s| (s.id, s)).collect();
        // Resolve each logical span's nearest logical ancestor.
        let mut children: BTreeMap<u64, Vec<&SpanRecord>> = BTreeMap::new();
        for span in self.spans.iter().filter(|s| !is_physical(&s.name)) {
            let mut parent = span.parent;
            loop {
                match by_id.get(&parent) {
                    Some(p) if is_physical(&p.name) => parent = p.parent,
                    Some(p) => break children.entry(p.id).or_default().push(span),
                    None => break children.entry(0).or_default().push(span),
                }
            }
        }
        for list in children.values_mut() {
            list.sort_by_key(|s| (s.name.clone(), shape_attrs(s), s.start_ns, s.id));
        }
        let mut out = String::new();
        let roots = children.get(&0).cloned().unwrap_or_default();
        for root in roots {
            render_shape(root, 0, &children, &mut out);
        }
        out
    }
}

fn render_shape(
    span: &SpanRecord,
    depth: usize,
    children: &BTreeMap<u64, Vec<&SpanRecord>>,
    out: &mut String,
) {
    out.push_str(&"  ".repeat(depth));
    out.push_str(&span.name);
    out.push_str(&shape_attrs(span));
    out.push('\n');
    for child in children.get(&span.id).cloned().unwrap_or_default() {
        render_shape(child, depth + 1, children, out);
    }
}

fn is_physical(name: &str) -> bool {
    PHYSICAL_PREFIXES.iter().any(|p| name.starts_with(p))
}

/// The attributes that participate in the logical shape: everything except
/// obviously physical measurements would over-constrain, so the shape keeps
/// only attributes whose values are worker- and transport-invariant by
/// construction (names, levels, counts of logical objects).
fn shape_attrs(span: &SpanRecord) -> String {
    let mut out = String::new();
    for (key, value) in &span.attrs {
        if matches!(
            key.as_str(),
            "table" | "query" | "point" | "level" | "fanout" | "partitions" | "algo"
        ) {
            out.push_str(&format!(" {key}={value}"));
        }
    }
    out
}

/// Sanitizes a metric name for the Prometheus text exposition (`.` and every
/// other non-alphanumeric character become `_`) and prefixes it with `rdo_`,
/// the single registry namespace every exposition in the workspace shares.
pub fn prometheus_name(name: &str) -> String {
    let safe: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    format!("rdo_{safe}")
}

pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u64, parent: u64, name: &str, start: u64) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            name: name.to_string(),
            thread: 1,
            start_ns: start,
            duration_ns: 1_000_000,
            attrs: Vec::new(),
        }
    }

    fn sample() -> Profile {
        let mut root = record(1, 0, "driver.execute", 0);
        root.attrs
            .push(("query".to_string(), AttrValue::Str("q9".to_string())));
        let spans = vec![
            root,
            record(2, 1, "stage.reopt", 10),
            record(3, 2, "pool.morsel", 20),
            record(4, 3, "exec.join", 30),
            record(5, 1, "stage.final", 40),
        ];
        let mut counters = BTreeMap::new();
        counters.insert("spill.pool.hits".to_string(), 12u64);
        let mut gauges = BTreeMap::new();
        gauges.insert("pool.queue_wait_ns".to_string(), 55u64);
        Profile::new(spans, counters, gauges)
    }

    #[test]
    fn tree_renders_nesting_durations_and_metrics() {
        let text = sample().render_tree();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("driver.execute (1.000 ms) query=q9"));
        assert!(lines[1].starts_with("  stage.reopt"));
        assert!(lines[2].starts_with("    pool.morsel"));
        assert!(lines[3].starts_with("      exec.join"));
        assert!(lines[4].starts_with("  stage.final"));
        assert!(text.contains("spill.pool.hits = 12"));
        assert!(text.contains("pool.queue_wait_ns (peak) = 55"));
    }

    #[test]
    fn logical_shape_elides_physical_spans_and_reparents() {
        let shape = sample().logical_shape();
        assert_eq!(
            shape, "driver.execute query=q9\n  stage.final\n  stage.reopt\n    exec.join\n",
            "pool.morsel elided, exec.join reparented under stage.reopt"
        );
    }

    #[test]
    fn logical_shape_is_duration_and_thread_invariant() {
        let a = sample();
        let mut spans = a.spans().to_vec();
        for s in &mut spans {
            s.duration_ns *= 7;
            s.thread += 3;
        }
        // Different start order within siblings of equal name is also fine.
        let b = Profile::new(spans, BTreeMap::new(), BTreeMap::new());
        assert_eq!(a.logical_shape(), b.logical_shape());
    }

    #[test]
    fn chrome_export_is_minimally_wellformed() {
        let json = sample().chrome_trace_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"name\":\"driver.execute\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"args\":{\"query\":\"q9\"}"));
        assert_eq!(
            json.matches("{\"name\":").count(),
            5,
            "one event per span: {json}"
        );
    }

    #[test]
    fn json_strings_escape_specials() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn prometheus_text_sanitizes_names() {
        let text = sample().metrics_text();
        assert!(text.contains("# TYPE rdo_spill_pool_hits counter"));
        assert!(text.contains("rdo_spill_pool_hits 12"));
        assert!(text.contains("# TYPE rdo_pool_queue_wait_ns gauge"));
        assert!(text.contains("rdo_pool_queue_wait_ns 55"));
    }

    fn sample_with_histograms() -> Profile {
        let mut h = Histogram::new();
        for v in [500u64, 2_000, 2_000, 1_000_000] {
            h.observe(v);
        }
        sample().with_histograms(BTreeMap::from([("stage.reopt".to_string(), h)]))
    }

    #[test]
    fn tree_renders_latency_percentiles() {
        let text = sample_with_histograms().render_tree();
        assert!(text.contains("latency (ms):"), "{text}");
        assert!(
            text.contains("stage.reopt: n=4 p50=0.002 p90=1.049 p99=1.049"),
            "{text}"
        );
    }

    #[test]
    fn histogram_exposition_has_cumulative_buckets() {
        let text = sample_with_histograms().metrics_text();
        assert!(text.contains("# TYPE rdo_stage_reopt_duration_ns histogram"));
        assert!(text.contains("rdo_stage_reopt_duration_ns_bucket{le=\"1024\"} 1"));
        assert!(text.contains("rdo_stage_reopt_duration_ns_bucket{le=\"2048\"} 3"));
        assert!(text.contains("rdo_stage_reopt_duration_ns_bucket{le=\"1048576\"} 4"));
        assert!(text.contains("rdo_stage_reopt_duration_ns_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("rdo_stage_reopt_duration_ns_sum 1004500"));
        assert!(text.contains("rdo_stage_reopt_duration_ns_count 4"));
    }

    #[test]
    fn total_seconds_sums_over_occurrences() {
        let profile = sample();
        assert!((profile.total_seconds("stage.reopt") - 0.001).abs() < 1e-9);
        assert_eq!(profile.total_seconds("absent"), 0.0);
    }
}
