//! The query model and every optimizer strategy evaluated in the paper.
//!
//! The crate provides:
//!
//! * [`QuerySpec`] — the logical multi-join query (datasets, local predicates,
//!   equi-join conditions, projection list), playing the role of the SQL++ /
//!   Algebricks representation.
//! * [`SizeEstimator`] — cardinality estimation: System-R's join-size formula
//!   driven by the statistics catalog, with the default selectivity factors for
//!   complex predicates that static optimizers must fall back to.
//! * [`JoinAlgorithmRule`] — the physical rule choosing hash, broadcast or
//!   indexed nested-loop for a join, given the estimated input sizes and the
//!   available secondary indexes.
//! * [`GreedyPlanner`] — the paper's *Planner* stage: pick the single next join
//!   with the least estimated result cardinality (`NextJoinPolicy::Statistics`)
//!   or the INGRES-like cardinality-only variant (`NextJoinPolicy::CardinalityOnly`).
//! * [`reconstruct`] — the *Query Reconstruction* stage rewriting the remaining
//!   query around a materialized intermediate result.
//! * [`correlation`] — a CORDS-style screening tool quantifying how far the
//!   independence assumption is from the truth for a dataset's local
//!   predicates (the error source that motivates predicate push-down).
//! * [`optimizers`] — the static baselines: cost-based (Selinger-style dynamic
//!   programming over initial statistics), worst-order, best-order and pilot-run.

pub mod algorithm;
pub mod correlation;
pub mod estimate;
pub mod greedy;
pub mod learned;
pub mod optimizers;
pub mod query;
pub mod reconstruct;

pub use algorithm::JoinAlgorithmRule;
pub use correlation::{analyze_predicates, analyze_query, CorrelationReport};
pub use estimate::{EstimationMode, SizeEstimator};
pub use greedy::{GreedyPlanner, NextJoinPolicy, PlannedJoin};
pub use learned::LearnedStatsCatalog;
pub use optimizers::{
    best_order::BestOrderOptimizer, cost_based::CostBasedOptimizer, pilot_run::PilotRunOptimizer,
    worst_order::WorstOrderOptimizer, Optimizer,
};
pub use query::{DatasetRef, JoinCondition, QuerySpec};
pub use reconstruct::{reconstruct_after_join, reconstruct_after_pushdown};
